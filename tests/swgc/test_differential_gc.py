"""Differential GC testing: accelerator vs software collector vs BFS oracle.

Three independent implementations traverse the same heap image:

* the accelerator (:class:`repro.core.unit.GCUnit`), a cycle-timed
  pipeline of reader / mark queue / marker / tracer;
* the software collector (:class:`repro.swgc.SoftwareCollector`), a
  different algorithmic expression (explicit worklist, CPU-timed);
* :meth:`ManagedHeap.reachable`, an untimed pure-Python BFS over the
  memory image — the oracle.

All three must agree on the exact marked set — not just its size — for
every heap shape we can construct: profile-generated DaCapo-like graphs
across size classes, and adversarial root-set shapes (empty, duplicated,
all-roots, deep chains, LOS objects).
"""

import pytest

from repro.core.unit import GCUnit
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.swgc import SoftwareCollector
from repro.workloads.graphgen import HeapGraphBuilder
from repro.workloads.profiles import DACAPO_PROFILES

from tests.conftest import SMALL_MEM, make_random_heap


def marked_set(heap):
    """Addresses of every tracked object whose mark bit is set."""
    parity = heap.mark_parity
    return {a for a in heap.objects if heap.view(a).is_marked(parity)}


def differential_mark(heap, checkpoint):
    """Mark the same heap with both collectors; return (sw, hw, oracle) sets.

    Only the mark phase runs (sweeping overwrites dead cells, destroying
    the per-object mark bits this comparison reads).
    """
    heap.restore(checkpoint)
    oracle = heap.reachable()

    collector = SoftwareCollector(heap)
    counters = {"objects_marked": 0, "queue_peak": 0}
    done = heap.sim.process(collector.mark_process(counters), name="sw-mark")
    heap.sim.run_until(done)
    sw = marked_set(heap)

    heap.restore(checkpoint)
    GCUnit(heap).mark()
    hw = marked_set(heap)
    return sw, hw, oracle


def assert_agreement(heap, checkpoint):
    sw, hw, oracle = differential_mark(heap, checkpoint)
    assert sw == oracle, (
        f"software collector diverged from the BFS oracle: "
        f"{len(sw ^ oracle)} addresses differ"
    )
    assert hw == oracle, (
        f"accelerator diverged from the BFS oracle: "
        f"{len(hw ^ oracle)} addresses differ"
    )


class TestProfileHeaps:
    """Generated workload heaps across profiles, sizes, and seeds."""

    @pytest.mark.parametrize("profile", ["avrora", "lusearch", "pmd"])
    def test_small_scale(self, profile):
        built = HeapGraphBuilder(DACAPO_PROFILES[profile], scale=0.008,
                                 seed=11).build()
        assert_agreement(built.heap, built.heap.checkpoint())

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seed_sweep(self, seed):
        built = HeapGraphBuilder(DACAPO_PROFILES["xalan"], scale=0.006,
                                 seed=seed).build()
        assert_agreement(built.heap, built.heap.checkpoint())

    @pytest.mark.slow
    @pytest.mark.parametrize("scale", [0.02, 0.04])
    def test_larger_scales(self, scale):
        built = HeapGraphBuilder(DACAPO_PROFILES["sunflow"], scale=scale,
                                 seed=5).build()
        assert_agreement(built.heap, built.heap.checkpoint())

    def test_oracle_matches_builder_ground_truth(self, tiny_built):
        built, checkpoint = tiny_built
        heap = built.heap
        heap.restore(checkpoint)
        # The builder records which objects it wired reachable; the BFS
        # oracle must agree before it is used to judge the collectors.
        assert heap.reachable() == set(built.live)


class TestRandomGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_wiring(self, seed):
        heap, _views = make_random_heap(n_objects=250, seed=seed)
        assert_agreement(heap, heap.checkpoint())

    def test_dense_graph(self):
        heap, _views = make_random_heap(n_objects=200, seed=8, max_refs=8,
                                        wire_prob=1.0)
        assert_agreement(heap, heap.checkpoint())

    def test_sparse_graph_mostly_garbage(self):
        heap, _views = make_random_heap(n_objects=300, seed=9, wire_prob=0.1,
                                        root_count=3)
        assert_agreement(heap, heap.checkpoint())


class TestRootShapes:
    """Adversarial root-set shapes on hand-built heaps."""

    def _heap(self):
        return ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))

    def test_empty_roots(self):
        heap = self._heap()
        for _ in range(10):
            heap.new_object(1)
        heap.set_roots([])
        assert_agreement(heap, heap.checkpoint())

    def test_duplicate_and_null_roots(self):
        heap = self._heap()
        a = heap.new_object(1)
        b = heap.new_object(0)
        a.set_ref(0, b.addr)
        heap.set_roots([a.addr, 0, a.addr, b.addr, a.addr, 0])
        assert_agreement(heap, heap.checkpoint())

    def test_every_object_is_a_root(self):
        heap = self._heap()
        views = [heap.new_object(0) for _ in range(40)]
        heap.set_roots([v.addr for v in views])
        assert_agreement(heap, heap.checkpoint())

    def test_deep_chain(self):
        # A 600-deep singly linked list: exercises traversal depth and the
        # mark queue staying shallow while the frontier is 1 object wide.
        heap = self._heap()
        views = [heap.new_object(1) for _ in range(600)]
        for parent, child in zip(views, views[1:]):
            parent.set_ref(0, child.addr)
        heap.set_roots([views[0].addr])
        assert_agreement(heap, heap.checkpoint())

    def test_cycle(self):
        heap = self._heap()
        a = heap.new_object(1)
        b = heap.new_object(1)
        a.set_ref(0, b.addr)
        b.set_ref(0, a.addr)
        heap.new_object(1)  # garbage
        heap.set_roots([a.addr])
        assert_agreement(heap, heap.checkpoint())

    def test_self_reference(self):
        heap = self._heap()
        a = heap.new_object(1)
        a.set_ref(0, a.addr)
        heap.set_roots([a.addr])
        assert_agreement(heap, heap.checkpoint())

    def test_los_objects(self):
        # Objects too large for any size class land in the LOS; the marker
        # must still mark them (and the tracer walk their many refs).
        heap = self._heap()
        big = heap.new_object(40, payload_words=2000)
        assert heap.los_objects, "expected the large object in the LOS"
        leaves = [heap.new_object(0) for _ in range(40)]
        for i, leaf in enumerate(leaves):
            big.set_ref(i, leaf.addr)
        heap.new_object(0)  # garbage
        heap.set_roots([big.addr])
        assert_agreement(heap, heap.checkpoint())

    def test_mixed_size_classes(self):
        # One object per size-class-ish shape, all reachable off one root.
        heap = self._heap()
        hub_children = []
        for n_refs, payload in [(0, 0), (1, 1), (2, 6), (4, 16), (8, 60),
                                (0, 200), (2, 500)]:
            hub_children.append(heap.new_object(n_refs, payload))
        hub = heap.new_object(len(hub_children))
        for i, child in enumerate(hub_children):
            hub.set_ref(i, child.addr)
        heap.set_roots([hub.addr])
        assert_agreement(heap, heap.checkpoint())


class TestFullCollectionAgreement:
    """Beyond marking: both collectors must free the same cells."""

    @pytest.mark.parametrize("seed", [0, 5])
    def test_freed_cell_counts_match(self, seed):
        heap, _views = make_random_heap(n_objects=300, seed=seed)
        checkpoint = heap.checkpoint()
        sw = SoftwareCollector(heap).collect()
        sw_free = heap.check_free_lists()
        heap.restore(checkpoint)
        hw = GCUnit(heap).collect()
        hw_free = heap.check_free_lists()
        assert sw.objects_marked == hw.objects_marked
        assert sw.cells_freed == hw.cells_freed
        assert sw.cells_live == hw.cells_live
        assert sw_free == hw_free


class TestFastpathIdentity:
    """The zero-allocation fast paths must be timing-invisible.

    Same heap, same collectors, REPRO_FASTPATH on vs off: cycle counts,
    marked sets, and freed-cell accounting must be bit-identical. The env
    switch is captured per-component at construction, so each run builds
    its heap fresh under the patched environment (never through the heap
    cache, whose pickled components embed the build-time setting).
    """

    @staticmethod
    def _full_run(builder):
        heap = builder()
        checkpoint = heap.checkpoint()
        sw = SoftwareCollector(heap).collect()
        marked = frozenset(marked_set(heap))
        heap.restore(checkpoint)
        hw = GCUnit(heap).collect()
        return (
            sw.mark_cycles, sw.sweep_cycles, sw.objects_marked,
            sw.cells_freed, sw.cells_live,
            hw.mark_cycles, hw.sweep_cycles, hw.objects_marked,
            hw.cells_freed, hw.cells_live, marked,
        )

    def _compare(self, monkeypatch, builder):
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        fast = self._full_run(builder)
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow = self._full_run(builder)
        assert fast == slow

    @pytest.mark.parametrize("seed", [2, 9])
    def test_random_graphs(self, monkeypatch, seed):
        self._compare(
            monkeypatch,
            lambda: make_random_heap(n_objects=250, seed=seed)[0],
        )

    def test_profile_heap(self, monkeypatch):
        self._compare(
            monkeypatch,
            lambda: HeapGraphBuilder(
                DACAPO_PROFILES["avrora"], scale=0.01, seed=4
            ).build().heap,
        )

    def test_cross_kernel_each_fastpath_mode(self, monkeypatch):
        """3x2: all kernels agree within each fast-path mode."""
        results = {}
        for fast in ("1", "0"):
            for kernel in ("bucket", "heapq", "vector"):
                monkeypatch.setenv("REPRO_FASTPATH", fast)
                monkeypatch.setenv("REPRO_ENGINE", kernel)
                results[(fast, kernel)] = self._full_run(
                    lambda: make_random_heap(n_objects=180, seed=6)[0]
                )
        assert len(set(results.values())) == 1, results
