"""Block descriptors and the in-memory global block list."""

import pytest

from repro.heap.blocks import BLOCK_BYTES, BlockList
from repro.memory.memimage import PhysicalMemory


@pytest.fixture
def block_list():
    mem = PhysicalMemory(1024 * 1024)
    return BlockList(mem, (4096, 64 * 1024))


class TestBlockList:
    def test_starts_empty(self, block_list):
        assert len(block_list) == 0

    def test_append_and_read(self, block_list):
        desc = block_list.append(0x4000_0000, 64, 128, 0x4000_0000)
        assert desc.index == 0
        back = block_list.read(0)
        assert (back.base_vaddr, back.cell_bytes, back.n_cells) == \
            (0x4000_0000, 64, 128)
        assert back.freelist_head == 0x4000_0000

    def test_descriptors_are_in_memory(self, block_list):
        block_list.append(0x4000_0000, 64, 128, 0)
        addr = block_list.descriptor_addr(0)
        assert block_list.mem.read_word(addr) == 0x4000_0000

    def test_freelist_head_update(self, block_list):
        block_list.append(0x4000_0000, 64, 128, 0x4000_0040)
        block_list.set_freelist_head(0, 0x4000_0080)
        assert block_list.freelist_head(0) == 0x4000_0080
        assert block_list.read(0).freelist_head == 0x4000_0080

    def test_iteration_order(self, block_list):
        for i in range(5):
            block_list.append(0x4000_0000 + i * BLOCK_BYTES, 32, 256, 0)
        bases = [d.base_vaddr for d in block_list]
        assert bases == [0x4000_0000 + i * BLOCK_BYTES for i in range(5)]

    def test_out_of_range_read(self, block_list):
        with pytest.raises(IndexError):
            block_list.read(0)

    def test_region_exhaustion(self):
        mem = PhysicalMemory(1024 * 1024)
        tiny = BlockList(mem, (4096, 4096 + 8 + 2 * 32))  # room for 2
        tiny.append(0x4000_0000, 64, 128, 0)
        tiny.append(0x4000_2000, 64, 128, 0)
        with pytest.raises(MemoryError):
            tiny.append(0x4000_4000, 64, 128, 0)

    def test_cell_vaddr(self, block_list):
        desc = block_list.append(0x4000_0000, 64, 128, 0)
        assert desc.cell_vaddr(2) == 0x4000_0080
        with pytest.raises(IndexError):
            desc.cell_vaddr(128)
