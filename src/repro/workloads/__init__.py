"""Synthetic DaCapo-like workloads.

The paper evaluates on six DaCapo benchmarks (avrora, luindex, lusearch,
pmd, sunflow, xalan) running under JikesRVM with a 200 MB heap (§VI-A).
DaCapo itself cannot run here, so :mod:`repro.workloads` provides synthetic
heap generators parameterized per benchmark by the statistics that drive
the paper's experiments: object counts, reference fan-out, array fraction,
payload sizes, live fraction at collection time, hot-object skew (Fig. 21a)
and allocation behaviour between collections (Fig. 1).

``scale`` shrinks object counts proportionally so simulations finish in
Python-appropriate time; all reported results are unit-vs-CPU ratios, which
are insensitive to scale because both collectors traverse the same heap
through the same memory system.
"""

from repro.workloads.profiles import BenchmarkProfile, DACAPO_PROFILES
from repro.workloads.graphgen import HeapGraphBuilder, BuiltHeap
from repro.workloads.mutator import (
    ConcurrentMutator,
    GCPauseRecord,
    MutatorModel,
    MutatorRunResult,
)
from repro.workloads.latency import (
    LatencyComparison,
    QueryRecord,
    QuerySimulator,
    compare_stw_concurrent,
    latency_cdf,
    percentile_summary,
)

__all__ = [
    "BenchmarkProfile",
    "DACAPO_PROFILES",
    "HeapGraphBuilder",
    "BuiltHeap",
    "MutatorModel",
    "ConcurrentMutator",
    "GCPauseRecord",
    "MutatorRunResult",
    "QuerySimulator",
    "QueryRecord",
    "latency_cdf",
    "percentile_summary",
    "compare_stw_concurrent",
    "LatencyComparison",
]
