"""The traversal unit's mark queue with memory spilling (Fig. 12, §V-C).

The on-chip main queue ``Q`` holds references between tracer and marker.
Because the frontier of a heap traversal can grow arbitrarily, two staging
queues extend it into memory:

* when ``Q`` is full, enqueues divert to ``outQ``; a state machine writes
  outQ entries in 64-byte batches to a dedicated spill region "not shared
  with JikesRVM";
* when ``Q`` drains, entries are read back through ``inQ``;
* if there are elements in outQ and free slots in inQ (and nothing is
  spilled), they are copied directly, saving the memory round trip;
* when outQ reaches a fill level, a throttle signal stops the tracer from
  issuing further memory requests, preventing outQ overflow; prioritizing
  outQ's *writes* over inQ's reads avoids deadlock.

**Address compression** (§V-C): heap references occupy far fewer than 64
bits; an optional codec packs them into 32 bits, doubling the effective
queue size and halving spill traffic (Fig. 19 shows the 2x reduction).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.engine.queues import HWQueue
from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import VIRT_OFFSET


class AddressCodec:
    """Optional 64 -> 32-bit reference compression.

    Heap references are 8-byte aligned and sit above a fixed base, so
    ``(ref - base) >> 3`` fits 32 bits for heaps up to 32 GiB. "Real
    implementations would likely need to preserve at least 48b" (§VI-B) —
    the entry width is a parameter in the area model for that reason.
    """

    def __init__(self, enabled: bool, base: int = VIRT_OFFSET):
        self.enabled = enabled
        self.base = base
        self.entry_bytes = 4 if enabled else 8

    def encode(self, ref: int) -> int:
        if not self.enabled:
            return ref
        if ref < self.base or (ref - self.base) % WORD_BYTES:
            raise ValueError(f"reference {ref:#x} not compressible")
        packed = (ref - self.base) >> 3
        if packed >= 1 << 32:
            raise ValueError(f"reference {ref:#x} exceeds 32-bit packing")
        return packed

    def decode(self, word: int) -> int:
        if not self.enabled:
            return word
        return (word << 3) + self.base


class MarkQueue:
    """Main queue + inQ/outQ staging + spill ring, with throttle signal."""

    #: Entries per 64-byte spill transfer.
    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        spill_port,
        spill_region: Tuple[int, int],
        entries: int = 1024,
        out_entries: int = 32,
        in_entries: int = 32,
        throttle_level: int = 16,
        codec: Optional[AddressCodec] = None,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.mem = mem
        self.port = spill_port
        self.codec = codec if codec is not None else AddressCodec(False)
        self.stats = stats if stats is not None else StatsRegistry()
        self.main = HWQueue(sim, entries, name="markq.main")
        self.out_capacity = out_entries
        self.in_capacity = in_entries
        self.throttle_level = throttle_level
        self._outq: Deque[int] = deque()
        self._inq: Deque[int] = deque()
        # Spill ring state (entry indices; memory writes keep the region
        # contents faithful for debugging, like the paper's heap-snapshot
        # debug path).
        self._spill_base, spill_end = spill_region
        self.spill_capacity = (spill_end - self._spill_base) // self.codec.entry_bytes
        self._spill_head = 0  # next entry to read
        self._spill_tail = 0  # next entry to write
        self._spilled = 0
        self._write_pending = False
        self._write_inflight = 0  # entries inside an in-flight spill write
        self._read_pending = False
        self._unthrottle: Optional[Event] = None
        self.batch_entries = 64 // self.codec.entry_bytes
        # Statistics.
        self.spill_writes = 0
        self.spill_reads = 0
        self.spilled_entries = 0
        self.direct_copies = 0
        self.peak_entries = 0
        self.total_enqueued = 0

    # -- occupancy ----------------------------------------------------------

    @property
    def total_entries(self) -> int:
        """Entries anywhere in the queue system (on-chip + spilled)."""
        return (
            self.main.occupancy + len(self._outq) + len(self._inq)
            + self._spilled + self._write_inflight
        )

    @property
    def is_drained(self) -> bool:
        return self.total_entries == 0 and not self._write_pending \
            and not self._read_pending

    @property
    def throttled(self) -> bool:
        """The back-pressure signal sampled by the tracer (§V-C)."""
        return len(self._outq) >= self.throttle_level

    # -- producer side -------------------------------------------------------

    def enqueue(self, ref: int) -> None:
        """Add a reference (non-blocking; excess goes to outQ/spill)."""
        self.total_enqueued += 1
        stats = self.stats
        if stats.hwfaults is not None or stats.watchdog is not None:
            ref = self._supervised_enqueue(ref)
            if ref is None:
                return
        if (
            not self._outq
            and not self._inq
            and self._spilled == 0
            and self.main.try_put(ref)
        ):
            pass
        else:
            self._outq.append(ref)
            self._balance()
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "queue", "markq", self.total_entries))
        if self.total_entries > self.peak_entries:
            self.peak_entries = self.total_entries
        if len(self._outq) > self.out_capacity:
            # The throttle should prevent this; reaching here means a unit
            # ignored the signal for too long.
            self.stats.inc("markq.outq_overflow")

    # -- consumer side ----------------------------------------------------------

    def _supervised_enqueue(self, ref: int):
        """Heartbeat + enqueue-side fault hooks (``drop``/``corrupt``).

        Returns the (possibly corrupted) reference to enqueue, or ``None``
        when the entry is lost — the unit's outstanding-reference count
        keeps waiting for it, which is how a dropped queue entry wedges a
        real traversal.
        """
        now = self.sim.now
        wd = self.stats.watchdog
        if wd is not None:
            wd.beat("markqueue", now)
        plane = self.stats.hwfaults
        if plane is None:
            return ref
        fault = plane.fire("markqueue", now, kinds=("drop", "corrupt"))
        if fault is None:
            return ref
        if fault.kind == "drop":
            return None
        return plane.corrupt_value(ref)

    def dequeue(self):
        """Yieldable: produces the next reference (from Q, refilled from
        inQ/outQ/spill as needed)."""
        plane = self.stats.hwfaults
        if plane is not None:
            fault = plane.fire("markqueue", self.sim.now,
                               kinds=("stuck", "delay"))
            if fault is not None:
                if fault.kind == "delay":
                    yield fault.delay_cycles
                else:
                    # Stuck consumer port: park on an event that never
                    # triggers (fire keeps returning the latched fault, so
                    # every later dequeue wedges the same way).
                    yield Event(self.sim, name="markq.stuck")
        self._balance()
        item = yield self.main.get()
        self._balance()
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "queue", "markq", self.total_entries))
        return item

    # -- the spill state machine ---------------------------------------------------

    def _balance(self) -> None:
        """Move entries toward the main queue and start spill transfers."""
        moved = True
        while moved:
            moved = False
            # inQ -> main.
            while self._inq and not self.main.is_full:
                self.main.put_nowait(self._inq.popleft())
                moved = True
            # Direct paths only when nothing is spilled (keeps entries from
            # overtaking the ones parked in memory... order doesn't matter
            # for correctness, but it keeps the spill ring FIFO and simple).
            if self._spilled == 0 and not self._write_pending \
                    and not self._read_pending:
                while self._outq and not self.main.is_full:
                    self.main.put_nowait(self._outq.popleft())
                    moved = True
                while self._outq and len(self._inq) < self.in_capacity \
                        and self.main.is_full:
                    self._inq.append(self._outq.popleft())
                    self.direct_copies += 1
                    moved = True
        # Spill out: memory writes take priority over reads (deadlock rule).
        # Prefer full 64-byte batches; partial batches are written only when
        # a non-empty outQ is blocking the refill path (the spill read
        # requires outQ to be empty), so entries can never strand.
        if not self._write_pending and self._outq:
            full_batch = len(self._outq) >= self.batch_entries
            # Flush a partial batch only when the main queue is running low
            # and refill reads are blocked behind a non-empty outQ.
            unblock_refill = (
                self._spilled > 0
                and self.main.occupancy <= self.main.capacity // 4
            )
            if (full_batch and (self.main.is_full or self._spilled > 0)) \
                    or unblock_refill:
                self._start_spill_write()
        # Spill in: only when outQ is empty (§V-C) and inQ has space.
        if (
            not self._read_pending
            and self._spilled > 0
            and not self._outq
            and not self._write_pending
            and len(self._inq) + self.batch_entries <= self.in_capacity
        ):
            self._start_spill_read()
        self._release_throttle()

    def _entry_paddr(self, index: int) -> int:
        offset = (index % self.spill_capacity) * self.codec.entry_bytes
        return self._spill_base + offset

    def _start_spill_write(self) -> None:
        count = min(len(self._outq), self.batch_entries)
        if count == 0:
            return
        if self._spilled + count > self.spill_capacity:
            raise MemoryError(
                "spill region exhausted; the driver's static 4 MB allocation "
                "is too small for this heap (§V-E)"
            )
        entries = [self._outq.popleft() for _ in range(count)]
        # Functional: pack entries into the ring (two per word if 32-bit).
        for i, ref in enumerate(entries):
            encoded = self.codec.encode(ref)
            paddr = self._entry_paddr(self._spill_tail + i)
            word_addr = paddr - (paddr % WORD_BYTES)
            if self.codec.entry_bytes == 4:
                word = self.mem.read_word(word_addr)
                if paddr % WORD_BYTES:
                    word = (word & 0xFFFFFFFF) | (encoded << 32)
                else:
                    word = (word & ~0xFFFFFFFF) | encoded
                self.mem.write_word(word_addr, word)
            else:
                self.mem.write_word(word_addr, encoded)
        start_addr = self._entry_paddr(self._spill_tail)
        nbytes = count * self.codec.entry_bytes
        self._spill_tail += count
        self._write_pending = True
        self._write_inflight = count
        self.spill_writes += 1
        self.spilled_entries += count
        self.stats.inc("markq.spill_write_bytes", nbytes)
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "spill", "write", count, nbytes))
        aligned = self._aligned_span(start_addr, nbytes)
        self.port.write(aligned[0], aligned[1]).add_callback(
            lambda _v, c=count: self._finish_spill_write(c)
        )

    def _finish_spill_write(self, count: int) -> None:
        self._spilled += count
        self._write_inflight = 0
        self._write_pending = False
        self._release_throttle()
        self._balance()

    def _start_spill_read(self) -> None:
        count = min(self._spilled, self.batch_entries)
        start_addr = self._entry_paddr(self._spill_head)
        nbytes = count * self.codec.entry_bytes
        refs = []
        for i in range(count):
            paddr = self._entry_paddr(self._spill_head + i)
            word_addr = paddr - (paddr % WORD_BYTES)
            word = self.mem.read_word(word_addr)
            if self.codec.entry_bytes == 4:
                encoded = (word >> 32) if paddr % WORD_BYTES else word & 0xFFFFFFFF
            else:
                encoded = word
            refs.append(self.codec.decode(encoded))
        self._spill_head += count
        self._spilled -= count
        self._read_pending = True
        self.spill_reads += 1
        self.stats.inc("markq.spill_read_bytes", nbytes)
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "spill", "read", count, nbytes))
        aligned = self._aligned_span(start_addr, nbytes)
        self.port.read(aligned[0], aligned[1]).add_callback(
            lambda _v, r=tuple(refs): self._finish_spill_read(r)
        )

    def _finish_spill_read(self, refs: Tuple[int, ...]) -> None:
        self._inq.extend(refs)
        self._read_pending = False
        self._balance()

    @staticmethod
    def _aligned_span(addr: int, nbytes: int) -> Tuple[int, int]:
        """Round a spill transfer to an aligned power-of-two 8..64B size."""
        size = 8
        while size < nbytes and size < 64:
            size *= 2
        aligned_addr = addr - (addr % size)
        return aligned_addr, size

    # -- throttle handshake -----------------------------------------------------

    def wait_if_throttled(self):
        """Yieldable: blocks the caller while the throttle signal is high."""
        while self.throttled:
            if self._unthrottle is None or self._unthrottle.triggered:
                self._unthrottle = self.sim.event(name="markq.unthrottle")
            yield self._unthrottle

    def _release_throttle(self) -> None:
        if not self.throttled and self._unthrottle is not None \
                and not self._unthrottle.triggered:
            self._unthrottle.trigger()
