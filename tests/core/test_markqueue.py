"""Mark queue with spilling and address compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.markqueue import AddressCodec, MarkQueue
from repro.engine.simulator import Simulator
from repro.memory.config import MemorySystemConfig
from repro.memory.interconnect import build_memory_system
from repro.memory.paging import VIRT_OFFSET


def make_queue(entries=8, compression=False, out_entries=48, in_entries=48,
               throttle=24):
    sim = Simulator()
    ms = build_memory_system(sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
    mq = MarkQueue(
        sim, ms.phys, ms.port("queue"), ms.address_map.spill,
        entries=entries, out_entries=out_entries, in_entries=in_entries,
        throttle_level=throttle, codec=AddressCodec(compression),
        stats=ms.stats,
    )
    return sim, mq


def drain_all(sim, mq, expected_count):
    """Dequeue everything, pumping the simulator as needed."""
    out = []

    def consumer():
        for _ in range(expected_count):
            item = yield from mq.dequeue()
            out.append(item)

    proc = sim.process(consumer())
    sim.run_until(proc)
    return out


class TestCodec:
    def test_disabled_is_identity(self):
        codec = AddressCodec(False)
        assert codec.encode(12345) == 12345
        assert codec.entry_bytes == 8

    def test_roundtrip(self):
        codec = AddressCodec(True)
        ref = VIRT_OFFSET + 0x1234 * 8
        assert codec.decode(codec.encode(ref)) == ref
        assert codec.entry_bytes == 4

    def test_uncompressible_rejected(self):
        codec = AddressCodec(True)
        with pytest.raises(ValueError):
            codec.encode(VIRT_OFFSET - 8)  # below base
        with pytest.raises(ValueError):
            codec.encode(VIRT_OFFSET + 4)  # unaligned

    @given(offsets=st.integers(0, (1 << 32) - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, offsets):
        codec = AddressCodec(True)
        ref = VIRT_OFFSET + offsets * 8
        assert codec.decode(codec.encode(ref)) == ref


class TestNoSpill:
    def test_fifo_within_capacity(self):
        sim, mq = make_queue(entries=16)
        refs = [VIRT_OFFSET + i * 8 for i in range(10)]
        for r in refs:
            mq.enqueue(r)
        assert drain_all(sim, mq, 10) == refs
        assert mq.spill_writes == 0

    def test_dequeue_blocks_until_enqueue(self):
        sim, mq = make_queue()
        out = []

        def consumer():
            item = yield from mq.dequeue()
            out.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(100, lambda: mq.enqueue(VIRT_OFFSET))
        sim.run()
        assert out == [(100, VIRT_OFFSET)]


class TestSpilling:
    @pytest.mark.parametrize("compression", [False, True])
    def test_spill_preserves_multiset(self, compression):
        sim, mq = make_queue(entries=4, compression=compression)
        refs = [VIRT_OFFSET + i * 8 for i in range(500)]
        for r in refs:
            mq.enqueue(r)
        sim.run()  # let spill writes land
        assert mq.spilled_entries > 0
        out = drain_all(sim, mq, 500)
        assert sorted(out) == sorted(refs), "no loss, no duplication"
        assert mq.is_drained

    def test_compression_halves_spill_bytes(self):
        refs = [VIRT_OFFSET + i * 8 for i in range(400)]
        totals = {}
        for compression in (False, True):
            sim, mq = make_queue(entries=4, compression=compression)
            for r in refs:
                mq.enqueue(r)
            sim.run()
            drain_all(sim, mq, len(refs))
            totals[compression] = mq.stats.get("markq.spill_write_bytes")
        assert totals[True] <= 0.55 * totals[False]

    def test_spill_ring_contents_are_real(self):
        """Spilled entries are actually written to the spill region."""
        sim, mq = make_queue(entries=2)
        refs = [VIRT_OFFSET + i * 8 for i in range(64)]
        for r in refs:
            mq.enqueue(r)
        sim.run()
        assert mq.spilled_entries > 0
        base = mq._spill_base
        stored = mq.mem.read_word(base)
        assert stored in refs

    def test_peak_entries_tracked(self):
        sim, mq = make_queue(entries=4)
        for i in range(100):
            mq.enqueue(VIRT_OFFSET + i * 8)
        assert mq.peak_entries == 100

    def test_throttle_signal(self):
        sim, mq = make_queue(entries=2, out_entries=48, throttle=8)
        # Fill every on-chip buffer (main 2 + inQ 48 via direct copy), let
        # one spill write go in flight, then pile more into outQ past the
        # throttle level (the write has not completed, so outQ can't drain).
        for i in range(80):
            mq.enqueue(VIRT_OFFSET + i * 8)
        assert mq.throttled
        resumed = []

        def producer():
            yield from mq.wait_if_throttled()
            resumed.append(sim.now)

        sim.process(producer())
        sim.run()  # spill writes drain outQ, releasing the throttle
        assert resumed and not mq.throttled

    def test_interleaved_producer_consumer(self):
        sim, mq = make_queue(entries=8)
        n = 300
        out = []

        def producer():
            for i in range(n):
                mq.enqueue(VIRT_OFFSET + i * 8)
                yield 2

        def consumer():
            for _ in range(n):
                item = yield from mq.dequeue()
                out.append(item)
                yield 5

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run_until(proc)
        assert sorted(out) == [VIRT_OFFSET + i * 8 for i in range(n)]
