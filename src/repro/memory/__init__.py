"""Memory-system substrate: DRAM, caches, TLBs, page tables, interconnect.

The paper evaluates the GC unit against two memory models (Table I and
§VI-A):

* a DDR3-2000 single-rank model with an FR-FCFS memory-access scheduler,
  open-page policy, and 16 read / 8 write requests in flight
  (:class:`repro.memory.dram.DRAMController`), and
* an idealized latency-bandwidth pipe with 1-cycle latency and 8 GB/s
  bandwidth (:class:`repro.memory.pipe.LatencyBandwidthPipe`) used for the
  "potential performance" study (Fig. 17).

Functional state (the heap image, page tables, free lists) lives in
:class:`repro.memory.memimage.PhysicalMemory`; the timing models simulate
*when* each access completes, attributed per requester for the paper's
request-breakdown figures (Fig. 18).
"""

from repro.memory.config import (
    AddressMap,
    CacheConfig,
    DRAMConfig,
    MemorySystemConfig,
    PipeConfig,
    TLBConfig,
)
from repro.memory.memimage import PhysicalMemory
from repro.memory.request import MemRequest, AccessKind
from repro.memory.dram import DRAMController
from repro.memory.pipe import LatencyBandwidthPipe
from repro.memory.cache import Cache
from repro.memory.tlb import TLB
from repro.memory.paging import PageTable, VIRT_OFFSET, PAGE_SIZE
from repro.memory.ptw import PageTableWalker
from repro.memory.interconnect import TileLinkPort, MemorySystem, build_memory_system

__all__ = [
    "AddressMap",
    "CacheConfig",
    "DRAMConfig",
    "MemorySystemConfig",
    "PipeConfig",
    "TLBConfig",
    "PhysicalMemory",
    "MemRequest",
    "AccessKind",
    "DRAMController",
    "LatencyBandwidthPipe",
    "Cache",
    "TLB",
    "PageTable",
    "PageTableWalker",
    "TileLinkPort",
    "MemorySystem",
    "build_memory_system",
    "VIRT_OFFSET",
    "PAGE_SIZE",
]
