"""Discrete-event simulation kernel.

The kernel is deliberately small: an event-driven :class:`Simulator` with an
integer cycle clock, generator-based :class:`Process` coroutines (in the style
of simpy, but specialized for hardware modeling), bounded hardware FIFO
:class:`HWQueue` objects with backpressure, and statistics collectors used by
the evaluation harness.

Every hardware unit in :mod:`repro.core` and every memory-system component in
:mod:`repro.memory` is built on these primitives.
"""

from repro.engine.simulator import Simulator, Event, Process, Delay, SimulationError
from repro.engine.queues import HWQueue, QueueFullError, QueueEmptyError
from repro.engine.stats import (
    BandwidthTracker,
    Counter,
    Histogram,
    IntervalTracker,
    StatsRegistry,
    TimeSeries,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Delay",
    "SimulationError",
    "HWQueue",
    "QueueFullError",
    "QueueEmptyError",
    "Counter",
    "Histogram",
    "TimeSeries",
    "IntervalTracker",
    "BandwidthTracker",
    "StatsRegistry",
]
