"""Figure 15: mark/sweep speedups on the DDR3 model (the headline result)."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig15_mark_and_sweep_speedups(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig15, scale=bench_scale)
    geomean_row = result.rows[-1]
    mark_x, sweep_x = geomean_row[3], geomean_row[6]
    # Paper: 4.2x mark, 1.9x sweep (2 sweepers). Accept the band around it.
    assert 3.0 < mark_x < 5.5, f"mark speedup {mark_x} out of band"
    assert 1.4 < sweep_x < 3.2, f"sweep speedup {sweep_x} out of band"
    # Every benchmark individually shows the win.
    for row in result.rows[:-1]:
        assert row[3] > 2.0, f"{row[0]} mark speedup too low"
        assert row[6] > 1.2, f"{row[0]} sweep speedup too low"
