"""Blocks and the global block list consumed by the reclamation unit.

The MarkSweep space is divided into fixed-size blocks, each assigned a size
class (§V-A). The reclamation unit iterates "through a list of blocks"
(§IV-B); we materialize that list in its own physical region so the unit's
block-list reader performs real memory traffic.

Block-list layout (all 64-bit words):

* word 0 — number of descriptors.
* then, per block, a 4-word descriptor:
  ``[base_vaddr, cell_bytes, n_cells, freelist_head_vaddr]``.

The sweeper updates ``freelist_head_vaddr`` after reclaiming a block; the
allocator reads it back when it needs cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory

BLOCK_BYTES = 8 * 1024
DESCRIPTOR_WORDS = 4


@dataclass
class BlockDescriptor:
    """In-Python view of one block-list entry."""

    index: int
    base_vaddr: int
    cell_bytes: int
    n_cells: int
    freelist_head: int  # virtual address of the first free cell, 0 if none

    @property
    def size_bytes(self) -> int:
        return self.cell_bytes * self.n_cells

    def cell_vaddr(self, i: int) -> int:
        if not 0 <= i < self.n_cells:
            raise IndexError(f"cell {i} out of {self.n_cells}")
        return self.base_vaddr + i * self.cell_bytes


class BlockList:
    """The global block-descriptor array, resident in physical memory."""

    def __init__(self, mem: PhysicalMemory, region: Tuple[int, int]):
        self.mem = mem
        self.base, self.end = region
        self.mem.write_word(self.base, 0)

    @property
    def count(self) -> int:
        return self.mem.read_word(self.base)

    def _descriptor_addr(self, index: int) -> int:
        addr = self.base + WORD_BYTES * (1 + index * DESCRIPTOR_WORDS)
        if addr + DESCRIPTOR_WORDS * WORD_BYTES > self.end:
            raise MemoryError("block-list region exhausted")
        return addr

    def append(self, base_vaddr: int, cell_bytes: int, n_cells: int,
               freelist_head: int) -> BlockDescriptor:
        index = self.count
        addr = self._descriptor_addr(index)
        self.mem.write_words(
            addr, [base_vaddr, cell_bytes, n_cells, freelist_head]
        )
        self.mem.write_word(self.base, index + 1)
        return BlockDescriptor(index, base_vaddr, cell_bytes, n_cells, freelist_head)

    def read(self, index: int) -> BlockDescriptor:
        if not 0 <= index < self.count:
            raise IndexError(f"block {index} out of {self.count}")
        addr = self._descriptor_addr(index)
        base_vaddr, cell_bytes, n_cells, head = self.mem.read_words(addr, 4)
        return BlockDescriptor(index, base_vaddr, cell_bytes, n_cells, head)

    def descriptor_addr(self, index: int) -> int:
        """Physical address of a descriptor — the sweep reads these."""
        if not 0 <= index < self.count:
            raise IndexError(f"block {index} out of {self.count}")
        return self._descriptor_addr(index)

    def set_freelist_head(self, index: int, head_vaddr: int) -> None:
        addr = self._descriptor_addr(index) + 3 * WORD_BYTES
        self.mem.write_word(addr, head_vaddr)

    def freelist_head(self, index: int) -> int:
        addr = self._descriptor_addr(index) + 3 * WORD_BYTES
        return self.mem.read_word(addr)

    def __iter__(self) -> Iterator[BlockDescriptor]:
        for index in range(self.count):
            yield self.read(index)

    def __len__(self) -> int:
        return self.count
