"""MMTk-style spaces (§V-A).

Jikes's MarkSweep plan "consists of 9 spaces, including large object space,
code space and immortal space. Our collector traces all of these spaces, but
only reclaims the main MarkSweep space." We model the four that matter for
the traversal and reclamation behaviour (MarkSweep, LargeObject, Immortal,
Code); the remaining Jikes spaces (boot image, meta etc.) behave like
Immortal for GC purposes and are folded into it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.memory.config import WORD_BYTES
from repro.memory.paging import PAGE_SIZE


class SpaceKind(enum.Enum):
    MARKSWEEP = "marksweep"  # segregated free lists; reclaimed by the unit
    LARGE_OBJECT = "los"  # page-granular; traced, reclaimed in software
    IMMORTAL = "immortal"  # traced, never reclaimed
    CODE = "code"  # traced, never reclaimed (managed by Jikes)


@dataclass
class Space:
    """A contiguous physical range with a bump cursor for non-MS spaces."""

    name: str
    kind: SpaceKind
    pstart: int
    pend: int
    cursor: int = field(default=0)

    def __post_init__(self) -> None:
        if self.cursor == 0:
            self.cursor = self.pstart
        if self.pstart % WORD_BYTES or self.pend % WORD_BYTES:
            raise ValueError("space bounds must be word-aligned")
        if self.pend <= self.pstart:
            raise ValueError(f"empty space {self.name}")

    @property
    def size_bytes(self) -> int:
        return self.pend - self.pstart

    @property
    def bytes_used(self) -> int:
        return self.cursor - self.pstart

    def contains(self, paddr: int) -> bool:
        return self.pstart <= paddr < self.pend

    def bump_alloc(self, nbytes: int, align: int = WORD_BYTES) -> int:
        """Bump-pointer allocation (LOS/immortal/code); returns paddr."""
        start = self.cursor
        if start % align:
            start += align - start % align
        if start + nbytes > self.pend:
            raise MemoryError(f"space {self.name} exhausted")
        self.cursor = start + nbytes
        return start


class SpacePlan:
    """Carves the heap region into spaces, MMTk-plan style.

    Fractions reflect typical DaCapo-on-Jikes usage: most allocation lands
    in the MarkSweep space ("which contains most freshly allocated
    objects", §V-A).
    """

    def __init__(
        self,
        heap_range: Tuple[int, int],
        immortal_frac: float = 0.04,
        code_frac: float = 0.03,
        los_frac: float = 0.13,
    ):
        pstart, pend = heap_range
        total = pend - pstart
        if immortal_frac + code_frac + los_frac >= 0.9:
            raise ValueError("non-MarkSweep spaces would dwarf the MS space")

        def carve(cursor: int, frac: float) -> Tuple[int, int]:
            size = int(total * frac) // PAGE_SIZE * PAGE_SIZE
            return cursor, cursor + size

        cursor = pstart
        if cursor % PAGE_SIZE:
            cursor += PAGE_SIZE - cursor % PAGE_SIZE
        imm_start, cursor = carve(cursor, immortal_frac)
        code_start, cursor = carve(cursor, code_frac)
        los_start, cursor = carve(cursor, los_frac)
        self.immortal = Space("immortal", SpaceKind.IMMORTAL, imm_start, code_start)
        self.code = Space("code", SpaceKind.CODE, code_start, los_start)
        self.los = Space("los", SpaceKind.LARGE_OBJECT, los_start, cursor)
        self.marksweep = Space("marksweep", SpaceKind.MARKSWEEP, cursor, pend)
        self._all = [self.immortal, self.code, self.los, self.marksweep]

    def __iter__(self):
        return iter(self._all)

    def by_name(self, name: str) -> Space:
        for space in self._all:
            if space.name == name:
                return space
        raise KeyError(name)

    def space_for(self, paddr: int) -> Optional[Space]:
        for space in self._all:
            if space.contains(paddr):
                return space
        return None

    def summary(self) -> Dict[str, int]:
        return {space.name: space.size_bytes for space in self._all}
