"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "avrora" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "fig22"]) == 0
        out = capsys.readouterr().out
        assert "unit/Rocket ratio" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "avrora", "--scale", "0.008"]) == 0
        out = capsys.readouterr().out
        assert "overall speedup" in out

    def test_compare_unknown_benchmark(self, capsys):
        assert main(["compare", "specjbb"]) == 2

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "Mark Q." in capsys.readouterr().out

    def test_run_with_scale_and_seed(self, capsys):
        assert main(["run", "abl_barriers"]) == 0
