"""Superpage support (§VII) and walker concurrency (§VI-A future work)."""

import pytest

from repro.engine.simulator import Simulator
from repro.memory.config import MemorySystemConfig, TLBConfig
from repro.memory.interconnect import build_memory_system
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import (
    PAGE_SIZE,
    SUPERPAGE_SIZE,
    PageTable,
    VIRT_OFFSET,
)
from repro.memory.ptw import PageTableWalker
from repro.memory.tlb import TLB, SharedL2TLB


def make_table():
    mem = PhysicalMemory(16 * 1024 * 1024)
    return mem, PageTable(mem, (4096, 2 * 1024 * 1024))


class TestSuperpageMapping:
    def test_map_and_translate(self):
        _mem, table = make_table()
        table.map_superpage(VIRT_OFFSET, 0x40_0000)
        assert table.translate(VIRT_OFFSET) == 0x40_0000
        # Any 4 KiB page within the 2 MiB region translates.
        assert table.translate(VIRT_OFFSET + 17 * PAGE_SIZE + 8) == \
            0x40_0000 + 17 * PAGE_SIZE + 8
        assert table.is_superpage(VIRT_OFFSET + PAGE_SIZE)

    def test_alignment_enforced(self):
        _mem, table = make_table()
        with pytest.raises(ValueError):
            table.map_superpage(VIRT_OFFSET + PAGE_SIZE, 0)

    def test_walk_is_one_level_shorter(self):
        _mem, table = make_table()
        table.map_superpage(VIRT_OFFSET, 0x40_0000)
        table.map_page(VIRT_OFFSET + SUPERPAGE_SIZE, 0x80_0000)
        assert len(table.walk_addresses(VIRT_OFFSET)) == 2
        assert len(table.walk_addresses(VIRT_OFFSET + SUPERPAGE_SIZE)) == 3

    def test_conflict_with_existing_4k_mappings(self):
        _mem, table = make_table()
        table.map_page(VIRT_OFFSET, 0x40_0000)
        with pytest.raises(ValueError):
            table.map_superpage(VIRT_OFFSET, 0x80_0000)

    def test_map_linear_mixes_sizes(self):
        _mem, table = make_table()
        # Start misaligned by one page: ragged head uses 4 KiB mappings.
        start = VIRT_OFFSET + SUPERPAGE_SIZE - PAGE_SIZE
        table.map_linear(start, SUPERPAGE_SIZE - PAGE_SIZE,
                         SUPERPAGE_SIZE + 2 * PAGE_SIZE, superpages=True)
        assert not table.is_superpage(start)
        assert table.is_superpage(start + PAGE_SIZE)
        for off in (0, PAGE_SIZE, SUPERPAGE_SIZE, SUPERPAGE_SIZE + PAGE_SIZE):
            assert table.translate(start + off) == \
                SUPERPAGE_SIZE - PAGE_SIZE + off

    def test_memsys_superpage_config(self):
        sim = Simulator()
        ms = build_memory_system(
            sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024,
                                    use_superpages=True))
        assert ms.page_table.is_superpage(VIRT_OFFSET)
        heap_start = ms.address_map.heap[0]
        assert ms.virt_to_phys(ms.to_virtual(heap_start)) == heap_start


class TestSuperpageTLB:
    def test_one_entry_covers_the_whole_superpage(self):
        sim = Simulator()
        ms = build_memory_system(
            sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024,
                                    use_superpages=True))
        ptw = PageTableWalker(sim, ms.page_table,
                              ms.port("ptw", validate=False), stats=ms.stats)
        tlb = TLB(sim, TLBConfig(entries=2), ptw, stats=ms.stats)
        tlb.translate(VIRT_OFFSET)
        sim.run()
        # 500 different 4 KiB pages of the same superpage: all TLB hits.
        for page in range(1, 500, 37):
            event = tlb.translate(VIRT_OFFSET + page * PAGE_SIZE)
            assert event.triggered
        assert ms.stats.get("tlb.tlb.misses") == 1


class TestConcurrentWalker:
    def test_concurrent_walks_overlap(self):
        def run(max_concurrent):
            sim = Simulator()
            ms = build_memory_system(
                sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
            ptw = PageTableWalker(sim, ms.page_table,
                                  ms.port("ptw", validate=False),
                                  stats=ms.stats,
                                  max_concurrent=max_concurrent)
            done = []
            for i in range(6):
                ptw.walk(VIRT_OFFSET + i * PAGE_SIZE).add_callback(
                    lambda _p: done.append(sim.now))
            sim.run()
            assert len(done) == 6
            return sim.now

        assert run(4) < run(1)

    def test_validation(self):
        sim = Simulator()
        ms = build_memory_system(
            sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
        with pytest.raises(ValueError):
            PageTableWalker(sim, ms.page_table, ms.port("p", validate=False),
                            max_concurrent=0)
