"""Set-associative write-back cache with MSHRs.

Used for the CPU's L1/L2 hierarchy (Table I), for the PTW's 8 KB backing
cache, and for the *shared-cache* traversal-unit configuration that the
paper evaluates and rejects in the cache-partitioning study (Fig. 18a).

Timing-only: functional data lives in :class:`~repro.memory.memimage.
PhysicalMemory`. A miss allocates an MSHR, fetches the full line from the
next level, and wakes all waiters coalesced onto that line; dirty victims
generate posted write-backs. When all MSHRs are busy, further misses queue
(this is what limits a CPU's memory-level parallelism, §IV-A).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.engine.simulator import Completion, Event, Simulator, fastpath_enabled
from repro.engine.stats import StatsRegistry
from repro.memory.config import CacheConfig
from repro.memory.request import AccessKind, MemRequest


class Cache:
    """One cache level. ``submit`` has the same shape as the DRAM model's."""

    def __init__(
        self,
        sim: Simulator,
        config: CacheConfig,
        lower,
        name: str = "cache",
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.lower = lower  # anything with submit(MemRequest) -> Event
        self.name = name
        self.stats = stats if stats is not None else StatsRegistry()
        self._n_sets = config.n_sets
        # Per-set LRU: OrderedDict mapping line_addr -> dirty flag; most
        # recently used at the end.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._n_sets)
        ]
        # line_addr -> (pending_dirty, [events to trigger on fill])
        self._mshrs: Dict[int, Tuple[bool, List[Event]]] = {}
        self._mshr_queue: Deque[Tuple[MemRequest, Event]] = deque()
        # Precomputed hot-path counter boxes (building f-strings and doing
        # dict lookups per access is measurable at millions of simulated
        # operations). Requests are counted per source; the box for each
        # source is cached on first sight.
        self._k_requests = f"cache.{name}.requests."
        self._c_requests: Dict[str, object] = {}
        self._c_hits = self.stats.counter(f"cache.{name}.hits")
        self._c_misses = self.stats.counter(f"cache.{name}.misses")
        self._c_coalesced = self.stats.counter(f"cache.{name}.mshr_coalesced")
        self._c_stalls = self.stats.counter(f"cache.{name}.mshr_stalls")
        self._c_writebacks = self.stats.counter(f"cache.{name}.writebacks")
        # Precomputed event names and hot config fields (building f-strings
        # and chasing config attributes per access is measurable at millions
        # of simulated operations).
        self._ev_access = f"{name}.access"
        self._line_bytes = config.line_bytes
        self._hit_latency = config.hit_latency
        self._fast = fastpath_enabled()

    # -- lookup helpers ------------------------------------------------------

    def _line_addr(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_bytes) % self._n_sets

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is currently resident."""
        line = self._line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def warm(self, addr: int, dirty: bool = False) -> None:
        """Install a line without timing (used to pre-warm in tests)."""
        self._install(self._line_addr(addr), dirty, source="warm")

    # -- main interface --------------------------------------------------------

    def submit(self, req: MemRequest):
        """Access the cache; the returned handle completes at finish time.

        Requests spanning multiple lines are split; the event triggers when
        every constituent line access has completed.
        """
        counter = self._c_requests.get(req.source)
        if counter is None:
            counter = self._c_requests[req.source] = self.stats.counter(
                self._k_requests + req.source)
        counter.value += 1
        line_bytes = self._line_bytes
        addr = req.addr
        first = addr - (addr % line_bytes)
        last_addr = addr + req.size - 1
        last = last_addr - (last_addr % line_bytes)
        if first == last:
            return self._access_line(first, req)
        done = self.sim.event(name=f"{self.name}.multi")
        lines = list(range(first, last + 1, line_bytes))
        remaining = [len(lines)]

        def _one_done(_value) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                done.trigger(self.sim.now)

        for line in lines:
            sub = MemRequest(
                addr=line, size=self.config.line_bytes, kind=req.kind,
                source=req.source,
            )
            self._access_line(line, sub).add_callback(_one_done)
        return done

    def _access_line(self, line: int, req: MemRequest):
        cache_set = self._sets[(line // self._line_bytes) % self._n_sets]
        wants_dirty = req.kind is not AccessKind.READ
        if line in cache_set:
            cache_set.move_to_end(line)
            if wants_dirty:
                cache_set[line] = True
            self._c_hits.value += 1
            trace = self.stats.trace
            if trace is not None:
                trace.events.append((self.sim.now, "cache", self.name, "hit"))
            if self._fast:
                # Hit latency is fixed and known now: hand back a resolved
                # Completion instead of a deferred Event trigger. The
                # simulated completion time is identical.
                return Completion(self.sim, self.sim.now + self._hit_latency)
            event = Event(self.sim, name=self._ev_access)
            self.sim.schedule(self._hit_latency, event.trigger, None)
            return event
        event = Event(self.sim, name=self._ev_access)
        self._c_misses.value += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "cache", self.name, "miss"))
        if line in self._mshrs:
            dirty, waiters = self._mshrs[line]
            self._mshrs[line] = (dirty or wants_dirty, waiters)
            waiters.append(event)
            self._c_coalesced.value += 1
            return event
        if len(self._mshrs) >= self.config.mshrs:
            self._mshr_queue.append((req, event))
            self._c_stalls.value += 1
            return event
        self._start_fill(line, wants_dirty, event, req.source)
        return event

    # -- miss handling ---------------------------------------------------------

    def _start_fill(self, line: int, dirty: bool, event: Event, source: str) -> None:
        self._mshrs[line] = (dirty, [event])
        fill = MemRequest(
            addr=line, size=self.config.line_bytes, kind=AccessKind.READ,
            source=source,
        )
        self.lower.submit(fill).add_callback(lambda _v, l=line: self._finish_fill(l))

    def _finish_fill(self, line: int) -> None:
        dirty, waiters = self._mshrs.pop(line)
        self._install(line, dirty, source=f"{self.name}.wb")
        for waiter in waiters:
            self.sim.schedule(self.config.hit_latency, waiter.trigger, None)
        # Admit queued misses now that an MSHR is free.
        while self._mshr_queue and len(self._mshrs) < self.config.mshrs:
            req, event = self._mshr_queue.popleft()
            retry_line = self._line_addr(req.addr)
            cache_set = self._sets[self._set_index(retry_line)]
            wants_dirty = req.kind in (AccessKind.WRITE, AccessKind.AMO)
            if retry_line in cache_set:
                cache_set.move_to_end(retry_line)
                if wants_dirty:
                    cache_set[retry_line] = True
                self.sim.schedule(self.config.hit_latency, event.trigger, None)
            elif retry_line in self._mshrs:
                pending_dirty, waiters2 = self._mshrs[retry_line]
                self._mshrs[retry_line] = (pending_dirty or wants_dirty, waiters2)
                waiters2.append(event)
            else:
                self._start_fill(retry_line, wants_dirty, event, req.source)

    def _install(self, line: int, dirty: bool, source: str) -> None:
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            cache_set.move_to_end(line)
            cache_set[line] = cache_set[line] or dirty
            return
        if len(cache_set) >= self.config.ways:
            victim, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self._c_writebacks.value += 1
                wb = MemRequest(
                    addr=victim, size=self.config.line_bytes,
                    kind=AccessKind.WRITE, source=source,
                )
                self.lower.submit(wb)  # posted; nobody waits
        cache_set[line] = dirty

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> int:
        """Drop all lines, issuing (untimed) write-backs; returns dirty count."""
        dirty_count = 0
        for cache_set in self._sets:
            for line, dirty in cache_set.items():
                if dirty:
                    dirty_count += 1
                    self.lower.submit(
                        MemRequest(
                            addr=line, size=self.config.line_bytes,
                            kind=AccessKind.WRITE, source=f"{self.name}.flush",
                        )
                    )
            cache_set.clear()
        return dirty_count

    def __repr__(self) -> str:
        return f"Cache({self.name!r}, {self.config.size_bytes // 1024}KB)"
