"""Concurrent collection mode, end to end (§IV-D through the driver).

The ground truth for a collection whose object graph changes mid-cycle is
a **functional replay**: restore the pre-cycle checkpoint, run the same
relocation prologue, step the identical mutator (same seed, same RNG
stream, same allocation order) without a simulator, apply the same root
reconciliation and fixup — and compare reachable-graph digests. The timed
concurrent cycle must land on exactly that graph, on every profile, at
several mutation rates, and under every injected-fault pair.
"""

import itertools

import pytest

from repro.core.concurrent.barriers import MutatorBarriers
from repro.core.concurrent.collect import ConcurrentCycle, relocate_prologue
from repro.core.config import GCUnitConfig
from repro.core.driver import HWGCDriver
from repro.core.mmio import Command, Reg, Status
from repro.engine.faultplane import COMPONENTS, KINDS, parse_hwfault_spec
from repro.engine.simulator import StallReport
from repro.engine.trace import TraceBus
from repro.heap.verify import heap_digest, reachable_digest
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder
from repro.workloads.mutator import ConcurrentMutator
from repro.workloads.profiles import BENCHMARK_ORDER

PAIRS = list(itertools.product(KINDS, COMPONENTS))


def _build(profile_name, scale=0.008, seed=13):
    return HeapGraphBuilder(DACAPO_PROFILES[profile_name], scale=scale,
                            seed=seed).build()


def _functional_replay(built, checkpoint, n_ops, mut_seed, relocate_blocks):
    """The untimed oracle: same prologue, same mutator, no simulator."""
    heap = built.heap
    heap.restore(checkpoint)
    table = relocator = None
    if relocate_blocks:
        table, relocator = relocate_prologue(heap, relocate_blocks)
    mutator = ConcurrentMutator(built, n_ops=n_ops, seed=mut_seed)
    barriers = MutatorBarriers(heap, forwarding=table)
    for _delay in mutator.process(barriers):
        pass  # yielded values are simulation delays; irrelevant untimed
    roots = mutator.final_roots()
    if table is not None:
        roots = [table.resolve(r) for r in roots]
    heap.set_roots(roots)
    if relocator is not None:
        relocator.fixup_references(table)
    return reachable_digest(heap), mutator


class TestDifferentialMatrix:
    """Timed concurrent cycle vs functional replay, all six profiles."""

    @pytest.mark.parametrize("profile", BENCHMARK_ORDER)
    @pytest.mark.parametrize("n_ops", [60, 180])
    def test_concurrent_matches_functional_replay(self, profile, n_ops):
        built = _build(profile)
        heap = built.heap
        checkpoint = heap.checkpoint()
        mutator = ConcurrentMutator(built, n_ops=n_ops, seed=3)
        result = ConcurrentCycle(heap, mutator=mutator,
                                 relocate_blocks=2).run()
        timed_digest = reachable_digest(heap)
        # The sweep must not have touched the live graph.
        assert heap.reachable() == result.oracle
        heap.check_free_lists()
        replay_digest, replay_mut = _functional_replay(
            built, checkpoint, n_ops, 3, 2)
        assert timed_digest == replay_digest
        # The replay performed the identical operation sequence.
        assert (mutator.ops, mutator.allocs, mutator.allocated) == \
            (replay_mut.ops, replay_mut.allocs, replay_mut.allocated)
        assert mutator.final_roots() == replay_mut.final_roots()

    @pytest.mark.parametrize("profile", ["luindex", "xalan"])
    def test_differential_holds_without_relocation(self, profile):
        built = _build(profile)
        heap = built.heap
        checkpoint = heap.checkpoint()
        mutator = ConcurrentMutator(built, n_ops=120, seed=7)
        ConcurrentCycle(heap, mutator=mutator).run()
        timed_digest = reachable_digest(heap)
        replay_digest, _ = _functional_replay(built, checkpoint, 120, 7, 0)
        assert timed_digest == replay_digest


@pytest.fixture(scope="module")
def conc_drill_env():
    """Workload + checkpoint + pre-cycle oracle + the fault-free STW
    reference digest a concurrent fallback must converge to (the fallback
    restores the pre-cycle snapshot and finishes stop-the-world)."""
    built = _build("luindex")
    heap = built.heap
    checkpoint = heap.checkpoint()
    oracle = heap.reachable()
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    safe = driver.run_gc_safe()
    assert safe.outcome == "hardware", safe.reason()
    heap.prune_dead(heap.reachable())
    reference = heap_digest(heap)
    heap.restore(checkpoint)
    return built, checkpoint, oracle, reference


def _run_concurrent_with_fault(built, spec, n_ops=120, relocate_blocks=2):
    heap = built.heap
    plane = parse_hwfault_spec(spec)
    plane.install(heap.memsys.stats, heap.memsys.phys)
    try:
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        mutator = ConcurrentMutator(built, n_ops=n_ops, seed=3)
        safe = driver.run_gc_safe(mode="concurrent", mutator=mutator,
                                  relocate_blocks=relocate_blocks)
        return safe, driver, plane
    finally:
        plane.uninstall()


@pytest.mark.slow
class TestFaultMatrixConcurrent:
    """Every kind x component pair against a live concurrent cycle.

    A fault is never silent: it fires, and the run either degrades to the
    software net (heap == the fault-free STW reference — the mutator's
    work during the doomed cycle is deliberately discarded with the
    snapshot) or survives with a passing software verification against
    the handshake oracle.
    """

    @pytest.mark.parametrize("kind,component", PAIRS,
                             ids=[f"{k}:{c}" for k, c in PAIRS])
    def test_fault_never_silent_under_concurrent_cycle(self, conc_drill_env,
                                                       kind, component):
        built, checkpoint, oracle, reference = conc_drill_env
        heap = built.heap
        heap.restore(checkpoint)
        safe, driver, plane = _run_concurrent_with_fault(
            built, f"{kind}:{component}")
        assert plane.fired, "the armed fault never fired"
        assert driver.mmio.status == Status.READY
        if safe.fallback:
            assert safe.result is not None  # the software net did collect
            assert heap.reachable() == oracle
            heap.prune_dead(heap.reachable())
            assert heap_digest(heap) == reference
        else:
            assert safe.verification is not None and safe.verification.ok
            assert heap.reachable() == safe.result.oracle
            heap.check_free_lists()
        if kind == "stuck":
            # A wedged component can never be absorbed: the traversal or
            # sweep stops making progress and the watchdog must trip.
            assert safe.fallback, f"stuck:{component} silently absorbed"

    def test_dropped_dram_names_dram(self, conc_drill_env):
        built, checkpoint, _oracle, _reference = conc_drill_env
        built.heap.restore(checkpoint)
        safe, _driver, _plane = _run_concurrent_with_fault(built, "drop:dram")
        assert safe.fallback
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "dram"

    def test_stuck_marker_names_marker(self, conc_drill_env):
        built, checkpoint, _oracle, _reference = conc_drill_env
        built.heap.restore(checkpoint)
        safe, _driver, _plane = _run_concurrent_with_fault(
            built, "stuck:marker")
        assert safe.fallback
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "marker"

    def test_fallback_counted_in_stats_and_mmio(self, conc_drill_env):
        built, checkpoint, _oracle, _reference = conc_drill_env
        heap = built.heap
        heap.restore(checkpoint)
        before = heap.memsys.stats.get("driver.fallbacks")
        safe, driver, _plane = _run_concurrent_with_fault(built, "stuck:tlb")
        assert safe.fallback
        assert heap.memsys.stats.get("driver.fallbacks") == before + 1
        assert driver.mmio.read(Reg.FALLBACKS) == 1


class TestRelocationMidTraversal:
    """Relocated addresses are served while marking races the mutator."""

    def test_forwarding_served_during_marking(self):
        built = _build("avrora")
        heap = built.heap
        mutator = ConcurrentMutator(built, n_ops=150, seed=3)
        cycle = ConcurrentCycle(heap, mutator=mutator, relocate_blocks=3)
        result = cycle.run()
        assert result.objects_relocated > 0
        # The unit resolved queued refs through the table mid-traversal...
        assert result.refs_forwarded > 0
        # ...and the fixup pass rewrote whatever fields stayed stale.
        assert result.fields_fixed > 0
        # No live field dangles into an evacuated cell afterwards.
        old = set(cycle.forwarding.old_addresses())
        for addr in heap.reachable():
            for ref in heap.view(addr).refs():
                assert ref not in old

    def test_quarantined_blocks_not_allocatable_mid_cycle(self):
        """The prologue empties evacuated blocks without making their
        cells reusable: a mid-cycle allocation must never land on an old
        address the forwarding table still maps (the ABA race)."""
        built = _build("luindex")
        heap = built.heap
        table, _relocator = relocate_prologue(heap, 2)
        old = set(table.old_addresses())
        assert old
        for desc in heap.block_list:
            if any(desc.base_vaddr <= a < desc.base_vaddr + desc.size_bytes
                   for a in old):
                assert desc.freelist_head == 0
        # Allocation pressure: nothing may come back on an old address.
        from repro.heap.layout import ObjectShape
        for _ in range(64):
            addr = heap.alloc(ObjectShape(2, 1))
            assert addr not in old

    def test_write_barrier_feeds_reader_mid_cycle(self):
        built = _build("pmd")
        heap = built.heap
        mutator = ConcurrentMutator(built, n_ops=200, seed=11)
        result = ConcurrentCycle(heap, mutator=mutator).run()
        assert result.write_barrier_hits > 0
        # The reader consumed the publications while marking was live.
        assert result.barrier_appends_read >= result.write_barrier_hits
        assert result.handshake_cycles < result.mark_cycles
        # The pause is the handshake + sweep, strictly less than the mark.
        assert result.pause_cycles < result.mark_cycles + result.sweep_cycles


class TestDriverSurface:
    """MMIO registers, status transitions, and trace events."""

    def test_run_gc_concurrent_updates_registers(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        mutator = ConcurrentMutator(built, n_ops=80, seed=3)
        result = driver.run_gc_concurrent(mutator, relocate_blocks=2)
        assert driver.mmio.read(Reg.OBJECTS_MARKED) == result.objects_marked
        assert driver.mmio.read(Reg.CELLS_FREED) == result.cells_freed
        assert driver.mmio.read(Reg.BARRIER_HITS) == \
            result.write_barrier_hits
        assert driver.mmio.read(Reg.OBJECTS_RELOCATED) == \
            result.objects_relocated
        assert driver.mmio.read(Reg.COMMAND) == int(Command.IDLE)
        assert driver.mmio.status == Status.READY

    def test_status_walks_conc_marking_then_sweeping(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        seen = []
        original = driver.mmio.set_status

        def recording(status):
            seen.append(status)
            original(status)

        driver.mmio.set_status = recording
        driver.run_gc_concurrent(ConcurrentMutator(built, n_ops=40, seed=3))
        assert seen.index(Status.CONC_MARKING) < seen.index(Status.SWEEPING)
        assert seen.index(Status.SWEEPING) < seen.index(Status.DONE)
        assert seen[-1] == Status.READY

    def test_busy_unit_rejected(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        driver.mmio.set_status(Status.CONC_MARKING)
        with pytest.raises(RuntimeError, match="busy"):
            driver.run_gc_concurrent(ConcurrentMutator(built, seed=3))

    def test_uninitialized_driver_rejected(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        with pytest.raises(RuntimeError, match="init_device"):
            driver.run_gc_concurrent(ConcurrentMutator(built, seed=3))

    def test_safe_mode_requires_mutator(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        with pytest.raises(ValueError, match="mutator"):
            driver.run_gc_safe(mode="concurrent")

    def test_unknown_mode_rejected(self):
        built = _build("luindex")
        driver = HWGCDriver(built.heap, GCUnitConfig())
        driver.init_device()
        with pytest.raises(ValueError, match="mode"):
            driver.run_gc_safe(mode="incremental")

    def test_cycle_requires_mutator(self):
        built = _build("luindex")
        with pytest.raises(ValueError, match="mutator"):
            ConcurrentCycle(built.heap)

    def test_barrier_and_forwarding_activity_rides_the_trace(self):
        built = _build("avrora")
        heap = built.heap
        stats = heap.memsys.stats
        stats.trace = TraceBus()
        try:
            mutator = ConcurrentMutator(built, n_ops=150, seed=3)
            result = ConcurrentCycle(heap, mutator=mutator,
                                     relocate_blocks=2).run()
            barrier_events = stats.trace.by_category("barrier")
            kinds = {e[2] for e in barrier_events}
            assert "write" in kinds  # write barrier published
            assert "drain" in kinds  # reader consumed publications
            writes = [e for e in barrier_events if e[2] == "write"]
            assert len(writes) == result.write_barrier_hits
            forwards = stats.trace.by_category("forward")
            assert forwards and all(e[2] == "resolve" for e in forwards)
            phases = {(e[2], e[3]) for e in stats.trace.by_category("phase")}
            assert ("hw.conc_mark", "B") in phases
            assert ("hw.handshake", "B") in phases
            assert ("hw.handshake", "E") in phases
        finally:
            stats.trace = None


class TestSafeConcurrent:
    def test_clean_cycle_is_hardware_outcome(self):
        built = _build("luindex")
        heap = built.heap
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        mutator = ConcurrentMutator(built, n_ops=120, seed=3)
        safe = driver.run_gc_safe(mode="concurrent", mutator=mutator,
                                  relocate_blocks=2)
        assert safe.outcome == "hardware"
        assert safe.verification is not None and safe.verification.ok
        assert heap.reachable() == safe.result.oracle
        assert driver.mmio.status == Status.READY

    def test_supervised_cycle_matches_bare_cycle(self):
        """An untripped watchdog must not perturb the modeled collection:
        the supervised run lands on the same heap and the same result
        counters as the bare one."""
        built = _build("luindex")
        heap = built.heap
        checkpoint = heap.checkpoint()
        bare = ConcurrentCycle(
            heap, mutator=ConcurrentMutator(built, n_ops=120, seed=3),
            relocate_blocks=2).run()
        bare_digest = reachable_digest(heap)

        heap.restore(checkpoint)
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        safe = driver.run_gc_safe(
            mode="concurrent",
            mutator=ConcurrentMutator(built, n_ops=120, seed=3),
            relocate_blocks=2)
        assert safe.outcome == "hardware"
        assert reachable_digest(heap) == bare_digest
        assert safe.result.objects_marked == bare.objects_marked
        assert safe.result.cells_freed == bare.cells_freed
        assert safe.result.write_barrier_hits == bare.write_barrier_hits

    def test_wedged_cycle_falls_back_and_restores(self):
        built = _build("luindex")
        heap = built.heap
        oracle = heap.reachable()
        safe, driver, plane = _run_concurrent_with_fault(
            built, "stuck:marker")
        assert plane.fired
        assert safe.fallback
        assert isinstance(safe.stall, StallReport)
        # The pre-cycle snapshot was restored: the mutator's work during
        # the doomed cycle is gone and the software net finished STW.
        assert heap.reachable() == oracle
        assert driver.mmio.status == Status.READY
        assert driver.mmio.read(Reg.FALLBACKS) == 1

    def test_fallback_reason_rides_the_trace(self):
        built = _build("luindex")
        heap = built.heap
        stats = heap.memsys.stats
        stats.trace = TraceBus()
        try:
            safe, _driver, _plane = _run_concurrent_with_fault(
                built, "drop:dram")
            assert safe.fallback
            fallbacks = stats.trace.by_category("fallback")
            assert len(fallbacks) == 1
            assert "dram" in fallbacks[0][2]
        finally:
            stats.trace = None
