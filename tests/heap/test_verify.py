"""Software verification of hardware GC results (§V-E debug path)."""

import pytest

from repro.core import GCUnit
from repro.heap.verify import (
    HeapVerifier,
    diff_snapshots,
    heap_digest,
    snapshot_heap,
)

from tests.conftest import make_random_heap


class TestVerifier:
    def test_clean_collection_passes(self):
        heap, _views = make_random_heap(n_objects=200, seed=1)
        GCUnit(heap).collect()
        heap.prune_dead(heap.reachable())
        report = HeapVerifier(heap).full_check()
        assert report.ok, report.mark_errors + report.sweep_errors
        assert report.objects_checked > 0
        report.raise_if_failed()  # no-op when ok

    def test_detects_missed_mark(self):
        heap, _views = make_random_heap(n_objects=100, seed=2)
        GCUnit(heap).collect()
        heap.prune_dead(heap.reachable())
        # Corrupt: clear the mark bit of a live object.
        from repro.heap.header import header_with_mark
        victim = next(iter(heap.reachable()))
        paddr = heap.to_physical(victim)
        heap.mem.write_word(
            paddr, header_with_mark(heap.mem.read_word(paddr),
                                    1 - heap.mark_parity))
        report = HeapVerifier(heap).check_marks()
        assert not report.ok
        assert any("unmarked live" in e for e in report.mark_errors)
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_detects_spuriously_marked_garbage(self):
        heap, _views = make_random_heap(n_objects=100, seed=3)
        truth = heap.reachable()
        garbage = next(a for a in heap.objects if a not in truth)
        GCUnit(heap).mark()  # mark only: garbage cells remain intact
        from repro.heap.header import header_with_mark
        paddr = heap.to_physical(garbage)
        heap.mem.write_word(
            paddr, header_with_mark(heap.mem.read_word(paddr),
                                    heap.mark_parity))
        report = HeapVerifier(heap).check_marks()
        assert any("marked garbage" in e for e in report.mark_errors)

    def test_detects_unswept_dead_object(self):
        heap, _views = make_random_heap(n_objects=100, seed=4)
        unit = GCUnit(heap)
        unit.mark()  # no sweep: dead objects still sit in their cells
        report = HeapVerifier(heap).check_sweep()
        assert any("unswept dead" in e for e in report.sweep_errors)


class TestSnapshots:
    def test_snapshot_roundtrip(self):
        heap, views = make_random_heap(n_objects=50, seed=5)
        snap = snapshot_heap(heap)
        assert len(snap) == 50
        assert snap[views[0].addr].n_refs == views[0].n_refs

    def test_diff_detects_mutation(self):
        heap, views = make_random_heap(n_objects=50, seed=6)
        before = snapshot_heap(heap)
        mutable = next(v for v in views if v.n_refs > 0)
        mutable.set_ref(0, views[1].addr)
        after = snapshot_heap(heap)
        diffs = diff_snapshots(before, after)
        assert any(f"{mutable.addr:#x}" in d for d in diffs)

    def test_diff_detects_collection_effects(self):
        heap, _views = make_random_heap(n_objects=80, seed=7)
        before = snapshot_heap(heap)
        GCUnit(heap).collect()
        heap.prune_dead(heap.reachable())
        after = snapshot_heap(heap)
        diffs = diff_snapshots(before, after)
        assert any(d.startswith("- ") for d in diffs)  # freed objects
        assert any("mark" in d for d in diffs)  # surviving objects marked

    def test_identical_snapshots_diff_empty(self):
        heap, _views = make_random_heap(n_objects=30, seed=8)
        assert diff_snapshots(snapshot_heap(heap), snapshot_heap(heap)) == []

    def test_diff_pinpoints_deliberate_memory_corruption(self):
        """The §V-E debugging workflow: snapshot, corrupt one reference
        word behind the heap's back, snapshot again — the diff names
        exactly the damaged object and nothing else."""
        heap, views = make_random_heap(n_objects=60, seed=9)
        victim = next(v for v in views if v.n_refs > 0)
        before = snapshot_heap(heap)
        # Flip a high bit in the victim's first reference slot directly in
        # physical memory (what a corrupting hardware fault does).
        ref_paddr = heap.to_physical(victim.addr) - \
            (victim.n_refs - 0) * 8
        word = heap.mem.read_word(ref_paddr)
        heap.mem.write_word(ref_paddr, word ^ (1 << 33))
        after = snapshot_heap(heap)
        diffs = diff_snapshots(before, after)
        assert len(diffs) == 1
        assert f"{victim.addr:#x}" in diffs[0]
        assert "refs changed" in diffs[0]

    def test_snapshot_of_corrupted_heap_differs_from_clean(self):
        heap, views = make_random_heap(n_objects=40, seed=10)
        clean = snapshot_heap(heap)
        victim = next(v for v in views if v.n_refs > 0)
        victim.set_ref(0, 0)
        assert snapshot_heap(heap) != clean


class TestHeapDigest:
    def _collected(self, seed):
        heap, _views = make_random_heap(n_objects=120, seed=seed)
        GCUnit(heap).collect()
        heap.prune_dead(heap.reachable())
        return heap

    def test_digest_is_deterministic(self):
        a = self._collected(seed=21)
        b = self._collected(seed=21)
        assert heap_digest(a) == heap_digest(b)

    def test_digest_differs_across_workloads(self):
        assert heap_digest(self._collected(seed=21)) != \
            heap_digest(self._collected(seed=22))

    def test_digest_sees_reference_corruption(self):
        heap = self._collected(seed=23)
        before = heap_digest(heap)
        # refs() elides null fields, so probe the raw slots for one that
        # actually holds a reference before nulling it.
        victim, slot = next(
            (view, i)
            for view in (heap.view(a) for a in sorted(heap.reachable()))
            for i in range(view.n_refs)
            if heap.mem.read_word(view.ref_paddr(i)) != 0)
        victim.set_ref(slot, 0)
        assert heap_digest(heap) != before

    def test_digest_sees_freelist_corruption(self):
        heap = self._collected(seed=24)
        before = heap_digest(heap)
        desc = next(d for d in heap.block_list if d.freelist_head)
        head_paddr = heap.block_list.descriptor_addr(desc.index) + 3 * 8
        heap.mem.write_word(head_paddr, desc.freelist_head ^ (1 << 33))
        assert heap_digest(heap) != before
