"""Latency-bandwidth pipe model (the Fig. 17 memory system)."""

from repro.engine.simulator import Simulator
from repro.memory.config import PipeConfig
from repro.memory.pipe import LatencyBandwidthPipe
from repro.memory.request import AccessKind, MemRequest


def read(addr, size=64):
    return MemRequest(addr=addr, size=size, kind=AccessKind.READ, source="t")


def test_single_request_latency():
    sim = Simulator()
    pipe = LatencyBandwidthPipe(sim, PipeConfig(latency=1, bytes_per_cycle=8))
    done = []
    pipe.submit(read(0, size=64)).add_callback(done.append)
    sim.run()
    assert done == [64 // 8 + 1]  # 8 bus cycles + 1 latency


def test_bandwidth_serializes():
    """N 64-byte requests take ~N x 8 cycles: 8 GB/s means 64B per 8 cycles
    (the 'one request every 8 cycles would be the full bandwidth' of
    §VI-A)."""
    sim = Simulator()
    pipe = LatencyBandwidthPipe(sim, PipeConfig())
    n = 50
    done = []
    for i in range(n):
        pipe.submit(read(i * 64)).add_callback(done.append)
    sim.run()
    assert done[-1] == n * 8 + 1
    assert sim.now == n * 8 + 1


def test_small_requests_waste_bandwidth():
    """8-byte requests each hold the bus one cycle: more requests/second
    but less data — why the unit 'may not be able to use all 8 GB/s'."""
    sim = Simulator()
    pipe = LatencyBandwidthPipe(sim, PipeConfig())
    done = []
    for i in range(100):
        pipe.submit(read(i * 8, size=8)).add_callback(done.append)
    sim.run()
    assert done[-1] == 100 + 1
    assert sim.now == 100 + 1
    assert pipe.bandwidth.total_bytes == 800


def test_stats_attribution():
    sim = Simulator()
    pipe = LatencyBandwidthPipe(sim, PipeConfig())
    pipe.submit(MemRequest(addr=0, size=8, kind=AccessKind.AMO, source="m"))
    pipe.submit(MemRequest(addr=8, size=8, kind=AccessKind.WRITE, source="m"))
    sim.run()
    assert pipe.stats.get("mem.requests.m") == 2
    assert pipe.stats.get("dram.bytes_read") == 8
    assert pipe.stats.get("dram.bytes_written") == 16
