"""Set-associative cache with MSHRs."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.config import CacheConfig, PipeConfig
from repro.memory.cache import Cache
from repro.memory.pipe import LatencyBandwidthPipe
from repro.memory.request import AccessKind, MemRequest


def make_cache(**kwargs):
    sim = Simulator()
    stats = StatsRegistry()
    lower = LatencyBandwidthPipe(sim, PipeConfig(latency=20), stats=stats)
    defaults = dict(size_bytes=1024, ways=2, hit_latency=2, mshrs=2)
    defaults.update(kwargs)
    cache = Cache(sim, CacheConfig(**defaults), lower, name="c", stats=stats)
    return sim, cache, stats


def req(addr, size=8, kind=AccessKind.READ, source="t"):
    return MemRequest(addr=addr, size=size, kind=kind, source=source)


class TestHitMiss:
    def test_miss_then_hit(self):
        sim, cache, stats = make_cache()
        t_miss, t_hit = [], []
        cache.submit(req(0x100)).add_callback(lambda _v: t_miss.append(sim.now))
        sim.run()
        cache.submit(req(0x108)).add_callback(lambda _v: t_hit.append(sim.now))
        start = sim.now
        sim.run()
        assert stats.get("cache.c.misses") == 1
        assert stats.get("cache.c.hits") == 1
        assert t_hit[0] - start == 2  # hit latency
        assert t_miss[0] > 20  # paid the lower-level latency

    def test_contains_and_warm(self):
        _sim, cache, _stats = make_cache()
        assert not cache.contains(0x40)
        cache.warm(0x40)
        assert cache.contains(0x40)
        assert cache.contains(0x7F)  # same line

    def test_lru_eviction(self):
        sim, cache, stats = make_cache(size_bytes=128, ways=1)  # 2 sets
        cache.warm(0)  # set 0
        cache.warm(128)  # set 0 again (1-way): evicts line 0
        assert not cache.contains(0)
        assert cache.contains(128)

    def test_dirty_eviction_writes_back(self):
        sim, cache, stats = make_cache(size_bytes=128, ways=1)
        cache.submit(req(0, kind=AccessKind.WRITE))
        sim.run()
        cache.submit(req(128))  # evicts the dirty line
        sim.run()
        assert stats.get("cache.c.writebacks") == 1

    def test_amo_marks_dirty(self):
        sim, cache, stats = make_cache(size_bytes=128, ways=1)
        cache.submit(req(0, kind=AccessKind.AMO))
        sim.run()
        cache.submit(req(128))
        sim.run()
        assert stats.get("cache.c.writebacks") == 1


class TestMSHRs:
    def test_coalescing_same_line(self):
        sim, cache, stats = make_cache()
        done = []
        cache.submit(req(0x200)).add_callback(done.append)
        cache.submit(req(0x208)).add_callback(done.append)  # same line
        sim.run()
        assert len(done) == 2
        assert stats.get("cache.c.mshr_coalesced") == 1
        # Only one fill went to the lower level.
        assert stats.get("mem.requests.t") == 1

    def test_mshr_stall_queues_and_completes(self):
        sim, cache, stats = make_cache(mshrs=1)
        done = []
        for i in range(4):
            cache.submit(req(i * 64)).add_callback(done.append)
        sim.run()
        assert len(done) == 4
        assert stats.get("cache.c.mshr_stalls") >= 1

    def test_queued_miss_that_becomes_hit(self):
        sim, cache, stats = make_cache(mshrs=1)
        done = []
        cache.submit(req(0)).add_callback(done.append)
        cache.submit(req(64)).add_callback(done.append)  # stalls (MSHR full)
        cache.submit(req(8)).add_callback(done.append)  # same line as first
        sim.run()
        assert len(done) == 3


class TestMultiLine:
    def test_request_spanning_lines(self):
        sim, cache, stats = make_cache()
        done = []
        cache.submit(req(0x38, size=16)).add_callback(done.append)  # crosses
        sim.run()
        assert len(done) == 1
        assert stats.get("cache.c.misses") == 2

    def test_flush(self):
        sim, cache, _stats = make_cache()
        cache.warm(0, dirty=True)
        cache.warm(64, dirty=False)
        assert cache.flush() == 1
        assert not cache.contains(0)


class TestHierarchy:
    def test_two_level(self):
        sim = Simulator()
        stats = StatsRegistry()
        dram = LatencyBandwidthPipe(sim, PipeConfig(latency=40), stats=stats)
        l2 = Cache(sim, CacheConfig(size_bytes=4096, ways=4, hit_latency=10,
                                    mshrs=4), dram, name="l2", stats=stats)
        l1 = Cache(sim, CacheConfig(size_bytes=512, ways=2, hit_latency=1,
                                    mshrs=2), l2, name="l1", stats=stats)
        done = []
        l1.submit(req(0)).add_callback(lambda _v: done.append(sim.now))
        sim.run()
        cold = done[0]
        # Evict from L1 (tiny) but keep in L2: second access is an L2 hit.
        for i in range(1, 9):
            l1.submit(req(i * 64))
        sim.run()
        start = sim.now
        l1.submit(req(0)).add_callback(lambda _v: done.append(sim.now - start))
        sim.run()
        assert stats.get("cache.l2.hits") >= 1
        assert done[1] < cold
