"""Differential determinism: the fleet figures are byte-identical across
kernels, worker layouts, and cache states — pinned the way
``test_fastpath.py`` pins the 3×2 matrix.

The pinned digests are the determinism contract for the small-scale
scenario; a change here means fleet behavior changed and must be
deliberate (update the constants in the same commit that explains why).
"""

import pytest

from repro.fleet.timeline import reset_base_cache
from repro.harness import heapcache
from repro.harness.sharding import axis_values, can_shard, run_entry_sharded
from repro.harness.suite import run_entry

SLO_KWARGS = dict(scale=0.008, n_tenants=3, n_queries=600, warmup=60,
                  n_gcs=2)
SLO_DIGEST = "7e2c15c29cd6c2a86bfca3c687a3b2bb06455afab6be2fa439f6c2de648b8e4d"
LBO_KWARGS = dict(scale=0.008, n_gcs=2)
LBO_DIGEST = "0d294e883a9a8ce21282be06f7dd8da74fb57f2dd53f5abc4bdec20631975463"

#: Small-scale fault drills: a fault-free roster (must not disturb the
#: schedule), a unit crash that interrupts an in-flight grant (requests
#: land ~1.3-3.3M cycles at this scale), and a crashed tenant.
RES_KWARGS = dict(scale=0.008, n_tenants=3, n_queries=300, warmup=30,
                  n_gcs=2, n_units=2,
                  rosters=(("no faults", ""),
                           ("crash u1", "crash:u1@1400000"),
                           ("crashed tenant", "crash:t1@2000000")))
RES_DIGEST = "b772e96501fd2119ab72bc9a3691d9406fa0ba6f4a4e6b530ea6875af34dc65d"

KERNELS = ("bucket", "heapq", "vector")


class TestPinnedDigests:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fleet_slo_digest_per_kernel(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", kernel)
        heapcache.reset_cache()
        reset_base_cache()
        assert run_entry(0, "fleet_slo", SLO_KWARGS).digest == SLO_DIGEST

    def test_fleet_lbo_digest(self):
        assert run_entry(0, "fleet_lbo", LBO_KWARGS).digest == LBO_DIGEST

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fleet_resilience_digest_per_kernel(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", kernel)
        heapcache.reset_cache()
        reset_base_cache()
        assert run_entry(0, "fleet_resilience",
                         RES_KWARGS).digest == RES_DIGEST


class TestShardedIdentity:
    def test_fleet_slo_sharded_matches_inline(self):
        inline = run_entry(0, "fleet_slo", SLO_KWARGS)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_slo", SLO_KWARGS, jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest == SLO_DIGEST
        assert len(sharded.shard_digests) == 2

    @pytest.mark.slow
    def test_fleet_lbo_sharded_matches_inline(self):
        inline = run_entry(0, "fleet_lbo", LBO_KWARGS)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_lbo", LBO_KWARGS, jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest == LBO_DIGEST

    def test_fleet_resilience_sharded_matches_inline(self):
        inline = run_entry(0, "fleet_resilience", RES_KWARGS)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_resilience", RES_KWARGS,
                                    jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest == RES_DIGEST
        assert len(sharded.shard_digests) == 2

    def test_tenant_axis_tracks_n_tenants(self):
        assert axis_values("fleet_slo", SLO_KWARGS) == [0, 1, 2]
        assert axis_values("fleet_slo", {}) == [0, 1, 2, 3]
        assert axis_values("fleet_slo", {"tenants": (1,)}) == [1]
        assert axis_values("fleet_lbo", {}) == [2, 4]
        assert can_shard("fleet_slo", SLO_KWARGS, 3)
        assert not can_shard("fleet_slo", SLO_KWARGS, 4)

    def test_roster_axis_defaults_to_the_figure_family(self):
        from repro.fleet.faults import DEFAULT_RESILIENCE_ROSTERS

        assert axis_values("fleet_resilience", {}) == \
            list(DEFAULT_RESILIENCE_ROSTERS)
        assert axis_values("fleet_resilience", RES_KWARGS) == \
            list(RES_KWARGS["rosters"])
        assert can_shard("fleet_resilience", RES_KWARGS, 3)


class TestSimCacheIdentity:
    def test_cold_and_warm_render_identical_bytes(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path))
        cold = run_entry(0, "fleet_slo", SLO_KWARGS)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        heapcache.reset_cache()
        reset_base_cache()
        warm = run_entry(0, "fleet_slo", SLO_KWARGS)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert warm.rendered == cold.rendered
        assert warm.digest == cold.digest == SLO_DIGEST

    def test_fleet_resilience_cold_and_warm_identical(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path))
        cold = run_entry(0, "fleet_resilience", RES_KWARGS)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        heapcache.reset_cache()
        reset_base_cache()
        warm = run_entry(0, "fleet_resilience", RES_KWARGS)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert warm.rendered == cold.rendered
        assert warm.digest == cold.digest == RES_DIGEST


class TestHeapConvergence:
    """Crashed-unit runs converge to the fault-free per-tenant heap state.

    Heap evolution depends only on which collections ran, in order —
    never on when admission scheduled them or whether hardware or the
    software fallback served them. So the oracle is
    ``tenant_heap_digest(..., n_gcs=<collections actually served>)``:
    a scheduler that dropped or duplicated a collection under faults
    shifts the served count and diverges from the fault-free digest.
    """

    def _scheduled(self, faults_spec):
        from repro.fleet import FleetFaultSpec, FleetSpec, schedule_fleet
        from repro.fleet.timeline import base_run, tenant_timeline

        spec = FleetSpec(n_tenants=3, scale=0.008, n_queries=300,
                         warmup=30, n_gcs=2, n_units=2)
        roster = spec.tenants()
        tls = [tenant_timeline(
            base_run(t.benchmark, "hw", spec.scale, spec.seed, spec.n_gcs),
            t.phase_frac) for t in roster]
        sched = schedule_fleet(
            "shared", tls, n_units=spec.n_units, dram_tax=spec.dram_tax,
            faults=FleetFaultSpec.parse(faults_spec))
        return spec, roster, tls, sched

    def test_the_digest_oracle_discriminates(self):
        # Sanity for everything below: one collection more or fewer
        # leaves a *different* heap digest, so "faulted digest equals
        # fault-free digest" can actually fail when a collection is
        # lost or duplicated.
        from repro.fleet.timeline import tenant_heap_digest

        assert tenant_heap_digest("lusearch", "hw", 0.008, 1, 1) != \
            tenant_heap_digest("lusearch", "hw", 0.008, 1, 2)

    def test_unit_crash_serves_every_collection(self):
        from repro.fleet.timeline import tenant_heap_digest

        spec, roster, tls, sched = self._scheduled("crash:u1@1400000")
        assert sum(sched.failovers) > 0  # the crash interrupted someone
        for t, tenant in enumerate(roster):
            served = sum(1 for g in sched.grants if g.tenant == t)
            assert served == len(tls[t].pauses)
            assert tenant_heap_digest(
                tenant.benchmark, "hw", spec.scale, spec.seed,
                served) == tenant_heap_digest(
                tenant.benchmark, "hw", spec.scale, spec.seed, spec.n_gcs)

    def test_tenant_crash_converges_to_the_truncated_oracle(self):
        from repro.fleet.timeline import tenant_heap_digest

        spec, roster, tls, sched = self._scheduled("crash:t1@2000000")
        assert sched.cancelled[1] > 0
        for t, tenant in enumerate(roster):
            served = sum(1 for g in sched.grants if g.tenant == t)
            assert served == len(tls[t].pauses) - sched.cancelled[t]
            faulted = tenant_heap_digest(
                tenant.benchmark, "hw", spec.scale, spec.seed, served)
            oracle = tenant_heap_digest(
                tenant.benchmark, "hw", spec.scale, spec.seed, spec.n_gcs)
            if t == 1:
                # The crashed tenant went dark mid-run: its heap is the
                # truncated oracle's, *not* the fault-free one.
                assert served < spec.n_gcs and faulted != oracle
            else:
                assert served == spec.n_gcs and faulted == oracle


@pytest.mark.slow
class TestFullScale:
    """The suite-scale entries themselves (the figures CI regenerates)."""

    def test_suite_entry_sharded_identity(self):
        from repro.harness.suite import SUITE

        kwargs = dict(SUITE)["fleet_slo"]
        inline = run_entry(0, "fleet_slo", kwargs)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_slo", kwargs, jobs=2)
        assert sharded.rendered == inline.rendered
