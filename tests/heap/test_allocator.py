"""Segregated free-list allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heap.allocator import OutOfMemoryError, SegregatedFreeListAllocator
from repro.heap.blocks import BLOCK_BYTES, BlockList
from repro.heap.heapimage import ManagedHeap
from repro.heap.layout import ObjectShape
from repro.memory.config import MemorySystemConfig
from repro.memory.memimage import PhysicalMemory

VIRT = 0x4000_0000


def make_allocator(space_bytes=BLOCK_BYTES * 8):
    mem = PhysicalMemory(space_bytes + 1024 * 1024)
    block_list = BlockList(mem, (4096, 256 * 1024))
    alloc = SegregatedFreeListAllocator(
        mem, block_list, 256 * 1024, 256 * 1024 + space_bytes, VIRT
    )
    return mem, alloc


class TestAllocation:
    def test_alloc_returns_status_word_vaddr(self):
        mem, alloc = make_allocator()
        addr = alloc.alloc(ObjectShape(n_refs=2, n_payload_words=1))
        paddr = alloc.to_physical(addr)
        # The word at the returned address is a valid live status word.
        assert mem.read_word(paddr) & 1

    def test_same_class_objects_pack_one_block(self):
        _mem, alloc = make_allocator()
        shape = ObjectShape(2, 1)  # 5 words -> 8-word class
        cells_per_block = BLOCK_BYTES // 64
        for _ in range(cells_per_block):
            alloc.alloc(shape)
        assert alloc.blocks_in_use == 1
        alloc.alloc(shape)
        assert alloc.blocks_in_use == 2

    def test_distinct_classes_use_distinct_blocks(self):
        _mem, alloc = make_allocator()
        alloc.alloc(ObjectShape(1, 0))  # small class
        alloc.alloc(ObjectShape(50, 50))  # big class
        assert alloc.blocks_in_use == 2

    def test_fresh_block_free_list_is_threaded(self):
        _mem, alloc = make_allocator()
        alloc.alloc(ObjectShape(1, 0))
        assert alloc.free_cells() == BLOCK_BYTES // (4 * 8) - 1

    def test_out_of_memory(self):
        _mem, alloc = make_allocator(space_bytes=BLOCK_BYTES)
        shape = ObjectShape(100, 100)  # 256-word cells: 4 per block
        for _ in range(4):
            alloc.alloc(shape)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(shape)

    def test_counters(self):
        _mem, alloc = make_allocator()
        alloc.alloc(ObjectShape(1, 0))
        alloc.alloc(ObjectShape(1, 0))
        assert alloc.objects_allocated == 2
        assert alloc.bytes_allocated == 2 * 32

    @given(shapes=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 20), st.booleans()),
        min_size=1, max_size=120,
    ))
    @settings(max_examples=30, deadline=None)
    def test_no_two_objects_overlap(self, shapes):
        """Property: allocated cells never overlap and stay class-aligned."""
        _mem, alloc = make_allocator(space_bytes=BLOCK_BYTES * 40)
        spans = []
        for n_refs, payload, is_array in shapes:
            shape = ObjectShape(max(n_refs, 1) if is_array else n_refs,
                                payload, is_array)
            addr = alloc.alloc(shape)
            words = 2 + shape.n_refs + shape.n_payload_words
            cell_start = addr - 8 * (1 + shape.n_refs)
            spans.append((cell_start, cell_start + words * 8))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2, "cells overlap"


class TestReuseAfterSweep:
    def test_allocator_reuses_swept_cells(self):
        """After a GC frees cells, allocation consumes them before carving
        fresh blocks (the paper's free-list handoff, §IV-C)."""
        heap = ManagedHeap(config=MemorySystemConfig(total_bytes=32 * 1024 * 1024))
        from repro.swgc import SoftwareCollector
        views = [heap.new_object(1, 1) for _ in range(600)]
        heap.set_roots([views[0].addr])  # everything else is garbage
        blocks_before = heap.allocator.blocks_in_use
        SoftwareCollector(heap).collect()
        heap.complete_gc_cycle()
        for _ in range(500):
            heap.new_object(1, 1)
        assert heap.allocator.blocks_in_use == blocks_before

    def test_refresh_free_lists_rescans_blocks(self):
        _mem, alloc = make_allocator()
        alloc.alloc(ObjectShape(1, 0))
        alloc.refresh_free_lists()
        # Block rediscovered with its remaining free cells.
        assert alloc.free_cells() > 0
        addr = alloc.alloc(ObjectShape(1, 0))
        assert addr != 0
