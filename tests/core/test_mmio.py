"""MMIO register file and driver protocol edge cases."""

import pytest

from repro.core.driver import HWGCDriver
from repro.core.mmio import Command, MMIORegisterFile, Reg, Status

from tests.conftest import make_random_heap


class TestRegisterFile:
    def test_all_registers_mapped(self):
        mmio = MMIORegisterFile()
        for reg in Reg:
            assert mmio.read(reg) is not None

    def test_initial_status_ready(self):
        assert MMIORegisterFile().status == Status.READY

    def test_write_read_roundtrip(self):
        mmio = MMIORegisterFile()
        mmio.write(Reg.SPILL_BASE, 0xDEAD000)
        assert mmio.read(Reg.SPILL_BASE) == 0xDEAD000

    def test_unmapped_offset_rejected(self):
        mmio = MMIORegisterFile()
        with pytest.raises(ValueError):
            mmio.read(0x1000)
        with pytest.raises(ValueError):
            mmio.write(0x1000, 1)

    def test_status_transitions(self):
        mmio = MMIORegisterFile()
        for status in (Status.MARKING, Status.SWEEPING, Status.DONE,
                       Status.READY):
            mmio.set_status(status)
            assert mmio.status == status


class TestDriverProtocol:
    def test_registers_programmed_from_process_state(self):
        heap, _views = make_random_heap(n_objects=60, seed=1)
        driver = HWGCDriver(heap)
        driver.init_device()
        am = heap.memsys.address_map
        assert driver.mmio.read(Reg.HWGC_BASE) == am.hwgc[0]
        assert driver.mmio.read(Reg.SPILL_SIZE) == am.spill[1] - am.spill[0]
        assert driver.mmio.read(Reg.BLOCK_LIST_BASE) == am.block_list[0]
        assert driver.mmio.read(Reg.N_SWEEPERS) == 2

    def test_gc_writes_parity_and_results(self):
        heap, _views = make_random_heap(n_objects=60, seed=2)
        driver = HWGCDriver(heap)
        driver.init_device()
        result = driver.run_gc()
        assert driver.mmio.read(Reg.MARK_PARITY) == 1  # first GC
        assert driver.mmio.read(Reg.CELLS_FREED) == result.cells_freed
        assert driver.mmio.read(Reg.COMMAND) == int(Command.IDLE)

    def test_repeated_gcs_through_driver(self):
        heap, _views = make_random_heap(n_objects=100, seed=3)
        driver = HWGCDriver(heap)
        driver.init_device()
        first = driver.run_gc()
        heap.prune_dead(heap.reachable())
        heap.complete_gc_cycle()
        second = driver.run_gc()
        assert second.objects_marked == first.objects_marked
        assert driver.mmio.read(Reg.MARK_PARITY) == 0  # flipped
