"""HWQueue semantics: FIFO order, blocking, backpressure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.queues import HWQueue, QueueEmptyError, QueueFullError
from repro.engine.simulator import Simulator


class TestBasics:
    def test_capacity_validation(self, sim):
        with pytest.raises(Exception):
            HWQueue(sim, 0)

    def test_put_get_nowait_fifo(self, sim):
        q = HWQueue(sim, 4)
        for i in range(4):
            q.put_nowait(i)
        assert q.is_full
        assert [q.get_nowait() for _ in range(4)] == [0, 1, 2, 3]
        assert q.is_empty

    def test_put_nowait_full_raises(self, sim):
        q = HWQueue(sim, 1)
        q.put_nowait("x")
        with pytest.raises(QueueFullError):
            q.put_nowait("y")

    def test_get_nowait_empty_raises(self, sim):
        q = HWQueue(sim, 1)
        with pytest.raises(QueueEmptyError):
            q.get_nowait()

    def test_try_put(self, sim):
        q = HWQueue(sim, 1)
        assert q.try_put(1)
        assert not q.try_put(2)
        assert q.get_nowait() == 1

    def test_occupancy_and_peak(self, sim):
        q = HWQueue(sim, 8)
        for i in range(5):
            q.put_nowait(i)
        q.get_nowait()
        assert q.occupancy == 4
        assert q.peak_occupancy == 5


class TestBlocking:
    def test_get_blocks_until_put(self, sim):
        q = HWQueue(sim, 2)
        got = []

        def consumer():
            item = yield q.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(30, lambda: q.put_nowait("late"))
        sim.run()
        assert got == [(30, "late")]

    def test_put_blocks_while_full(self, sim):
        q = HWQueue(sim, 1)
        q.put_nowait("first")
        done_at = []

        def producer():
            yield q.put("second")
            done_at.append(sim.now)

        sim.process(producer())
        sim.schedule(50, q.get_nowait)
        sim.run()
        assert done_at == [50]
        assert q.get_nowait() == "second"

    def test_producer_consumer_pipeline(self, sim):
        q = HWQueue(sim, 2)
        received = []

        def producer():
            for i in range(10):
                yield q.put(i)
                yield 1

        def consumer():
            for _ in range(10):
                item = yield q.get()
                received.append(item)
                yield 5  # slower than the producer: forces backpressure

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == list(range(10))
        assert q.put_stall_count > 0

    def test_waiting_getters_served_fifo(self, sim):
        q = HWQueue(sim, 4)
        order = []

        def consumer(tag):
            item = yield q.get()
            order.append((tag, item))

        for tag in range(3):
            sim.process(consumer(tag))
        sim.run()
        for i in range(3):
            q.put_nowait(i)
        sim.run()
        assert order == [(0, 0), (1, 1), (2, 2)]

    def test_drain(self, sim):
        q = HWQueue(sim, 4)
        for i in range(3):
            q.put_nowait(i)
        assert q.drain() == [0, 1, 2]
        assert q.is_empty


@given(
    ops=st.lists(
        st.one_of(st.tuples(st.just("put"), st.integers(0, 1000)),
                  st.tuples(st.just("get"), st.just(0))),
        max_size=200,
    ),
    capacity=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_queue_preserves_order_and_items(ops, capacity):
    """Property: items come out exactly once, in FIFO order."""
    sim = Simulator()
    q = HWQueue(sim, capacity)
    put_items = []
    got_items = []
    for op, value in ops:
        if op == "put":
            if q.try_put(value):
                put_items.append(value)
        else:
            if not q.is_empty:
                got_items.append(q.get_nowait())
    got_items.extend(q.drain())
    assert got_items == put_items
