"""Synthetic object-graph generator.

Builds a heap whose *statistics* match a :class:`~repro.workloads.profiles.
BenchmarkProfile`: object size and fan-out distributions, array fraction,
live fraction at collection time, root counts, immortal/static objects,
large-object-space allocations, and the hot-object sharing skew behind
Fig. 21a.

Construction guarantees:

* exactly the requested live objects are reachable from the roots (live
  objects never reference garbage);
* garbage has internal structure (garbage subgraphs reference each other
  and may reference live objects — back-references are legal and common);
* a small hot set receives a configured fraction of all cross-references,
  so repeated mark attempts concentrate on few objects as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.heap.heapimage import ManagedHeap
from repro.heap.layout import ObjectShape
from repro.heap.objectmodel import ObjectView
from repro.memory.config import MemorySystemConfig
from repro.workloads.profiles import BenchmarkProfile


@dataclass
class BuiltHeap:
    """A generated heap plus the ground-truth sets used by tests/figures."""

    heap: ManagedHeap
    profile: BenchmarkProfile
    scale: float
    seed: int
    live: Set[int]  # object addrs intended reachable
    garbage: Set[int]  # MarkSweep-space addrs intended unreachable
    hot: List[int]  # the hot shared objects (subset of live)
    roots: List[int]
    rng: random.Random = field(repr=False, default=None)

    @property
    def n_objects(self) -> int:
        return len(self.live) + len(self.garbage)

    def incoming_access_counts(self) -> Dict[int, int]:
        """Mark-accesses per object in one full traversal: one per root
        occurrence plus one per reference held by a live object. This is the
        quantity histogrammed in Fig. 21a."""
        counts: Dict[int, int] = {}
        for root in self.roots:
            counts[root] = counts.get(root, 0) + 1
        for addr in self.live:
            for ref in self.heap.view(addr).refs():
                counts[ref] = counts.get(ref, 0) + 1
        return counts


class HeapGraphBuilder:
    """Generates a heap for one benchmark profile."""

    # Reference-count cap for MarkSweep-space objects (largest size class
    # holds 256 words: scan + status + refs + payload).
    _MAX_MS_REFS = 128
    _LOS_REFS_RANGE = (128, 480)

    def __init__(
        self,
        profile: BenchmarkProfile,
        scale: float = 0.1,
        seed: int = 0,
        config: Optional[MemorySystemConfig] = None,
    ):
        self.profile = profile
        self.scale = scale
        self.seed = seed
        self.config = config

    # -- distribution helpers -------------------------------------------------

    @staticmethod
    def _geometric(rng: random.Random, mean: float) -> int:
        """Geometric-ish non-negative integer with the given mean."""
        if mean <= 0:
            return 0
        return min(int(rng.expovariate(1.0 / mean)), int(mean * 8) + 1)

    def _sample_shape(self, rng: random.Random) -> ObjectShape:
        p = self.profile
        if rng.random() < p.array_fraction:
            n_refs = max(1, self._geometric(rng, p.mean_array_refs))
            n_refs = min(n_refs, self._MAX_MS_REFS)
            return ObjectShape(n_refs=n_refs, n_payload_words=1, is_array=True)
        n_refs = min(self._geometric(rng, p.mean_refs), 12)
        payload = self._geometric(rng, p.mean_payload_words)
        return ObjectShape(n_refs=n_refs, n_payload_words=payload)

    # -- construction -------------------------------------------------------------

    def build(self, heap: Optional[ManagedHeap] = None) -> BuiltHeap:
        rng = random.Random(self.seed)
        p = self.profile
        n = p.scaled_objects(self.scale)
        if heap is None:
            heap = ManagedHeap(config=self.config or self._default_config(n))

        # 1. Allocate MarkSweep-space objects.
        views: List[ObjectView] = []
        for _ in range(n):
            views.append(heap.view(heap.alloc(self._sample_shape(rng))))

        # 2. Large-object-space arrays.
        n_los = max(0, int(n * p.los_fraction))
        for _ in range(n_los):
            refs = rng.randint(*self._LOS_REFS_RANGE)
            views.append(
                heap.view(heap.alloc(ObjectShape(refs, 2, is_array=True)))
            )

        # 3. Immortal statics (always roots: "static variables", Fig. 2).
        n_statics = max(4, n // 500)
        statics: List[ObjectView] = []
        for _ in range(n_statics):
            statics.append(heap.new_object(rng.randint(2, 4), 1,
                                           space="immortal"))

        # Allocation is complete: build the SoA layout sidecar once and bind
        # it to every view, so the wiring below (n_refs reads and set_ref
        # writes, several per object) runs on flat-array lookups instead of
        # re-decoding status words from memory.
        meta = heap.metadata()
        for v in views:
            v.attach_meta(meta)
        for s in statics:
            s.attach_meta(meta)

        # 4. Partition into live / garbage.
        indices = list(range(len(views)))
        rng.shuffle(indices)
        n_live = max(1, int(len(views) * p.live_fraction))
        live_views = [views[i] for i in indices[:n_live]]
        garbage_views = [views[i] for i in indices[n_live:]]

        hot = [v.addr for v in live_views[: p.hot_objects]]

        # 5. Spanning structure over the live set.
        roots = [s.addr for s in statics]
        extra_roots = max(8, int(n_live * p.root_fraction))
        free_slots: List[Tuple[ObjectView, int]] = []
        for s in statics:
            free_slots.extend((s, i) for i in range(s.n_refs))
        connected: List[ObjectView] = []
        for v in live_views:
            if free_slots:
                # Mix of uniform and recency-biased parents: shallow
                # BFS-like fan-out plus deep chains, like real heaps.
                if rng.random() < 0.5 and len(free_slots) > 32:
                    slot_i = rng.randrange(len(free_slots) - 32,
                                           len(free_slots))
                else:
                    slot_i = rng.randrange(len(free_slots))
                parent, ref_i = free_slots.pop(slot_i)
                parent.set_ref(ref_i, v.addr)
            else:
                roots.append(v.addr)
            connected.append(v)
            free_slots.extend((v, i) for i in range(v.n_refs))

        # 6. Extra roots straight into the live set.
        for _ in range(extra_roots):
            roots.append(rng.choice(live_views).addr)

        # 7. Fill remaining live slots: nulls, hot refs, or random live refs.
        # Hot references are *bursty*: objects created around the same time
        # tend to share the same hot target (a common class, table or
        # registry object), which is what makes a small recently-marked
        # cache effective (Fig. 21b).
        live_addrs = [v.addr for v in live_views]
        current_hot = rng.choice(hot) if hot else 0
        for parent, ref_i in free_slots:
            r = rng.random()
            if r < p.null_ref_fraction:
                continue  # stays null
            if r < p.null_ref_fraction + p.hot_ref_fraction and hot:
                if rng.random() < 0.2:
                    current_hot = rng.choice(hot)
                parent.set_ref(ref_i, current_hot)
            else:
                parent.set_ref(ref_i, rng.choice(live_addrs))

        # 8. Garbage structure: spanning chains among garbage plus
        # references into the live set (legal; never marked).
        garbage_addrs = [v.addr for v in garbage_views]
        for idx, v in enumerate(garbage_views):
            for ref_i in range(v.n_refs):
                r = rng.random()
                if r < p.null_ref_fraction:
                    continue
                if r < 0.6 and idx > 0:
                    v.set_ref(ref_i, garbage_views[rng.randrange(idx)].addr)
                elif garbage_addrs:
                    v.set_ref(ref_i, rng.choice(garbage_addrs))

        heap.set_roots(roots)

        built = BuiltHeap(
            heap=heap,
            profile=p,
            scale=self.scale,
            seed=self.seed,
            live={v.addr for v in live_views} | {s.addr for s in statics},
            garbage={v.addr for v in garbage_views},
            hot=hot,
            roots=roots,
            rng=rng,
        )
        self._verify(built)
        return built

    def _default_config(self, n_objects: int) -> MemorySystemConfig:
        """Size physical memory generously for the object count."""
        # Mean cell ~96B, plus LOS pages, x4 headroom for mutator phases.
        need = max(64, (n_objects * 96 * 4) // (1024 * 1024) + 32)
        size = 1
        while size < need:
            size *= 2
        return MemorySystemConfig(total_bytes=size * 1024 * 1024)

    def _verify(self, built: BuiltHeap) -> None:
        """Reachability must match the intended live set exactly."""
        reachable = built.heap.reachable()
        if reachable != built.live:
            missing = built.live - reachable
            extra = reachable - built.live
            raise AssertionError(
                f"graph generation broke reachability: {len(missing)} live "
                f"objects unreachable, {len(extra)} garbage reachable"
            )
