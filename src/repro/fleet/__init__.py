"""Multi-tenant fleet simulation: N modeled app instances under one SLO.

The paper motivates the GC unit with datacenter economics — GC burns a
double-digit share of fleet CPU cycles and wrecks tail latency (§I/§II).
This package scales the single-process query replay of
:mod:`repro.workloads.latency` to a modeled *fleet*: a roster of tenants
running mixed DaCapo profiles (:mod:`repro.fleet.spec`), per-tenant GC
pause timelines phase-shifted from shared base runs
(:mod:`repro.fleet.timeline`), a FIFO admission queue arbitrating
one-or-more accelerator units with shared-DRAM contention modeled as a
service-rate tax (:mod:`repro.fleet.admission`), a seeded open-loop load
balancer (:mod:`repro.fleet.balancer`), and an SLO report plus a
Cai-et-al-style lower-bound-overhead estimate
(:mod:`repro.fleet.report`, :mod:`repro.fleet.lbo`).

Everything is deterministic: the whole fleet derives from the
:class:`~repro.fleet.spec.FleetSpec` seed, so the ``fleet_slo`` /
``fleet_lbo`` figures shard per-tenant / per-fleet-size through
:mod:`repro.harness.sharding` and cache through
:mod:`repro.harness.simcache` with byte-identical digests.
"""

from repro.fleet.admission import (
    POLICIES,
    FailoverConfig,
    FailoverEvent,
    ScheduleResult,
    ServiceGrant,
    resolve_policy,
    schedule_fleet,
)
from repro.fleet.balancer import offline_split, spray, tenant_arrivals
from repro.fleet.faults import (
    DEFAULT_RESILIENCE_ROSTERS,
    FleetFault,
    FleetFaultSpec,
    FleetFaultSpecError,
)
from repro.fleet.lbo import fleet_lbo_rows
from repro.fleet.report import (
    ConservationError,
    FleetResult,
    TenantReport,
    fleet_resilience_row,
    fleet_summary_rows,
    simulate_fleet,
)
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.fleet.timeline import (
    base_run,
    reset_base_cache,
    tenant_heap_digest,
    tenant_timeline,
)

__all__ = [
    "DEFAULT_RESILIENCE_ROSTERS",
    "POLICIES",
    "ConservationError",
    "FailoverConfig",
    "FailoverEvent",
    "FleetFault",
    "FleetFaultSpec",
    "FleetFaultSpecError",
    "FleetResult",
    "FleetSpec",
    "ScheduleResult",
    "ServiceGrant",
    "TenantReport",
    "TenantSpec",
    "base_run",
    "fleet_lbo_rows",
    "fleet_resilience_row",
    "fleet_summary_rows",
    "offline_split",
    "resolve_policy",
    "reset_base_cache",
    "schedule_fleet",
    "simulate_fleet",
    "spray",
    "tenant_arrivals",
    "tenant_heap_digest",
    "tenant_timeline",
]
