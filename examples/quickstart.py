#!/usr/bin/env python3
"""Quickstart: collect one heap with the CPU baseline and the GC unit.

Builds a synthetic DaCapo-like heap (avrora profile), runs the software
Mark & Sweep on the in-order CPU model, restores the heap, runs the
hardware GC unit on the byte-identical heap, and prints the comparison —
a one-benchmark slice of the paper's Fig. 15.

Run:  python examples/quickstart.py
"""

from repro.core import GCUnit, GCUnitConfig
from repro.swgc import SoftwareCollector
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder


def main() -> None:
    profile = DACAPO_PROFILES["avrora"]
    print(f"Building a synthetic '{profile.name}' heap "
          f"({profile.description.split(':')[0]})...")
    built = HeapGraphBuilder(profile, scale=0.03, seed=42).build()
    heap = built.heap
    print(f"  {built.n_objects} objects, {len(built.live)} reachable, "
          f"{len(built.roots)} roots, "
          f"{heap.allocator.blocks_in_use} blocks\n")

    checkpoint = heap.checkpoint()

    print("Collecting with the software baseline (Rocket-like CPU)...")
    sw = SoftwareCollector(heap).collect()
    print(f"  mark  {sw.mark_ms:6.2f} ms   sweep {sw.sweep_ms:6.2f} ms   "
          f"marked {sw.objects_marked}, freed {sw.cells_freed} cells\n")

    heap.restore(checkpoint)

    print("Collecting with the GC unit (baseline config: 1024-entry mark "
          "queue,\n16 marker slots, 2 sweepers)...")
    hw = GCUnit(heap, GCUnitConfig()).collect()
    print(f"  mark  {hw.mark_ms:6.2f} ms   sweep {hw.sweep_ms:6.2f} ms   "
          f"marked {hw.objects_marked}, freed {hw.cells_freed} cells\n")

    assert hw.objects_marked == sw.objects_marked, "collectors must agree"

    print("Speedups (paper: 4.2x mark, 1.9x sweep):")
    print(f"  mark   {sw.mark_cycles / hw.mark_cycles:5.2f}x")
    print(f"  sweep  {sw.sweep_cycles / hw.sweep_cycles:5.2f}x")
    print(f"  total  {sw.total_cycles / hw.total_cycles:5.2f}x")
    print(f"\nUnit work counters: {hw.refs_traced} references traced, "
          f"{hw.objects_requeued} duplicate mark attempts, "
          f"{hw.spilled_entries} mark-queue entries spilled to memory.")


if __name__ == "__main__":
    main()
