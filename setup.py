"""Legacy setup shim: this environment has no `wheel` package, so PEP 660
editable installs fail; `pip install -e . --no-use-pep517` (or plain
`pip install -e .` with recent pip) uses this file instead."""
from setuptools import setup

setup()
