"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "avrora" in out

    def test_run_experiment(self, capsys):
        assert main(["run", "fig22"]) == 0
        out = capsys.readouterr().out
        assert "unit/Rocket ratio" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "avrora", "--scale", "0.008"]) == 0
        out = capsys.readouterr().out
        assert "overall speedup" in out

    def test_compare_unknown_benchmark(self, capsys):
        assert main(["compare", "specjbb"]) == 2

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "Mark Q." in capsys.readouterr().out

    def test_run_with_scale_and_seed(self, capsys):
        assert main(["run", "abl_barriers"]) == 0


class TestTraceCommand:
    def test_chrome_export_is_valid(self, capsys, tmp_path):
        out = tmp_path / "gc.json"
        assert main(["trace", "avrora", "--scale", "0.008",
                     "--out", str(out), "--digest"]) == 0
        text = capsys.readouterr().out
        assert "digest:" in text and "memory requests" in text
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events, "empty Chrome trace"
        phases = {e["name"] for e in events if e.get("ph") == "B"}
        assert {"hw.mark", "hw.sweep", "sw.mark", "sw.sweep"} <= phases
        # Every slice must carry the required trace_event keys.
        for e in events:
            assert {"name", "ph", "pid"} <= e.keys()
        assert doc["otherData"]["target"] == "avrora"

    def test_figure_target_resolves(self, capsys, tmp_path):
        out = tmp_path / "fig.jsonl"
        assert main(["trace", "fig16", "--scale", "0.008", "--collector",
                     "hw", "--format", "jsonl", "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert isinstance(first[0], int) and isinstance(first[1], str)
        assert "profile avrora" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "gc.csv"
        assert main(["trace", "avrora", "--scale", "0.008", "--collector",
                     "sw", "--format", "csv", "--out", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("cycle,category")

    def test_unknown_target(self, capsys):
        assert main(["trace", "specjbb"]) == 2
        assert "unknown trace target" in capsys.readouterr().err
