#!/usr/bin/env python3
"""Fault drill: inject a hardware fault, watch the watchdog name the
culprit, and let the software safety net finish the pause.

The paper's prototype keeps the whole GC algorithm behind a replaceable
``libhwgc`` (§V-E) precisely so a software implementation can stand in for
the unit. This drill exercises that escape hatch end-to-end against the
simulated device:

1. a fault plane is armed (same machinery as ``REPRO_HWFAULTS``) — here a
   dropped DRAM response and, in a second round, a wedged marker slot;
2. the driver starts a hardware collection under a ``GCWatchdog``;
3. the fault starves the pipeline, the watchdog trips and produces a
   ``StallReport`` naming the stalled component and its oldest
   outstanding request;
4. the driver aborts the unit (discarding residual events and queued
   memory requests), restores the pre-GC heap snapshot, and re-runs the
   collection on the ``SoftwareCollector``;
5. the recovered heap's live set is compared against the BFS oracle and
   its logical digest against a fault-free reference run.

Run:  python examples/fault_drill.py
"""

from repro.core.config import GCUnitConfig
from repro.core.driver import HWGCDriver
from repro.core.mmio import Reg, Status
from repro.engine.faultplane import parse_hwfault_spec
from repro.heap.verify import heap_digest
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder

PROFILE = "luindex"
SCALE = 0.01
SEED = 13


def fresh_heap():
    return HeapGraphBuilder(DACAPO_PROFILES[PROFILE], scale=SCALE,
                            seed=SEED).build().heap


def reference_run():
    """Fault-free collection: the digest every drill must converge to."""
    heap = fresh_heap()
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    safe = driver.run_gc_safe()
    assert safe.outcome == "hardware", safe.reason()
    heap.prune_dead(heap.reachable())
    return heap_digest(heap)


def drill(spec: str, reference_digest: str) -> None:
    print(f"--- drill: {spec} " + "-" * max(0, 50 - len(spec)))
    heap = fresh_heap()
    oracle = heap.reachable()
    plane = parse_hwfault_spec(spec)
    plane.install(heap.memsys.stats, heap.memsys.phys)
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()

    print(f"1. armed: {', '.join(f.spec() for f in plane.faults)}")
    safe = driver.run_gc_safe()

    print(f"2. fired: {'; '.join(str(f) for f in safe.faults) or 'nothing'}")
    if safe.stall is not None:
        print(f"3. watchdog diagnosis:\n   {safe.stall}")
    elif safe.verification is not None and not safe.verification.ok:
        problems = (safe.verification.mark_errors
                    + safe.verification.sweep_errors
                    + safe.verification.freelist_errors)
        print(f"3. software check caught it: {problems[0]}")
    else:
        print(f"3. hardware model error: {safe.hardware_error}")

    assert safe.fallback, "the drill fault should always force a fallback"
    print(f"4. fallback: {safe.reason()}")
    print(f"   discarded {safe.discarded_events} residual event(s), "
          f"{safe.discarded_requests} queued DRAM request(s); "
          f"STATUS went {Status.FALLBACK.name} -> "
          f"{driver.mmio.status.name}, FALLBACKS register = "
          f"{driver.mmio.read(Reg.FALLBACKS)}")

    live = heap.reachable()
    assert live == oracle, "live set diverged from the BFS oracle"
    heap.prune_dead(live)
    digest = heap_digest(heap)
    assert digest == reference_digest, "heap digest diverged"
    print(f"5. recovered: live set == oracle ({len(live)} objects), "
          f"heap digest == fault-free reference\n")


def main() -> None:
    print(f"workload: {PROFILE} at scale {SCALE}, seed {SEED}\n")
    reference_digest = reference_run()
    print(f"fault-free reference digest: {reference_digest}\n")
    # The two scenarios the watchdog must diagnose by name, plus one that
    # never stalls — only the software check catches a corrupted free list.
    drill("drop:dram", reference_digest)
    drill("stuck:marker", reference_digest)
    drill("corrupt:sweeper", reference_digest)
    print("All drills recovered. The unit can wedge or lie; the pause "
          "still completes\nwith the exact BFS-oracle live set (§V-E's "
          "replaceable libhwgc, exercised).")


if __name__ == "__main__":
    main()
