"""ManagedHeap: allocation routing, reachability, checkpoints, parity."""

import pytest

from repro.heap.heapimage import ManagedHeap
from repro.heap.layout import ObjectShape
from repro.memory.config import MemorySystemConfig

from tests.conftest import SMALL_MEM, make_random_heap


class TestAllocationRouting:
    def test_small_objects_go_to_marksweep(self, small_heap):
        view = small_heap.new_object(2, 2)
        assert small_heap.plan.marksweep.contains(view.status_paddr)

    def test_huge_objects_go_to_los(self, small_heap):
        view = small_heap.new_object(3, 400)
        assert small_heap.plan.los.contains(view.status_paddr)
        assert view.addr in small_heap.los_objects

    def test_immortal_and_code(self, small_heap):
        imm = small_heap.new_object(1, 0, space="immortal")
        code = small_heap.new_object(0, 4, space="code")
        assert small_heap.plan.immortal.contains(imm.status_paddr)
        assert small_heap.plan.code.contains(code.status_paddr)

    def test_unknown_space_rejected(self, small_heap):
        with pytest.raises(ValueError):
            small_heap.alloc(ObjectShape(1, 0), space="nursery")


class TestReachability:
    def test_simple_chain(self, small_heap):
        a = small_heap.new_object(1)
        b = small_heap.new_object(1)
        c = small_heap.new_object(0)
        a.set_ref(0, b.addr)
        b.set_ref(0, c.addr)
        small_heap.set_roots([a.addr])
        assert small_heap.reachable() == {a.addr, b.addr, c.addr}

    def test_cycles_terminate(self, small_heap):
        a = small_heap.new_object(1)
        b = small_heap.new_object(1)
        a.set_ref(0, b.addr)
        b.set_ref(0, a.addr)
        small_heap.set_roots([a.addr])
        assert small_heap.reachable() == {a.addr, b.addr}

    def test_cross_space_tracing(self, small_heap):
        static = small_heap.new_object(1, 0, space="immortal")
        big = small_heap.new_object(1, 400)  # LOS
        leaf = small_heap.new_object(0)
        static.set_ref(0, big.addr)
        big.set_ref(0, leaf.addr)
        small_heap.set_roots([static.addr])
        assert small_heap.reachable() == {static.addr, big.addr, leaf.addr}

    def test_live_marksweep_filter(self, small_heap):
        static = small_heap.new_object(1, 0, space="immortal")
        obj = small_heap.new_object(0)
        static.set_ref(0, obj.addr)
        small_heap.set_roots([static.addr])
        assert small_heap.live_marksweep_objects() == {obj.addr}


class TestCheckpoint:
    def test_restore_reverts_mutations(self):
        heap, views = make_random_heap(n_objects=100, seed=3)
        before = heap.reachable()
        cp = heap.checkpoint()
        views[0].set_ref(0, 0) if views[0].n_refs else None
        heap.new_object(2, 2)
        heap.set_roots([views[0].addr])
        heap.restore(cp)
        assert heap.reachable() == before

    def test_restore_allocator_state(self, small_heap):
        small_heap.new_object(1, 1)
        cp = small_heap.checkpoint()
        blocks = small_heap.allocator.blocks_in_use
        small_heap.new_object(40, 40)  # new class: new block
        small_heap.restore(cp)
        assert small_heap.allocator.blocks_in_use == blocks


class TestGCEpoch:
    def test_parity_flip(self, small_heap):
        assert small_heap.mark_parity == 1
        assert small_heap.allocator.alloc_mark_value == 0
        small_heap.complete_gc_cycle()
        assert small_heap.mark_parity == 0
        # Fresh objects must be "unmarked" for the next GC: bit == 1.
        assert small_heap.allocator.alloc_mark_value == 1
        view = small_heap.new_object(0)
        assert not view.is_marked(small_heap.mark_parity)
        assert small_heap.gc_count == 1

    def test_prune_dead(self, small_heap):
        a = small_heap.new_object(0)
        _b = small_heap.new_object(0)
        small_heap.set_roots([a.addr])
        removed = small_heap.prune_dead(small_heap.reachable())
        assert removed == 1
        assert small_heap.objects == [a.addr]


class TestIntegrity:
    def test_check_free_lists_detects_corruption(self, small_heap):
        small_heap.new_object(1, 1)
        # Corrupt a free cell's next pointer to escape its block.
        desc = small_heap.block_list.read(0)
        head = desc.freelist_head
        small_heap.mem.write_word(small_heap.to_physical(head),
                                  desc.base_vaddr + desc.size_bytes + 64)
        with pytest.raises(AssertionError):
            small_heap.check_free_lists()

    def test_object_view_payload(self, small_heap):
        view = small_heap.new_object(1, 3)
        view.set_payload(0, 0xABCD)
        assert view.get_payload(0) == 0xABCD
        assert view.refs() == []
        view.set_ref(0, view.addr)  # self-reference
        assert view.refs() == [view.addr]
