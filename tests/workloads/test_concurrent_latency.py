"""Concurrent mutator workload + the STW-vs-concurrent latency figure."""

import pytest

from repro.core.concurrent.barriers import MutatorBarriers
from repro.core.concurrent.collect import ConcurrentCycle
from repro.harness.experiments import ALL_EXPERIMENTS, conc_latency
from repro.heap.verify import reachable_digest
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder
from repro.workloads.latency import (
    LatencyComparison,
    QueryRecord,
    compare_stw_concurrent,
    percentile_summary,
)
from repro.workloads.mutator import (
    ConcurrentMutator,
    GCPauseRecord,
    MutatorModel,
)


def _build(scale=0.008, seed=13, profile="luindex"):
    return HeapGraphBuilder(DACAPO_PROFILES[profile], scale=scale,
                            seed=seed).build()


class TestConcurrentMutator:
    def test_functional_replay_is_deterministic(self):
        """Two untimed replays from the same checkpoint with the same
        seed perform the identical op stream and land on the same heap."""
        built = _build()
        heap = built.heap
        checkpoint = heap.checkpoint()
        outcomes = []
        for _ in range(2):
            heap.restore(checkpoint)
            mut = ConcurrentMutator(built, n_ops=100, seed=21)
            for _delay in mut.process(MutatorBarriers(heap)):
                pass
            heap.set_roots(mut.final_roots())
            outcomes.append((mut.ops, mut.allocs, mut.ref_writes,
                             mut.ref_reads, tuple(mut.final_roots()),
                             reachable_digest(heap)))
        assert outcomes[0] == outcomes[1]

    def test_final_roots_requires_quiescence(self):
        built = _build()
        mut = ConcurrentMutator(built, n_ops=50, seed=1)
        with pytest.raises(RuntimeError, match="quiesce"):
            mut.final_roots()

    def test_counters_add_up(self):
        built = _build()
        heap = built.heap
        mut = ConcurrentMutator(built, n_ops=150, seed=5)
        for _delay in mut.process(MutatorBarriers(heap)):
            pass
        assert mut.ops == 150
        assert mut.allocs == len(mut.allocated)
        assert mut.allocs + mut.ref_writes > 0
        heap.set_roots(mut.final_roots())
        assert heap.reachable()  # the surviving graph is non-empty


class TestMutatorModelConcurrent:
    def test_concurrent_collector_records_overlapped_mark(self):
        built = _build(scale=0.01)
        model = MutatorModel(built, collector="concurrent", seed=7,
                             conc_ops=80)
        run = model.run(n_gcs=2)
        assert run.collector == "concurrent"
        assert len(run.pauses) == 2
        for pause in run.pauses:
            # The overlapped mark is accounted separately from the pause:
            # pause = handshake + sweep, strictly below mark + sweep.
            assert pause.concurrent_mark_cycles > 0
            assert pause.pause_cycles < \
                pause.concurrent_mark_cycles + pause.sweep_cycles

    def test_concurrent_pauses_below_stw_pauses(self):
        built = _build(scale=0.01)
        checkpoint = built.heap.checkpoint()
        stw = MutatorModel(built, collector="hw", seed=7).run(n_gcs=2)
        built.heap.restore(checkpoint)
        conc = MutatorModel(built, collector="concurrent",
                            seed=7).run(n_gcs=2)
        assert max(p.pause_cycles for p in conc.pauses) < \
            max(p.pause_cycles for p in stw.pauses)

    def test_unknown_collector_rejected(self):
        with pytest.raises(ValueError, match="collector"):
            MutatorModel(_build(), collector="magic")

    def test_pause_record_backward_compatible(self):
        # Pre-concurrent construction sites omit the new field.
        rec = GCPauseRecord(index=0, start_cycle=0, mark_cycles=100,
                            sweep_cycles=50, objects_marked=1,
                            cells_freed=1)
        assert rec.concurrent_mark_cycles == 0
        assert rec.pause_cycles == 150


class TestPercentileSummary:
    def test_keys_and_ordering(self):
        records = [QueryRecord(i, 0, i * 1_000_000, False)
                   for i in range(1, 1001)]
        summary = percentile_summary(records)
        assert set(summary) == {"p50", "p90", "p99", "p99.9", "max"}
        assert summary["p50"] <= summary["p90"] <= summary["p99"] \
            <= summary["p99.9"] <= summary["max"]
        assert summary["max"] == pytest.approx(1000.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_summary([])


class TestCompareStwConcurrent:
    @pytest.fixture(scope="class")
    def comparison(self):
        built = _build(scale=0.01)
        checkpoint = built.heap.checkpoint()
        stw = MutatorModel(built, collector="hw", seed=7).run(n_gcs=3)
        built.heap.restore(checkpoint)
        conc = MutatorModel(built, collector="concurrent",
                            seed=7).run(n_gcs=3)
        return compare_stw_concurrent(stw, conc, n_queries=4_000,
                                      warmup=400)

    def test_concurrent_max_pause_strictly_below_stw(self, comparison):
        assert isinstance(comparison, LatencyComparison)
        assert comparison.concurrent_max_pause_ms < \
            comparison.stw_max_pause_ms

    def test_tail_latency_improves(self, comparison):
        # The open-loop query stream sees a shorter worst case...
        assert comparison.concurrent["max"] <= comparison.stw["max"]
        # ...and the pause-attributed extreme tail does not regress.
        assert comparison.concurrent["p99.9"] <= comparison.stw["p99.9"]
        assert comparison.tail_improvement >= 1.0

    def test_both_sides_share_the_schedule(self, comparison):
        # Warmup queries are discarded before aggregation.
        assert comparison.n_queries == 4_000 - 400
        assert comparison.interval_cycles > 0
        assert comparison.service_mean_cycles > 0


class TestConcLatencyExperiment:
    def test_registered_in_suite(self):
        assert ALL_EXPERIMENTS["conc_latency"] is conc_latency

    @pytest.mark.slow
    def test_experiment_renders_and_meets_criterion(self):
        result = conc_latency(scale=0.015, n_gcs=2, n_queries=3_000,
                              warmup=300)
        rendered = result.render()
        assert "conc_latency" in rendered or "Concurrent" in rendered
        comparison = result.extras["comparison"]
        # The acceptance criterion for the figure itself: the concurrent
        # collector's max pause is strictly below STW at this scale.
        assert comparison.concurrent_max_pause_ms < \
            comparison.stw_max_pause_ms
        for row in ("p50", "p99", "p99.9"):
            assert row in rendered
