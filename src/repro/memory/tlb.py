"""TLBs for the CPU and the GC unit's marker/tracer.

The baseline GC-unit design has 32-entry TLBs per requester plus a 128-entry
shared L2 TLB (§VI-A). TLB hits are free (translation is folded into the
access); misses go to the shared L2 TLB and then to the page-table walker.

Superpage support (§VII: "large heaps could use superpages instead of 4KB
pages"): a 2 MiB mapping occupies one entry but covers 512 pages, which is
how superpages relieve the TLB pressure the paper identifies as the unit's
bottleneck.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.engine.simulator import Completion, Event, Simulator, fastpath_enabled
from repro.engine.stats import StatsRegistry
from repro.memory.config import TLBConfig
from repro.memory.paging import PAGE_SIZE, SUPERPAGE_SIZE
from repro.memory.ptw import PageTableWalker


class _EntryStore:
    """Shared-capacity LRU over 4 KiB and 2 MiB entries."""

    def __init__(self, entries: int):
        self.capacity = entries
        # Keys are ints: ``vpn << 1`` for pages, ``(super_index << 1) | 1``
        # for superpages (a bijective encoding of the old ("p"/"s", index)
        # tuples — same entries, same LRU order, cheaper hashing); values:
        # base physical address of the page/superpage.
        self._map: "OrderedDict[int, int]" = OrderedDict()

    def lookup(self, vaddr: int) -> Optional[int]:
        """Physical address for vaddr, or None."""
        entries = self._map
        super_key = (vaddr // SUPERPAGE_SIZE) << 1 | 1
        base = entries.get(super_key)
        if base is not None:
            entries.move_to_end(super_key)
            return base + vaddr % SUPERPAGE_SIZE
        page_key = (vaddr // PAGE_SIZE) << 1
        base = entries.get(page_key)
        if base is not None:
            entries.move_to_end(page_key)
            return base + vaddr % PAGE_SIZE
        return None

    def insert(self, vaddr: int, paddr: int, superpage: bool) -> None:
        if superpage:
            key = (vaddr // SUPERPAGE_SIZE) << 1 | 1
            base = paddr - paddr % SUPERPAGE_SIZE
        else:
            key = (vaddr // PAGE_SIZE) << 1
            base = paddr - paddr % PAGE_SIZE
        if key in self._map:
            self._map.move_to_end(key)
            return
        if len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[key] = base

    def flush(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


class SharedL2TLB:
    """A passive second-level TLB shared by the unit's requesters."""

    def __init__(self, entries: int = 128, latency: int = 2):
        self.entries = entries
        self.latency = latency
        self._store = _EntryStore(entries)
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int) -> Optional[int]:
        paddr = self._store.lookup(vaddr)
        if paddr is None:
            self.misses += 1
        else:
            self.hits += 1
        return paddr

    def insert(self, vaddr: int, paddr: int, superpage: bool = False) -> None:
        self._store.insert(vaddr, paddr, superpage)

    def flush(self) -> None:
        self._store.flush()


class TLB:
    """A fully-associative, LRU first-level TLB.

    ``translate(vaddr)`` returns an event that triggers with the physical
    address. Hits complete in the same cycle; misses consult the shared L2
    TLB (if present) and then the PTW.
    """

    def __init__(
        self,
        sim: Simulator,
        config: TLBConfig,
        ptw: PageTableWalker,
        name: str = "tlb",
        l2: Optional[SharedL2TLB] = None,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.ptw = ptw
        self.name = name
        self.l2 = l2
        self.stats = stats if stats is not None else StatsRegistry()
        self._store = _EntryStore(config.entries)
        self._c_hits = self.stats.counter(f"tlb.{name}.hits")
        self._c_misses = self.stats.counter(f"tlb.{name}.misses")
        self._c_l2_hits = self.stats.counter(f"tlb.{name}.l2_hits")
        self._ev_translate = f"{name}.translate"
        self._fast = fastpath_enabled()

    def translate(self, vaddr: int):
        """Translate a virtual address; completes with the physical address.

        L1 hits return a same-cycle :class:`Completion` (identical to the
        legacy pre-triggered Event, minus the allocation); L2 hits return
        one due after the L2 latency — a single queue insertion happens
        only if the requester actually suspends on it.
        """
        paddr = self._store.lookup(vaddr)
        trace = self.stats.trace
        if paddr is not None:
            self._c_hits.value += 1
            if trace is not None:
                trace.events.append((self.sim.now, "tlb", self.name, "hit"))
            if self._fast:
                return Completion(self.sim, self.sim.now, paddr)
            event = Event(self.sim, name=self._ev_translate)
            event.trigger(paddr)
            return event
        self._c_misses.value += 1
        if trace is not None:
            trace.events.append((self.sim.now, "tlb", self.name, "miss"))
        if self.l2 is not None:
            l2_paddr = self.l2.lookup(vaddr)
            if l2_paddr is not None:
                self._c_l2_hits.value += 1
                if trace is not None:
                    trace.events.append((self.sim.now, "tlb", self.name, "l2_hit"))
                superpage = self.ptw.page_table.is_superpage(vaddr)
                self._store.insert(vaddr, l2_paddr, superpage)
                if self._fast:
                    return Completion(
                        self.sim, self.sim.now + self.l2.latency, l2_paddr
                    )
                event = Event(self.sim, name=self._ev_translate)
                self.sim.schedule(self.l2.latency, event.trigger, l2_paddr)
                return event

        stats = self.stats
        if stats.hwfaults is not None or stats.watchdog is not None:
            return self._walk_supervised(vaddr)
        event = Event(self.sim, name=self._ev_translate)

        def _walked(walked_paddr: int) -> None:
            superpage = self.ptw.page_table.is_superpage(vaddr)
            self._store.insert(vaddr, walked_paddr, superpage)
            if self.l2 is not None:
                self.l2.insert(vaddr, walked_paddr, superpage)
            event.trigger(walked_paddr)

        self.ptw.walk(vaddr).add_callback(_walked)
        return event

    def _walk_supervised(self, vaddr: int):
        """Page-walk path with fault injection and watchdog tracking.

        Only reached on an L1+L2 miss when a fault plane or watchdog is
        attached — hit paths above are untouched. The walk is tracked as an
        outstanding ``tlb`` request until its translation is *delivered*,
        so dropped, wedged and delayed walks all stay visible to the stall
        diagnosis.
        """
        sim = self.sim
        event = Event(sim, name=self._ev_translate)
        wd = self.stats.watchdog
        if wd is not None:
            wd.note_submit("tlb", id(event), sim.now,
                           f"page walk for 0x{vaddr:x} ({self.name})")
        plane = self.stats.hwfaults
        fault = None
        if plane is not None:
            if plane.is_stuck("tlb"):
                return event
            fault = plane.fire("tlb", sim.now)
            if fault is not None and fault.kind in ("drop", "stuck"):
                # The walk never happens: the requester waits forever.
                return event

        def _deliver(walked_paddr: int) -> None:
            if wd is not None:
                wd.note_complete("tlb", id(event))
            event.trigger(walked_paddr)

        def _walked(walked_paddr: int) -> None:
            if fault is not None and fault.kind == "corrupt":
                # Deliver a corrupted translation without caching it (the
                # fault is transient, not a poisoned TLB entry).
                _deliver(plane.corrupt_value(walked_paddr))
                return
            superpage = self.ptw.page_table.is_superpage(vaddr)
            self._store.insert(vaddr, walked_paddr, superpage)
            if self.l2 is not None:
                self.l2.insert(vaddr, walked_paddr, superpage)
            if fault is not None and fault.kind == "delay":
                sim.schedule(fault.delay_cycles, _deliver, walked_paddr)
            else:
                _deliver(walked_paddr)

        self.ptw.walk(vaddr).add_callback(_walked)
        return event

    def flush(self) -> None:
        self._store.flush()

    @property
    def occupancy(self) -> int:
        return len(self._store)
