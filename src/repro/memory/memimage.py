"""Functional physical-memory image.

A flat, word-addressed memory backed by a numpy ``uint64`` array. Every
functional artifact of the system — object headers, reference fields, free
lists, page tables, the spill region, the hwgc root region — lives in this
image, so the GC algorithms (software and accelerator) operate on *real*
in-memory data structures rather than Python mirrors.

Timing is handled separately by the DRAM/cache models; see
:mod:`repro.memory.interconnect` for how functional access and timing are
paired.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.memory.config import WORD_BYTES

_U64_MASK = (1 << 64) - 1

#: Dirty-tracking granularity: 4096 words = 32 KiB per block. A GC run
#: touches a few percent of the image (mark bits, free-list links, spill
#: region), so block-sparse restore copies megabytes instead of the full
#: multi-hundred-MB array — profiling showed the dense ``ndarray.copy``/
#: ``copyto`` pair was ~40% of a cold ``run_gc_comparison``.
_BLOCK_SHIFT = 12
_BLOCK_WORDS = 1 << _BLOCK_SHIFT


class PhysicalMemory:
    """Word-granularity physical memory with atomic-update helpers.

    Mutations are tracked at block granularity (:data:`_BLOCK_WORDS` words)
    relative to the current *clean point* — the snapshot the image was last
    taken from or restored to. :meth:`restore` back to that same snapshot
    copies only the dirty blocks; restoring a foreign snapshot falls back
    to a dense copy and re-bases the clean point there. The handful of
    direct ``words[...] = ...`` writers outside this class (the SoA
    object-view fast path, the page-table bulk mapper) must call
    :meth:`note_dirty` — everything else funnels through the write helpers
    here.
    """

    def __init__(self, size_bytes: int):
        if size_bytes % WORD_BYTES != 0:
            raise ValueError(f"memory size must be word-aligned: {size_bytes}")
        self.size_bytes = size_bytes
        self.words = np.zeros(size_bytes // WORD_BYTES, dtype=np.uint64)
        #: Block indices written since the clean point (see class docstring).
        self._dirty_blocks: set = set()
        #: The snapshot array the image currently equals modulo
        #: ``_dirty_blocks`` (``None`` until the first snapshot/restore).
        self._clean_snap = None

    def note_dirty(self, index: int, count: int = 1) -> None:
        """Record an out-of-band write of ``count`` words at word ``index``."""
        if count == 1:
            self._dirty_blocks.add(index >> _BLOCK_SHIFT)
        else:
            self._dirty_blocks.update(
                range(index >> _BLOCK_SHIFT,
                      ((index + count - 1) >> _BLOCK_SHIFT) + 1))

    def _index(self, addr: int) -> int:
        if addr % WORD_BYTES != 0:
            raise ValueError(f"unaligned word access: {addr:#x}")
        if not 0 <= addr < self.size_bytes:
            raise IndexError(f"physical address out of range: {addr:#x}")
        return addr // WORD_BYTES

    # -- scalar access ----------------------------------------------------

    def read_word(self, addr: int) -> int:
        """Read the 64-bit word at byte address ``addr``."""
        # Checks inlined (``_index`` only re-run to raise its message):
        # every functional access in a run goes through here.
        if addr % WORD_BYTES or not 0 <= addr < self.size_bytes:
            self._index(addr)
        return int(self.words[addr // WORD_BYTES])

    def write_word(self, addr: int, value: int) -> None:
        """Write the 64-bit word at byte address ``addr``."""
        if addr % WORD_BYTES or not 0 <= addr < self.size_bytes:
            self._index(addr)
        idx = addr // WORD_BYTES
        self.words[idx] = np.uint64(value & _U64_MASK)
        self._dirty_blocks.add(idx >> _BLOCK_SHIFT)

    # -- atomics (the marker's fetch-or / fetch-and, §IV-A) ---------------

    def fetch_or(self, addr: int, mask: int) -> int:
        """Atomically OR ``mask`` into the word; returns the *old* value."""
        idx = self._index(addr)
        old = int(self.words[idx])
        self.words[idx] = np.uint64((old | mask) & _U64_MASK)
        self._dirty_blocks.add(idx >> _BLOCK_SHIFT)
        return old

    def fetch_and(self, addr: int, mask: int) -> int:
        """Atomically AND ``mask`` into the word; returns the *old* value."""
        idx = self._index(addr)
        old = int(self.words[idx])
        self.words[idx] = np.uint64(old & mask & _U64_MASK)
        self._dirty_blocks.add(idx >> _BLOCK_SHIFT)
        return old

    # -- bulk access (the tracer's unit-stride reference copies) ----------

    def read_words(self, addr: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``addr``."""
        idx = self._index(addr)
        if idx + count > len(self.words):
            raise IndexError(f"bulk read past end: {addr:#x} +{count} words")
        return [int(w) for w in self.words[idx : idx + count]]

    def write_words(self, addr: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``addr``."""
        idx = self._index(addr)
        vals = [np.uint64(v & _U64_MASK) for v in values]
        if idx + len(vals) > len(self.words):
            raise IndexError(f"bulk write past end: {addr:#x} +{len(vals)} words")
        self.words[idx : idx + len(vals)] = vals
        self.note_dirty(idx, len(vals))

    def fill(self, addr: int, count: int, value: int = 0) -> None:
        """Fill ``count`` words starting at ``addr`` with ``value``."""
        idx = self._index(addr)
        self.words[idx : idx + count] = np.uint64(value & _U64_MASK)
        self.note_dirty(idx, count)

    # -- snapshots (runs mutate mark bits / free lists) --------------------

    def snapshot(self) -> np.ndarray:
        """A copy of the entire image, for restoring between GC runs.

        The copy becomes the image's clean point: until another snapshot
        (or a foreign restore) supersedes it, restores back to it are
        block-sparse.
        """
        snap = self.words.copy()
        self._clean_snap = snap
        self._dirty_blocks.clear()
        return snap

    def restore(self, snap: np.ndarray) -> None:
        """Restore a snapshot taken from this memory.

        Restoring the current clean point copies only the blocks written
        since it was established — the common checkpoint/collect/restore/
        collect pattern of every comparison harness. Any other snapshot is
        restored densely and becomes the new clean point.
        """
        if snap.shape != self.words.shape:
            raise ValueError("snapshot shape mismatch")
        dirty = self._dirty_blocks
        if snap is self._clean_snap:
            words = self.words
            for block in dirty:
                lo = block << _BLOCK_SHIFT
                hi = lo + _BLOCK_WORDS
                words[lo:hi] = snap[lo:hi]
        else:
            np.copyto(self.words, snap)
            self._clean_snap = snap
        dirty.clear()

    def __repr__(self) -> str:
        return f"PhysicalMemory({self.size_bytes // (1024 * 1024)} MiB)"
