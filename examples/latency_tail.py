#!/usr/bin/env python3
"""Tail-latency demo (Fig. 1b): what GC pauses do to an interactive service.

Simulates the lusearch scenario: an open-loop query stream (coordinated-
omission corrected) against a benchmark timeline whose GC pauses come from
the simulated collector — first with the software stop-the-world GC, then
with the hardware unit shortening every pause.

Run:  python examples/latency_tail.py
"""

from repro.harness.reporting import render_table
from repro.workloads import (
    DACAPO_PROFILES,
    HeapGraphBuilder,
    MutatorModel,
    QuerySimulator,
)
from repro.workloads.latency import tail_ratio


def run_one(collector: str):
    built = HeapGraphBuilder(DACAPO_PROFILES["lusearch"], scale=0.015,
                             seed=9).build()
    run = MutatorModel(built, collector=collector).run(n_gcs=3)
    mean_pause = run.gc_cycles // max(1, len(run.pauses))
    sim = QuerySimulator(
        run,
        interval_cycles=max(50_000, mean_pause // 6),
        service_mean_cycles=max(4_000, mean_pause // 60),
        seed=9,
    )
    records = sim.run_queries(n_queries=8_000, warmup=800)
    latencies = sorted(r.latency_ms for r in records)

    def pct(p):
        return latencies[min(len(latencies) - 1,
                             int(p / 100 * len(latencies)))]

    return {
        "collector": "software GC" if collector == "sw" else "GC unit",
        "GC %": 100 * run.gc_time_fraction,
        "mean pause ms": mean_pause / 1e6,
        "p50 ms": pct(50),
        "p99 ms": pct(99),
        "p99.9 ms": pct(99.9),
        "tail ratio": tail_ratio(records),
        "near-GC %": 100 * sum(r.near_gc for r in records) / len(records),
    }


def main() -> None:
    rows = [run_one("sw"), run_one("hw")]
    print(render_table(
        list(rows[0].keys()), [list(r.values()) for r in rows],
        title="lusearch, 10x-scaled open-loop query stream "
        "(coordinated omission corrected)",
    ))
    print("\nThe head of the distribution barely moves; the GC-induced "
          "tail — queries\nthat land on (or queue behind) a pause — "
          "shrinks with the unit because every\npause does. A pause-free "
          "concurrent configuration (§IV-D) would remove the\ntail "
          "entirely at the cost of barrier overheads "
          "(benchmarks/test_ablations.py).")


if __name__ == "__main__":
    main()
