"""In-order CPU timing model (Rocket-like, Table I).

The model exposes the operations a compiled GC loop performs — ``exec``
(ALU/control work), ``load``, ``store``, ``amo``, ``branch`` — as generator
sub-routines that GC algorithms invoke with ``yield from``. Loads and AMOs
are *blocking* (an in-order core stalls on use, which for a pointer-chasing
loop is immediately); stores retire through a small store buffer and only
stall when it fills; branches pay a pipeline-refill penalty when
mispredicted.

The paper justifies the in-order baseline: "A preliminary analysis of
running heap snapshots on ... BOOM out-of-order core ... showed that it
outperformed Rocket by only around 12% on average" (§VI). The optional
``miss_overlap`` knob lets the ablation benches approximate that modest
out-of-order benefit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.cache import Cache
from repro.memory.config import CacheConfig, TLBConfig
from repro.memory.interconnect import MemorySystem
from repro.memory.ptw import PageTableWalker
from repro.memory.request import AccessKind, MemRequest
from repro.memory.tlb import TLB


@dataclass
class CPUConfig:
    """Rocket-like core and cache-hierarchy parameters (Table I)."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, ways=4, hit_latency=2, mshrs=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, ways=8, hit_latency=20, mshrs=8
        )
    )
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    branch_mispredict_penalty: int = 3
    store_buffer_entries: int = 8
    #: 1 = fully blocking in-order core. The BOOM-style ablation raises this.
    miss_overlap: int = 1


class InOrderCPU:
    """Executes GC-algorithm operation streams with Rocket-like timing."""

    def __init__(
        self,
        sim: Simulator,
        memsys: MemorySystem,
        config: Optional[CPUConfig] = None,
        source: str = "cpu",
    ):
        self.sim = sim
        self.memsys = memsys
        self.config = config if config is not None else CPUConfig()
        self.source = source
        self.stats: StatsRegistry = memsys.stats
        self.l2 = Cache(sim, self.config.l2, memsys.model, name="l2",
                        stats=self.stats)
        self.l1d = Cache(sim, self.config.l1d, self.l2, name="l1d",
                         stats=self.stats)
        # Rocket's PTW refills through the L1 data cache.
        self.ptw = PageTableWalker(
            sim, memsys.page_table, self.l1d, source=f"{source}.ptw",
            stats=self.stats,
        )
        self.dtlb = TLB(sim, self.config.dtlb, self.ptw, name=f"{source}.dtlb",
                        l2=None, stats=self.stats)
        self._store_buffer: Deque[Event] = deque()
        self.instructions = 0
        self._k_loads = f"cpu.{source}.loads"
        self._k_stores = f"cpu.{source}.stores"
        self._k_amos = f"cpu.{source}.amos"
        self._k_mispredicts = f"cpu.{source}.mispredicts"

    # -- operation sub-routines (invoke with ``yield from``) -----------------

    def exec_ops(self, n: int):
        """``n`` cycles of non-memory work (ALU, address gen, loop control)."""
        self.instructions += n
        yield n

    def load(self, vaddr: int, size: int = 8):
        """Blocking load: translate, access the hierarchy, stall until data."""
        self.instructions += 1
        self.stats.inc(self._k_loads)
        trace = self.stats.trace
        if trace is not None:
            trace.emit(self.sim.now, "cpu", "load", vaddr)
        paddr = yield self.dtlb.translate(vaddr)
        req = MemRequest(addr=paddr, size=size, kind=AccessKind.READ,
                         source=self.source)
        yield self.l1d.submit(req)

    def amo(self, vaddr: int, size: int = 8):
        """Atomic read-modify-write; blocking like a load."""
        self.instructions += 1
        self.stats.inc(self._k_amos)
        trace = self.stats.trace
        if trace is not None:
            trace.emit(self.sim.now, "cpu", "amo", vaddr)
        paddr = yield self.dtlb.translate(vaddr)
        req = MemRequest(addr=paddr, size=size, kind=AccessKind.AMO,
                         source=self.source)
        yield self.l1d.submit(req)

    def store(self, vaddr: int, size: int = 8):
        """Store through the store buffer; stalls only when the buffer fills."""
        self.instructions += 1
        self.stats.inc(self._k_stores)
        trace = self.stats.trace
        if trace is not None:
            trace.emit(self.sim.now, "cpu", "store", vaddr)
        paddr = yield self.dtlb.translate(vaddr)
        req = MemRequest(addr=paddr, size=size, kind=AccessKind.WRITE,
                         source=self.source)
        completion = self.l1d.submit(req)
        self._store_buffer.append(completion)
        while len(self._store_buffer) > self.config.store_buffer_entries:
            oldest = self._store_buffer.popleft()
            if not oldest.triggered:
                yield oldest
        # Drop already-retired stores from the front.
        while self._store_buffer and self._store_buffer[0].triggered:
            self._store_buffer.popleft()
        yield 1  # issue slot

    def branch(self, mispredicted: bool):
        """A conditional branch; mispredicts flush the short Rocket pipeline."""
        self.instructions += 1
        if mispredicted:
            self.stats.inc(self._k_mispredicts)
            yield self.config.branch_mispredict_penalty
        else:
            yield 1

    def drain_stores(self):
        """Wait for all buffered stores (end of a GC phase)."""
        while self._store_buffer:
            oldest = self._store_buffer.popleft()
            if not oldest.triggered:
                yield oldest
