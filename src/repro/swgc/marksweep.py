"""Software Mark & Sweep collector, timed on the in-order CPU model.

This is the baseline of Figs. 15–17 and 20: "we rewrote Jikes's GC in C,
compiling it with -O3 and linking it into the JVM" (§VI-A). The algorithm
is identical to the accelerator's — same bidirectional header encoding, same
parity marking, same per-block cell sweep writing free lists — executed as
the dependent load/store/branch stream a compiled loop produces.

The software mark queue lives in real memory (we reuse the spill region,
which the software collector owns when the unit is idle), so queue pushes
and pops are genuine stores/loads that mostly hit in the L1 — matching the
paper's observation that the only locality a CPU can exploit during marking
is incidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.simulator import Simulator
from repro.heap.header import (
    decode_refcount,
    header_is_marked,
    header_with_mark,
    scan_word_is_object,
)
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import WORD_BYTES
from repro.swgc.cpu import CPUConfig, InOrderCPU

# Fixed instruction costs (cycles of non-memory work) for the compiled GC
# loops. These model the -O3 C implementation: loop control, address
# arithmetic, and field decoding around each memory operation.
_MARK_LOOP_OVERHEAD = 3  # pop bookkeeping + dispatch
_MARK_DECODE_OVERHEAD = 3  # extract mark bit / refcount from the header
_PUSH_OVERHEAD = 2  # per-reference null check + enqueue arithmetic
_SWEEP_CELL_OVERHEAD = 2  # cell-address arithmetic + loop control
_SWEEP_BLOCK_OVERHEAD = 4  # per-block setup


@dataclass
class SoftwareGCResult:
    """Timing and work counters for one software collection."""

    mark_cycles: int
    sweep_cycles: int
    objects_marked: int
    cells_freed: int
    cells_live: int
    queue_peak: int

    @property
    def total_cycles(self) -> int:
        return self.mark_cycles + self.sweep_cycles

    @property
    def mark_ms(self) -> float:
        return self.mark_cycles / 1e6  # 1 GHz: cycles are ns

    @property
    def sweep_ms(self) -> float:
        return self.sweep_cycles / 1e6


class _MajorityPredictor:
    """A tiny branch predictor: predicts the running-majority outcome."""

    def __init__(self) -> None:
        self._bias = 0

    def mispredicted(self, taken: bool) -> bool:
        predicted_taken = self._bias >= 0
        self._bias = min(8, self._bias + 1) if taken else max(-8, self._bias - 1)
        return predicted_taken != taken


class SoftwareCollector:
    """Runs stop-the-world Mark & Sweep on the CPU model."""

    def __init__(
        self,
        heap: ManagedHeap,
        cpu: Optional[InOrderCPU] = None,
        cpu_config: Optional[CPUConfig] = None,
        layout: str = "bidirectional",
    ):
        if layout not in ("bidirectional", "conventional"):
            raise ValueError(f"unknown layout {layout!r}")
        self.heap = heap
        self.sim: Simulator = heap.sim
        #: "conventional" charges the TIB-indirection costs of Fig. 6a (two
        #: extra accesses per object to find the reference offsets) — the
        #: layout ablation of §IV-A idea I. The heap image itself stays
        #: bidirectional; only the timing differs.
        self.layout = layout
        self.cpu = cpu if cpu is not None else InOrderCPU(
            heap.sim, heap.memsys, config=cpu_config
        )
        # The software mark queue occupies the spill region.
        self._queue_base = heap.memsys.address_map.spill[0]
        self._queue_capacity = (
            heap.memsys.address_map.spill[1] - self._queue_base
        ) // WORD_BYTES
        self.last_result: Optional[SoftwareGCResult] = None

    # -- queue helpers (functional part of the timed queue ops) -------------

    def _queue_slot_vaddr(self, index: int) -> int:
        paddr = self._queue_base + (index % self._queue_capacity) * WORD_BYTES
        return self.heap.to_virtual(paddr)

    # -- phases ---------------------------------------------------------------

    def mark_process(self, counters: Dict[str, int]):
        """The compiled mark loop: BFS with header read-modify-writes."""
        heap = self.heap
        mem = heap.mem
        cpu = self.cpu
        parity = heap.mark_parity
        predictor = _MajorityPredictor()
        head = 0
        tail = 0

        # Enqueue the roots (reads from hwgc-space, writes to the queue).
        yield from cpu.load(heap.to_virtual(heap.roots.base))
        n_roots = heap.roots.count
        for i in range(n_roots):
            root_paddr = heap.roots.base + WORD_BYTES * (1 + i)
            yield from cpu.load(heap.to_virtual(root_paddr))
            ref = mem.read_word(root_paddr)
            if ref == 0:
                continue
            slot = self._queue_slot_vaddr(tail)
            mem.write_word(heap.to_physical(slot), ref)
            yield from cpu.store(slot)
            tail += 1

        peak = tail - head
        while head < tail:
            yield from cpu.exec_ops(_MARK_LOOP_OVERHEAD)
            slot = self._queue_slot_vaddr(head)
            yield from cpu.load(slot)
            ref = mem.read_word(heap.to_physical(slot))
            head += 1

            # Dependent header load, then the branch the paper calls out:
            # "the outcome of the mark operation determines whether or not
            # references need to be copied" (§IV-A).
            yield from cpu.load(ref)
            status_paddr = heap.to_physical(ref)
            status = mem.read_word(status_paddr)
            already = header_is_marked(status, parity)
            yield from cpu.exec_ops(_MARK_DECODE_OVERHEAD)
            yield from cpu.branch(predictor.mispredicted(not already))
            if already:
                continue

            # Mark: store the updated header word.
            mem.write_word(status_paddr, header_with_mark(status, parity))
            yield from cpu.store(ref)
            counters["objects_marked"] += 1

            n_refs, _is_array = decode_refcount(status)
            if self.layout == "conventional" and n_refs > 0:
                # Fig. 6a: load the TIB pointer, then the TIB's offset list.
                # Few distinct TIBs exist, so these mostly hit in the cache
                # ("most TIBs are in the cache", §IV-A).
                tib_base = heap.to_virtual(heap.plan.immortal.pstart)
                tib_vaddr = tib_base + (n_refs % 32) * 64
                yield from cpu.load(tib_vaddr)
                yield from cpu.load(tib_vaddr + WORD_BYTES)
            # Walk the reference section (unit-stride, below the header).
            for i in range(n_refs):
                field_vaddr = ref - WORD_BYTES * (n_refs - i)
                yield from cpu.load(field_vaddr)
                target = mem.read_word(heap.to_physical(field_vaddr))
                yield from cpu.exec_ops(_PUSH_OVERHEAD)
                if target == 0:
                    continue
                if tail - head >= self._queue_capacity:
                    raise MemoryError("software mark queue overflow")
                slot = self._queue_slot_vaddr(tail)
                mem.write_word(heap.to_physical(slot), target)
                yield from cpu.store(slot)
                tail += 1
                if tail - head > peak:
                    peak = tail - head
        yield from cpu.drain_stores()
        counters["queue_peak"] = peak

    def sweep_process(self, counters: Dict[str, int]):
        """The compiled sweep loop over the global block list (§V-D)."""
        heap = self.heap
        mem = heap.mem
        cpu = self.cpu
        parity = heap.mark_parity
        n_blocks = heap.block_list.count
        for block_index in range(n_blocks):
            yield from cpu.exec_ops(_SWEEP_BLOCK_OVERHEAD)
            desc_paddr = heap.block_list.descriptor_addr(block_index)
            yield from cpu.load(heap.to_virtual(desc_paddr), size=32)
            desc = heap.block_list.read(block_index)
            free_head = 0
            for cell_i in range(desc.n_cells):
                cell_vaddr = desc.base_vaddr + cell_i * desc.cell_bytes
                cell_paddr = heap.to_physical(cell_vaddr)
                yield from cpu.exec_ops(_SWEEP_CELL_OVERHEAD)
                yield from cpu.load(cell_vaddr)
                first_word = mem.read_word(cell_paddr)
                if scan_word_is_object(first_word):
                    n_refs, _ = decode_refcount(first_word)
                    status_vaddr = cell_vaddr + WORD_BYTES * (1 + n_refs)
                    yield from cpu.load(status_vaddr)
                    status = mem.read_word(heap.to_physical(status_vaddr))
                    live = header_is_marked(status, parity)
                    yield from cpu.branch(False)
                    if live:
                        counters["cells_live"] += 1
                        continue
                    counters["cells_freed"] += 1
                # Dead object or already-free cell: (re)link onto the list.
                mem.write_word(cell_paddr, free_head)
                yield from cpu.store(cell_vaddr)
                free_head = cell_vaddr
            head_paddr = desc_paddr + 3 * WORD_BYTES
            mem.write_word(head_paddr, free_head)
            yield from cpu.store(heap.to_virtual(head_paddr))
        yield from cpu.drain_stores()

    # -- driver -----------------------------------------------------------------

    def collect(self) -> SoftwareGCResult:
        """Run a full stop-the-world mark + sweep; returns timing/work stats.

        The caller is responsible for ``heap.complete_gc_cycle()`` afterwards
        (mirrors the runtime system finishing the pause).
        """
        counters = {
            "objects_marked": 0, "cells_freed": 0, "cells_live": 0,
            "queue_peak": 0,
        }
        trace = self.heap.memsys.stats.trace
        start = self.sim.now
        if trace is not None:
            trace.emit(start, "phase", "sw.mark", "B")
        done = self.sim.process(self.mark_process(counters), name="sw-mark")
        self.sim.run_until(done)
        if trace is not None:
            trace.emit(self.sim.now, "phase", "sw.mark", "E")
        mark_cycles = self.sim.now - start

        start = self.sim.now
        if trace is not None:
            trace.emit(start, "phase", "sw.sweep", "B")
        done = self.sim.process(self.sweep_process(counters), name="sw-sweep")
        self.sim.run_until(done)
        if trace is not None:
            trace.emit(self.sim.now, "phase", "sw.sweep", "E")
        sweep_cycles = self.sim.now - start

        self.last_result = SoftwareGCResult(
            mark_cycles=mark_cycles,
            sweep_cycles=sweep_cycles,
            objects_marked=counters["objects_marked"],
            cells_freed=counters["cells_freed"],
            cells_live=counters["cells_live"],
            queue_peak=counters["queue_peak"],
        )
        return self.last_result
