"""Mutator barriers + a concurrent-marking simulation (§IV-D).

:class:`MutatorBarriers` is the functional model of the barriers compiled
into mutator code:

* :meth:`write_ref` — the write barrier: "When overwriting a reference,
  write it into the same region in memory that is used to communicate the
  roots. The traversal unit writes all references that are written into
  this region to the mark queue."
* :meth:`read_ref` — the read barrier of Fig. 9: the extra load from the
  MSB-flipped shadow address returns a delta (0 from the zero page, or
  ``new - old`` from the reclamation unit for relocated pages), which is
  added to the loaded reference.

:class:`ConcurrentMarkSimulation` runs the traversal unit *while* a mutator
process keeps mutating the graph — the scenario of Fig. 3. With the write
barrier enabled, every reachable object survives (property-tested); with it
disabled, the simulation reproduces the lost-object race the barrier
exists to prevent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.concurrent.forwarding import ForwardingTable
from repro.core.config import GCUnitConfig
from repro.core.unit import TraversalUnit
from repro.heap.heapimage import ManagedHeap
from repro.heap.objectmodel import ObjectView


class MutatorBarriers:
    """The barrier code paths a mutator executes on reference operations."""

    def __init__(
        self,
        heap: ManagedHeap,
        forwarding: Optional[ForwardingTable] = None,
        write_barrier_enabled: bool = True,
    ):
        self.heap = heap
        self.forwarding = forwarding
        self.write_barrier_enabled = write_barrier_enabled
        self.marking_active = False
        self.write_barrier_hits = 0
        self.read_barrier_fixes = 0

    # -- write barrier ------------------------------------------------------

    def write_ref(self, parent: ObjectView, index: int, new_ref: int) -> None:
        """Store a reference field, shielding the old value from a
        concurrent traversal."""
        old = parent.get_ref(index)
        if (
            self.write_barrier_enabled
            and self.marking_active
            and old != 0
        ):
            # Publish the overwritten reference where the reader will see it.
            self.heap.roots.append(old)
            self.write_barrier_hits += 1
            trace = self.heap.memsys.stats.trace
            if trace is not None:
                trace.events.append(
                    (self.heap.sim.now, "barrier", "write", old))
        parent.set_ref(index, new_ref)

    # -- read barrier ---------------------------------------------------------

    def read_ref(self, parent: ObjectView, index: int) -> int:
        """Load a reference field through the relocating read barrier.

        The barrier "always returns the new address of x (y = x + Δy if
        object was relocated, x otherwise)" — no branch, no trap."""
        ref = parent.get_ref(index)
        if ref == 0 or self.forwarding is None:
            return ref
        delta = self.forwarding.delta(ref)
        if delta:
            self.read_barrier_fixes += 1
            # A real mutator would also heal the field (store the new
            # address back) so the barrier only pays once per field.
            parent.set_ref(index, ref + delta)
            trace = self.heap.memsys.stats.trace
            if trace is not None:
                trace.events.append(
                    (self.heap.sim.now, "barrier", "read_fix", ref,
                     ref + delta))
        return ref + delta


@dataclass
class ConcurrentMarkOutcome:
    """Result of one concurrent-marking run."""

    mark_cycles: int
    objects_marked: int
    mutations: int
    write_barrier_hits: int
    lost_objects: Set[int]  # reachable-at-end but unmarked (must be empty
    # when the write barrier is on)


class ConcurrentMarkSimulation:
    """Traversal unit racing a mutating application (Fig. 3's scenario)."""

    def __init__(
        self,
        heap: ManagedHeap,
        config: Optional[GCUnitConfig] = None,
        mutation_period: int = 400,  # cycles between mutator reference ops
        n_mutations: int = 200,
        write_barrier_enabled: bool = True,
        seed: int = 0,
    ):
        self.heap = heap
        self.config = config if config is not None else GCUnitConfig()
        self.mutation_period = mutation_period
        self.n_mutations = n_mutations
        self.barriers = MutatorBarriers(
            heap, write_barrier_enabled=write_barrier_enabled
        )
        self.rng = random.Random(seed)
        self.mutations_done = 0

    def _mutator_process(self, live_pool: List[int]):
        """Moves references around while the traversal runs: repeatedly
        detaches a subtree from one object and reattaches it to another —
        the exact "remove reference, load into register" race of Fig. 3."""
        heap = self.heap
        for _ in range(self.n_mutations):
            yield self.mutation_period
            if len(live_pool) < 2:
                return
            src = heap.view(self.rng.choice(live_pool))
            dst = heap.view(self.rng.choice(live_pool))
            if src.n_refs == 0 or dst.n_refs == 0:
                continue
            i = self.rng.randrange(src.n_refs)
            moved = src.get_ref(i)  # "load reference into register"
            if moved == 0:
                continue
            # Remove it from src (write barrier may publish the old value),
            # then store it into dst a little later.
            self.barriers.write_ref(src, i, 0)
            yield self.mutation_period // 4
            j = self.rng.randrange(dst.n_refs)
            self.barriers.write_ref(dst, j, moved)
            self.mutations_done += 1

    def run(self) -> ConcurrentMarkOutcome:
        """Run concurrent mark; returns the outcome with any lost objects."""
        heap = self.heap
        sim = heap.sim
        live_pool = sorted(heap.reachable())
        traversal = TraversalUnit(heap, self.config, concurrent=True)
        self.barriers.marking_active = True
        start = sim.now
        done = traversal.run()
        mutator = sim.process(self._mutator_process(live_pool), name="mutator")
        # Let the mutator finish, then perform the termination handshake:
        # marking only ends after the final barrier appends are consumed.
        sim.run_until(mutator)
        self.barriers.marking_active = False
        traversal.request_stop()
        sim.run_until(done)
        mark_cycles = sim.now - start

        parity = heap.mark_parity
        reachable_now = heap.reachable()
        lost = {
            addr for addr in reachable_now
            if not heap.view(addr).is_marked(parity)
        }
        return ConcurrentMarkOutcome(
            mark_cycles=mark_cycles,
            objects_marked=traversal.marker.objects_marked,
            mutations=self.mutations_done,
            write_barrier_hits=self.barriers.write_barrier_hits,
            lost_objects=lost,
        )
