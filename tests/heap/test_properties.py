"""Property-based GC invariants (hypothesis-driven).

Three invariants no collector configuration may violate:

* **Sweep safety** — a sweep never reclaims a reachable object; every
  reachable MarkSweep cell survives with its contents intact, and every
  dead one lands on a free list.
* **Spill FIFO** — the mark queue's spill/refill machinery preserves the
  enqueued multiset and, under a single producer/consumer, exact FIFO
  order across the main queue, staging queues, and the in-memory ring.
* **Allocation disjointness** — the segregated-free-list allocator (and
  the LOS bump path) never hands out overlapping cell ranges.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.unit import GCUnit
from repro.heap.heapimage import ManagedHeap
from repro.heap.layout import BidirectionalLayout, ObjectShape
from repro.memory.config import WORD_BYTES, MemorySystemConfig
from repro.memory.paging import VIRT_OFFSET
from repro.swgc import SoftwareCollector

from tests.conftest import SMALL_MEM
from tests.core.test_markqueue import drain_all, make_queue

# A heap recipe: per-object (n_refs, payload_words), a wiring seed, and
# which object indices become roots.
heap_recipes = st.builds(
    dict,
    shapes=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 8)),
        min_size=1, max_size=60,
    ),
    edges=st.lists(st.integers(0, 10_000), max_size=120),
    root_indices=st.lists(st.integers(0, 10_000), max_size=8),
)


def build_recipe_heap(recipe):
    """Deterministically materialize a recipe into a wired heap."""
    heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
    views = [heap.new_object(n_refs, payload)
             for n_refs, payload in recipe["shapes"]]
    slots = [(v, i) for v in views for i in range(v.n_refs)]
    for slot_pick, target_pick in zip(slots, recipe["edges"]):
        view, i = slot_pick
        view.set_ref(i, views[target_pick % len(views)].addr)
    heap.set_roots([views[i % len(views)].addr
                    for i in recipe["root_indices"]])
    return heap, views


class TestSweepNeverReclaimsReachable:
    @given(recipe=heap_recipes)
    @settings(max_examples=25, deadline=None)
    def test_software_collector(self, recipe):
        heap, _views = build_recipe_heap(recipe)
        reachable = heap.reachable()
        SoftwareCollector(heap).collect()
        heap.check_free_lists()
        self._assert_reachable_intact(heap, reachable)

    @given(recipe=heap_recipes)
    @settings(max_examples=10, deadline=None)
    def test_hardware_unit(self, recipe):
        heap, _views = build_recipe_heap(recipe)
        reachable = heap.reachable()
        GCUnit(heap).collect()
        heap.check_free_lists()
        self._assert_reachable_intact(heap, reachable)

    @staticmethod
    def _assert_reachable_intact(heap, reachable):
        parity = heap.mark_parity
        for addr in reachable:
            view = heap.view(addr)
            assert view.is_marked(parity), (
                f"reachable object {addr:#x} not marked after collection"
            )
        # Dead MarkSweep cells must all be free; the count cross-check
        # catches a sweeper freeing a marked (live) cell.
        live_ms = heap.live_marksweep_objects()
        total_ms = sum(1 for a in heap.objects
                       if heap.plan.marksweep.contains(heap.to_physical(a)))
        assert heap.allocator.free_cells() >= total_ms - len(live_ms)


class TestSpillPreservesFifo:
    @given(
        n_refs=st.integers(1, 300),
        entries=st.integers(2, 12),
        staging=st.integers(16, 32),
        compression=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_bulk_enqueue_then_drain(self, n_refs, entries, staging,
                                     compression):
        # Tiny main queue so most recipes force ring spills. Staging stays
        # >= the spill batch (16 entries compressed): refill reads need a
        # whole batch of inQ space, a sizing constraint the real
        # configuration (32 entries) satisfies by design.
        sim, mq = make_queue(entries=entries, compression=compression,
                             out_entries=staging, in_entries=staging,
                             throttle=staging)
        refs = [VIRT_OFFSET + i * WORD_BYTES for i in range(n_refs)]
        for ref in refs:
            mq.enqueue(ref)
            sim.run()  # let spill writes progress between enqueues
        assert drain_all(sim, mq, n_refs) == refs
        assert mq.is_drained

    @given(
        ops=st.lists(st.integers(0, 3), min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaved_producer_consumer(self, ops):
        # op 0: dequeue one (if anything is pending); 1-3: enqueue that many.
        sim, mq = make_queue(entries=4, out_entries=8, in_entries=8,
                             throttle=8)
        pushed = []
        popped = []
        next_ref = [0]

        def run_ops():
            for op in ops:
                if op == 0:
                    if len(popped) < len(pushed):
                        item = yield from mq.dequeue()
                        popped.append(item)
                else:
                    for _ in range(op):
                        ref = VIRT_OFFSET + next_ref[0] * WORD_BYTES
                        next_ref[0] += 1
                        mq.enqueue(ref)
                        pushed.append(ref)
                        yield 1
            while len(popped) < len(pushed):
                item = yield from mq.dequeue()
                popped.append(item)

        proc = sim.process(run_ops())
        sim.run_until(proc)
        assert popped == pushed
        assert mq.is_drained


class TestAllocationDisjointness:
    @given(
        shapes=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 40)),
            min_size=1, max_size=80,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_cell_spans_never_overlap(self, shapes):
        heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
        spans = []
        for n_refs, payload in shapes:
            shape = ObjectShape(n_refs, payload)
            view = heap.new_object(n_refs, payload)
            # The cell starts at the first ref word and spans the layout's
            # full footprint: [obj - 8*n_refs, obj - 8*n_refs + words*8).
            start = view.addr - WORD_BYTES * (1 + n_refs)
            spans.append(
                (start, start + BidirectionalLayout.words_needed(shape)
                 * WORD_BYTES)
            )
        spans.sort()
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert prev_end <= next_start, "overlapping allocations"

    def test_reuse_after_collection_stays_disjoint(self):
        heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
        views = [heap.new_object(1, 2) for _ in range(50)]
        heap.set_roots([views[0].addr])  # everything else is garbage
        SoftwareCollector(heap).collect()
        heap.complete_gc_cycle()
        heap.prune_dead(heap.reachable())
        # Freed cells are recycled; new objects must not overlap survivors.
        survivors = {views[0].addr}
        new_views = [heap.new_object(0, 2) for _ in range(30)]
        assert survivors.isdisjoint({v.addr for v in new_views})
        all_addrs = [a for a in heap.objects]
        assert len(all_addrs) == len(set(all_addrs))
