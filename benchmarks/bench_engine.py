#!/usr/bin/env python3
"""Engine microbenchmark: kernel events/sec + figure-suite wall time.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--out BENCH_engine.json]
      [--full-suite]

Measures, for each simulation kernel (``bucket``, ``heapq``, and
``vector``):

* **raw event throughput** — a ping-pong process pair exchanging events
  through zero-delay triggers and short fixed delays (the mix that
  dominates the DRAM/cache models);
* **end-to-end GC comparison time** — ``run_gc_comparison`` on a small
  avrora heap, the unit of work behind every figure;
* **trace-bus overhead** — the same comparison with no bus attached
  (the shipping configuration; must stay within a few percent of the
  pre-trace baseline) and with a live bus capturing every event;
* **end-to-end ``run-all`` wall time** — a tiny shadow suite timed cold,
  sim-cache-warm, and sharded (``run_all_seconds`` in the history);
  identity across all four configurations is gated, and the warm run must
  re-simulate zero cells and beat the cold run;
* **fleet SLO figure wall time** — the pinned small-scale multi-tenant
  scenario timed cold, sim-cache-warm, and tenant-sharded
  (``fleet_slo_seconds`` in the history); digest identity across the
  three runs is gated, and the warm run must re-simulate zero cells;
* **fleet resilience figure wall time** — the pinned small-scale fault
  drills (no faults / unit crash / tenant crash) timed cold,
  sim-cache-warm, and roster-sharded (``fleet_resilience_seconds`` in
  the history); same digest-identity and zero-resimulation gates;

plus (with ``--full-suite``) the wall time of ``run_suite(jobs=1)``. The
results land in ``BENCH_engine.json`` so the perf trajectory is tracked
across PRs. Cycle counts are recorded alongside timings: any cross-kernel
divergence is a correctness bug and fails the script.
"""

import argparse
import json
import platform
import sys
import time


def _make_kernel_workload(sim_module, n_events: int):
    """A producer/consumer pair exercising the kernel's hot paths."""
    sim = sim_module.Simulator()
    queue_depth = {"remaining": n_events}

    def producer():
        while queue_depth["remaining"] > 0:
            queue_depth["remaining"] -= 1
            # Alternate zero-delay fast path and short wheel delays.
            yield 0 if queue_depth["remaining"] % 2 else 3
            event = sim.event()
            sim.schedule(2, event.trigger, None)
            yield event

    sim.process(producer())
    return sim


def bench_kernel(engine: str, n_events: int = 200_000) -> dict:
    """Events/sec for one kernel over a synthetic hot-path workload."""
    import os

    os.environ["REPRO_ENGINE"] = engine
    # Re-import with the engine pinned; Simulator dispatches per instance,
    # so setting the env var before construction is sufficient.
    from repro.engine import simulator as sim_module

    sim = _make_kernel_workload(sim_module, n_events)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return {
        "engine": engine,
        "events_processed": sim.events_processed,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(sim.events_processed / elapsed),
        "final_cycle": sim.now,
    }


def bench_comparison(engine: str, scale: float = 0.02) -> dict:
    """End-to-end GC comparison wall time under one kernel.

    ``seconds`` is the cold run (full heap build + both collectors, the
    figure-suite unit of work); ``warm_seconds`` re-runs against the warm
    in-process heap cache, isolating the simulation kernels from the
    builder.
    """
    import os

    os.environ["REPRO_ENGINE"] = engine
    from repro.harness.heapcache import reset_cache
    from repro.harness.runners import run_gc_comparison
    from repro.workloads.profiles import DACAPO_PROFILES

    reset_cache()  # time the full build + both collectors, uncached
    t0 = time.perf_counter()
    comp = run_gc_comparison(DACAPO_PROFILES["avrora"], scale=scale, seed=1)
    cold = time.perf_counter() - t0
    warm = None
    for _ in range(2):  # min-of-2: the 1-CPU CI box is noisy
        t0 = time.perf_counter()
        run_gc_comparison(DACAPO_PROFILES["avrora"], scale=scale, seed=1)
        dt = time.perf_counter() - t0
        warm = dt if warm is None else min(warm, dt)
    return {
        "engine": engine,
        "seconds": round(cold, 3),
        "warm_seconds": round(warm, 3),
        "cycles": {
            "sw_mark": comp.sw.mark_cycles,
            "sw_sweep": comp.sw.sweep_cycles,
            "hw_mark": comp.hw.mark_cycles,
            "hw_sweep": comp.hw.sweep_cycles,
            "objects_marked": comp.sw.objects_marked,
        },
    }


ENGINES = ("bucket", "heapq", "vector")


def bench_fastpath_check(scale: float = 0.02,
                         engines: tuple = ENGINES) -> dict:
    """Kernel x fast-path identity: cycles and trace digest must match.

    Runs the GC comparison and a traced collection for every cell of the
    ``{kernels} x {fastpath on, off}`` matrix — ``REPRO_FASTPATH=0`` forces
    every hit through the legacy event path. Timings are report-only; the
    cycle counts and the sha256 digest of the full trace stream are gated —
    any divergence means a kernel or fast path changed simulated behaviour,
    which invalidates every number this script emits.
    """
    import hashlib
    import os

    from repro.harness.heapcache import reset_cache
    from repro.harness.runners import run_gc_comparison
    from repro.harness.tracing import trace_collection
    from repro.workloads.profiles import DACAPO_PROFILES

    profile = DACAPO_PROFILES["avrora"]
    out = {}
    for engine in engines:
        os.environ["REPRO_ENGINE"] = engine
        cells = {}
        for label, mode in (("on", "1"), ("off", "0")):
            os.environ["REPRO_FASTPATH"] = mode
            # Fresh builds: cached heaps embed components constructed under
            # the environment in force at build time.
            reset_cache()
            run_gc_comparison(profile, scale=scale, seed=1)  # warm build
            elapsed = None
            for _ in range(2):
                t0 = time.perf_counter()
                comp = run_gc_comparison(profile, scale=scale, seed=1)
                dt = time.perf_counter() - t0
                elapsed = dt if elapsed is None else min(elapsed, dt)
            trace = trace_collection("avrora", scale=scale, seed=1)
            digest = hashlib.sha256(
                repr(list(trace.bus)).encode()
            ).hexdigest()[:16]
            cells[label] = {
                "seconds": round(elapsed, 3),
                "cycles": {
                    "sw_mark": comp.sw.mark_cycles,
                    "sw_sweep": comp.sw.sweep_cycles,
                    "hw_mark": comp.hw.mark_cycles,
                    "hw_sweep": comp.hw.sweep_cycles,
                    "objects_marked": comp.sw.objects_marked,
                },
                "trace_digest": digest,
            }
        cells["speedup"] = round(
            cells["off"]["seconds"] / cells["on"]["seconds"], 3)
        out[engine] = cells
    os.environ.pop("REPRO_FASTPATH", None)
    os.environ.pop("REPRO_ENGINE", None)
    reset_cache()
    return out


def bench_trace_overhead(scale: float = 0.02, repeats: int = 3) -> dict:
    """Disabled-path vs live-bus cost of the trace layer.

    ``disabled`` times the default configuration — no bus attached, every
    emission site paying only an attribute load and a ``None`` check. It is
    the number gated against regression. ``enabled`` attaches a live
    :class:`TraceBus` through the capture harness and reports the full
    cost of recording (events/sec of emission included for context).
    """
    from repro.harness.heapcache import reset_cache
    from repro.harness.runners import run_gc_comparison
    from repro.harness.tracing import trace_collection
    from repro.workloads.profiles import DACAPO_PROFILES

    profile = DACAPO_PROFILES["avrora"]

    def timed(fn):
        best = None
        for _ in range(repeats):
            reset_cache()
            fn()  # warm build outside the timed region
            t0 = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best

    disabled = timed(lambda: run_gc_comparison(profile, scale=scale, seed=1))
    captured = {}

    def traced():
        captured["n"] = len(
            trace_collection("avrora", scale=scale, seed=1).bus
        )

    enabled = timed(traced)
    return {
        "scale": scale,
        "repeats": repeats,
        "disabled_seconds": round(disabled, 3),
        "enabled_seconds": round(enabled, 3),
        "events_captured": captured["n"],
        "enabled_overhead_pct": round(100.0 * (enabled / disabled - 1.0), 1),
    }


def bench_run_all(jobs: int = 2) -> dict:
    """End-to-end ``run-all`` wall time: cold, sim-cache-warm, sharded.

    Times a tiny shadow suite (three figures, scale 0.008) through four
    pipeline configurations: cold jobs=1 (every cell simulated), warm
    jobs=1 (every cell from ``REPRO_SIM_CACHE``), sharded jobs=N against
    the same warm cache (cells are shared between inline and sharded
    runs), and sharded jobs=N cold against a second empty cache. Timings
    are report-only; what gates the script is identity — all four runs
    must produce the same per-figure digests — and incrementality: the
    warm run must re-simulate **zero** cells.
    """
    import os
    import tempfile

    from repro.harness import suite as suite_mod
    from repro.harness.heapcache import reset_cache
    from repro.harness.parallel import digests, run_suite

    tiny = [
        ("fig01a", dict(scale=0.008, benchmarks=["avrora", "luindex"])),
        ("fig19", dict(scale=0.008, queue_entries=[64, 2048])),
        ("fig22", dict()),
    ]
    original = list(suite_mod.SUITE)
    saved = os.environ.get("REPRO_SIM_CACHE")
    cache_a = tempfile.mkdtemp(prefix="bench-simcache-a-")
    cache_b = tempfile.mkdtemp(prefix="bench-simcache-b-")
    suite_mod.SUITE[:] = tiny

    def timed(cache_dir, **kw):
        os.environ["REPRO_SIM_CACHE"] = cache_dir
        reset_cache()
        t0 = time.perf_counter()
        runs = run_suite(**kw)
        return round(time.perf_counter() - t0, 3), runs

    try:
        cold_s, cold = timed(cache_a, jobs=1)
        warm_s, warm = timed(cache_a, jobs=1)
        shard_warm_s, shard_warm = timed(cache_a, jobs=jobs,
                                         shard_figures=True)
        shard_cold_s, shard_cold = timed(cache_b, jobs=jobs,
                                         shard_figures=True)
    finally:
        suite_mod.SUITE[:] = original
        if saved is None:
            os.environ.pop("REPRO_SIM_CACHE", None)
        else:
            os.environ["REPRO_SIM_CACHE"] = saved
        reset_cache()

    fingerprints = {json.dumps(digests(runs), sort_keys=True)
                    for runs in (cold, warm, shard_warm, shard_cold)}
    return {
        "jobs": jobs,
        "suite": [exp_id for exp_id, _ in tiny],
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "sharded_warm_seconds": shard_warm_s,
        "sharded_cold_seconds": shard_cold_s,
        "cold_cells_simulated": sum(r.cache_misses for r in cold),
        "warm_cells_simulated": sum(r.cache_misses for r in warm),
        "warm_cells_hit": sum(r.cache_hits for r in warm),
        "identical_digests": len(fingerprints) == 1,
    }


def bench_fleet(jobs: int = 2) -> dict:
    """Fleet SLO figure wall time: cold, sim-cache-warm, tenant-sharded.

    Times the pinned small-scale multi-tenant scenario (the one
    ``tests/fleet/test_determinism.py`` pins by digest) through three
    pipeline configurations sharing one ``REPRO_SIM_CACHE``: cold inline
    (every tenant cell simulated), warm inline (every cell served from
    the cache), and sharded across the tenant axis against the same warm
    cache. Timings are report-only; what gates the script is digest
    identity across all three runs plus the warm run re-simulating
    **zero** cells.
    """
    import os
    import tempfile

    from repro.fleet.timeline import reset_base_cache
    from repro.harness.heapcache import reset_cache
    from repro.harness.sharding import run_entry_sharded
    from repro.harness.suite import run_entry

    kwargs = dict(scale=0.008, n_tenants=3, n_queries=600, warmup=60,
                  n_gcs=2)
    saved = os.environ.get("REPRO_SIM_CACHE")
    cache = tempfile.mkdtemp(prefix="bench-fleet-simcache-")
    os.environ["REPRO_SIM_CACHE"] = cache

    def timed(fn):
        reset_cache()
        reset_base_cache()
        t0 = time.perf_counter()
        run = fn()
        return round(time.perf_counter() - t0, 3), run

    try:
        cold_s, cold = timed(lambda: run_entry(0, "fleet_slo", kwargs))
        warm_s, warm = timed(lambda: run_entry(0, "fleet_slo", kwargs))
        shard_s, shard = timed(
            lambda: run_entry_sharded(0, "fleet_slo", kwargs, jobs=jobs))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_CACHE", None)
        else:
            os.environ["REPRO_SIM_CACHE"] = saved
        reset_cache()
        reset_base_cache()

    return {
        "jobs": jobs,
        "kwargs": kwargs,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "sharded_warm_seconds": shard_s,
        "warm_cells_simulated": warm.cache_misses,
        "warm_cells_hit": warm.cache_hits,
        "identical_digests": cold.digest == warm.digest == shard.digest,
    }


def bench_fleet_resilience(jobs: int = 2) -> dict:
    """Fleet resilience figure wall time: cold, warm, roster-sharded.

    Same harness as :func:`bench_fleet`, pointed at the fault-drill
    figure (the small-scale roster ``tests/fleet/test_determinism.py``
    pins by digest: fault-free, a unit crash interrupting an in-flight
    grant, and a crashed tenant). The fault plane, failover admission,
    and degraded-mode accounting all sit on the timed path, so this
    series catches a resilience-layer slowdown that the fault-free
    ``fleet_slo`` series would never see. Gated on digest identity
    across the three runs plus zero warm re-simulation.
    """
    import os
    import tempfile

    from repro.fleet.timeline import reset_base_cache
    from repro.harness.heapcache import reset_cache
    from repro.harness.sharding import run_entry_sharded
    from repro.harness.suite import run_entry

    kwargs = dict(scale=0.008, n_tenants=3, n_queries=300, warmup=30,
                  n_gcs=2, n_units=2,
                  rosters=(("no faults", ""),
                           ("crash u1", "crash:u1@1400000"),
                           ("crashed tenant", "crash:t1@2000000")))
    saved = os.environ.get("REPRO_SIM_CACHE")
    cache = tempfile.mkdtemp(prefix="bench-resilience-simcache-")
    os.environ["REPRO_SIM_CACHE"] = cache

    def timed(fn):
        reset_cache()
        reset_base_cache()
        t0 = time.perf_counter()
        run = fn()
        return round(time.perf_counter() - t0, 3), run

    try:
        cold_s, cold = timed(
            lambda: run_entry(0, "fleet_resilience", kwargs))
        warm_s, warm = timed(
            lambda: run_entry(0, "fleet_resilience", kwargs))
        shard_s, shard = timed(
            lambda: run_entry_sharded(0, "fleet_resilience", kwargs,
                                      jobs=jobs))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_CACHE", None)
        else:
            os.environ["REPRO_SIM_CACHE"] = saved
        reset_cache()
        reset_base_cache()

    return {
        "jobs": jobs,
        "kwargs": {k: v for k, v in kwargs.items() if k != "rosters"},
        "rosters": [list(r) for r in kwargs["rosters"]],
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "sharded_warm_seconds": shard_s,
        "warm_cells_simulated": warm.cache_misses,
        "warm_cells_hit": warm.cache_hits,
        "identical_digests": cold.digest == warm.digest == shard.digest,
    }


def bench_suite(jobs: int = 1) -> dict:
    """Wall time of the full figure suite (minutes; opt-in)."""
    from repro.harness.heapcache import reset_cache
    from repro.harness.parallel import digests, run_suite

    reset_cache()
    t0 = time.perf_counter()
    runs = run_suite(jobs=jobs, progress=lambda msg: print(msg, flush=True))
    elapsed = time.perf_counter() - t0
    return {
        "jobs": jobs,
        "seconds": round(elapsed, 1),
        "per_figure_seconds": {r.exp_id: round(r.elapsed, 1) for r in runs},
        "digests": digests(runs),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--full-suite", action="store_true",
                        help="also time run_suite(jobs=1) — takes minutes")
    parser.add_argument("--jobs", type=int, default=1,
                        help="workers for --full-suite")
    parser.add_argument("--run-all-jobs", type=int, default=2,
                        help="workers for the sharded run-all series")
    args = parser.parse_args()

    # Wall-clock trajectory across PRs: carry forward the previous file's
    # history and append this run, so BENCH_engine.json is append-style
    # for the headline number even though the sections are overwritten.
    history = []
    try:
        with open(args.out) as fh:
            history = json.load(fh).get("history", [])
    except (OSError, ValueError):
        pass

    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernel": [],
        "gc_comparison": [],
    }
    for engine in ENGINES:
        print(f"kernel bench: {engine} ...", flush=True)
        report["kernel"].append(bench_kernel(engine, args.events))
        print(f"gc comparison: {engine} ...", flush=True)
        report["gc_comparison"].append(bench_comparison(engine, args.scale))

    # Cross-kernel determinism gates the numbers: identical event counts
    # and identical GC cycle counts across all kernels, or the benchmark
    # itself is invalid.
    workloads = {(k["events_processed"], k["final_cycle"])
                 for k in report["kernel"]}
    if len(workloads) != 1:
        print("FATAL: kernels disagree on the synthetic workload", file=sys.stderr)
        return 1
    if len({json.dumps(c["cycles"], sort_keys=True)
            for c in report["gc_comparison"]}) != 1:
        print("FATAL: kernels disagree on GC cycle counts", file=sys.stderr)
        return 1
    c0 = report["gc_comparison"][0]
    report["comparison_speedup_vs_bucket"] = {
        c["engine"]: round(c["seconds"] / c0["seconds"], 3)
        for c in report["gc_comparison"][1:]
    }

    print("kernel x fastpath identity ...", flush=True)
    fp = bench_fastpath_check(args.scale)
    report["fastpath"] = fp
    cells = [(engine, mode, fp[engine][mode])
             for engine in fp for mode in ("on", "off")]
    if len({json.dumps(c["cycles"], sort_keys=True)
            for _, _, c in cells}) != 1:
        print("FATAL: kernel/fast-path matrix disagrees on GC cycle counts",
              file=sys.stderr)
        return 1
    if len({c["trace_digest"] for _, _, c in cells}) != 1:
        print("FATAL: kernel/fast-path matrix disagrees on the trace stream",
              file=sys.stderr)
        return 1

    print("trace overhead ...", flush=True)
    report["trace_overhead"] = bench_trace_overhead(args.scale)

    print("run-all cold/warm/sharded ...", flush=True)
    ra = bench_run_all(jobs=args.run_all_jobs)
    report["run_all"] = ra
    if not ra["identical_digests"]:
        print("FATAL: cold/warm/sharded run-all digests disagree",
              file=sys.stderr)
        return 1
    if ra["warm_cells_simulated"] != 0:
        print(f"FATAL: warm run-all re-simulated "
              f"{ra['warm_cells_simulated']} cell(s); expected 0",
              file=sys.stderr)
        return 1
    if not ra["warm_seconds"] < ra["cold_seconds"]:
        print("FATAL: sim-cache-warm run-all was not faster than cold "
              f"({ra['warm_seconds']}s vs {ra['cold_seconds']}s)",
              file=sys.stderr)
        return 1

    print("fleet slo cold/warm/sharded ...", flush=True)
    fl = bench_fleet(jobs=args.run_all_jobs)
    report["fleet"] = fl
    if not fl["identical_digests"]:
        print("FATAL: cold/warm/sharded fleet_slo digests disagree",
              file=sys.stderr)
        return 1
    if fl["warm_cells_simulated"] != 0:
        print(f"FATAL: warm fleet_slo re-simulated "
              f"{fl['warm_cells_simulated']} cell(s); expected 0",
              file=sys.stderr)
        return 1

    print("fleet resilience cold/warm/sharded ...", flush=True)
    fr = bench_fleet_resilience(jobs=args.run_all_jobs)
    report["fleet_resilience"] = fr
    if not fr["identical_digests"]:
        print("FATAL: cold/warm/sharded fleet_resilience digests disagree",
              file=sys.stderr)
        return 1
    if fr["warm_cells_simulated"] != 0:
        print(f"FATAL: warm fleet_resilience re-simulated "
              f"{fr['warm_cells_simulated']} cell(s); expected 0",
              file=sys.stderr)
        return 1

    history.append({
        "generated": report["generated"],
        "scale": args.scale,
        "gc_comparison_seconds": c0["seconds"],
        "kernel_events_per_sec": report["kernel"][0]["events_per_sec"],
        "per_engine": {
            c["engine"]: {
                "gc_comparison_seconds": c["seconds"],
                "warm_seconds": c["warm_seconds"],
                "kernel_events_per_sec": k["events_per_sec"],
            }
            for c, k in zip(report["gc_comparison"], report["kernel"])
        },
        "run_all_seconds": {
            "cold": ra["cold_seconds"],
            "warm": ra["warm_seconds"],
            "sharded_warm": ra["sharded_warm_seconds"],
            "sharded_cold": ra["sharded_cold_seconds"],
            "jobs": ra["jobs"],
        },
        "fleet_slo_seconds": {
            "cold": fl["cold_seconds"],
            "warm": fl["warm_seconds"],
            "sharded_warm": fl["sharded_warm_seconds"],
            "jobs": fl["jobs"],
        },
        "fleet_resilience_seconds": {
            "cold": fr["cold_seconds"],
            "warm": fr["warm_seconds"],
            "sharded_warm": fr["sharded_warm_seconds"],
            "jobs": fr["jobs"],
        },
    })
    report["history"] = history

    if args.full_suite:
        print("full suite ...", flush=True)
        report["suite"] = bench_suite(args.jobs)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    for row in report["kernel"]:
        print(f"  {row['engine']:7s} {row['events_per_sec']:>10,d} events/s")
    for row in report["gc_comparison"]:
        print(f"  {row['engine']:7s} comparison cold {row['seconds']:.2f}s / "
              f"warm {row['warm_seconds']:.2f}s")
    for engine in fp:
        cell = fp[engine]
        print(f"  {engine:7s} fastpath on {cell['on']['seconds']:.2f}s / off "
              f"{cell['off']['seconds']:.2f}s ({cell['speedup']:.2f}x, "
              f"digest {cell['on']['trace_digest']})")
    to = report["trace_overhead"]
    print(f"  tracing off {to['disabled_seconds']:.2f}s / on "
          f"{to['enabled_seconds']:.2f}s "
          f"({to['events_captured']:,} events, "
          f"+{to['enabled_overhead_pct']:.0f}%)")
    print(f"  run-all cold {ra['cold_seconds']:.2f}s / warm "
          f"{ra['warm_seconds']:.2f}s / sharded warm "
          f"{ra['sharded_warm_seconds']:.2f}s / sharded cold "
          f"{ra['sharded_cold_seconds']:.2f}s "
          f"(jobs={ra['jobs']}, {ra['warm_cells_hit']} cells cached)")
    print(f"  fleet_slo cold {fl['cold_seconds']:.2f}s / warm "
          f"{fl['warm_seconds']:.2f}s / sharded warm "
          f"{fl['sharded_warm_seconds']:.2f}s "
          f"(jobs={fl['jobs']}, {fl['warm_cells_hit']} cells cached)")
    print(f"  fleet_resilience cold {fr['cold_seconds']:.2f}s / warm "
          f"{fr['warm_seconds']:.2f}s / sharded warm "
          f"{fr['sharded_warm_seconds']:.2f}s "
          f"(jobs={fr['jobs']}, {fr['warm_cells_hit']} cells cached)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
