"""Content-addressed simulation result cache (``REPRO_SIM_CACHE``).

``run-all`` re-simulates every figure from scratch on every invocation,
even when nothing that could change the output has changed. Simulation
outputs here are *deterministic functions* of their inputs — that is the
repo's central invariant, enforced by the digest gates — so they are
cacheable by content address: hash everything the output depends on, and
an unchanged cell is a disk read instead of a simulation.

A **cell** is the unit of caching. For figures registered in
:data:`repro.harness.sharding.SHARDABLE`, a cell is one axis value (one
benchmark of fig15, one queue size of fig19, ...): the experiment is
invoked once per value and the per-cell results are refolded with the
figure's own ``ShardSpec`` merge — the identical merge the sharded runner
uses, so cache-cold, cache-warm, sharded, and inline runs all render the
same bytes, and a kwargs tweak or code change only re-simulates the cells
it actually invalidates. Non-shardable figures are cached whole-figure.

The cell key covers, via sha256 over canonical JSON:

* the experiment id and its **complete kwargs** (axis restricted to the
  cell's value);
* the resolved execution environment: ``REPRO_ENGINE`` kernel and
  ``REPRO_FASTPATH`` — different kernels are bit-identical by contract,
  but the contract is *checked* by running them, so they get distinct
  cells rather than cross-serving each other;
* a **code fingerprint**: sha256 over every ``src/repro/**/*.py`` file's
  path and contents. Any source change invalidates the whole cache —
  deliberately coarse: simulation results routinely depend on distant
  modules (config defaults, kernel internals), and a stale hit that
  silently masks a code change would corrupt the determinism story the
  digests exist to protect.

Entries reuse :mod:`repro.harness.checkpoint`'s envelope — schema version
plus an embedded sha256 over the payload JSON — so truncation, bit-rot, or
hand-editing surfaces as :class:`~repro.harness.checkpoint.CheckpointCorrupt`
and the cell is transparently re-simulated and overwritten. Writes are
atomic (tmp + rename) and the directory is LRU-capped by
``REPRO_SIM_CACHE_MAX_MB`` (:mod:`repro.harness.diskcache`).

Cached cells carry rows only, never ``extras`` (those can hold heavy or
unpicklable simulation objects); the rendered report does not read
``extras``, so the report stays byte-identical. Rows survive the JSON
round-trip exactly: floats serialize via ``repr`` (shortest round-trip)
and numpy scalars are converted to the Python scalars they render as.

When ``REPRO_HWFAULTS`` is armed the cache is bypassed entirely — fault
injection changes outputs without changing any key component, so serving
or storing under an armed plane would poison the address space.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.checkpoint import (
    CheckpointCorrupt,
    atomic_write_text,
    unwrap_payload,
    wrap_payload,
)
from repro.harness.diskcache import evict_lru, max_mb_from_env, touch

#: Bump when the cell payload layout changes; old entries then miss.
CELL_SCHEMA = 1

CELL_SUFFIX = ".cell.json"


@dataclass
class CellAccounting:
    """Hit/miss counts for one ``run_experiment`` call."""

    hits: int = 0
    misses: int = 0

    def as_tuple(self) -> Tuple[int, int]:
        return (self.hits, self.misses)


def cache_dir_from_env() -> Optional[Path]:
    """The configured cache directory, or ``None`` when disabled.

    ``REPRO_SIM_CACHE``: empty/``0``/``off``/``no`` disables; ``1`` means
    ``~/.cache/repro-simcache``; anything else is used as the directory.
    An armed ``REPRO_HWFAULTS`` plane disables the cache outright (see
    module docstring).
    """
    if os.environ.get("REPRO_HWFAULTS"):
        return None
    raw = os.environ.get("REPRO_SIM_CACHE", "")
    if raw in ("", "0", "off", "no"):
        return None
    if raw == "1":
        return Path.home() / ".cache" / "repro-simcache"
    return Path(raw)


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """sha256 over every ``src/repro`` Python source, memoized per process.

    The coarse invalidation knob: touching any source file retires every
    cached cell. Hashing ~150 small files costs single-digit milliseconds
    and runs once per process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        sha = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            sha.update(str(path.relative_to(root)).encode())
            sha.update(b"\0")
            sha.update(path.read_bytes())
            sha.update(b"\0")
        _CODE_FINGERPRINT = sha.hexdigest()
    return _CODE_FINGERPRINT


def reset_code_fingerprint() -> None:
    """Drop the memoized fingerprint (tests that edit sources on disk)."""
    global _CODE_FINGERPRINT
    _CODE_FINGERPRINT = None


def _jsonable(value: Any) -> Any:
    """Project a value to plain JSON types, exactly round-trippable.

    Tuples become lists (so a tuple-vs-list axis spelling keys the same
    cell), numpy scalars become the Python scalars they format as, and
    dataclass kwargs (e.g. a ``MemorySystemConfig``) project to sorted
    field dicts.
    """
    import numpy as np

    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                **{f.name: _jsonable(getattr(value, f.name))
                   for f in dataclasses.fields(value)}}
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _dumps(payload: Any) -> str:
    return json.dumps(payload, ensure_ascii=False, sort_keys=True,
                      allow_nan=True)


def cell_key(exp_id: str, kwargs: Dict[str, Any]) -> str:
    """The content address of one cell: inputs + environment + code."""
    payload = _dumps({
        "schema": CELL_SCHEMA,
        "exp_id": exp_id,
        "kwargs": _jsonable(kwargs),
        "engine": os.environ.get("REPRO_ENGINE", ""),
        "fastpath": os.environ.get("REPRO_FASTPATH", ""),
        "code": code_fingerprint(),
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _result_to_payload(result: Any) -> Dict[str, Any]:
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "paper_claim": result.paper_claim,
        "headers": _jsonable(list(result.headers)),
        "rows": _jsonable([list(row) for row in result.rows]),
        "notes": result.notes,
    }


def _result_from_payload(payload: Dict[str, Any]) -> Any:
    from repro.harness.experiments import ExperimentResult

    return ExperimentResult(
        exp_id=payload["exp_id"],
        title=payload["title"],
        paper_claim=payload["paper_claim"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        notes=payload.get("notes", ""),
    )


def _cached_call(cache_dir: Path, exp_id: str, kwargs: Dict[str, Any],
                 acct: CellAccounting) -> Any:
    """One cell: serve from disk, or simulate and persist."""
    from repro.harness.experiments import ALL_EXPERIMENTS

    path = cache_dir / f"{cell_key(exp_id, kwargs)}{CELL_SUFFIX}"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        text = None
    if text is not None:
        try:
            payload = unwrap_payload(text, path)
            result = _result_from_payload(payload)
        except (CheckpointCorrupt, KeyError, TypeError, ValueError):
            # Torn/rotted/hand-edited entry: fall through and re-simulate;
            # the fresh write below overwrites it.
            pass
        else:
            touch(path)
            acct.hits += 1
            return result

    result = ALL_EXPERIMENTS[exp_id](**kwargs)
    acct.misses += 1
    try:
        atomic_write_text(path, wrap_payload(_result_to_payload(result)))
    except OSError:
        # The cache is an optimization; never let disk trouble fail a run.
        return result
    evict_lru(cache_dir, max_mb_from_env("REPRO_SIM_CACHE_MAX_MB"),
              suffix=CELL_SUFFIX)
    return result


def run_experiment(exp_id: str, kwargs: Dict[str, Any]
                   ) -> Tuple[Any, CellAccounting]:
    """Run one experiment through the cache; the harness's single entry.

    With the cache disabled this is a passthrough call to the experiment
    function (extras intact, zero overhead). With it enabled, shardable
    figures decompose into per-axis-value cells refolded by their
    ``ShardSpec`` merge; others are cached as one whole-figure cell.
    """
    from repro.harness.experiments import ALL_EXPERIMENTS

    acct = CellAccounting()
    cache_dir = cache_dir_from_env()
    if cache_dir is None:
        return ALL_EXPERIMENTS[exp_id](**kwargs), acct

    from repro.harness.sharding import SHARDABLE, axis_values

    spec = SHARDABLE.get(exp_id)
    values = axis_values(exp_id, kwargs)
    if spec is None or not values:
        return _cached_call(cache_dir, exp_id, dict(kwargs), acct), acct

    cells: List[Any] = []
    for value in values:
        cell_kwargs = dict(kwargs)
        cell_kwargs[spec.axis] = [value]
        cells.append(_cached_call(cache_dir, exp_id, cell_kwargs, acct))
    return spec.merge(cells), acct
