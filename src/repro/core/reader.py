"""The root reader (§V-C).

"At the beginning of a GC, a reader copies all references from the
hwgc-space into the mark queue."

The reader streams the root table with 64-byte transfers. After its first
pass it re-reads the count word: if the runtime (or a concurrent write
barrier, §IV-D) appended more references in the meantime, it keeps going —
this is the mechanism that lets the concurrent collector feed overwritten
references to an in-flight traversal.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.heap.roots import RootRegion
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


class RootReader:
    """Streams hwgc-space roots into the mark queue."""

    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        roots: RootRegion,
        port,
        unit,  # TraversalUnit; provides enqueue_ref()
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.mem = mem
        self.roots = roots
        self.port = port
        self.unit = unit
        self.stats = stats if stats is not None else StatsRegistry()
        self.roots_read = 0
        #: Count-word polls that found no new entries (concurrent mode).
        self.idle_polls = 0
        #: Entries consumed after the first drain — in concurrent mode these
        #: are the write barrier's publications (plus any roots the mutator
        #: registered mid-cycle).
        self.barrier_appends_read = 0

    #: Cycles between root-table polls in concurrent mode.
    POLL_INTERVAL = 200

    def process(self):
        """Stream the root table; re-check for appended entries at the end.

        In concurrent mode (§IV-D) the reader keeps polling the count word
        so write-barrier appends reach the mark queue mid-traversal; it only
        exits after the unit's stop request (the runtime's termination
        handshake once mutation has quiesced)."""
        # Read the count word.
        yield self.port.read(self.roots.base, 8)
        consumed = 0
        initial_count = self.roots.count
        while True:
            count = self.roots.count
            if consumed >= count:
                if self.unit.concurrent and not self.unit.stop_requested:
                    self.idle_polls += 1
                    yield self.POLL_INTERVAL
                    continue
                break
            if consumed >= initial_count:
                appended = count - max(consumed, initial_count)
                self.barrier_appends_read += appended
                trace = self.stats.trace
                if trace is not None:
                    trace.events.append(
                        (self.sim.now, "barrier", "drain", appended))
            # Stream pending entries: 64B transfers when aligned with at
            # least a full line of entries left, single words otherwise.
            while consumed < count:
                entry_paddr = self.roots.base + WORD_BYTES * (1 + consumed)
                if entry_paddr % 64 == 0 and count - consumed >= 8:
                    size, batch = 64, 8
                else:
                    size, batch = WORD_BYTES, 1
                yield self.port.read(entry_paddr, size)
                for i in range(batch):
                    ref = self.mem.read_word(entry_paddr + i * WORD_BYTES)
                    if ref != 0:
                        self.unit.enqueue_ref(ref)
                    self.roots_read += 1
                consumed += batch
            # Re-read the count word in case the write barrier appended.
            yield self.port.read(self.roots.base, 8)
