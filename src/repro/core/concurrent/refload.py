"""Barrier cost models, including the REFLOAD extension (§III, §IV-E).

Barriers "span a wide design space that trades off fast-path latency,
slow-path latency, the instruction footprint and how it maps to the
underlying microarchitecture" (§III). The paper sketches four points:

* ``SOFTWARE_CONDITIONAL`` — compiled check + branch to a slow-path handler
  (the G1/ZGC approach; "Oracle's newly announced concurrent ZGC collector
  targets up to 15% slow-down").
* ``VM_TRAP`` — fold the check into virtual memory and trap on the slow
  path (Pauseless/Guarded Storage): free fast path, but slow paths flush
  the pipeline and "can be very frequent if churn is large (resulting in
  trap storms)".
* ``COHERENCE`` — the paper's trap-free design (Fig. 9): the barrier is an
  extra load that usually hits a cached zero-page line; relocated pages
  cost a coherence round trip to the reclamation unit, paid once per line.
* ``REFLOAD`` — the optional CPU instruction (§IV-E) that fissions into
  load + RB, letting the pipeline speculate over the barrier: "the only
  effect of the GC are loads that may take longer, but traps and pipeline
  flushes are eliminated."

The model is analytic (cycles per reference operation), applied to the
mutator-phase cycle counts from :mod:`repro.workloads.mutator` — the
ablation the paper motivates but leaves as future work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BarrierKind(enum.Enum):
    NONE = "none"
    SOFTWARE_CONDITIONAL = "software"
    VM_TRAP = "vm_trap"
    COHERENCE = "coherence"
    REFLOAD = "refload"


@dataclass(frozen=True)
class BarrierCostModel:
    """Per-reference-operation costs of one barrier design."""

    kind: BarrierKind
    #: Extra cycles on every guarded reference load (the fast path).
    fast_path_cycles: float
    #: Extra cycles when the barrier triggers (object moved / unvisited ref).
    slow_path_cycles: float
    #: Extra instruction-footprint pressure, as a fractional slowdown on the
    #: mutator's non-memory work (icache/fetch effects of inlined checks).
    footprint_overhead: float

    def overhead_cycles(self, ref_ops: int, slow_fraction: float,
                        mutator_exec_cycles: int = 0) -> float:
        """Total extra cycles for ``ref_ops`` guarded operations.

        A zero-length burst (``ref_ops == 0``) is a legal degenerate case —
        a mutator phase with no reference operations still pays the
        instruction-footprint term, and nothing else."""
        if ref_ops < 0:
            raise ValueError(f"ref_ops must be >= 0, got {ref_ops}")
        if mutator_exec_cycles < 0:
            raise ValueError(
                f"mutator_exec_cycles must be >= 0, got {mutator_exec_cycles}")
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction out of range: {slow_fraction}")
        fast = ref_ops * (1.0 - slow_fraction) * self.fast_path_cycles
        slow = ref_ops * slow_fraction * self.slow_path_cycles
        return fast + slow + mutator_exec_cycles * self.footprint_overhead

    def slowdown(self, mutator_cycles: int, ref_ops: int,
                 slow_fraction: float) -> float:
        """Mutator slowdown factor (1.0 = no overhead).

        ``slow_fraction = 1.0`` models a burst entirely against relocated
        pages (every REFLOAD resolves through the reclamation unit, the
        worst case during an in-progress relocation)."""
        if mutator_cycles <= 0:
            raise ValueError("mutator_cycles must be positive")
        extra = self.overhead_cycles(ref_ops, slow_fraction,
                                     mutator_exec_cycles=mutator_cycles)
        return (mutator_cycles + extra) / mutator_cycles


#: Reference cost points. The software barrier's ~4-cycle fast path with a
#: modest footprint overhead lands near ZGC's "up to 15%" target for
#: typical reference densities; the trap designs pay ~300 cycles per
#: pipeline-flushing trap; the coherence/REFLOAD designs ride the cache.
BARRIER_MODELS = {
    BarrierKind.NONE: BarrierCostModel(BarrierKind.NONE, 0.0, 0.0, 0.0),
    BarrierKind.SOFTWARE_CONDITIONAL: BarrierCostModel(
        BarrierKind.SOFTWARE_CONDITIONAL,
        fast_path_cycles=3.0,
        slow_path_cycles=40.0,
        footprint_overhead=0.04,
    ),
    BarrierKind.VM_TRAP: BarrierCostModel(
        BarrierKind.VM_TRAP,
        fast_path_cycles=0.0,
        slow_path_cycles=300.0,
        footprint_overhead=0.0,
    ),
    BarrierKind.COHERENCE: BarrierCostModel(
        BarrierKind.COHERENCE,
        # The extra load usually hits the cached zero page; it does double
        # TLB footprint and adds cache pressure (§IV-E).
        fast_path_cycles=1.5,
        slow_path_cycles=60.0,  # one coherence round trip per line, amortized
        footprint_overhead=0.02,
    ),
    BarrierKind.REFLOAD: BarrierCostModel(
        BarrierKind.REFLOAD,
        # Fissioned in decode; speculated over like any load.
        fast_path_cycles=0.5,
        slow_path_cycles=60.0,
        footprint_overhead=0.0,
    ),
}
