"""Checkpoint store: round-trip fidelity, corruption detection, resume.

The resume guarantee under test is the acceptance criterion of the
fault-tolerant runner: a killed-then-resumed run re-executes *exactly*
the missing entries and reproduces the fault-free report byte-for-byte.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import parallel
from repro.harness.checkpoint import (
    CheckpointCorrupt,
    CheckpointError,
    CheckpointStore,
    figure_run_from_payload,
    figure_run_to_payload,
    open_store,
    suite_digest,
)
from repro.harness.parallel import digests, run_suite
from repro.harness.suite import FigureRun, select

ONLY = ["fig22", "abl_barriers"]


def _tasks(only=ONLY):
    return [(i, e, k) for i, (e, k) in enumerate(select(only))]


# -- hypothesis round-trip -------------------------------------------------

_scalars = st.one_of(
    st.integers(min_value=-2**40, max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=24),  # arbitrary unicode
    st.booleans(),
    st.none(),
)
_kwargs = st.dictionaries(st.text(min_size=1, max_size=12),
                          st.one_of(_scalars,
                                    st.lists(_scalars, max_size=4)),
                          max_size=4)
_history = st.lists(
    st.dictionaries(st.sampled_from(["attempt", "status", "elapsed",
                                     "error", "cpu_s", "max_rss_kb"]),
                    _scalars, max_size=4),
    max_size=3)

_figure_runs = st.builds(
    FigureRun,
    index=st.integers(min_value=0, max_value=999),
    exp_id=st.text(min_size=1, max_size=16),
    kwargs=_kwargs,
    rendered=st.text(max_size=300),  # includes the empty table
    elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    status=st.sampled_from(["ok", "failed"]),
    attempts=st.integers(min_value=1, max_value=9),
    error=st.none() | st.text(max_size=40),
    attempt_history=_history,
)


def _nan_eq(a, b) -> bool:
    """Structural equality where NaN == NaN (JSON round-trips Python's
    NaN/Infinity dialect; plain ``==`` would reject it)."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and \
            all(_nan_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and \
            all(_nan_eq(x, y) for x, y in zip(a, b))
    # bool is an int subclass; keep True != 1 so types round-trip honestly.
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    return a == b


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(run=_figure_runs)
    def test_payload_round_trip(self, run):
        wire = json.loads(json.dumps(figure_run_to_payload(run),
                                     ensure_ascii=False, allow_nan=True))
        back = figure_run_from_payload(wire)
        assert _nan_eq(figure_run_to_payload(back),
                       figure_run_to_payload(run))
        assert back.digest == run.digest

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(run=_figure_runs)
    def test_disk_round_trip(self, run, tmp_path):
        store = CheckpointStore(tmp_path, digest="x")
        store.save(run)
        path = store._entry_path(run.index)
        back = store.load(path)
        assert _nan_eq(figure_run_to_payload(back),
                       figure_run_to_payload(run))

    def test_unicode_and_specials_survive(self, tmp_path):
        run = FigureRun(index=7, exp_id="fig∞", kwargs={"λ": float("nan")},
                        rendered="héap ↦ 0xDEAD\n| |\n", elapsed=1.5,
                        attempt_history=[{"elapsed": float("inf")}])
        store = CheckpointStore(tmp_path, digest="x")
        store.save(run)
        back = store.load(store._entry_path(7))
        assert back.rendered == run.rendered
        assert math.isnan(back.kwargs["λ"])
        assert math.isinf(back.attempt_history[0]["elapsed"])


# -- corruption detection --------------------------------------------------

class TestCorruption:
    @pytest.fixture
    def saved(self, tmp_path):
        store = CheckpointStore.open(tmp_path, _tasks())
        run = FigureRun(index=0, exp_id="fig22", kwargs={},
                        rendered="## fig22: table\n", elapsed=0.1)
        store.save(run)
        return store, store._entry_path(0)

    def test_truncated_file_detected(self, saved):
        store, path = saved
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointCorrupt, match="not valid JSON"):
            store.load(path)

    def test_bitrot_detected_by_sha(self, saved):
        store, path = saved
        path.write_text(path.read_text().replace("table", "tadle"))
        with pytest.raises(CheckpointCorrupt, match="sha256 mismatch"):
            store.load(path)

    def test_foreign_schema_detected(self, saved):
        store, path = saved
        doc = json.loads(path.read_text())
        doc["schema"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointCorrupt, match="schema"):
            store.load(path)

    def test_corrupt_entry_is_rerun(self, saved):
        """load_completed treats a corrupt checkpoint as missing; the
        runner re-executes the entry and overwrites the bad file."""
        store, path = saved
        path.write_text(path.read_text()[:40])
        completed = store.load_completed()
        assert completed == {} and store.corrupt == [path]

        clean = run_suite(jobs=1, only=ONLY)
        lines = []
        runs = run_suite(jobs=1, only=ONLY, store=store,
                         progress=lines.append)
        assert digests(runs) == digests(clean)
        assert any("corrupt checkpoint" in line for line in lines)
        assert store.load(path).exp_id == "fig22"  # overwritten, valid


# -- run-directory identity ------------------------------------------------

class TestSuiteDigest:
    def test_digest_covers_selection_and_kwargs(self):
        base = suite_digest(_tasks())
        assert suite_digest(_tasks()) == base
        assert suite_digest(_tasks(["fig22"])) != base
        mutated = _tasks()
        mutated[0] = (mutated[0][0], mutated[0][1], {"scale": 0.5})
        assert suite_digest(mutated) != base

    def test_open_rejects_mismatched_directory(self, tmp_path):
        CheckpointStore.open(tmp_path, _tasks())
        with pytest.raises(CheckpointError, match="different suite"):
            CheckpointStore.open(tmp_path, _tasks(["fig22"]))

    def test_open_store_helper(self, tmp_path):
        assert open_store(None, _tasks()) is None
        store = open_store(str(tmp_path / "run"), _tasks())
        assert store is not None and (tmp_path / "run" /
                                      "manifest.json").exists()


# -- resume ----------------------------------------------------------------

class TestResume:
    def test_resume_reexecutes_exactly_the_missing_entries(
            self, tmp_path, monkeypatch):
        clean = run_suite(jobs=1, only=ONLY)
        clean_report = parallel.render_report(clean)

        # Half-finished run: only abl_barriers (index 1) checkpointed.
        store = CheckpointStore.open(tmp_path / "run", _tasks())
        store.save(clean[1])

        executed = []
        real_run_entry = parallel.run_entry

        def recording_run_entry(index, exp_id, kwargs):
            executed.append(exp_id)
            return real_run_entry(index, exp_id, kwargs)

        monkeypatch.setattr(parallel, "run_entry", recording_run_entry)
        resumed = run_suite(jobs=1, only=ONLY, store=store)

        assert executed == ["fig22"]  # exactly the missing entry
        assert digests(resumed) == digests(clean)
        assert parallel.render_report(resumed) == clean_report

    def test_completed_run_resumes_to_noop(self, tmp_path, monkeypatch):
        store = CheckpointStore.open(tmp_path / "run", _tasks())
        first = run_suite(jobs=1, only=ONLY, store=store)
        monkeypatch.setattr(
            parallel, "run_entry",
            lambda *a: pytest.fail("nothing should re-run"))
        again = run_suite(jobs=1, only=ONLY, store=store)
        assert digests(again) == digests(first)
        assert parallel.render_report(again) == \
            parallel.render_report(first)
