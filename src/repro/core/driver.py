"""The software side of the hardware GC: driver + libhwgc model (§V-E).

In the prototype, a Linux character device (/dev/hwgc0) configures the
unit: "the driver reads its process state, including the page-table base
register and status bits, which are written to memory-mapped registers in
the GC unit"; JikesRVM's MMTk plan calls into libhwgc.so through the
SysCall interface to initiate collections and poll for completion.

:class:`HWGCDriver` reproduces that control flow against the simulated
MMIO register file, and is the entry point the examples use: configure
once, then ``run_gc()`` per collection.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.mmio import Command, MMIORegisterFile, Reg, Status
from repro.core.unit import GCUnit
from repro.heap.heapimage import ManagedHeap


class HWGCDriver:
    """Configures the unit via MMIO and runs collections (the libhwgc path)."""

    def __init__(self, heap: ManagedHeap,
                 config: Optional[GCUnitConfig] = None):
        self.heap = heap
        self.config = config if config is not None else GCUnitConfig()
        self.mmio = MMIORegisterFile()
        self._initialized = False

    def init_device(self) -> None:
        """What the kernel driver does at open(): program the address-space
        and region registers from the process's state."""
        memsys = self.heap.memsys
        self.mmio.write(Reg.PAGE_TABLE_BASE, memsys.page_table.root)
        self.mmio.write(Reg.HWGC_BASE, memsys.address_map.hwgc[0])
        self.mmio.write(
            Reg.HWGC_SIZE,
            memsys.address_map.hwgc[1] - memsys.address_map.hwgc[0],
        )
        self.mmio.write(Reg.SPILL_BASE, memsys.address_map.spill[0])
        self.mmio.write(
            Reg.SPILL_SIZE,
            memsys.address_map.spill[1] - memsys.address_map.spill[0],
        )
        self.mmio.write(Reg.BLOCK_LIST_BASE, memsys.address_map.block_list[0])
        self.mmio.write(Reg.N_SWEEPERS, self.config.n_sweepers)
        self._initialized = True

    def run_gc(self) -> HardwareGCResult:
        """Initiate a full collection and poll until DONE (§IV-C).

        Precondition: the runtime has already written the roots into
        hwgc-space (root scanning stays in software, §IV-C)."""
        if not self._initialized:
            raise RuntimeError("driver not initialized; call init_device()")
        if self.mmio.status != Status.READY:
            raise RuntimeError(f"unit busy: {self.mmio.status}")
        self.mmio.write(Reg.MARK_PARITY, self.heap.mark_parity)
        self.mmio.write(Reg.COMMAND, int(Command.START_FULL_GC))
        self.mmio.set_status(Status.MARKING)
        unit = GCUnit(self.heap, self.config)
        mark_cycles = unit.mark()
        self.mmio.set_status(Status.SWEEPING)
        sweep_cycles = unit.sweep()
        self.mmio.set_status(Status.DONE)
        result = unit.collect_result(mark_cycles, sweep_cycles)
        self.mmio.write(Reg.OBJECTS_MARKED, result.objects_marked)
        self.mmio.write(Reg.CELLS_FREED, result.cells_freed)
        self.mmio.write(Reg.COMMAND, int(Command.IDLE))
        self.mmio.set_status(Status.READY)
        return result
