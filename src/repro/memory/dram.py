"""DDR3 bank/row timing model with FIFO and FR-FCFS schedulers.

Models the paper's memory system (Table I): DDR3-2000, single rank, 8 banks,
open-page policy, latencies 14-14-14-47 ns at a 1 GHz SoC clock, and a
memory-access scheduler with a visibility window of 16 reads / 8 writes.

The model tracks per-bank open rows and busy times plus a shared data bus.
A request's service latency is:

* row hit: ``t_cas``
* row conflict (another row open): ``t_rp + t_rcd + t_cas``
* row closed (first touch): ``t_rcd + t_cas``

followed by a data-bus occupancy of ``ceil(size / 16B)`` cycles (DDR3-2000
peak bandwidth is 16 GB/s). ``t_ras`` limits back-to-back activates to the
same bank. FR-FCFS prefers row hits (oldest first), then the oldest request,
with reads prioritized over writes; FIFO is strict arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.engine.simulator import Event, Simulator
from repro.engine.stats import BandwidthTracker, IntervalTracker, StatsRegistry
from repro.memory.config import DRAMConfig
from repro.memory.request import AccessKind, MemRequest


class _Bank:
    __slots__ = ("busy_until", "open_row", "last_activate")

    def __init__(self) -> None:
        self.busy_until = 0
        self.open_row: Optional[int] = None
        self.last_activate = -(10**9)


class DRAMController:
    """Event-driven DDR3 controller; ``submit`` returns a completion event."""

    def __init__(
        self,
        sim: Simulator,
        config: DRAMConfig,
        stats: Optional[StatsRegistry] = None,
        bandwidth: Optional[BandwidthTracker] = None,
    ):
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthTracker("dram")
        self.request_intervals = IntervalTracker("dram.requests")
        self._banks = [_Bank() for _ in range(config.n_banks)]
        self._bus_free_at = 0
        # Queue entries are (request, completion event, bank, row): the
        # bank/row decode is done once at submit so the scheduler's scans
        # never recompute it.
        self._reads: Deque[Tuple[MemRequest, Event, _Bank, int]] = deque()
        self._writes: Deque[Tuple[MemRequest, Event, _Bank, int]] = deque()
        self._next_pump_at: Optional[int] = None
        self._submit_keys: dict = {}
        self._ev_names: dict = {}

    # -- public interface --------------------------------------------------

    def submit(self, req: MemRequest) -> Event:
        """Enqueue a request; the returned event triggers at completion."""
        req.issue_time = self.sim.now
        name = self._ev_names.get(req.source)
        if name is None:
            name = self._ev_names[req.source] = f"dram.{req.source}"
        event = Event(self.sim, name=name)
        row_index = req.addr // self.config.row_bytes
        bank = self._banks[row_index % self.config.n_banks]
        row = row_index // self.config.n_banks
        queue = self._writes if req.kind is AccessKind.WRITE else self._reads
        queue.append((req, event, bank, row))
        self.request_intervals.record(self.sim.now)
        self._record_submit(req)
        self._schedule_pump(0)
        return event

    @property
    def pending(self) -> int:
        return len(self._reads) + len(self._writes)

    # -- scheduling ----------------------------------------------------------

    def _bank_and_row(self, addr: int) -> Tuple[int, int]:
        """Row-interleaved mapping: consecutive rows hit different banks."""
        row_index = addr // self.config.row_bytes
        return row_index % self.config.n_banks, row_index // self.config.n_banks

    @staticmethod
    def _scan(queue, limit: int, now: int):
        """Oldest ready entry and oldest ready row-hit in one window.

        Queue position order *is* issue-time order (requests are appended at
        submit time), so the first ready entry found is the oldest — no sort
        needed. Returns ``((pos, entry) or None)`` twice: (ready, hit).
        """
        first_ready = None
        pos = 0
        for entry in queue:
            if pos >= limit:
                break
            bank = entry[2]
            if bank.busy_until <= now:
                if first_ready is None:
                    first_ready = (pos, entry)
                if bank.open_row == entry[3]:
                    return first_ready, (pos, entry)
            pos += 1
        return first_ready, None

    def _pick(self, now: int) -> Optional[Tuple[bool, int, tuple]]:
        """The next request to dispatch as (is_write, pos, entry), or None.

        FR-FCFS prefers row hits (oldest first), then the oldest ready
        request; FIFO is strict arrival order. Reads beat writes at equal
        age in both policies.
        """
        cfg = self.config
        read_ready, read_hit = self._scan(self._reads, cfg.read_window, now)
        write_ready, write_hit = self._scan(self._writes, cfg.write_window, now)
        if cfg.scheduler == "fifo" or (read_hit is None and write_hit is None):
            read, write = read_ready, write_ready
        else:
            read, write = read_hit, write_hit
        if read is None:
            if write is None:
                return None
            return (True,) + write
        if write is None or read[1][0].issue_time <= write[1][0].issue_time:
            return (False,) + read
        return (True,) + write

    def _pump(self) -> None:
        if self._next_pump_at is not None and self._next_pump_at <= self.sim.now:
            self._next_pump_at = None
        now = self.sim.now
        while True:
            choice = self._pick(now)
            if choice is None:
                break
            is_write, pos, entry = choice
            queue = self._writes if is_write else self._reads
            del queue[pos]
            self._dispatch(entry, now)
        self._schedule_next_wakeup()

    def _dispatch(self, entry: tuple, now: int) -> None:
        req, event, bank, row = entry
        cfg = self.config
        if bank.open_row == row:
            access_latency = cfg.t_cas
        else:
            if bank.open_row is None:
                access_latency = cfg.t_rcd + cfg.t_cas
            else:
                access_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            # Respect the minimum row-cycle time before re-activating.
            earliest_activate = bank.last_activate + cfg.t_ras
            if now < earliest_activate:
                access_latency += earliest_activate - now
            bank.last_activate = max(now, earliest_activate)
            bank.open_row = row
            self.stats.inc("dram.activates")
        transfer = max(1, -(-req.size // cfg.bus_bytes_per_cycle))
        data_start = max(now + access_latency, self._bus_free_at)
        done = data_start + transfer
        self._bus_free_at = done
        bank.busy_until = done
        self._record_complete(req, done, transfer)
        self.sim.at(done, event.trigger, done)

    def _schedule_pump(self, delay: int) -> None:
        """Schedule a pump, keeping only the earliest pending wakeup live.

        Stale (later) pumps may still fire; ``_pump`` is idempotent so they
        are harmless.
        """
        target = self.sim.now + delay
        if self._next_pump_at is None or target < self._next_pump_at:
            self._next_pump_at = target
            self.sim.schedule(delay, self._pump)

    def _schedule_next_wakeup(self) -> None:
        """After dispatching, wake when the earliest blocking bank frees."""
        if not self._reads and not self._writes:
            return
        now = self.sim.now
        cfg = self.config
        wake = None
        for queue, limit in ((self._reads, cfg.read_window),
                             (self._writes, cfg.write_window)):
            pos = 0
            for entry in queue:
                if pos >= limit:
                    break
                t = entry[2].busy_until
                if t > now and (wake is None or t < wake):
                    wake = t
                pos += 1
        if wake is None:
            # All visible banks are free but nothing was picked: cannot
            # happen unless the window is empty; guard anyway.
            wake = now + 1
        self._schedule_pump(wake - now)

    # -- statistics ----------------------------------------------------------

    def _record_submit(self, req: MemRequest) -> None:
        keys = self._submit_keys.get((req.kind, req.source))
        if keys is None:
            kind = "write" if req.kind is AccessKind.WRITE else (
                "amo" if req.kind is AccessKind.AMO else "read"
            )
            keys = (f"mem.requests.{req.source}", f"mem.{kind}s.{req.source}")
            self._submit_keys[(req.kind, req.source)] = keys
        self.stats.inc(keys[0])
        self.stats.inc(keys[1])

    def _record_complete(self, req: MemRequest, done: int, transfer: int) -> None:
        if req.kind is AccessKind.AMO:
            # A fetch-or both reads and writes its word.
            self.stats.inc("dram.bytes_read", req.size)
            self.stats.inc("dram.bytes_written", req.size)
        elif req.kind is AccessKind.WRITE:
            self.stats.inc("dram.bytes_written", req.size)
        else:
            self.stats.inc("dram.bytes_read", req.size)
        self.bandwidth.record(done, req.size, busy_cycles=transfer)
        trace = self.stats.trace
        if trace is not None:
            trace.emit(self.sim.now, "req", req.source, req.kind.value,
                       req.addr, req.size, req.issue_time, done)
