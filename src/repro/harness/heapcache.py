"""Memoized heap builds keyed by (profile, scale, seed, memory config).

Many figures sweep unit configurations over the *same* generated heap
(e.g. Fig. 15 and the energy model of Fig. 23 use identical heaps, the
ablations re-run avrora at one scale repeatedly). Heap generation is pure:
``HeapGraphBuilder.build`` consumes only ``(profile, scale, seed, config)``
and never advances the simulator, and the page table is linear-mapped
deterministically at construction. That makes a build fully reproducible
from its checkpoint, so this module caches builds:

* an **in-process LRU** (always on, ``REPRO_HEAP_CACHE_ENTRIES`` entries,
  default 8) holding zlib-compressed pickles — the words snapshot is stored
  sparsely (nonzero indices + values; generated heaps are ~98% zeros), so
  both the pickled payload and the compress/decompress work stay a couple
  of MB per entry regardless of the configured memory size;
* an optional **on-disk layer** enabled by ``REPRO_HEAP_CACHE`` (``1`` for
  ``~/.cache/repro-heaps``, any other value is used as the directory;
  ``0``/``off`` disables). Disk entries survive across processes, which is
  what makes the parallel figure pipeline's workers share builds. The
  directory is LRU-capped by ``REPRO_HEAP_CACHE_MAX_MB`` and an entry
  that fails to reconstruct (torn write, bit-rot, stale pickle format) is
  dropped and transparently rebuilt — the shared disk-cache discipline of
  :mod:`repro.harness.diskcache`, which the simulation result cache
  (:mod:`repro.harness.simcache`) uses too.

A cache hit never returns a previously-handed-out object: the entry is
unpickled into a **fresh** ``ManagedHeap`` (new simulator, cold memory
system) plus a fresh ``HeapCheckpoint``, so callers may mutate the result
freely — exactly as if they had rebuilt from scratch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import random
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.harness.diskcache import atomic_write_bytes, evict_lru, \
    max_mb_from_env, touch
from repro.heap.heapimage import HeapCheckpoint, ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.workloads.graphgen import BuiltHeap, HeapGraphBuilder
from repro.workloads.profiles import BenchmarkProfile

DEFAULT_ENTRIES = 8
_COMPRESS_LEVEL = 1  # the words array is mostly zeros; level 1 is plenty


def _canonical(value):
    """A deterministic plain-data projection for fingerprinting."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return sorted((repr(k), _canonical(v)) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return repr(value)


def fingerprint(
    profile: BenchmarkProfile,
    scale: float,
    seed: int,
    config: Optional[MemorySystemConfig],
) -> str:
    """Stable key over everything a build depends on."""
    payload = repr((
        _canonical(profile),
        repr(float(scale)),
        int(seed),
        _canonical(config) if config is not None else None,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def _effective_config(
    profile: BenchmarkProfile, scale: float, config: Optional[MemorySystemConfig]
) -> MemorySystemConfig:
    if config is not None:
        return config
    builder = HeapGraphBuilder(profile, scale=scale)
    return builder._default_config(profile.scaled_objects(scale))


def _cache_dir_from_env() -> Optional[Path]:
    raw = os.environ.get("REPRO_HEAP_CACHE", "")
    if raw in ("", "0", "off", "no"):
        return None
    if raw == "1":
        return Path.home() / ".cache" / "repro-heaps"
    return Path(raw)


class HeapBuildCache:
    """LRU of compressed build results, with an optional disk layer."""

    def __init__(
        self,
        entries: int = DEFAULT_ENTRIES,
        disk_dir: Optional[Path] = None,
    ):
        self.entries = max(1, entries)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # -- public interface --------------------------------------------------

    def get_or_build(
        self,
        profile: BenchmarkProfile,
        scale: float,
        seed: int,
        config: Optional[MemorySystemConfig] = None,
    ) -> Tuple[BuiltHeap, HeapCheckpoint]:
        key = fingerprint(profile, scale, seed, config)
        blob = self._mem.get(key)
        from_disk = False
        if blob is not None:
            self._mem.move_to_end(key)
        else:
            blob = self._disk_read(key)
            if blob is not None:
                from_disk = True
        if blob is not None:
            try:
                result = self._reconstruct(blob, profile, scale, seed)
            except Exception:
                # Corrupt entry (torn write, bit-rot, stale pickle
                # format): drop it everywhere and rebuild transparently.
                self._mem.pop(key, None)
                self._disk_remove(key)
            else:
                if from_disk:
                    self.disk_hits += 1
                    self._mem_store(key, blob)
                self.hits += 1
                return result

        self.misses += 1
        built = HeapGraphBuilder(profile, scale=scale, seed=seed,
                                 config=config).build()
        checkpoint = built.heap.checkpoint()
        # Store the words snapshot sparsely: a generated heap's physical
        # memory is overwhelmingly zeros (typically ~2% occupancy), so
        # pickling (indices, values) of the nonzero words shrinks the
        # pre-compression payload from the full memory size to a couple of
        # MB — which is what makes both the compress here and the decompress
        # in ``_reconstruct`` cheap. ``checkpoint`` itself is returned to
        # the caller unmodified; only the pickled copy drops the dense
        # array.
        words = checkpoint.words
        nonzero = np.flatnonzero(words)
        entry = {
            "config": _effective_config(profile, scale, config),
            "checkpoint": dataclasses.replace(checkpoint, words=None),
            "words_sparse": (len(words), nonzero, words[nonzero]),
            "live": sorted(built.live),
            "garbage": sorted(built.garbage),
            "hot": list(built.hot),
            "roots": list(built.roots),
            "rng_state": built.rng.getstate() if built.rng is not None else None,
        }
        blob = zlib.compress(
            pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL),
            _COMPRESS_LEVEL,
        )
        self._mem_store(key, blob)
        self._disk_write(key, blob)
        return built, checkpoint

    def clear(self) -> None:
        self._mem.clear()

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._mem),
        }

    # -- internals ---------------------------------------------------------

    def _reconstruct(
        self, blob: bytes, profile: BenchmarkProfile, scale: float, seed: int
    ) -> Tuple[BuiltHeap, HeapCheckpoint]:
        entry = pickle.loads(zlib.decompress(blob))
        heap = ManagedHeap(config=entry["config"])
        checkpoint: HeapCheckpoint = entry["checkpoint"]
        sparse = entry.get("words_sparse")
        if sparse is not None:
            # Current format: densify the sparse words snapshot in place.
            n_words, indices, values = sparse
            words = np.zeros(n_words, dtype=np.uint64)
            words[indices] = values
            checkpoint.words = words
        # else: legacy entry (e.g. an old on-disk cache file) carrying the
        # dense array — usable as-is.
        heap.restore(checkpoint)
        rng = None
        if entry["rng_state"] is not None:
            rng = random.Random()
            rng.setstate(entry["rng_state"])
        built = BuiltHeap(
            heap=heap,
            profile=profile,
            scale=scale,
            seed=seed,
            live=set(entry["live"]),
            garbage=set(entry["garbage"]),
            hot=list(entry["hot"]),
            roots=list(entry["roots"]),
            rng=rng,
        )
        return built, checkpoint

    def _mem_store(self, key: str, blob: bytes) -> None:
        self._mem[key] = blob
        self._mem.move_to_end(key)
        while len(self._mem) > self.entries:
            self._mem.popitem(last=False)

    def _disk_read(self, key: str) -> Optional[bytes]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.heap"
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        touch(path)
        return blob

    def _disk_write(self, key: str, blob: bytes) -> None:
        """Atomic write (tmp + rename) so concurrent workers never see a
        torn entry; then enforce the ``REPRO_HEAP_CACHE_MAX_MB`` LRU cap."""
        if self.disk_dir is None:
            return
        if atomic_write_bytes(self.disk_dir / f"{key}.heap", blob):
            evict_lru(self.disk_dir, max_mb_from_env("REPRO_HEAP_CACHE_MAX_MB"),
                      suffix=".heap")

    def _disk_remove(self, key: str) -> None:
        if self.disk_dir is None:
            return
        try:
            (self.disk_dir / f"{key}.heap").unlink()
        except OSError:
            pass


_GLOBAL: Optional[HeapBuildCache] = None


def get_cache() -> HeapBuildCache:
    """The process-wide cache, configured from the environment on first use."""
    global _GLOBAL
    if _GLOBAL is None:
        entries = int(os.environ.get("REPRO_HEAP_CACHE_ENTRIES", DEFAULT_ENTRIES))
        _GLOBAL = HeapBuildCache(entries=entries, disk_dir=_cache_dir_from_env())
    return _GLOBAL


def reset_cache() -> None:
    """Drop the process-wide cache (tests; also re-reads the environment)."""
    global _GLOBAL
    _GLOBAL = None
