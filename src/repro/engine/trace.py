"""Cycle-stamped structured trace bus and derived metrics.

The paper's evaluation is built from per-cycle observations — bandwidth
over a pause (Fig. 16), cycles-per-request intervals (Fig. 17b), request
breakdowns by source (Fig. 18) — and debugging a mismatched figure needs
the same per-request visibility. This module provides it:

* :class:`TraceBus` — an append-only log of typed, cycle-stamped events.
  Components reach the bus through the :class:`~repro.engine.stats.
  StatsRegistry` they already hold (``stats.trace``); when no bus is
  attached (the default) the only cost on any hot path is one attribute
  load and a ``None`` check, so the disabled path is effectively free.
* :class:`TraceMetrics` — a facade deriving occupancy timelines,
  latency/utilization histograms, and per-phase request breakdowns from
  the raw event stream.
* Exporters — Chrome ``trace_event`` JSON (loadable in chrome://tracing
  and Perfetto), flat JSONL, and CSV — plus :func:`trace_digest`, the
  sha256 fingerprint the determinism tests compare across simulation
  kernels and cache states.

Every event is a plain tuple ``(cycle, category, *fields)`` where all
fields are ints or strings, so the stream is trivially picklable and its
``repr`` is canonical. Events are appended from simulation callbacks,
which both kernels (``REPRO_ENGINE=bucket|heapq``) execute in identical
order — the trace stream is therefore bit-identical across kernels and is
usable as a first-class test oracle.

Event taxonomy (category -> fields):

========  ==================================================================
``req``   ``(source, kind, addr, size, issue_cycle, done_cycle)`` — one
          memory-system transaction, emitted at scheduling time with both
          stamps (DRAM controller / latency-bandwidth pipe).
``queue`` ``(name, occupancy)`` — total-occupancy sample after an
          enqueue/dequeue (mark queue: on-chip + staged + spilled).
``spill`` ``(direction, entries, nbytes)`` — a mark-queue spill transfer
          (``direction`` is ``"write"`` or ``"read"``).
``phase`` ``(name, edge)`` — GC phase transition; ``edge`` is ``"B"`` or
          ``"E"`` (e.g. ``hw.mark``, ``hw.sweep``, ``sw.mark``).
``tlb``   ``(name, outcome)`` — ``hit`` / ``miss`` / ``l2_hit`` per lookup.
``ptw``   ``(op, vaddr)`` — a page-table walk start.
``cache`` ``(name, outcome)`` — per-line ``hit`` / ``miss``.
``mark``  ``(outcome, ref)`` — marker verdict: ``marked`` / ``already`` /
          ``filtered`` (mark-bit cache hit).
``tracer````(addr, n_refs)`` — the tracer starts copying an object's
          reference section.
``sweep`` ``(block, freed, live)`` — a block sweeper finished one block.
``cpu``   ``(op, vaddr)`` — software-collector CPU memory op
          (``load`` / ``store`` / ``amo``).
``fault`` ``(kind, component, op_index)`` — an injected hardware fault
          fired (:mod:`repro.engine.faultplane`); never emitted unless a
          fault plane is armed.
``fallback`` ``(reason, culprit)`` — the driver aborted a hardware
          collection and re-ran it on the software safety net; only
          emitted on that degradation path.
========  ==================================================================
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.stats import Histogram, TimeSeries

#: An event record: ``(cycle, category, *fields)``.
TraceEvent = Tuple[Any, ...]


class TraceBus:
    """An append-only, cycle-stamped structured event log.

    Attach to a registry with ``stats.trace = TraceBus()``; detach by
    setting it back to ``None``. Emission is a single list append.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, *event: Any) -> None:
        """Record one event tuple ``(cycle, category, *fields)``."""
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e[1] == category]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return f"TraceBus({len(self.events)} events)"


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """sha256 fingerprint of an event stream.

    ``repr`` of int/str tuples is canonical across processes and platforms,
    so equal streams always digest equally — the property the determinism
    tests assert across ``REPRO_ENGINE`` kernels and warm/cold heap caches.
    """
    h = hashlib.sha256()
    for event in events:
        h.update(repr(event).encode())
        h.update(b"\n")
    return h.hexdigest()


class TraceMetrics:
    """Derived views over a raw event stream.

    All methods are pure functions of the events; the same stream always
    produces the same timelines and histograms.
    """

    def __init__(self, events: Sequence[TraceEvent], stats: Any = None):
        self.events = list(events)
        #: Optional :class:`~repro.engine.stats.StatsRegistry` captured
        #: alongside the trace; enables counter-backed views (queue put
        #: stalls) that have no per-event representation.
        self.stats = stats

    # -- phases ------------------------------------------------------------

    def phase_windows(self) -> Dict[str, List[Tuple[int, int]]]:
        """Per phase name, the list of (begin, end) cycle windows."""
        windows: Dict[str, List[Tuple[int, int]]] = {}
        open_at: Dict[str, int] = {}
        for event in self.events:
            if event[1] != "phase":
                continue
            cycle, _, name, edge = event
            if edge == "B":
                open_at[name] = cycle
            elif edge == "E" and name in open_at:
                windows.setdefault(name, []).append((open_at.pop(name), cycle))
        return windows

    def phase_cycles(self) -> Dict[str, int]:
        """Total cycles spent per phase name."""
        return {
            name: sum(end - start for start, end in spans)
            for name, spans in self.phase_windows().items()
        }

    # -- requests ----------------------------------------------------------

    def requests_by_source(self) -> Dict[str, int]:
        """Fig. 18-style request counts attributed to each requester."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event[1] == "req":
                source = event[2]
                counts[source] = counts.get(source, 0) + 1
        return counts

    def request_latency_histogram(self, source: Optional[str] = None) -> Histogram:
        """Histogram of (done - issue) per request, optionally one source."""
        hist = Histogram(name=f"latency.{source or 'all'}")
        for event in self.events:
            if event[1] == "req" and (source is None or event[2] == source):
                hist.add(event[7] - event[6])
        return hist

    def phase_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per phase, request counts by source (requests attributed by
        issue cycle falling inside the phase's window)."""
        windows = self.phase_windows()
        breakdown: Dict[str, Dict[str, int]] = {
            name: {} for name in windows
        }
        for event in self.events:
            if event[1] != "req":
                continue
            source, issue = event[2], event[6]
            for name, spans in windows.items():
                if any(start <= issue <= end for start, end in spans):
                    per = breakdown[name]
                    per[source] = per.get(source, 0) + 1
        return breakdown

    # -- occupancy / utilization -------------------------------------------

    def queue_timeline(self, name: str) -> TimeSeries:
        """Occupancy-over-time samples for one named queue."""
        series = TimeSeries(name=f"queue.{name}")
        for event in self.events:
            if event[1] == "queue" and event[2] == name:
                series.sample(event[0], event[3])
        return series

    def queue_stalls(self) -> Dict[str, int]:
        """Per queue name, how many producer ``put()`` calls blocked on a
        full queue (``queue.<name>.put_stalls`` counters).

        Backpressure has no per-event trace record — a stalled put is the
        *absence* of progress — so this view needs the stats registry
        captured with the trace; without one it is empty.
        """
        if self.stats is None:
            return {}
        prefix = "queue."
        suffix = ".put_stalls"
        return {
            key[len(prefix):-len(suffix)]: value
            for key, value in sorted(self.stats.with_prefix(prefix).items())
            if key.endswith(suffix) and value
        }

    def queue_peak(self, name: str) -> int:
        return max(
            (e[3] for e in self.events if e[1] == "queue" and e[2] == name),
            default=0,
        )

    def bandwidth_timeline(self, bin_cycles: int) -> List[Tuple[int, float]]:
        """[(bin_start, GB/s)] from request completions (1 cycle = 1 ns)."""
        if bin_cycles <= 0:
            raise ValueError("bin_cycles must be positive")
        reqs = [e for e in self.events if e[1] == "req"]
        if not reqs:
            return []
        start = min(e[7] for e in reqs)
        end = max(e[7] for e in reqs)
        nbins = (end - start) // bin_cycles + 1
        totals = [0] * nbins
        for event in reqs:
            totals[(event[7] - start) // bin_cycles] += event[5]
        return [(start + i * bin_cycles, totals[i] / bin_cycles)
                for i in range(nbins)]

    def utilization_histogram(self, bin_cycles: int,
                              peak_bytes_per_cycle: float = 16.0) -> Histogram:
        """Histogram of per-bin bus utilization percent (DDR3-2000 peak is
        16 B/cycle); the shape behind 'how bursty is the unit's traffic'."""
        hist = Histogram(name="utilization_pct")
        for _, gbps in self.bandwidth_timeline(bin_cycles):
            hist.add(int(round(100.0 * gbps / peak_bytes_per_cycle)))
        return hist

    def summary(self) -> str:
        """A human-readable digest of the trace, for the CLI."""
        lines = [f"{len(self.events)} events"]
        cycles = self.phase_cycles()
        for name in sorted(cycles):
            lines.append(f"  phase {name:10s} {cycles[name]:>12,} cycles")
        by_source = self.requests_by_source()
        total = sum(by_source.values())
        lines.append(f"  {total:,} memory requests:")
        for source in sorted(by_source):
            share = 100.0 * by_source[source] / total if total else 0.0
            lines.append(
                f"    {source:10s} {by_source[source]:>10,} ({share:4.1f}%)"
            )
        stalls = self.queue_stalls()
        if stalls:
            lines.append("  queue backpressure (blocked puts):")
            for name in sorted(stalls):
                lines.append(f"    {name:12s} {stalls[name]:>10,}")
        faults = [e for e in self.events if e[1] == "fault"]
        if faults:
            lines.append(f"  {len(faults)} injected fault(s) fired:")
            for cycle, _, kind, component, op_index in faults:
                lines.append(
                    f"    {kind}:{component} at cycle {cycle:,} "
                    f"(op #{op_index})")
        for event in self.events:
            if event[1] == "fallback":
                cycle, _, reason, culprit = event
                lines.append(
                    f"  FALLBACK at cycle {cycle:,}: {reason}"
                    + (f" [{culprit}]" if culprit else ""))
        return "\n".join(lines)


# -- exporters ---------------------------------------------------------------

#: Cycle is 1 ns (1 GHz SoC clock); Chrome timestamps are microseconds.
_US_PER_CYCLE = 1e-3


def to_chrome_trace(events: Sequence[TraceEvent],
                    meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Convert an event stream to Chrome ``trace_event`` JSON (dict form).

    Load the written file in chrome://tracing or https://ui.perfetto.dev.
    Requests become duration ("X") slices on one track per source, queue
    occupancies become counter ("C") tracks, phases become nested B/E
    slices, and everything else becomes instant events.
    """
    trace_events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_for(name: str) -> int:
        tid = tids.get(name)
        if tid is None:
            tid = tids[name] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": name},
            })
        return tid

    for event in events:
        cycle, category = event[0], event[1]
        ts = cycle * _US_PER_CYCLE
        if category == "req":
            _, _, source, kind, addr, size, issue, done = event
            trace_events.append({
                "name": f"{kind} {size}B", "cat": "mem", "ph": "X",
                "pid": 0, "tid": tid_for(f"mem.{source}"),
                "ts": issue * _US_PER_CYCLE,
                "dur": (done - issue) * _US_PER_CYCLE,
                "args": {"addr": f"{addr:#x}", "size": size},
            })
        elif category == "queue":
            _, _, name, occupancy = event
            trace_events.append({
                "name": f"queue.{name}", "ph": "C", "pid": 0,
                "ts": ts, "args": {"entries": occupancy},
            })
        elif category == "phase":
            _, _, name, edge = event
            trace_events.append({
                "name": name, "cat": "gc", "ph": edge, "pid": 0,
                "tid": tid_for("gc.phases"), "ts": ts,
            })
        else:
            # spill / tlb / ptw / cache / mark / tracer / sweep / cpu:
            # instant events on a per-category track.
            label = ".".join(str(f) for f in event[1:3])
            trace_events.append({
                "name": label, "cat": category, "ph": "i", "s": "t",
                "pid": 0, "tid": tid_for(category), "ts": ts,
                "args": {"fields": [str(f) for f in event[2:]]},
            })
    doc: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
    }
    if meta:
        doc["otherData"] = {k: str(v) for k, v in meta.items()}
    return doc


def write_chrome_trace(events: Sequence[TraceEvent], path: str,
                       meta: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(events, meta=meta), fh)


def write_jsonl(events: Sequence[TraceEvent], path: str) -> None:
    """One JSON array per line: ``[cycle, category, ...fields]``."""
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(list(event)))
            fh.write("\n")


def write_csv(events: Sequence[TraceEvent], path: str) -> None:
    """Flat CSV: ``cycle,category,f0..fN`` (rows are variable arity)."""
    import csv

    width = max((len(e) - 2 for e in events), default=0)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["cycle", "category"]
                        + [f"f{i}" for i in range(width)])
        for event in events:
            writer.writerow(list(event) + [""] * (width - (len(event) - 2)))
