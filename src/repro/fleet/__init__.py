"""Multi-tenant fleet simulation: N modeled app instances under one SLO.

The paper motivates the GC unit with datacenter economics — GC burns a
double-digit share of fleet CPU cycles and wrecks tail latency (§I/§II).
This package scales the single-process query replay of
:mod:`repro.workloads.latency` to a modeled *fleet*: a roster of tenants
running mixed DaCapo profiles (:mod:`repro.fleet.spec`), per-tenant GC
pause timelines phase-shifted from shared base runs
(:mod:`repro.fleet.timeline`), a FIFO admission queue arbitrating
one-or-more accelerator units with shared-DRAM contention modeled as a
service-rate tax (:mod:`repro.fleet.admission`), a seeded open-loop load
balancer (:mod:`repro.fleet.balancer`), and an SLO report plus a
Cai-et-al-style lower-bound-overhead estimate
(:mod:`repro.fleet.report`, :mod:`repro.fleet.lbo`).

Everything is deterministic: the whole fleet derives from the
:class:`~repro.fleet.spec.FleetSpec` seed, so the ``fleet_slo`` /
``fleet_lbo`` figures shard per-tenant / per-fleet-size through
:mod:`repro.harness.sharding` and cache through
:mod:`repro.harness.simcache` with byte-identical digests.
"""

from repro.fleet.admission import (
    POLICIES,
    ScheduleResult,
    ServiceGrant,
    resolve_policy,
    schedule_fleet,
)
from repro.fleet.balancer import spray, tenant_arrivals
from repro.fleet.lbo import fleet_lbo_rows
from repro.fleet.report import (
    FleetResult,
    TenantReport,
    fleet_summary_rows,
    simulate_fleet,
)
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.fleet.timeline import base_run, reset_base_cache, tenant_timeline

__all__ = [
    "POLICIES",
    "FleetResult",
    "FleetSpec",
    "ScheduleResult",
    "ServiceGrant",
    "TenantReport",
    "TenantSpec",
    "base_run",
    "fleet_lbo_rows",
    "fleet_summary_rows",
    "resolve_policy",
    "reset_base_cache",
    "schedule_fleet",
    "simulate_fleet",
    "spray",
    "tenant_arrivals",
    "tenant_timeline",
]
