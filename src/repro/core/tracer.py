"""The tracer (Fig. 14, §V-C).

"We built a custom tracer that can keep an arbitrary number of requests in
flight. After translating the virtual address of the object, it enters a
request generator, which sends Get coherence messages into the memory
system. Our interconnect supports transfer sizes from 8 to 64B, but they
have to be aligned. ... Note that we need to detect when we hit a page
boundary; in this case, the request is interrupted and re-enqueued to pass
through the TLB again."

Requests are **untagged** (§IV-A idea III): the tracer stores no per-request
state; responses append their references to the mark queue in whatever
order they return, which is correct because mark-queue ordering doesn't
affect the traversal result.

Back-pressure: before each memory request the tracer samples the mark
queue's throttle signal (outQ fill level) and stalls while it is high.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.queues import HWQueue
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.core.markqueue import MarkQueue
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import PAGE_SIZE
from repro.memory.request import split_into_aligned_transfers
from repro.memory.tlb import TLB


class Tracer:
    """Pipelined reference-copy stage of the traversal unit."""

    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        mark_queue: MarkQueue,
        tracer_queue: HWQueue,
        port,
        tlb: TLB,
        unit,  # TraversalUnit; provides enqueue_ref()/retire_ref()
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.mem = mem
        self.mark_queue = mark_queue
        self.tracer_queue = tracer_queue
        self.port = port
        self.tlb = tlb
        self.unit = unit
        self.stats = stats if stats is not None else StatsRegistry()
        self.objects_traced = 0
        self.refs_copied = 0
        self.null_refs_skipped = 0
        self.requests_issued = 0
        self.page_boundary_splits = 0

    def process(self):
        """The tracer's main loop (runs as a simulation process)."""
        while True:
            obj_addr, n_refs = yield self.tracer_queue.get()
            yield from self._trace_object(obj_addr, n_refs)

    def _trace_object(self, obj_addr: int, n_refs: int):
        """Walk the reference section ``[obj - 8R, obj)`` with maximal
        aligned transfers, splitting at page boundaries."""
        self.objects_traced += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "tracer", obj_addr, n_refs))
        section_start = obj_addr - WORD_BYTES * n_refs
        section_bytes = WORD_BYTES * n_refs
        # ``remaining`` counts outstanding transfers for this object; the
        # extra 1 is released after issue so an early response can't retire
        # the object before the last request is even sent.
        state = {"remaining": 1}
        cursor = section_start
        end = section_start + section_bytes
        first_chunk = True
        while cursor < end:
            page_end = cursor - (cursor % PAGE_SIZE) + PAGE_SIZE
            chunk_end = min(end, page_end)
            if not first_chunk:
                self.page_boundary_splits += 1
            first_chunk = False
            # Each page chunk passes through the TLB once.
            yield from self.mark_queue.wait_if_throttled()
            chunk_paddr = yield self.tlb.translate(cursor)
            for vaddr, size in split_into_aligned_transfers(
                cursor, chunk_end - cursor
            ):
                yield from self.mark_queue.wait_if_throttled()
                paddr = chunk_paddr + (vaddr - cursor)
                state["remaining"] += 1
                self.requests_issued += 1
                self.port.read(paddr, size).add_callback(
                    lambda _v, p=paddr, s=size: self._response(p, s, state)
                )
            cursor = chunk_end
        self._transfer_done(state)  # release the issue guard

    def _response(self, paddr: int, size: int, state: dict) -> None:
        """A returning (untagged) transfer: append its refs to the queue."""
        for word in self.mem.read_words(paddr, size // WORD_BYTES):
            if word == 0:
                self.null_refs_skipped += 1
                continue
            self.refs_copied += 1
            self.unit.enqueue_ref(word)
        self._transfer_done(state)

    def _transfer_done(self, state: dict) -> None:
        state["remaining"] -= 1
        if state["remaining"] == 0:
            # All of this object's references are in the mark queue.
            self.unit.retire_ref()

    @property
    def idle(self) -> bool:
        return self.tracer_queue.is_empty
