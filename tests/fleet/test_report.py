"""Fleet SLO report: summary refolds, degenerate tenants, the SLO claim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.report import SLO_HEADERS, fleet_summary_rows
from repro.fleet.spec import FleetSpec
from repro.harness.experiments import fleet_slo

POS = st.floats(min_value=1e-3, max_value=1e3,
                allow_nan=False, allow_infinity=False)

#: The pinned small-scale scenario the acceptance criteria reference.
SCENARIO = dict(scale=0.008, n_tenants=3, n_queries=600, warmup=60, n_gcs=2)


def tenant_row(tenant, policy, values, blank=False):
    arrived, done, shed, goodput, p50, p99, p999, mx, wait, tax = values
    if blank:
        p50 = p99 = p999 = mx = ""
    return [tenant, f"bench{tenant}", policy, arrived, done, shed,
            goodput, p50, p99, p999, mx, wait, tax]


class TestSummaryRefold:
    @settings(deadline=None, max_examples=50)
    @given(data=st.data())
    def test_chunked_refold_matches_direct(self, data):
        """The _fleet_slo_merge path: summaries recomputed from any
        contiguous chunking of the tenant rows equal the direct ones."""
        from repro.harness.sharding import split_axis

        n_tenants = data.draw(st.integers(1, 6))
        policies = data.draw(st.permutations(
            ["dedicated", "shared", "software"]))
        n_shards = data.draw(st.integers(1, 6))
        rows = []
        for tenant in range(n_tenants):
            blank = data.draw(st.booleans())
            for policy in policies:
                values = data.draw(st.tuples(
                    st.integers(0, 500), st.integers(0, 500),
                    st.integers(0, 50), POS, POS, POS, POS, POS, POS, POS))
                rows.append(tenant_row(tenant, policy, list(values),
                                       blank=blank))
        direct = fleet_summary_rows(rows)
        tenants = sorted({row[0] for row in rows})
        merged_rows = []
        for chunk in split_axis(tenants, n_shards):
            merged_rows.extend(r for r in rows if r[0] in chunk)
        assert merged_rows == rows  # contiguous chunks preserve order
        assert fleet_summary_rows(merged_rows) == direct

    def test_all_blank_latency_stays_blank(self):
        rows = [tenant_row(0, "dedicated",
                           [10, 10, 0, 5.0, 0, 0, 0, 0, 0.0, 2.0],
                           blank=True)]
        summary = fleet_summary_rows(rows)[0]
        assert summary[7:11] == ["", "", "", ""]
        assert summary[3:6] == [10, 10, 0]

    def test_policies_keep_first_seen_order(self):
        rows = [tenant_row(0, "shared", [1, 1, 0, 1.0] + [1.0] * 6),
                tenant_row(0, "dedicated", [1, 1, 0, 1.0] + [1.0] * 6)]
        assert [row[2] for row in fleet_summary_rows(rows)] == \
            ["shared", "dedicated"]


class TestFleetSLO:
    """Real-simulation claims on the pinned small-scale scenario."""

    @pytest.fixture(scope="class")
    def result(self):
        return fleet_slo(**SCENARIO)

    def test_schema(self, result):
        assert list(result.headers) == list(SLO_HEADERS)
        n_policies = 3
        assert len(result.rows) == \
            SCENARIO["n_tenants"] * n_policies + n_policies

    def test_shared_strictly_worse_p999_at_equal_goodput(self, result):
        """The acceptance criterion: contention costs tail, not goodput."""
        summaries = {row[2]: row for row in result.rows
                     if row[0] == "fleet"}
        dedicated, shared = summaries["dedicated"], summaries["shared"]
        assert shared[6] == dedicated[6]          # goodput q/s
        assert shared[4] == dedicated[4]          # completed
        assert shared[9] > dedicated[9]           # p99.9 strictly worse
        assert shared[12] > dedicated[12]         # and a higher GC tax

    def test_every_arrival_accounted(self, result):
        tenant_rows = [row for row in result.rows if row[0] != "fleet"]
        by_policy = {}
        for row in tenant_rows:
            by_policy.setdefault(row[2], []).append(row)
        for rows in by_policy.values():
            assert sum(row[3] for row in rows) == SCENARIO["n_queries"]

    def test_degenerate_warmup_renders_blank_not_nan(self):
        # Warm-up swallows every query: counters still add up, latency
        # cells are blank, and the render carries no NaN anywhere.
        result = fleet_slo(scale=0.008, n_tenants=2, n_queries=40,
                           warmup=40, n_gcs=1, policies=("dedicated",))
        tenant_rows = [row for row in result.rows if row[0] != "fleet"]
        assert tenant_rows
        for row in tenant_rows:
            assert row[7:11] == ["", "", "", ""]
        import re

        assert not re.search(r"\bnan\b", result.render().lower())


class TestSpecEconomy:
    def test_schedule_derivation_ignores_tenant_subset(self):
        """interval/service derive from the full roster — the anchor of
        per-tenant cell independence."""
        from repro.fleet.report import derive_schedule

        spec = FleetSpec(**{k: v for k, v in SCENARIO.items()
                            if k != "n_tenants"},
                         n_tenants=SCENARIO["n_tenants"])
        assert derive_schedule(spec) == derive_schedule(spec)
