"""Physical-memory image: word access, atomics, bulk ops, snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.memimage import PhysicalMemory

U64 = (1 << 64) - 1


@pytest.fixture
def mem():
    return PhysicalMemory(64 * 1024)


class TestScalar:
    def test_roundtrip(self, mem):
        mem.write_word(0x100, 0xDEAD_BEEF_CAFE_F00D)
        assert mem.read_word(0x100) == 0xDEAD_BEEF_CAFE_F00D

    def test_wraps_to_64_bits(self, mem):
        mem.write_word(8, (1 << 70) | 5)
        assert mem.read_word(8) == 5

    def test_unaligned_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.read_word(3)
        with pytest.raises(ValueError):
            mem.write_word(12, 0)  # 12 is not 8-aligned

    def test_out_of_range_rejected(self, mem):
        with pytest.raises(IndexError):
            mem.read_word(64 * 1024)

    def test_size_must_be_word_aligned(self):
        with pytest.raises(ValueError):
            PhysicalMemory(100)


class TestAtomics:
    def test_fetch_or_returns_old(self, mem):
        mem.write_word(0, 0b0101)
        assert mem.fetch_or(0, 0b0010) == 0b0101
        assert mem.read_word(0) == 0b0111

    def test_fetch_and_returns_old(self, mem):
        mem.write_word(0, 0b0111)
        assert mem.fetch_and(0, ~0b0010 & U64) == 0b0111
        assert mem.read_word(0) == 0b0101

    def test_fetch_or_idempotent_on_set_bit(self, mem):
        mem.fetch_or(0, 1)
        old = mem.fetch_or(0, 1)
        assert old == 1 and mem.read_word(0) == 1


class TestBulk:
    def test_read_write_words(self, mem):
        mem.write_words(0x200, [1, 2, 3])
        assert mem.read_words(0x200, 3) == [1, 2, 3]

    def test_fill(self, mem):
        mem.fill(0x300, 4, 9)
        assert mem.read_words(0x300, 4) == [9, 9, 9, 9]

    def test_bulk_bounds(self, mem):
        with pytest.raises(IndexError):
            mem.read_words(64 * 1024 - 8, 2)
        with pytest.raises(IndexError):
            mem.write_words(64 * 1024 - 8, [1, 2])


class TestSnapshot:
    def test_snapshot_restore(self, mem):
        mem.write_word(0x80, 42)
        snap = mem.snapshot()
        mem.write_word(0x80, 0)
        mem.restore(snap)
        assert mem.read_word(0x80) == 42

    def test_snapshot_is_a_copy(self, mem):
        snap = mem.snapshot()
        mem.write_word(0, 7)
        assert snap[0] == 0

    def test_shape_mismatch_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.restore(np.zeros(3, dtype=np.uint64))


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 1023), st.integers(0, U64)),
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_last_write_wins(writes):
    mem = PhysicalMemory(8 * 1024)
    expected = {}
    for word_index, value in writes:
        mem.write_word(word_index * 8, value)
        expected[word_index] = value
    for word_index, value in expected.items():
        assert mem.read_word(word_index * 8) == value
