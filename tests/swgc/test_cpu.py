"""In-order CPU timing model."""

import pytest

from repro.engine.simulator import Simulator
from repro.memory.config import MemorySystemConfig
from repro.memory.interconnect import build_memory_system
from repro.memory.paging import VIRT_OFFSET
from repro.swgc.cpu import CPUConfig, InOrderCPU


@pytest.fixture
def cpu_system():
    sim = Simulator()
    ms = build_memory_system(sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
    cpu = InOrderCPU(sim, ms)
    return sim, ms, cpu


def run_op(sim, gen):
    proc = sim.process(gen)
    start = sim.now
    sim.run_until(proc)
    return sim.now - start


class TestLoads:
    def test_cold_load_pays_full_hierarchy(self, cpu_system):
        sim, _ms, cpu = cpu_system
        heap_va = VIRT_OFFSET + 8 * 1024 * 1024
        cold = run_op(sim, cpu.load(heap_va))
        warm = run_op(sim, cpu.load(heap_va))
        assert cold > warm
        assert warm <= cpu.config.l1d.hit_latency + 1

    def test_loads_are_serialized_in_order(self, cpu_system):
        sim, _ms, cpu = cpu_system
        heap_va = VIRT_OFFSET + 8 * 1024 * 1024

        def two_dependent_loads():
            yield from cpu.load(heap_va)
            yield from cpu.load(heap_va + 1024 * 1024)

        t = run_op(sim, two_dependent_loads())
        single = run_op(sim, cpu.load(heap_va + 2 * 1024 * 1024))
        assert t > 1.5 * single  # no overlap between the two misses

    def test_amo_counts(self, cpu_system):
        sim, ms, cpu = cpu_system
        run_op(sim, cpu.amo(VIRT_OFFSET + 4096))
        assert ms.stats.get("cpu.cpu.amos") == 1


class TestStores:
    def test_stores_are_posted(self, cpu_system):
        sim, _ms, cpu = cpu_system
        heap_va = VIRT_OFFSET + 8 * 1024 * 1024
        run_op(sim, cpu.load(heap_va + 4096))  # warm the dTLB's page walk
        t = run_op(sim, cpu.store(heap_va + 4096 + 64))
        # Far cheaper than a full miss: buffered (only TLB + issue cost).
        assert t < 10

    def test_store_buffer_fills_and_stalls(self, cpu_system):
        sim, _ms, cpu = cpu_system

        def storm():
            for i in range(32):
                # Distinct lines: every store misses.
                yield from cpu.store(VIRT_OFFSET + 4 * 1024 * 1024 + i * 64)

        t = run_op(sim, storm())
        assert t > 32  # some stalls happened

    def test_drain_stores_waits(self, cpu_system):
        sim, _ms, cpu = cpu_system

        def store_and_drain():
            yield from cpu.store(VIRT_OFFSET + 6 * 1024 * 1024)
            yield from cpu.drain_stores()

        t = run_op(sim, store_and_drain())
        assert t > 10  # had to wait for the miss


class TestBranches:
    def test_mispredict_penalty(self, cpu_system):
        sim, ms, cpu = cpu_system
        ok = run_op(sim, cpu.branch(False))
        bad = run_op(sim, cpu.branch(True))
        assert bad - ok == cpu.config.branch_mispredict_penalty - 1
        assert ms.stats.get("cpu.cpu.mispredicts") == 1

    def test_exec_ops(self, cpu_system):
        sim, _ms, cpu = cpu_system
        assert run_op(sim, cpu.exec_ops(7)) == 7
        assert cpu.instructions >= 7


class TestConfig:
    def test_defaults_match_table_i(self):
        cfg = CPUConfig()
        assert cfg.l1d.size_bytes == 16 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.dtlb.entries == 32
        assert cfg.miss_overlap == 1
