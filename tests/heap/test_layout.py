"""Bidirectional object layout: placement of scan word, refs, status word."""

import pytest

from repro.heap.header import decode_refcount, scan_word_is_object
from repro.heap.layout import BidirectionalLayout, ConventionalLayout, ObjectShape
from repro.memory.memimage import PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(64 * 1024)


class TestShape:
    def test_words_needed(self):
        # scan word + refs + status word + payload
        assert ObjectShape(3, 2).bidirectional_words == 2 + 3 + 2

    def test_layout_words(self):
        assert BidirectionalLayout.words_needed(ObjectShape(1, 0)) == 3


class TestBidirectional:
    def test_initialize_layout(self, mem):
        cell = 0x400
        shape = ObjectShape(n_refs=3, n_payload_words=2)
        status_paddr = BidirectionalLayout.initialize(mem, cell, shape, mark=0)
        # Scan word at cell start, status after the refs.
        assert status_paddr == cell + 8 * (1 + 3)
        scan = mem.read_word(cell)
        assert scan_word_is_object(scan)
        assert decode_refcount(scan) == (3, False)
        assert decode_refcount(mem.read_word(status_paddr)) == (3, False)
        # Reference fields initialized to null.
        assert mem.read_words(cell + 8, 3) == [0, 0, 0]

    def test_status_paddr_from_cell(self, mem):
        cell = 0x800
        shape = ObjectShape(n_refs=5)
        status = BidirectionalLayout.initialize(mem, cell, shape, mark=1)
        assert BidirectionalLayout.status_paddr_from_cell(mem, cell) == status

    def test_ref_field_addresses(self):
        obj = 0x1000  # status-word address
        # Refs sit immediately below the status word.
        assert BidirectionalLayout.ref_field_addr(obj, 3, 0) == obj - 24
        assert BidirectionalLayout.ref_field_addr(obj, 3, 2) == obj - 8
        with pytest.raises(IndexError):
            BidirectionalLayout.ref_field_addr(obj, 3, 3)

    def test_ref_section_is_unit_stride_below_header(self):
        start, nbytes = BidirectionalLayout.ref_section(0x1000, 4)
        assert start == 0x1000 - 32 and nbytes == 32

    def test_cell_from_status_inverse(self, mem):
        cell = 0xC00
        shape = ObjectShape(n_refs=2, n_payload_words=1)
        status = BidirectionalLayout.initialize(mem, cell, shape, mark=0)
        assert BidirectionalLayout.cell_paddr_from_status(status, 2) == cell

    def test_array_flag_propagates(self, mem):
        cell = 0x1400
        status = BidirectionalLayout.initialize(
            mem, cell, ObjectShape(4, 0, is_array=True), mark=0)
        assert decode_refcount(mem.read_word(cell)) == (4, True)
        assert decode_refcount(mem.read_word(status)) == (4, True)


class TestConventional:
    def test_tib_registration(self, mem):
        layout = ConventionalLayout()
        layout.register_tib(mem, type_id=7, offsets=[2, 5, 9], paddr=0x2000)
        assert layout.tib_addr(7) == 0x2000
        assert layout.offsets(7) == [2, 5, 9]
        assert mem.read_word(0x2000) == 3
        assert mem.read_words(0x2008, 3) == [2, 5, 9]
