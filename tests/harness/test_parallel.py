"""Worker disciplines: persistent pool vs fresh-per-task processes.

``worker_mode="pool"`` amortizes interpreter startup across tasks but must
keep the guarantees of the fresh-process pipeline: byte-identical digests,
one-task-per-worker crash attribution with retry and replacement, timeout
reaping, and the hard rule that fault plans never run on pooled workers.
"""

import os

import pytest

import repro.harness.parallel as parallel
import repro.harness.suite as suite_mod
from repro.harness import faults, heapcache
from repro.harness.parallel import digests, resolve_worker_mode, run_suite

#: Static-model entries: no simulation, so pool tests run in seconds.
TINY = [("fig22", {}), ("abl_barriers", {})]

BACKOFF = 0.01


@pytest.fixture
def tiny_suite(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
    original = list(suite_mod.SUITE)
    suite_mod.SUITE[:] = TINY
    heapcache.reset_cache()
    yield
    suite_mod.SUITE[:] = original
    heapcache.reset_cache()


class TestResolveWorkerMode:
    PLAN = faults.parse_spec("crash:fig22:1")

    def test_auto_prefers_pool(self):
        assert resolve_worker_mode("auto", None) == "pool"

    def test_auto_with_fault_plan_falls_back_to_fresh(self):
        assert resolve_worker_mode("auto", self.PLAN) == "fresh"

    def test_explicit_modes_pass_through(self):
        assert resolve_worker_mode("pool", None) == "pool"
        assert resolve_worker_mode("fresh", None) == "fresh"
        assert resolve_worker_mode("fresh", self.PLAN) == "fresh"

    def test_pool_with_fault_plan_is_an_error(self):
        with pytest.raises(ValueError, match="fault"):
            resolve_worker_mode("pool", self.PLAN)

    def test_unknown_mode_is_an_error(self):
        with pytest.raises(ValueError, match="auto|pool|fresh"):
            resolve_worker_mode("turbo", None)


class TestPoolIdentity:
    def test_pool_matches_fresh_and_inline_digests(self, tiny_suite):
        inline = run_suite(jobs=1)
        fresh = run_suite(jobs=2, worker_mode="fresh")
        pooled = run_suite(jobs=2, worker_mode="pool")
        assert digests(inline) == digests(fresh) == digests(pooled)
        assert all(r.ok for r in pooled)

    def test_workers_are_reused_across_tasks(self, tiny_suite, tmp_path,
                                             monkeypatch):
        pids = tmp_path / "pids"

        def recording_run_entry(index, exp_id, kwargs,
                                _real=parallel.run_entry):
            with open(pids, "a") as fh:
                fh.write(f"{os.getpid()}\n")
            return _real(index, exp_id, kwargs)

        # Three tasks on two persistent workers: pigeonhole forces reuse,
        # which fresh mode (one process per task) never exhibits.
        suite_mod.SUITE[:] = TINY + [("fig22", {})]
        monkeypatch.setattr(parallel, "run_entry", recording_run_entry)
        runs = run_suite(jobs=2, worker_mode="pool")
        assert all(r.ok for r in runs)
        recorded = pids.read_text().split()
        assert len(recorded) == 3
        assert len(set(recorded)) <= 2


class TestPoolFaultTolerance:
    def test_worker_death_is_attributed_retried_and_replaced(
            self, tiny_suite, tmp_path, monkeypatch):
        flag = str(tmp_path / "crashed-once")

        def crashing_run_entry(index, exp_id, kwargs,
                               _real=parallel.run_entry):
            if exp_id == "fig22":
                try:
                    fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    pass  # second attempt: behave
                else:
                    os.close(fd)
                    os._exit(42)  # die without reporting: pipe EOF
            return _real(index, exp_id, kwargs)

        clean = run_suite(jobs=2, worker_mode="pool")
        monkeypatch.setattr(parallel, "run_entry", crashing_run_entry)
        runs = run_suite(jobs=2, worker_mode="pool", retries=1,
                         backoff=BACKOFF)
        assert digests(runs) == digests(clean)
        crashed = next(r for r in runs if r.exp_id == "fig22")
        assert crashed.ok and crashed.attempts == 2
        first = crashed.attempt_history[0]
        assert first["status"] == "crash"
        assert "status 42" in first["error"]
        # The sibling entry was unaffected by the dead worker.
        other = next(r for r in runs if r.exp_id == "abl_barriers")
        assert other.ok and other.attempts == 1

    def test_exhausted_retries_fail_the_entry(self, tiny_suite, monkeypatch):
        def always_crashing(index, exp_id, kwargs, _real=parallel.run_entry):
            if exp_id == "fig22":
                os._exit(17)
            return _real(index, exp_id, kwargs)

        monkeypatch.setattr(parallel, "run_entry", always_crashing)
        runs = run_suite(jobs=2, worker_mode="pool", retries=1,
                         backoff=BACKOFF, keep_going=True)
        failed = next(r for r in runs if r.exp_id == "fig22")
        assert failed.status == "failed" and failed.attempts == 2
        assert all(rec["status"] == "crash"
                   for rec in failed.attempt_history)

    def test_deadline_kills_a_hung_pooled_worker(self, tiny_suite, tmp_path,
                                                 monkeypatch):
        flag = str(tmp_path / "hung-once")

        def hanging_run_entry(index, exp_id, kwargs,
                              _real=parallel.run_entry):
            if exp_id == "fig22":
                try:
                    fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    pass
                else:
                    os.close(fd)
                    import time
                    time.sleep(60)
            return _real(index, exp_id, kwargs)

        monkeypatch.setattr(parallel, "run_entry", hanging_run_entry)
        runs = run_suite(jobs=2, worker_mode="pool", timeout=1.0,
                         retries=1, backoff=BACKOFF)
        hung = next(r for r in runs if r.exp_id == "fig22")
        assert hung.ok and hung.attempts == 2
        assert hung.attempt_history[0]["status"] == "timeout"

    def test_per_attempt_stats_are_deltas(self, tiny_suite):
        runs = run_suite(jobs=2, worker_mode="pool")
        for run in runs:
            for rec in run.attempt_history:
                # Static models cost ~0 CPU; a cumulative (non-delta)
                # reading would carry worker import/startup time.
                assert rec["cpu_s"] < 5.0
                assert rec["cpu_s"] >= 0.0
