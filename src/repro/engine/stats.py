"""Statistics collection for the evaluation harness.

The paper's figures are driven by counters (memory requests by source,
Fig. 18), time series (bandwidth over a pause, Fig. 16), histograms
(object access frequencies, Fig. 21a), and request-interval measurements
(cycles per request, Fig. 17b). This module provides one collector per shape.
"""

from __future__ import annotations

import math
from collections import Counter as PyCounter
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class StatsRegistry:
    """A flat namespace of counters, keyed by string.

    Components attribute activity to keys like ``"mem.reads.marker"``; the
    harness slices by prefix when regenerating the paper's breakdowns.

    Counters are stored as :class:`Counter` boxes. Hot paths that bump the
    same key millions of times fetch the box once via :meth:`counter` and
    do ``box.value += 1`` inline — no per-increment dict traffic or method
    call. ``inc``/``get``/``as_dict`` remain the general string-keyed API
    and observe handle updates immediately (same box).

    The registry doubles as the attachment point for the structured trace
    bus (:mod:`repro.engine.trace`): every instrumented component already
    holds a registry, so ``stats.trace = TraceBus()`` enables tracing
    system-wide and ``stats.trace = None`` disables it. The class-level
    default keeps registries unpickled from older heap-cache entries (and
    every untouched hot path) on the zero-cost disabled path: one attribute
    load plus a ``None`` check.
    """

    #: The attached :class:`~repro.engine.trace.TraceBus`, or ``None``.
    trace = None

    #: The attached :class:`~repro.engine.faultplane.FaultPlane`, or
    #: ``None``. Same zero-cost discipline as :attr:`trace`: hook sites do
    #: one attribute load plus a ``None`` check when no faults are armed.
    hwfaults = None

    #: The attached :class:`~repro.engine.watchdog.GCWatchdog`, or
    #: ``None``. Heartbeat/outstanding-request hooks are skipped entirely
    #: when no watchdog is supervising the collection.
    watchdog = None

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, key: str) -> Counter:
        """The mutable counter box for ``key`` (created at zero)."""
        box = self._counters.get(key)
        if box is None:
            box = self._counters[key] = Counter(key)
        return box

    def inc(self, key: str, amount: int = 1) -> None:
        box = self._counters.get(key)
        if box is None:
            box = self._counters[key] = Counter(key)
        box.value += amount

    def get(self, key: str, default: int = 0) -> int:
        box = self._counters.get(key)
        return box.value if box is not None else default

    def with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose key starts with ``prefix``."""
        return {
            k: box.value for k, box in self._counters.items()
            if k.startswith(prefix)
        }

    def total(self, prefix: str) -> int:
        """Sum of all counters under ``prefix``."""
        return sum(self.with_prefix(prefix).values())

    def as_dict(self) -> Dict[str, int]:
        return {k: box.value for k, box in self._counters.items()}

    def merge(self, other: "StatsRegistry") -> None:
        for key, box in other._counters.items():
            self.inc(key, box.value)

    def reset(self) -> None:
        self._counters.clear()

    def __setstate__(self, state: dict) -> None:
        # Registries pickled before counters became boxes (old heap-cache
        # entries) store plain ints; re-box them on load.
        raw = state.get("_counters", {})
        boxed: Dict[str, Counter] = {}
        for key, value in raw.items():
            if not isinstance(value, Counter):
                box = Counter(key)
                box.value = value
                value = box
            boxed[key] = value
        state["_counters"] = boxed
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"StatsRegistry({len(self._counters)} counters)"


class Histogram:
    """An exact histogram over integer-valued samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: PyCounter = PyCounter()
        self.n = 0

    def add(self, value: int, count: int = 1) -> None:
        if isinstance(value, float):
            if not math.isfinite(value):
                raise ValueError(f"non-finite histogram sample: {value}")
            value = int(value)
        if count < 0:
            raise ValueError(f"negative sample count: {count}")
        if count == 0:
            return
        self._counts[value] += count
        self.n += count

    def counts(self) -> Dict[int, int]:
        return dict(self._counts)

    def mean(self) -> float:
        if self.n == 0:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / self.n

    def percentile(self, p: float, default: Optional[int] = None) -> int:
        """p in [0, 100]; nearest-rank percentile.

        An empty histogram raises :class:`ValueError` unless ``default``
        is given (the NaN-safe path for optional series: callers rendering
        sparse figures pass ``default=0`` instead of special-casing).
        A single-sample histogram returns that sample for every ``p``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.n == 0:
            if default is not None:
                return default
            raise ValueError("empty histogram")
        rank = max(1, math.ceil(p / 100.0 * self.n))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return max(self._counts)  # pragma: no cover - defensive

    def top(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` (value, count) pairs with the highest counts."""
        return self._counts.most_common(k)

    def __len__(self) -> int:
        return self.n


class TimeSeries:
    """A sequence of (time, value) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def sample(self, time: int, value: float) -> None:
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"non-finite time-series sample: {value}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def points(self) -> List[Tuple[int, float]]:
        return list(zip(self.times, self.values))


class IntervalTracker:
    """Tracks intervals between successive occurrences of an event.

    Used for Fig. 17b: "a request being sent into the memory system every
    8.66 cycles".
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._first: Optional[int] = None
        self._last: Optional[int] = None

    def record(self, time: int) -> None:
        if self._first is None:
            self._first = time
        self._last = time
        self.count += 1

    def mean_interval(self) -> float:
        """Average cycles between occurrences (span / (count - 1))."""
        if self.count < 2 or self._first is None or self._last is None:
            return 0.0
        return (self._last - self._first) / (self.count - 1)

    @property
    def span(self) -> int:
        if self._first is None or self._last is None:
            return 0
        return self._last - self._first


class BandwidthTracker:
    """Accumulates (time, bytes) transfer records and bins them.

    The simulated clock is 1 GHz, so a cycle is 1 ns and ``bytes/cycle``
    equals GB/s — the unit used in Figs. 16 and 17.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._records: List[Tuple[int, int]] = []
        self.total_bytes = 0
        self.busy_cycles = 0

    def record(self, time: int, nbytes: int, busy_cycles: int = 0) -> None:
        self._records.append((time, nbytes))
        self.total_bytes += nbytes
        self.busy_cycles += busy_cycles

    def binned(self, bin_cycles: int) -> List[Tuple[int, float]]:
        """Returns [(bin_start_cycle, GB/s within bin), ...] over the span."""
        if not self._records:
            return []
        if bin_cycles <= 0:
            raise ValueError("bin_cycles must be positive")
        start = min(t for t, _ in self._records)
        end = max(t for t, _ in self._records)
        nbins = (end - start) // bin_cycles + 1
        totals = [0] * nbins
        for time, nbytes in self._records:
            totals[(time - start) // bin_cycles] += nbytes
        return [
            (start + i * bin_cycles, totals[i] / bin_cycles) for i in range(nbins)
        ]

    def binned_window(
        self, start: int, end: int, bin_cycles: int
    ) -> List[Tuple[int, float]]:
        """Like :meth:`binned` but restricted to ``[start, end)`` — used to
        slice one GC pause out of a longer run (Fig. 16)."""
        if bin_cycles <= 0:
            raise ValueError("bin_cycles must be positive")
        if end <= start:
            return []
        nbins = (end - start - 1) // bin_cycles + 1
        totals = [0] * nbins
        for time, nbytes in self._records:
            if start <= time < end:
                totals[(time - start) // bin_cycles] += nbytes
        return [
            (start + i * bin_cycles, totals[i] / bin_cycles)
            for i in range(nbins)
        ]

    def window_bytes(self, start: int, end: int) -> int:
        """Total bytes transferred in ``[start, end)``."""
        return sum(b for t, b in self._records if start <= t < end)

    def average_gbps(self, span_cycles: Optional[int] = None) -> float:
        """Mean bandwidth in GB/s over the recorded span (or a given span)."""
        if span_cycles is None:
            if len(self._records) < 2:
                return 0.0
            span_cycles = self._records[-1][0] - self._records[0][0]
        if span_cycles <= 0:
            return 0.0
        return self.total_bytes / span_cycles


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 when total weight is zero.

    NaN-safe: pairs with a non-finite value or weight are skipped (a
    figure with one degenerate series should not poison the aggregate).
    """
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        if not (math.isfinite(value) and math.isfinite(weight)):
            continue
        total += value * weight
        weight_sum += weight
    return total / weight_sum if weight_sum else 0.0


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports cross-benchmark speedups this way."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    # NaN compares false against 0, so check finiteness explicitly.
    if any(not math.isfinite(v) or v <= 0 for v in values):
        raise ValueError("geomean requires positive finite values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
