"""Concurrent GC: write barrier, read barrier, relocation."""

import pytest

from repro.core import GCUnit, GCUnitConfig
from repro.core.concurrent import (
    BARRIER_MODELS,
    BarrierKind,
    ConcurrentMarkSimulation,
    ForwardingTable,
    MutatorBarriers,
    RelocatingSweep,
)
from repro.core.concurrent.forwarding import BARRIER_BIT, barrier_shadow
from repro.memory.paging import PAGE_SIZE

from tests.conftest import make_random_heap


class TestWriteBarrier:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_reachable_object_is_lost(self, seed):
        """Property (Fig. 3's race, closed): with the write barrier on,
        concurrent marking never misses a reachable object."""
        heap, _views = make_random_heap(n_objects=250, seed=seed)
        outcome = ConcurrentMarkSimulation(
            heap, n_mutations=150, write_barrier_enabled=True, seed=seed
        ).run()
        assert outcome.lost_objects == set()
        assert outcome.mutations > 0

    def test_disabled_barrier_reproduces_the_race(self):
        """Without the barrier some seed exhibits the hidden-object bug."""
        lost_any = 0
        for seed in range(6):
            heap, _views = make_random_heap(n_objects=250, seed=seed)
            outcome = ConcurrentMarkSimulation(
                heap, n_mutations=250, write_barrier_enabled=False, seed=seed
            ).run()
            lost_any += len(outcome.lost_objects)
        assert lost_any > 0, "the Fig. 3 race should manifest"

    def test_barrier_publishes_old_values(self, small_heap):
        a = small_heap.new_object(1)
        b = small_heap.new_object(0)
        a.set_ref(0, b.addr)
        small_heap.set_roots([a.addr])
        barriers = MutatorBarriers(small_heap)
        barriers.marking_active = True
        barriers.write_ref(a, 0, 0)
        assert small_heap.roots.read_all()[-1] == b.addr
        assert barriers.write_barrier_hits == 1

    def test_barrier_idle_outside_marking(self, small_heap):
        a = small_heap.new_object(1)
        b = small_heap.new_object(0)
        a.set_ref(0, b.addr)
        small_heap.set_roots([a.addr])
        barriers = MutatorBarriers(small_heap)  # marking_active = False
        barriers.write_ref(a, 0, 0)
        assert barriers.write_barrier_hits == 0


class TestForwardingTable:
    def test_resolve_and_delta(self):
        table = ForwardingTable()
        table.add(0x1000, 0x9000)
        assert table.resolve(0x1000) == 0x9000
        assert table.resolve(0x2000) == 0x2000
        assert table.delta(0x1000) == 0x8000
        assert table.delta(0x2000) == 0

    def test_double_forward_rejected(self):
        table = ForwardingTable()
        table.add(0x1000, 0x9000)
        with pytest.raises(ValueError):
            table.add(0x1000, 0xA000)

    def test_page_invalidation(self):
        table = ForwardingTable()
        table.add(0x1000, 0x9000)
        assert table.is_relocated_page(0x1FF8)
        assert not table.is_relocated_page(0x2000 + PAGE_SIZE)

    def test_delta_line(self):
        table = ForwardingTable()
        table.add(0x1008, 0x9008)
        deltas = table.delta_line(0x1000)
        assert deltas[1] == 0x8000
        assert deltas[0] == 0 and len(deltas) == 8

    def test_barrier_shadow_flips_msb(self):
        assert barrier_shadow(0x1000) == 0x1000 | BARRIER_BIT
        assert barrier_shadow(barrier_shadow(0x1000)) == 0x1000


class TestRelocation:
    def _collected_heap(self, seed=3):
        heap, _views = make_random_heap(n_objects=300, seed=seed)
        GCUnit(heap, GCUnitConfig()).collect()
        return heap

    def test_evacuation_builds_forwardings(self):
        heap = self._collected_heap()
        sweep = RelocatingSweep(heap)
        table = sweep.evacuate_blocks([0, 1])
        assert len(table) == sweep.objects_moved > 0
        for old in table.old_addresses():
            new = table.lookup(old)
            # The copy is byte-identical around the status word.
            assert heap.mem.read_word(heap.to_physical(new)) == \
                heap.mem.read_word(heap.to_physical(old))

    def test_evacuated_blocks_become_fully_free(self):
        heap = self._collected_heap()
        sweep = RelocatingSweep(heap)
        sweep.evacuate_blocks([0])
        desc = heap.block_list.read(0)
        head = desc.freelist_head
        count = 0
        while head:
            count += 1
            head = heap.mem.read_word(heap.to_physical(head))
        assert count == desc.n_cells

    def test_fixup_preserves_object_graph(self):
        heap = self._collected_heap(seed=4)
        reachable_before = heap.reachable()
        sweep = RelocatingSweep(heap)
        table = sweep.evacuate_blocks(range(min(4, len(heap.block_list))))
        sweep.fixup_references(table)
        expected = {table.resolve(a) for a in reachable_before}
        assert heap.reachable() == expected

    def test_read_barrier_returns_forwarded_address(self):
        heap = self._collected_heap(seed=5)
        sweep = RelocatingSweep(heap)
        table = sweep.evacuate_blocks([0])
        barriers = MutatorBarriers(heap, forwarding=table)
        moved = dict((old, table.lookup(old))
                     for old in table.old_addresses())
        # Find a live field pointing at a moved object.
        for addr in heap.reachable():
            view = heap.view(addr)
            for i in range(view.n_refs):
                ref = view.get_ref(i)
                if ref in moved:
                    assert barriers.read_ref(view, i) == moved[ref]
                    # Self-healing: the field now stores the new address.
                    assert view.get_ref(i) == moved[ref]
                    return
        pytest.skip("no live reference to a moved object in this seed")


class TestBarrierCostModels:
    def test_all_kinds_modeled(self):
        assert set(BARRIER_MODELS) == set(BarrierKind)

    def test_slowdown_monotone_in_churn(self):
        model = BARRIER_MODELS[BarrierKind.VM_TRAP]
        low = model.slowdown(10**8, 4 * 10**6, 1e-4)
        high = model.slowdown(10**8, 4 * 10**6, 1e-2)
        assert high > low >= 1.0

    def test_refload_beats_software_fast_path(self):
        sw = BARRIER_MODELS[BarrierKind.SOFTWARE_CONDITIONAL]
        rl = BARRIER_MODELS[BarrierKind.REFLOAD]
        assert rl.slowdown(10**8, 4 * 10**6, 1e-3) < \
            sw.slowdown(10**8, 4 * 10**6, 1e-3)

    def test_validation(self):
        model = BARRIER_MODELS[BarrierKind.SOFTWARE_CONDITIONAL]
        with pytest.raises(ValueError):
            model.overhead_cycles(100, slow_fraction=2.0)
        with pytest.raises(ValueError):
            model.slowdown(0, 100, 0.1)


class TestRefloadCostEdgeCases:
    """Regressions for the refload cost-model fixes: zero-length bursts,
    negative inputs, and the footprint term in ``slowdown``."""

    def test_zero_length_burst_pays_footprint_only(self):
        model = BARRIER_MODELS[BarrierKind.SOFTWARE_CONDITIONAL]
        # No reference operations: the per-op terms contribute nothing,
        # but the resident footprint tax on mutator execution remains.
        assert model.overhead_cycles(
            0, slow_fraction=0.5, mutator_exec_cycles=1_000) == \
            1_000 * model.footprint_overhead
        # And with no mutator window either, the overhead is exactly zero.
        assert model.overhead_cycles(0, slow_fraction=0.5) == 0.0

    def test_zero_burst_zero_for_footprint_free_kinds(self):
        # VM_TRAP and REFLOAD have no footprint term: an empty burst
        # costs nothing regardless of the mutator window.
        for kind in (BarrierKind.VM_TRAP, BarrierKind.REFLOAD):
            model = BARRIER_MODELS[kind]
            assert model.overhead_cycles(
                0, slow_fraction=1.0, mutator_exec_cycles=10**6) == 0.0

    def test_negative_ref_ops_rejected(self):
        model = BARRIER_MODELS[BarrierKind.COHERENCE]
        with pytest.raises(ValueError):
            model.overhead_cycles(-1, slow_fraction=0.1)

    def test_negative_mutator_window_rejected(self):
        model = BARRIER_MODELS[BarrierKind.COHERENCE]
        with pytest.raises(ValueError):
            model.overhead_cycles(10, slow_fraction=0.1,
                                  mutator_exec_cycles=-5)

    def test_slowdown_includes_footprint_term(self):
        # Even a churn-free, ref-free application pays the barrier's
        # code-footprint tax: slowdown floor is 1 + footprint_overhead.
        model = BARRIER_MODELS[BarrierKind.SOFTWARE_CONDITIONAL]
        assert model.slowdown(10**6, 0, 0.0) == pytest.approx(1.04)
        assert BARRIER_MODELS[BarrierKind.REFLOAD].slowdown(
            10**6, 0, 0.0) == pytest.approx(1.0)

    def test_relocation_worst_case_monotone_in_slow_fraction(self):
        # REFLOAD during relocation: every load hitting a forwarded page
        # (slow_fraction=1.0) must cost at least as much as any partial
        # overlap — monotone, no cliff, no negative overhead.
        model = BARRIER_MODELS[BarrierKind.REFLOAD]
        costs = [model.overhead_cycles(10_000, slow_fraction=f)
                 for f in (0.0, 0.25, 0.5, 1.0)]
        assert costs == sorted(costs)
        assert all(c >= 0.0 for c in costs)
