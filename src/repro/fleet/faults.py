"""Fleet-tier fault plane: unit outages, brownouts, and slow tenants.

:mod:`repro.engine.faultplane` injects failures *inside* one modeled
accelerator (a dropped DRAM response, a wedged marker); this module
injects them one level up, into the *fleet* — whole GC units crashing,
browning out, or running slow, and tenants whose collections degrade.
The paper's deployment story ("by replacing libhwgc, we can swap in a
software implementation of our GC", §V-E) scales to the datacenter as
failover: a collection in flight on a dead unit is retried on a
surviving unit, and a tenant that cannot get hardware service inside
its patience budget falls back to its own software collector — the
fleet-scale analogue of :meth:`repro.core.driver.HWGCDriver.run_gc_safe`.

Spec grammar (CLI ``--faults`` / programmatic), comma-separated entries
styled after ``REPRO_HWFAULTS``'s ``kind:component[:nth|@cycle]``::

    <kind>:<target>[@<cycle>][+<duration>][x<factor>]

* ``kind`` — ``crash`` (permanent outage from the trigger cycle),
  ``brownout`` (service-rate multiplier over a bounded cycle window), or
  ``slow`` (permanent service-rate multiplier from the trigger cycle).
* ``target`` — ``u<N>`` (accelerator unit N of the shared pool) or
  ``t<N>`` (tenant N of the roster). A crashed *unit* stops serving; a
  crashed *tenant* goes offline — its remaining collections are
  cancelled and its later query arrivals are shed (and counted).
* ``@cycle`` — trigger cycle (default 0); ``+duration`` — window length,
  required for ``brownout`` and invalid elsewhere; ``x<factor>`` —
  service-rate multiplier for ``brownout``/``slow`` (defaults
  :data:`DEFAULT_BROWNOUT_FACTOR` / :data:`DEFAULT_SLOW_FACTOR`).

Everything is a pure function of the frozen :class:`FleetFaultSpec` —
no randomness, no wall clock — so every faulted fleet run is exactly
reproducible, shardable per roster, and simulation-cacheable by content
address like any other figure cell.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.faultplane import FaultSpecGrammarError, split_spec_entries

KINDS: Tuple[str, ...] = ("crash", "brownout", "slow")
TARGET_KINDS: Tuple[str, ...] = ("unit", "tenant")

#: Default service-rate multipliers: a brownout is a hard degradation
#: (thermal throttle, contended channel), a slow fault a milder one
#: (aging part, noisy neighbour).
DEFAULT_BROWNOUT_FACTOR = 4.0
DEFAULT_SLOW_FACTOR = 2.0

#: ``crash:u0@10+5`` etc. — kind : (u|t)index [@cycle] [+duration] [xfactor]
_ENTRY_RE = re.compile(
    r"^(?P<kind>[a-z]+):(?P<tk>[ut])(?P<index>\d+)"
    r"(?:@(?P<at>\d+))?(?:\+(?P<duration>\d+))?(?:x(?P<factor>[0-9.]+))?$")


class FleetFaultSpecError(FaultSpecGrammarError):
    """The fleet fault spec does not parse or is inconsistent."""


@dataclass(frozen=True)
class FleetFault:
    """One scheduled fleet-tier fault."""

    kind: str
    target_kind: str  # "unit" | "tenant"
    index: int
    at_cycle: int = 0
    #: Window length for ``brownout``; ``None`` for the open-ended kinds.
    duration: Optional[int] = None
    #: Service-rate multiplier for ``brownout``/``slow``; ``None`` for
    #: ``crash``.
    factor: Optional[float] = None

    def spec(self) -> str:
        """The entry's canonical grammar string (parse round-trip)."""
        out = f"{self.kind}:{self.target_kind[0]}{self.index}"
        if self.at_cycle:
            out += f"@{self.at_cycle}"
        if self.duration is not None:
            out += f"+{self.duration}"
        if self.factor is not None:
            out += f"x{self.factor:g}"
        return out

    @property
    def end_cycle(self) -> float:
        """Last cycle the fault degrades service (inf if open-ended)."""
        if self.duration is None:
            return math.inf
        return self.at_cycle + self.duration


@dataclass(frozen=True)
class FleetFaultSpec:
    """A frozen roster of fleet faults — the fault plane's single input."""

    faults: Tuple[FleetFault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FleetFaultSpec":
        """Parse the comma-separated grammar (see module docstring)."""
        faults: List[FleetFault] = []
        for chunk in split_spec_entries(spec):
            m = _ENTRY_RE.match(chunk)
            if m is None:
                raise FleetFaultSpecError(
                    f"bad fleet fault {chunk!r}: expected "
                    f"kind:target[@cycle][+duration][xfactor] with kind "
                    f"{'/'.join(KINDS)} and target u<N>/t<N>")
            kind = m.group("kind")
            if kind not in KINDS:
                raise FleetFaultSpecError(
                    f"bad fleet fault {chunk!r}: kind must be one of "
                    f"{'/'.join(KINDS)}")
            target_kind = "unit" if m.group("tk") == "u" else "tenant"
            at_cycle = int(m.group("at") or 0)
            duration = (int(m.group("duration"))
                        if m.group("duration") is not None else None)
            factor = (float(m.group("factor"))
                      if m.group("factor") is not None else None)
            if kind == "crash":
                if duration is not None or factor is not None:
                    raise FleetFaultSpecError(
                        f"bad fleet fault {chunk!r}: crash is permanent — "
                        f"it takes no +duration or xfactor")
            elif kind == "brownout":
                if duration is None or duration < 1:
                    raise FleetFaultSpecError(
                        f"bad fleet fault {chunk!r}: brownout needs a "
                        f"+duration window of at least 1 cycle")
            else:  # slow
                if duration is not None:
                    raise FleetFaultSpecError(
                        f"bad fleet fault {chunk!r}: slow is permanent — "
                        f"use brownout for a bounded window")
            if factor is None and kind != "crash":
                factor = (DEFAULT_BROWNOUT_FACTOR if kind == "brownout"
                          else DEFAULT_SLOW_FACTOR)
            if factor is not None and factor <= 1.0:
                raise FleetFaultSpecError(
                    f"bad fleet fault {chunk!r}: xfactor must exceed 1.0 "
                    f"(it multiplies service time)")
            faults.append(FleetFault(kind=kind, target_kind=target_kind,
                                     index=int(m.group("index")),
                                     at_cycle=at_cycle, duration=duration,
                                     factor=factor))
        return cls(faults=tuple(faults))

    def spec(self) -> str:
        return ",".join(fault.spec() for fault in self.faults)

    def validate(self, n_units: int, n_tenants: int) -> "FleetFaultSpec":
        """Check every target names a real unit/tenant; returns self."""
        for fault in self.faults:
            bound = n_units if fault.target_kind == "unit" else n_tenants
            if not 0 <= fault.index < bound:
                raise FleetFaultSpecError(
                    f"fleet fault {fault.spec()!r} targets "
                    f"{fault.target_kind} {fault.index}, but the fleet has "
                    f"only {bound} {fault.target_kind}(s) "
                    f"(valid: 0..{bound - 1})")
        return self

    # -- queries the admission loop asks ---------------------------------

    def _matching(self, target_kind: str, index: int) -> List[FleetFault]:
        return [f for f in self.faults
                if f.target_kind == target_kind and f.index == index]

    def crash_cycle(self, unit: int) -> Optional[int]:
        """Cycle unit ``unit`` dies, or ``None`` if it never does."""
        crashes = [f.at_cycle for f in self._matching("unit", unit)
                   if f.kind == "crash"]
        return min(crashes) if crashes else None

    def tenant_crash_cycle(self, tenant: int) -> Optional[int]:
        crashes = [f.at_cycle for f in self._matching("tenant", tenant)
                   if f.kind == "crash"]
        return min(crashes) if crashes else None

    def crashed_units(self, n_units: int) -> Tuple[int, ...]:
        return tuple(u for u in range(n_units)
                     if self.crash_cycle(u) is not None)

    def rate_segments(self, unit: int) -> List[Tuple[int, float, float]]:
        """Piecewise-constant service-time multiplier of one unit.

        Returns ``[(start, end, factor), ...]`` covering ``[0, inf)`` in
        ascending order; overlapping brownout/slow windows multiply.
        """
        degradations = [f for f in self._matching("unit", unit)
                        if f.kind in ("brownout", "slow")]
        bounds = sorted({0, math.inf,
                         *(f.at_cycle for f in degradations),
                         *(f.end_cycle for f in degradations)})
        segments: List[Tuple[int, float, float]] = []
        for start, end in zip(bounds, bounds[1:]):
            factor = 1.0
            for f in degradations:
                if f.at_cycle <= start and end <= f.end_cycle:
                    factor *= f.factor
            segments.append((int(start), end, factor))
        return segments or [(0, math.inf, 1.0)]

    def service_end(self, unit: int, start: int, work_cycles: int) -> int:
        """Completion cycle of ``work_cycles`` of service started at
        ``start`` on ``unit``, stretched through its brownout/slow
        windows (a segment with factor ``f`` serves one work cycle per
        ``f`` wall cycles). Crashes are *not* applied here — the
        admission loop handles interruption explicitly."""
        remaining = work_cycles
        cursor = start
        for seg_start, seg_end, factor in self.rate_segments(unit):
            if seg_end <= cursor:
                continue
            need = math.ceil(remaining * factor)
            if seg_end == math.inf or cursor + need <= seg_end:
                return cursor + need
            done = int((seg_end - cursor) // factor)
            remaining -= done
            cursor = int(seg_end)
        raise AssertionError("rate segments must cover [0, inf)")

    def tenant_factor(self, tenant: int, cycle: int) -> float:
        """Service-time multiplier of one tenant's collections at
        ``cycle`` (its heap degraded: brownout window or permanent slow)."""
        factor = 1.0
        for f in self._matching("tenant", tenant):
            if f.kind in ("brownout", "slow") and \
                    f.at_cycle <= cycle < f.end_cycle:
                factor *= f.factor
        return factor

    def __bool__(self) -> bool:
        return bool(self.faults)


#: The default roster family of the ``fleet_resilience`` figure: goodput
#: and tail latency vs number of failed units (0/1/2 of 3) and vs
#: brownout duration (short/long), plus a degraded-but-alive row. Crash
#: cycles sit *inside* in-flight grants of the suite-scale scenario
#: (4 tenants × 3 units at scale 0.015 grant between ~2.1M and ~6.4M
#: cycles), so service is actually interrupted and failover exercised,
#: not just cold outage. Labels are the figure's axis column.
DEFAULT_RESILIENCE_ROSTERS: Tuple[Tuple[str, str], ...] = (
    ("no faults", ""),
    ("crash 1 of 3 units", "crash:u2@2800000"),
    ("crash 2 of 3 units", "crash:u2@2800000,crash:u1@3700000"),
    ("brownout 1 unit, short", "brownout:u0@2000000+2000000x4"),
    ("brownout 1 unit, long", "brownout:u0@2000000+20000000x4"),
    ("slow unit + slow tenant", "slow:u1x3,slow:t0x2"),
)
