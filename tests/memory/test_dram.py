"""DDR3 controller timing: rows, banks, schedulers, windows."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.config import DRAMConfig
from repro.memory.dram import DRAMController
from repro.memory.request import AccessKind, MemRequest


def make(sim=None, **kwargs):
    sim = sim or Simulator()
    stats = StatsRegistry()
    return sim, DRAMController(sim, DRAMConfig(**kwargs), stats=stats)


def read(addr, size=64, source="t"):
    return MemRequest(addr=addr, size=size, kind=AccessKind.READ,
                      source=source)


class TestLatency:
    def test_first_access_is_row_closed(self):
        sim, dram = make()
        done = []
        dram.submit(read(0)).add_callback(done.append)
        sim.run()
        # tRCD + tCAS + transfer(4 cycles for 64B at 16B/cyc).
        assert done == [14 + 14 + 4]

    def test_row_hit_is_cheaper(self):
        sim, dram = make()
        times = []
        dram.submit(read(0)).add_callback(times.append)
        sim.run()
        dram.submit(read(64)).add_callback(times.append)  # same row
        sim.run()
        hit_latency = times[1] - times[0]
        assert hit_latency == 14 + 4  # tCAS + transfer

    def test_row_conflict_pays_precharge(self):
        sim, dram = make(n_banks=1, row_bytes=2048)
        times = []
        dram.submit(read(0)).add_callback(times.append)
        sim.run()
        dram.submit(read(2048)).add_callback(times.append)  # other row
        sim.run()
        conflict = times[1] - times[0]
        assert conflict >= 14 + 14 + 14 + 4  # tRP + tRCD + tCAS + transfer

    def test_small_request_shorter_transfer(self):
        sim, dram = make()
        done = []
        dram.submit(read(0, size=8)).add_callback(done.append)
        sim.run()
        assert done == [14 + 14 + 1]


class TestParallelism:
    def test_banks_overlap(self):
        """Requests to different banks overlap; same bank serializes."""
        sim, dram = make()
        done = []
        for i in range(4):
            # Row-interleaved mapping: consecutive rows hit distinct banks.
            dram.submit(read(i * 2048)).add_callback(done.append)
        sim.run()
        parallel_time = sim.now

        sim2, dram2 = make(n_banks=1)
        done2 = []
        for i in range(4):
            dram2.submit(read(i * 2048)).add_callback(done2.append)
        sim2.run()
        assert sim2.now > parallel_time

    def test_bus_serializes_transfers(self):
        sim, dram = make()
        for i in range(8):
            dram.submit(read(i * 2048))
        sim.run()
        # 8 x 64B transfers need at least 8 x 4 bus cycles after the first
        # access latency.
        assert sim.now >= 28 + 8 * 4


class TestScheduler:
    def _run_pattern(self, scheduler):
        sim, dram = make(scheduler=scheduler)
        order = []
        # One row-conflict stream and one row-hit stream on the same bank.
        dram.submit(read(0, source="a"))
        sim.run(until=1)
        conflicting = read(2048 * 8, source="conflict")  # same bank, new row
        hitting = read(64, source="hit")  # open row
        dram.submit(conflicting).add_callback(lambda _t: order.append("conflict"))
        dram.submit(hitting).add_callback(lambda _t: order.append("hit"))
        sim.run()
        return order

    def test_frfcfs_prefers_row_hit(self):
        assert self._run_pattern("frfcfs")[0] == "hit"

    def test_fifo_is_arrival_order(self):
        assert self._run_pattern("fifo")[0] == "conflict"

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(scheduler="magic")


class TestStats:
    def test_attribution_and_bytes(self):
        sim, dram = make()
        dram.submit(read(0, source="marker"))
        dram.submit(MemRequest(addr=64, size=8, kind=AccessKind.WRITE,
                               source="queue"))
        dram.submit(MemRequest(addr=128, size=8, kind=AccessKind.AMO,
                               source="marker"))
        sim.run()
        stats = dram.stats
        assert stats.get("mem.requests.marker") == 2
        assert stats.get("mem.requests.queue") == 1
        assert stats.get("dram.bytes_read") == 64 + 8
        assert stats.get("dram.bytes_written") == 8 + 8  # write + AMO
        assert stats.get("dram.activates") >= 1

    def test_request_intervals(self):
        sim, dram = make()
        sim.schedule(0, lambda: dram.submit(read(0)))
        sim.schedule(10, lambda: dram.submit(read(64)))
        sim.run()
        assert dram.request_intervals.count == 2
        assert dram.request_intervals.mean_interval() == 10


class TestProgress:
    def test_many_random_requests_all_complete(self):
        import random
        rng = random.Random(0)
        sim, dram = make()
        done = []
        for _ in range(300):
            addr = rng.randrange(0, 1 << 20) // 8 * 8
            size = rng.choice([8, 16, 32, 64])
            addr -= addr % size
            kind = rng.choice([AccessKind.READ, AccessKind.WRITE])
            dram.submit(MemRequest(addr=addr, size=size, kind=kind)) \
                .add_callback(done.append)
        sim.run()
        assert len(done) == 300
        assert dram.pending == 0

    def test_late_submission_pumps_immediately(self):
        """A request arriving while a far-future wakeup is pending must not
        wait for it (regression test for the pump-scheduling bug)."""
        sim, dram = make(n_banks=1)
        dram.submit(read(0))
        dram.submit(read(2048))  # same bank: wakeup scheduled far out
        times = []
        # Different-bank request arrives in between; bank 1 is free.
        sim.schedule(5, lambda: dram.submit(read(2048 * 9)).add_callback(
            times.append))
        sim.run()
        assert times, "third request completed"


class TestWindow:
    def test_window_limits_visibility(self):
        """With a 1-deep window the controller cannot reorder around the
        head request; with 16 it can serve a row hit first."""
        sim, dram = make(scheduler="frfcfs", read_window=1)
        order = []
        dram.submit(read(0))
        sim.run(until=1)
        dram.submit(read(2048 * 8, source="conflict")).add_callback(
            lambda _t: order.append("conflict"))
        dram.submit(read(64, source="hit")).add_callback(
            lambda _t: order.append("hit"))
        sim.run()
        assert order[0] == "conflict"
