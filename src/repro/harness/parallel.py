"""Fault-tolerant parallel figure pipeline with retries and checkpoints.

``run_suite(jobs=N)`` runs every entry of :data:`repro.harness.suite.SUITE`
(or a subset) and merges results deterministically:

* **jobs=1** runs inline — no pool, no pickling, and the in-process heap
  cache is shared across figures (fig15/fig23 and the avrora ablations
  reuse each other's builds).
* **jobs>1** fans entries out over worker processes (``fork`` start
  method where available, ``spawn`` otherwise). Completion order is
  arbitrary but the merge sorts by suite index, so the output document
  and the per-figure digests are independent of scheduling. Set
  ``REPRO_HEAP_CACHE`` to share heap builds across workers via the disk
  cache. Two worker disciplines exist (``worker_mode``):

  - ``"pool"`` — **persistent workers**: ``jobs`` long-lived processes
    each loop over tasks from a duplex pipe, amortizing interpreter +
    import startup (and their in-process heap caches) across the tasks
    they run. A worker that dies mid-task is detected by pipe EOF, the
    task is attributed to exactly that worker, and a replacement worker
    is spawned — crash attribution survives pooling because each worker
    runs one task at a time.
  - ``"fresh"`` — **one process per task attempt**, the PR-4 discipline:
    maximum isolation, and the only mode in which ``REPRO_FAULTS``
    injection executes (faults fire at worker start, which a persistent
    worker has only once).
  - ``"auto"`` (default) resolves to ``"fresh"`` when a fault plan is
    armed and ``"pool"`` otherwise, so fault drills keep their
    per-attempt injection semantics without callers caring.

Fault tolerance (all opt-in; a fault-free run is byte-identical to the
pre-retry pipeline):

* **per-task timeout** (``timeout=``) — a worker that exceeds it is
  killed and the entry is rescheduled;
* **bounded retries** (``retries=N``) with deterministic exponential
  backoff (``backoff * 2**(attempt-1)`` seconds, no jitter);
* **crash recovery** — a worker that exits abnormally (segfault, OOM
  kill, ``os._exit``) is detected via its exit code and the entry is
  retried on a fresh process; other in-flight entries are unaffected
  (the per-task-process design is why: a shared executor would raise
  ``BrokenProcessPool`` for every sibling);
* **graceful degradation** (``keep_going=True``) — an entry that
  exhausts its retries is recorded as a failed :class:`FigureRun`
  (status, attempts, last error, per-attempt history) and the run keeps
  going; ``render_report`` annotates the failure instead of aborting.
  Without ``keep_going`` the first exhausted entry raises
  :class:`SuiteRunError` carrying the partial results;
* **checkpoints** (``store=``) — completed entries are saved atomically
  through :class:`repro.harness.checkpoint.CheckpointStore` as they
  finish, so an interrupted run (including ``KeyboardInterrupt``, which
  tears the pool down cleanly) resumes re-executing only what's missing.

Fault *injection* for exercising these paths lives in
:mod:`repro.harness.faults` (``REPRO_FAULTS`` env spec). With ``jobs=1``
the faults execute in the orchestrating process itself — a ``crash``
fault will genuinely ``os._exit`` it — so crash/hang testing wants
``jobs>=2``.

Every figure's rendered table is hashed into ``FigureRun.digest`` — the
fingerprint the determinism tests compare across kernels
(``REPRO_ENGINE=bucket`` vs ``heapq``), across ``--jobs`` settings, and
across faulted-and-retried vs clean runs.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness import faults
from repro.harness.runners import attempt_stats
from repro.harness.suite import FigureRun, render_report, run_entry, select

#: Default backoff base, seconds: attempt k retries after base * 2**(k-1).
DEFAULT_BACKOFF = 0.5

#: How long the scheduler sleeps when nothing is ready (seconds).
_TICK = 0.05


class SuiteRunError(RuntimeError):
    """An entry exhausted its retries and ``keep_going`` was off.

    ``failed`` is the failed entry's record; ``runs`` holds everything
    that completed before the abort (checkpointed if a store was given,
    so ``--resume`` picks up from here).
    """

    def __init__(self, failed: FigureRun, runs: List[FigureRun]):
        self.failed = failed
        self.runs = runs
        super().__init__(
            f"{failed.exp_id} failed after {failed.attempts} attempt(s): "
            f"{failed.error}")


@dataclass
class _TaskState:
    """Scheduling state for one suite entry across its attempts."""

    index: int
    exp_id: str
    kwargs: Dict[str, Any]
    attempts: int = 0
    history: List[Dict[str, Any]] = field(default_factory=list)
    #: monotonic time before which this task must not be (re)launched.
    not_before: float = 0.0


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def _child_main(conn, index: int, exp_id: str, kwargs: Dict[str, Any],
                fault: Optional[faults.Fault], hang_seconds: float) -> None:
    """Worker entry: one task, one process, result over a pipe.

    Referenced as a module global (not a closure) so it pickles under
    ``spawn`` and inherits monkeypatched ``run_entry`` under ``fork``.
    """
    try:
        faults.execute(fault, hang_seconds)
        run = run_entry(index, exp_id, kwargs)
        conn.send(("ok", run, attempt_stats()))
    except BaseException as exc:  # report injected raises and real bugs alike
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       attempt_stats()))
        except Exception:  # parent went away; nothing to report to
            pass
    finally:
        conn.close()


def _stats_delta(before: Dict[str, float],
                 after: Dict[str, float]) -> Dict[str, float]:
    """Per-attempt resource accounting for a persistent worker.

    ``attempt_stats`` is cumulative for the process; a pooled worker
    subtracts its pre-task snapshot so the attempt record carries this
    task's CPU time (peak RSS stays the process-lifetime high-water mark —
    still the right signal for spotting an OOM-bound attempt).
    """
    out = dict(after)
    if "cpu_s" in before and "cpu_s" in out:
        out["cpu_s"] = round(out["cpu_s"] - before["cpu_s"], 3)
    return out


def _pool_worker_main(conn) -> None:
    """Persistent worker: loop tasks from a duplex pipe until the sentinel.

    Referenced as a module global (not a closure) so it pickles under
    ``spawn`` and inherits monkeypatched ``run_entry`` under ``fork``.
    ``None`` is the stop sentinel; a task is ``(index, exp_id, kwargs)``.
    No fault execution here — ``worker_mode`` routing guarantees armed
    fault plans run on fresh per-task workers instead.
    """
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            index, exp_id, kwargs = task
            before = attempt_stats()
            try:
                run = run_entry(index, exp_id, kwargs)
            except BaseException as exc:
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}",
                               _stats_delta(before, attempt_stats())))
                except Exception:  # parent went away; nothing to report to
                    break
            else:
                try:
                    conn.send(("ok", run,
                               _stats_delta(before, attempt_stats())))
                except Exception:
                    break
    finally:
        conn.close()


def _describe_exit(exitcode: Optional[int]) -> str:
    if exitcode is None:
        return "worker vanished without an exit code"
    if exitcode < 0:
        try:
            import signal
            name = signal.Signals(-exitcode).name
        except (ValueError, ImportError):
            name = f"signal {-exitcode}"
        return f"worker killed by {name}"
    return f"worker exited abnormally with status {exitcode}"


def _kill(proc) -> None:
    if proc.is_alive():
        proc.terminate()
        proc.join(1.0)
    if proc.is_alive():  # pragma: no cover - SIGTERM ignored
        proc.kill()
        proc.join(1.0)


class _Scheduler:
    """Shared bookkeeping for the inline and pooled execution paths."""

    def __init__(self, *, retries: int, backoff: float, keep_going: bool,
                 store, say: Callable[[str], None],
                 completed: Dict[int, FigureRun]):
        self.retries = max(0, retries)
        self.backoff = backoff
        self.keep_going = keep_going
        self.store = store
        self.say = say
        self.completed = completed

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def finish_ok(self, state: _TaskState, run: FigureRun,
                  wall: float, stats: Dict[str, float]) -> None:
        state.attempts += 1
        state.history.append({"attempt": state.attempts, "status": "ok",
                              "elapsed": round(wall, 3), **stats})
        run.attempts = state.attempts
        run.attempt_history = list(state.history)
        self.completed[state.index] = run
        if self.store is not None:
            self.store.save(run)
        note = (f" (attempt {state.attempts}/{self.max_attempts})"
                if state.attempts > 1 else "")
        self.say(f"  {run.exp_id} done in {run.elapsed:.0f}s{note}")

    def record_failure(self, state: _TaskState, status: str, error: str,
                       wall: float) -> Optional[float]:
        """Account one failed attempt.

        Returns the backoff delay if the task should be retried, or
        ``None`` once retries are exhausted (after recording the failed
        entry — and raising :class:`SuiteRunError` unless ``keep_going``).
        """
        state.attempts += 1
        state.history.append({"attempt": state.attempts, "status": status,
                              "elapsed": round(wall, 3), "error": error})
        if state.attempts < self.max_attempts:
            delay = self.backoff * (2 ** (state.attempts - 1))
            state.not_before = time.monotonic() + delay
            self.say(f"  {state.exp_id} {status} (attempt {state.attempts}/"
                     f"{self.max_attempts}): {error}; retrying in "
                     f"{delay:.1f}s")
            return delay
        run = FigureRun(
            index=state.index, exp_id=state.exp_id,
            kwargs=dict(state.kwargs), rendered="",
            elapsed=sum(rec.get("elapsed", 0.0) for rec in state.history),
            status="failed", attempts=state.attempts, error=error,
            attempt_history=list(state.history),
        )
        self.completed[state.index] = run
        if self.store is not None:
            self.store.save(run)
        self.say(f"  {state.exp_id} FAILED after {state.attempts} "
                 f"attempt(s): {error}")
        if not self.keep_going:
            raise SuiteRunError(run, _ordered(self.completed))
        return None


def _ordered(completed: Dict[int, FigureRun]) -> List[FigureRun]:
    return [completed[i] for i in sorted(completed)]


def _run_inline(states: List[_TaskState], sched: _Scheduler,
                plan: Optional[faults.FaultPlan],
                say: Callable[[str], None],
                runner: Optional[Callable[..., FigureRun]] = None) -> None:
    """jobs=1: execute in-process (shared heap cache, no pickling).

    Timeouts are not enforceable without a worker process; ``crash`` and
    ``hang`` faults execute literally in this process. ``runner``
    overrides ``run_entry`` for the intra-figure sharded path (which fans
    its own workers out from this process).
    """
    for state in states:
        while True:
            say(f"running {state.exp_id} {state.kwargs} ...")
            fault = (plan.match(state.exp_id, state.attempts + 1)
                     if plan is not None else None)
            t0 = time.monotonic()
            try:
                if plan is not None:
                    faults.execute(fault, plan.hang_seconds)
                execute = runner if runner is not None else run_entry
                run = execute(state.index, state.exp_id, state.kwargs)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                delay = sched.record_failure(
                    state, "error", f"{type(exc).__name__}: {exc}",
                    time.monotonic() - t0)
                if delay is None:
                    break
                time.sleep(delay)
            else:
                sched.finish_ok(state, run, time.monotonic() - t0,
                                attempt_stats())
                break


def _run_pool(states: List[_TaskState], jobs: int, sched: _Scheduler,
              plan: Optional[faults.FaultPlan], timeout: Optional[float],
              say: Callable[[str], None]) -> None:
    """jobs>1: one worker process per task attempt, with kill-on-timeout."""
    ctx = _pool_context()
    queue = deque(states)
    running: Dict[Any, Any] = {}  # conn -> (state, proc, started, deadline)
    say(f"running {len(states)} experiments on {jobs} workers ...")
    try:
        while queue or running:
            now = time.monotonic()

            # Launch every ready task there is a free worker slot for.
            while queue and len(running) < jobs:
                ready = next((i for i, s in enumerate(queue)
                              if s.not_before <= now), None)
                if ready is None:
                    break
                queue.rotate(-ready)
                state = queue.popleft()
                queue.rotate(ready)
                fault = (plan.match(state.exp_id, state.attempts + 1)
                         if plan is not None else None)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, state.index, state.exp_id,
                          state.kwargs, fault,
                          plan.hang_seconds if plan is not None
                          else faults.DEFAULT_HANG_SECONDS),
                )
                proc.start()
                child_conn.close()
                started = time.monotonic()
                deadline = started + timeout if timeout else None
                running[parent_conn] = (state, proc, started, deadline)

            if not running:
                # Everything pending is backing off; sleep until the
                # earliest retry becomes eligible.
                wake = min(s.not_before for s in queue)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            # Wait for a result, bounded by the nearest deadline.
            wait_for = _TICK if queue else 1.0
            deadlines = [d for (_s, _p, _t, d) in running.values()
                         if d is not None]
            if deadlines:
                wait_for = min(wait_for,
                               max(0.0, min(deadlines) - time.monotonic()))
            ready_conns = multiprocessing.connection.wait(
                list(running), timeout=wait_for)

            for conn in ready_conns:
                state, proc, started, _deadline = running.pop(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None  # died before reporting: crash
                conn.close()
                proc.join(5.0)
                wall = time.monotonic() - started
                if msg is not None and msg[0] == "ok":
                    sched.finish_ok(state, msg[1], wall, msg[2])
                elif msg is not None:
                    if sched.record_failure(state, "error", msg[1],
                                            wall) is not None:
                        queue.append(state)
                else:
                    if sched.record_failure(
                            state, "crash", _describe_exit(proc.exitcode),
                            wall) is not None:
                        queue.append(state)

            # Reap workers that blew their deadline.
            now = time.monotonic()
            for conn, (state, proc, started, deadline) in list(running.items()):
                if deadline is None or now < deadline:
                    continue
                running.pop(conn)
                conn.close()
                _kill(proc)
                if sched.record_failure(
                        state, "timeout",
                        f"timed out after {timeout:.0f}s",
                        now - started) is not None:
                    queue.append(state)
    finally:
        # Abort, KeyboardInterrupt, or normal exit: never leak workers.
        for conn, (_state, proc, _started, _deadline) in running.items():
            _kill(proc)
            conn.close()


class _PoolWorker:
    """One persistent worker process and what it is currently running."""

    __slots__ = ("conn", "proc", "state", "started", "deadline")

    def __init__(self, conn, proc):
        self.conn = conn
        self.proc = proc
        self.state: Optional[_TaskState] = None
        self.started = 0.0
        self.deadline: Optional[float] = None


def _run_persistent_pool(states: List[_TaskState], jobs: int,
                         sched: _Scheduler, timeout: Optional[float],
                         say: Callable[[str], None]) -> None:
    """jobs>1, worker_mode="pool": long-lived workers over duplex pipes.

    Dispatch keeps one task in flight per worker, so a death (pipe EOF)
    or a blown deadline still attributes to exactly one entry; the dead
    worker is replaced and the entry goes through the normal retry
    accounting. Workers are told to stop (``None`` sentinel) as the queue
    drains.
    """
    ctx = _pool_context()
    pending = deque(states)
    workers: List[_PoolWorker] = []
    say(f"running {len(states)} experiments on {jobs} persistent "
        "workers ...")

    def spawn() -> _PoolWorker:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_pool_worker_main, args=(child_conn,))
        proc.start()
        child_conn.close()
        worker = _PoolWorker(parent_conn, proc)
        workers.append(worker)
        return worker

    def discard(worker: _PoolWorker, *, kill: bool) -> None:
        workers.remove(worker)
        if kill:
            _kill(worker.proc)
        else:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.proc.join(5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                _kill(worker.proc)
        worker.conn.close()

    try:
        while pending or any(w.state is not None for w in workers):
            now = time.monotonic()
            busy = sum(1 for w in workers if w.state is not None)
            # Keep exactly as many workers as remaining work can use.
            while len(workers) < min(jobs, busy + len(pending)):
                spawn()

            # Dispatch every ready task there is an idle worker for.
            for worker in workers:
                if worker.state is not None or not pending:
                    continue
                ready = next((i for i, s in enumerate(pending)
                              if s.not_before <= now), None)
                if ready is None:
                    break
                pending.rotate(-ready)
                state = pending.popleft()
                pending.rotate(ready)
                try:
                    worker.conn.send((state.index, state.exp_id,
                                      state.kwargs))
                except (OSError, ValueError):
                    # Died while idle: requeue, reap below via pipe EOF.
                    pending.appendleft(state)
                    continue
                worker.state = state
                worker.started = time.monotonic()
                worker.deadline = (worker.started + timeout
                                   if timeout else None)

            if not any(w.state is not None for w in workers):
                if pending:
                    # Everything pending is backing off; sleep until the
                    # earliest retry becomes eligible.
                    wake = min(s.not_before for s in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
                continue

            # Wait for a result (or a death), bounded by the nearest
            # deadline. Idle workers are watched too: their EOF means a
            # silent death to reap before assigning them work.
            wait_for = _TICK if pending else 1.0
            deadlines = [w.deadline for w in workers
                         if w.state is not None and w.deadline is not None]
            if deadlines:
                wait_for = min(wait_for,
                               max(0.0, min(deadlines) - time.monotonic()))
            by_conn = {w.conn: w for w in workers}
            ready_conns = multiprocessing.connection.wait(
                list(by_conn), timeout=wait_for)

            for conn in ready_conns:
                worker = by_conn[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None  # worker died
                if msg is None:
                    state = worker.state
                    wall = (time.monotonic() - worker.started
                            if state is not None else 0.0)
                    worker.proc.join(5.0)
                    detail = _describe_exit(worker.proc.exitcode)
                    discard(worker, kill=True)
                    if state is not None:
                        if sched.record_failure(state, "crash", detail,
                                                wall) is not None:
                            pending.append(state)
                    continue
                state = worker.state
                worker.state = None
                worker.deadline = None
                wall = time.monotonic() - worker.started
                if msg[0] == "ok":
                    sched.finish_ok(state, msg[1], wall, msg[2])
                else:
                    if sched.record_failure(state, "error", msg[1],
                                            wall) is not None:
                        pending.append(state)

            # Reap workers that blew their deadline; their replacement is
            # spawned by the top-up at the head of the loop.
            now = time.monotonic()
            for worker in list(workers):
                if (worker.state is None or worker.deadline is None
                        or now < worker.deadline):
                    continue
                state = worker.state
                discard(worker, kill=True)
                if sched.record_failure(
                        state, "timeout",
                        f"timed out after {timeout:.0f}s",
                        now - worker.started) is not None:
                    pending.append(state)

            # Retire surplus idle workers once the queue has drained past
            # them (graceful stop, not a kill).
            surplus = len(workers) - max(
                1, min(jobs, sum(1 for w in workers
                                 if w.state is not None) + len(pending)))
            for worker in [w for w in workers if w.state is None][:surplus]:
                discard(worker, kill=False)
    finally:
        # Abort, KeyboardInterrupt, or normal exit: never leak workers.
        for worker in list(workers):
            discard(worker, kill=worker.state is not None)


def resolve_worker_mode(worker_mode: str,
                        fault_plan: Optional[faults.FaultPlan]) -> str:
    """``auto`` → ``fresh`` iff a fault plan is armed, else ``pool``.

    Explicitly requesting ``pool`` with a fault plan armed is an error:
    persistent workers never execute injected faults, and silently
    ignoring the plan would make a fault drill vacuously pass.
    """
    if worker_mode not in ("auto", "pool", "fresh"):
        raise ValueError(f"worker_mode must be auto|pool|fresh, "
                         f"got {worker_mode!r}")
    if worker_mode == "auto":
        return "fresh" if fault_plan is not None else "pool"
    if worker_mode == "pool" and fault_plan is not None:
        raise ValueError("worker_mode='pool' cannot run a fault plan; "
                         "fault injection needs fresh per-task workers "
                         "(worker_mode='fresh' or 'auto')")
    return worker_mode


def run_suite(
    jobs: int = 1,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = DEFAULT_BACKOFF,
    keep_going: bool = False,
    store=None,
    fault_plan: Optional[faults.FaultPlan] = None,
    shard_figures: bool = False,
    worker_mode: str = "auto",
) -> List[FigureRun]:
    """Run the figure suite with ``jobs`` workers; results in suite order.

    ``store`` (a :class:`~repro.harness.checkpoint.CheckpointStore`)
    enables resume: entries already checkpointed are loaded instead of
    re-run, and new completions are checkpointed as they land.
    ``fault_plan`` defaults to the ``REPRO_FAULTS`` environment spec.
    Entries that exhaust ``retries`` raise :class:`SuiteRunError`, or —
    with ``keep_going`` — come back as ``FigureRun(status="failed")``
    records that :func:`render_report` annotates.

    ``shard_figures`` (with ``jobs > 1``) additionally splits figures
    with a shardable axis (see :mod:`repro.harness.sharding`) across the
    ``jobs`` workers — those entries run first, each using the whole
    worker pool, then the remaining entries fan out one-per-worker.
    ``worker_mode`` picks the fan-out discipline: ``"pool"`` (persistent
    workers), ``"fresh"`` (one process per task attempt), or ``"auto"``
    (fresh iff a fault plan is armed). Digests are unchanged across all
    of it.
    """
    entries = select(only)
    tasks = [(i, exp_id, kwargs) for i, (exp_id, kwargs) in enumerate(entries)]
    say = progress if progress is not None else (lambda msg: None)
    if fault_plan is None:
        fault_plan = faults.plan_from_env()
    worker_mode = resolve_worker_mode(worker_mode, fault_plan)

    completed: Dict[int, FigureRun] = {}
    if store is not None:
        completed = store.load_completed()
        for path in store.corrupt:
            say(f"  discarding corrupt checkpoint {path.name}; will re-run")
        if completed:
            say(f"resuming: {len(completed)}/{len(tasks)} entries already "
                "complete")

    states = [_TaskState(index=i, exp_id=exp_id, kwargs=kwargs)
              for i, exp_id, kwargs in tasks if i not in completed]
    sched = _Scheduler(retries=retries, backoff=backoff,
                       keep_going=keep_going, store=store, say=say,
                       completed=completed)
    if states and shard_figures and jobs > 1:
        from repro.harness.sharding import can_shard, run_entry_sharded

        sharded = [s for s in states if can_shard(s.exp_id, s.kwargs, jobs)]
        if sharded:
            say(f"sharding {len(sharded)} figure(s) across {jobs} workers "
                "each ...")
            _run_inline(
                sharded, sched, fault_plan, say,
                runner=lambda i, e, k: run_entry_sharded(i, e, k, jobs))
            remaining = {id(s) for s in sharded}
            states = [s for s in states if id(s) not in remaining]
    if states:
        jobs = max(1, min(jobs, len(states)))
        if jobs == 1:
            _run_inline(states, sched, fault_plan, say)
        elif worker_mode == "pool":
            _run_persistent_pool(states, jobs, sched, timeout, say)
        else:
            _run_pool(states, jobs, sched, fault_plan, timeout, say)
    return _ordered(completed)


def digests(runs: Sequence[FigureRun]) -> Dict[str, str]:
    """Per-figure determinism fingerprints, keyed by experiment id."""
    return {run.exp_id: run.digest for run in runs}


def default_jobs() -> int:
    """A sensible worker count when the user passes ``--jobs 0``."""
    return max(1, os.cpu_count() or 1)


def write_report(runs: Sequence[FigureRun], out_path: str) -> None:
    with open(out_path, "w") as fh:
        fh.write(render_report(runs))
