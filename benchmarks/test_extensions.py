"""Benches for the §VII / §VI-A extension features."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_abl_superpages(benchmark, bench_scale):
    """§VII: superpages relieve the TLB bottleneck."""
    result = run_and_render(benchmark, E.abl_superpages, scale=bench_scale)
    rows = {row[0]: row for row in result.rows}
    assert rows["2 MiB superpages"][2] < rows["4 KiB pages"][2] / 5
    assert rows["2 MiB superpages"][4] > 1.1  # speedup vs 4 KiB


def test_abl_nonblocking_ptw(benchmark, bench_scale):
    """§VI-A future work: concurrent walks recover mark throughput."""
    result = run_and_render(benchmark, E.abl_nonblocking_ptw,
                            scale=bench_scale)
    speedups = [row[3] for row in result.rows]
    assert speedups[0] == 1.0
    assert speedups[-1] > 1.1
    assert speedups == sorted(speedups)


def test_abl_throttle(benchmark, bench_scale):
    """§VII: throttling trades GC time for residual bandwidth."""
    result = run_and_render(benchmark, E.abl_throttle, scale=bench_scale)
    mark_times = [row[1] for row in result.rows]
    request_rates = [row[3] for row in result.rows]
    assert mark_times == sorted(mark_times)  # tighter throttle -> slower GC
    assert request_rates == sorted(request_rates, reverse=True)
