"""TLBs for the CPU and the GC unit's marker/tracer.

The baseline GC-unit design has 32-entry TLBs per requester plus a 128-entry
shared L2 TLB (§VI-A). TLB hits are free (translation is folded into the
access); misses go to the shared L2 TLB and then to the page-table walker.

Superpage support (§VII: "large heaps could use superpages instead of 4KB
pages"): a 2 MiB mapping occupies one entry but covers 512 pages, which is
how superpages relieve the TLB pressure the paper identifies as the unit's
bottleneck.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.config import TLBConfig
from repro.memory.paging import PAGE_SIZE, SUPERPAGE_SIZE
from repro.memory.ptw import PageTableWalker


class _EntryStore:
    """Shared-capacity LRU over 4 KiB and 2 MiB entries."""

    def __init__(self, entries: int):
        self.capacity = entries
        # Keys: ("p", vpn) for pages, ("s", super-index) for superpages;
        # values: base physical address of the page/superpage.
        self._map: "OrderedDict[Tuple[str, int], int]" = OrderedDict()

    def lookup(self, vaddr: int) -> Optional[int]:
        """Physical address for vaddr, or None."""
        super_key = ("s", vaddr // SUPERPAGE_SIZE)
        if super_key in self._map:
            self._map.move_to_end(super_key)
            return self._map[super_key] + vaddr % SUPERPAGE_SIZE
        page_key = ("p", vaddr // PAGE_SIZE)
        if page_key in self._map:
            self._map.move_to_end(page_key)
            return self._map[page_key] + vaddr % PAGE_SIZE
        return None

    def insert(self, vaddr: int, paddr: int, superpage: bool) -> None:
        if superpage:
            key = ("s", vaddr // SUPERPAGE_SIZE)
            base = paddr - paddr % SUPERPAGE_SIZE
        else:
            key = ("p", vaddr // PAGE_SIZE)
            base = paddr - paddr % PAGE_SIZE
        if key in self._map:
            self._map.move_to_end(key)
            return
        if len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[key] = base

    def flush(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


class SharedL2TLB:
    """A passive second-level TLB shared by the unit's requesters."""

    def __init__(self, entries: int = 128, latency: int = 2):
        self.entries = entries
        self.latency = latency
        self._store = _EntryStore(entries)
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int) -> Optional[int]:
        paddr = self._store.lookup(vaddr)
        if paddr is None:
            self.misses += 1
        else:
            self.hits += 1
        return paddr

    def insert(self, vaddr: int, paddr: int, superpage: bool = False) -> None:
        self._store.insert(vaddr, paddr, superpage)

    def flush(self) -> None:
        self._store.flush()


class TLB:
    """A fully-associative, LRU first-level TLB.

    ``translate(vaddr)`` returns an event that triggers with the physical
    address. Hits complete in the same cycle; misses consult the shared L2
    TLB (if present) and then the PTW.
    """

    def __init__(
        self,
        sim: Simulator,
        config: TLBConfig,
        ptw: PageTableWalker,
        name: str = "tlb",
        l2: Optional[SharedL2TLB] = None,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.config = config
        self.ptw = ptw
        self.name = name
        self.l2 = l2
        self.stats = stats if stats is not None else StatsRegistry()
        self._store = _EntryStore(config.entries)
        self._k_hits = f"tlb.{name}.hits"
        self._k_misses = f"tlb.{name}.misses"
        self._k_l2_hits = f"tlb.{name}.l2_hits"
        self._ev_translate = f"{name}.translate"

    def translate(self, vaddr: int) -> Event:
        """Translate a virtual address; event value is the physical address."""
        event = Event(self.sim, name=self._ev_translate)
        paddr = self._store.lookup(vaddr)
        trace = self.stats.trace
        if paddr is not None:
            self.stats.inc(self._k_hits)
            if trace is not None:
                trace.emit(self.sim.now, "tlb", self.name, "hit")
            event.trigger(paddr)
            return event
        self.stats.inc(self._k_misses)
        if trace is not None:
            trace.emit(self.sim.now, "tlb", self.name, "miss")
        if self.l2 is not None:
            l2_paddr = self.l2.lookup(vaddr)
            if l2_paddr is not None:
                self.stats.inc(self._k_l2_hits)
                if trace is not None:
                    trace.emit(self.sim.now, "tlb", self.name, "l2_hit")
                superpage = self.ptw.page_table.is_superpage(vaddr)
                self._store.insert(vaddr, l2_paddr, superpage)
                self.sim.schedule(self.l2.latency, event.trigger, l2_paddr)
                return event

        def _walked(walked_paddr: int) -> None:
            superpage = self.ptw.page_table.is_superpage(vaddr)
            self._store.insert(vaddr, walked_paddr, superpage)
            if self.l2 is not None:
                self.l2.insert(vaddr, walked_paddr, superpage)
            event.trigger(walked_paddr)

        self.ptw.walk(vaddr).add_callback(_walked)
        return event

    def flush(self) -> None:
        self._store.flush()

    @property
    def occupancy(self) -> int:
        return len(self._store)
