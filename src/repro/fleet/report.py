"""Fleet simulation driver and the SLO report it aggregates.

:func:`simulate_fleet` is the one entry point: derive the roster and the
query schedule from the :class:`~repro.fleet.spec.FleetSpec`, arbitrate
collections under each policy, replay each tenant's arrival slice against
its adjusted pause timeline, and emit per-tenant
:class:`TenantReport` rows plus per-policy fleet summary rows.

Cell-independence contract (sharding/simcache): the *whole* fleet
schedule — base runs, phase offsets, admission arbitration, the
balancer's assignment — is recomputed deterministically from the spec in
every cell, and only the requested tenants are then replayed. A tenant's
row therefore never depends on which other tenants share its worker
process, which is what makes per-tenant cells merge byte-identically.

:func:`fleet_summary_rows` refolds the fleet rows into per-policy
summaries *from the row values themselves*, in row order; the unsharded
figure and the shard merge both call it, so summary floats fold in the
identical left-to-right order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.admission import (
    POLICIES,
    FailoverConfig,
    schedule_fleet,
)
from repro.fleet.faults import FleetFaultSpec
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.fleet.balancer import spray, tenant_arrivals
from repro.fleet.timeline import base_run, tenant_timeline
from repro.workloads.latency import (
    QueryReplay,
    ReplayResult,
    percentile_summary,
)

#: Column schema of the fleet SLO table. ``fleet_summary_rows`` and the
#: ``fleet_slo`` shard merge both index into it, so it lives here, once.
SLO_HEADERS: Tuple[str, ...] = (
    "tenant", "benchmark", "policy", "arrived", "done", "shed",
    "goodput q/s", "p50 ms", "p99 ms", "p99.9 ms", "max ms",
    "wait ms", "GC tax %",
)

#: Marker in the ``tenant`` column distinguishing per-policy summary rows
#: from per-tenant rows (the merge drops and refolds the former).
SUMMARY_MARKER = "fleet"

#: Column schema of the ``fleet_resilience`` table — one fleet-level row
#: per fault roster. Deliberately *not* part of :data:`SLO_HEADERS`: the
#: fleet_slo digest is pinned, so degraded-mode accounting lives in its
#: own figure rather than widening the frozen SLO schema.
RESILIENCE_HEADERS: Tuple[str, ...] = (
    "fault roster", "arrived", "done", "shed", "goodput q/s",
    "p99 ms", "p99.9 ms", "avail %", "failovers", "retry wait ms",
    "fallback tax ms", "cancelled",
)


class ConservationError(AssertionError):
    """A replay broke ``arrived == completed + in_flight + shed``."""


@dataclass
class TenantReport:
    """One tenant's replay outcome under one policy."""

    tenant: TenantSpec
    policy: str
    replay: ReplayResult
    #: ``percentile_summary`` of the serviced post-warm-up records, or
    #: ``None`` when the warm-up discarded everything (documented
    #: degenerate case: latency cells render blank, counters still hold).
    summary: Optional[Dict[str, float]]
    goodput_qps: float
    wait_ms: float
    gc_tax_pct: float
    #: Degraded-mode accounting (defaults are the fault-free identities;
    #: they stay out of :meth:`row` so the pinned SLO schema is frozen).
    availability: float = 1.0
    failovers: int = 0
    retry_wait_ms: float = 0.0
    fallback_tax_ms: float = 0.0
    cancelled: int = 0

    def row(self) -> List[Any]:
        lat = (lambda key: self.summary[key]) if self.summary else \
            (lambda key: "")
        return [
            self.tenant.index, self.tenant.benchmark, self.policy,
            self.replay.arrived, self.replay.completed, self.replay.shed,
            self.goodput_qps,
            lat("p50"), lat("p99"), lat("p99.9"), lat("max"),
            self.wait_ms, self.gc_tax_pct,
        ]


@dataclass
class FleetResult:
    """All tenant reports of one simulated fleet."""

    spec: FleetSpec
    policies: Tuple[str, ...]
    tenant_indices: Tuple[int, ...]
    interval_cycles: int
    service_mean_cycles: int
    #: keyed ``(tenant index, policy)``.
    reports: Dict[Tuple[int, str], TenantReport]

    def rows(self) -> List[List[Any]]:
        """Tenant-outer, policy-inner — the shard axis is the tenant."""
        return [self.reports[(t, policy)].row()
                for t in self.tenant_indices for policy in self.policies]

    def summary_rows(self) -> List[List[Any]]:
        return fleet_summary_rows(self.rows())


def fleet_summary_rows(rows: Sequence[Sequence[Any]]) -> List[List[Any]]:
    """Per-policy fleet aggregates, refolded from tenant row values.

    Counts, goodput and queue wait sum across tenants; latency columns
    take the *worst tenant* (the fleet meets an SLO only if every tenant
    does); the GC tax averages. Blank cells (degenerate tenants) are
    skipped. Policies appear in first-seen row order.
    """
    policies: List[str] = []
    for row in rows:
        if row[2] not in policies:
            policies.append(row[2])
    out: List[List[Any]] = []
    for policy in policies:
        group = [row for row in rows if row[2] == policy]

        def col(i: int) -> List[Any]:
            return [row[i] for row in group if row[i] != ""]

        def worst(i: int) -> Any:
            values = col(i)
            return max(values) if values else ""

        taxes = col(12)
        out.append([
            SUMMARY_MARKER, "all", policy,
            sum(col(3)), sum(col(4)), sum(col(5)), sum(col(6)),
            worst(7), worst(8), worst(9), worst(10),
            sum(col(11)),
            sum(taxes) / len(taxes) if taxes else "",
        ])
    return out


def derive_schedule(spec: FleetSpec) -> Tuple[int, int]:
    """(interval, mean service) cycles for the fleet's query stream.

    Derived from the roster's *hardware* base runs — never from the
    policy under test — so every policy replays the identical schedule
    and the percentile gaps are policy-attributed by construction.
    """
    if spec.interval_cycles and spec.service_mean_cycles:
        return spec.interval_cycles, spec.service_mean_cycles
    total_gc = total_pauses = 0
    for tenant in spec.tenants():
        run = base_run(tenant.benchmark, "hw", spec.scale, spec.seed,
                       spec.n_gcs)
        total_gc += run.gc_cycles
        total_pauses += len(run.pauses)
    mean_pause = total_gc // max(1, total_pauses)
    interval = spec.interval_cycles or max(50_000, mean_pause // 4)
    service = spec.service_mean_cycles or max(4_000, mean_pause // 50)
    return interval, service


def simulate_fleet(
    spec: FleetSpec,
    policies: Sequence[str] = POLICIES,
    tenant_indices: Optional[Sequence[int]] = None,
    faults: Optional[FleetFaultSpec] = None,
) -> FleetResult:
    """Simulate the fleet; replay only ``tenant_indices`` (default: all).

    ``faults`` arms the fleet fault plane (shared policy only; the
    dedicated/software baselines have no shared pool to fail). With it
    unset every code path is byte-identical to the fault-free driver —
    the pinned ``fleet_slo`` digest contract.
    """
    roster = spec.tenants()
    if tenant_indices is None:
        tenant_indices = tuple(t.index for t in roster)
    for t in tenant_indices:
        if not 0 <= t < spec.n_tenants:
            raise ValueError(f"tenant index {t} outside the "
                             f"{spec.n_tenants}-tenant roster")
    if faults is not None and not faults:
        faults = None  # an empty spec is the fault-free run, exactly
    if faults is not None:
        faults.validate(spec.n_units, spec.n_tenants)
    interval, service = derive_schedule(spec)
    assignments = spray(spec.n_queries, spec.n_tenants, spec.seed)
    horizon = spec.n_queries * interval
    shed_cycles = (spec.shed_backlog_intervals * interval
                   if spec.shed_backlog_intervals > 0 else None)
    reports: Dict[Tuple[int, str], TenantReport] = {}
    for policy in policies:
        collector = "sw" if policy == "software" else "hw"
        requested = [
            tenant_timeline(
                base_run(t.benchmark, collector, spec.scale, spec.seed,
                         spec.n_gcs),
                t.phase_frac)
            for t in roster
        ]
        if faults is not None and policy == "shared":
            software = [
                tenant_timeline(
                    base_run(t.benchmark, "sw", spec.scale, spec.seed,
                             spec.n_gcs),
                    t.phase_frac)
                for t in roster
            ]
            sched = schedule_fleet(
                policy, requested, n_units=spec.n_units,
                dram_tax=spec.dram_tax, faults=faults,
                failover=FailoverConfig(
                    backoff_cycles=spec.failover_backoff_cycles,
                    max_retries=spec.failover_retries,
                    timeout_cycles=spec.failover_timeout_cycles),
                software_timelines=software)
        else:
            sched = schedule_fleet(policy, requested, n_units=spec.n_units,
                                   dram_tax=spec.dram_tax)
        for index in tenant_indices:
            tenant = roster[index]
            timeline = sched.timelines[index]
            arrivals, n_warmup = tenant_arrivals(assignments, interval,
                                                 index, spec.warmup)
            offline = (faults.tenant_crash_cycle(index)
                       if faults is not None and policy == "shared"
                       else None)
            replay = QueryReplay(
                timeline, interval_cycles=interval,
                service_mean_cycles=service, seed=tenant.seed,
            ).replay(arrivals, warmup=n_warmup, horizon=horizon,
                     shed_backlog_cycles=shed_cycles,
                     offline_after_cycle=offline)
            if not replay.conserved:
                raise ConservationError(
                    f"tenant {index} under {policy}: arrived "
                    f"{replay.arrived} != completed {replay.completed} + "
                    f"in_flight {replay.in_flight} + shed {replay.shed}")
            summary = (percentile_summary(replay.records,
                                          percentiles=(50.0, 99.0, 99.9))
                       if replay.records else None)
            reports[(index, policy)] = TenantReport(
                tenant=tenant,
                policy=policy,
                replay=replay,
                summary=summary,
                goodput_qps=replay.completed / (horizon / 1e9),
                wait_ms=sched.queue_wait_cycles[index] / 1e6,
                gc_tax_pct=100.0 * timeline.gc_time_fraction,
                availability=sched.availability(index),
                failovers=sched.failovers[index],
                retry_wait_ms=sched.retry_wait_cycles[index] / 1e6,
                fallback_tax_ms=sched.fallback_tax_cycles[index] / 1e6,
                cancelled=sched.cancelled[index],
            )
    return FleetResult(
        spec=spec,
        policies=tuple(policies),
        tenant_indices=tuple(tenant_indices),
        interval_cycles=interval,
        service_mean_cycles=service,
        reports=reports,
    )


def fleet_resilience_row(label: str, spec: FleetSpec,
                         faults_spec: str) -> List[Any]:
    """One fleet-level row of the ``fleet_resilience`` table.

    Simulates the shared policy under one fault roster and folds the
    tenants: counts, goodput, failovers, retry wait, fallback tax and
    cancellations sum; latency and availability take the *worst* tenant
    (the fleet meets an SLO only if every tenant does). Conservation is
    asserted per tenant inside :func:`simulate_fleet` — a violation
    raises :class:`ConservationError` rather than rendering a wrong row.
    """
    faults = FleetFaultSpec.parse(faults_spec)
    result = simulate_fleet(spec, policies=("shared",), faults=faults)
    reports = [result.reports[(t, "shared")]
               for t in result.tenant_indices]
    horizon = spec.n_queries * result.interval_cycles

    def worst(key: str) -> Any:
        values = [r.summary[key] for r in reports if r.summary]
        return max(values) if values else ""

    return [
        label,
        sum(r.replay.arrived for r in reports),
        sum(r.replay.completed for r in reports),
        sum(r.replay.shed for r in reports),
        sum(r.replay.completed for r in reports) / (horizon / 1e9),
        worst("p99"), worst("p99.9"),
        100.0 * min(r.availability for r in reports),
        sum(r.failovers for r in reports),
        sum(r.retry_wait_ms for r in reports),
        sum(r.fallback_tax_ms for r in reports),
        sum(r.cancelled for r in reports),
    ]
