"""Event-driven simulator core with generator-based processes.

Time is an integer number of *cycles*. The simulated SoC runs at 1 GHz
(paper Table I), so one cycle is one nanosecond; the harness converts cycle
counts to milliseconds when reporting paper-style numbers.

Processes are Python generators that ``yield``:

* an ``int`` or :class:`Delay` — resume after that many cycles;
* an :class:`Event` — resume when the event triggers (receiving its value);
* another :class:`Process` — resume when that process finishes (a *join*).

Sub-routines that follow the same protocol are invoked with ``yield from``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class Delay:
    """Explicit delay request; ``yield Delay(n)`` is equivalent to ``yield n``."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise SimulationError(f"negative delay: {cycles}")
        self.cycles = int(cycles)

    def __repr__(self) -> str:
        return f"Delay({self.cycles})"


class Event:
    """A one-shot event that processes can wait on.

    An event starts untriggered. :meth:`trigger` fires it with an optional
    value; all current and future waiters are resumed with that value.
    Triggering twice is an error (hardware handshakes are one-shot).
    """

    __slots__ = ("sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.name = name

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters in this same cycle."""
        if self.triggered:
            raise SimulationError(f"event {self.name or id(self)} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0, callback, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires (immediately if fired)."""
        if self.triggered:
            self.sim.schedule(0, callback, self.value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "fired" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process(Event):
    """A running generator coroutine. Doubles as its own completion event.

    The completion event's value is the generator's return value
    (``StopIteration.value``).
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name)
        self._gen = gen
        sim.schedule(0, self._step, None)

    def _step(self, value: Any) -> None:
        # Fast path: consume already-triggered events (e.g. TLB hits)
        # synchronously instead of bouncing through the event queue.
        while True:
            try:
                item = self._gen.send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            if isinstance(item, int):
                if item == 0:
                    value = None
                    continue
                self.sim.schedule(item, self._step, None)
                return
            if isinstance(item, Event):
                if item.triggered:
                    value = item.value
                    continue
                item.add_callback(self._step)
                return
            if isinstance(item, Delay):
                self.sim.schedule(item.cycles, self._step, None)
                return
            raise SimulationError(
                f"process {self.name!r} yielded unsupported item {item!r}"
            )


class Simulator:
    """The event queue and clock.

    Events scheduled for the same cycle run in scheduling order (a stable
    FIFO within a cycle), which keeps hardware handshakes deterministic.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable, tuple]] = []
        self._seq: int = 0
        self.events_processed: int = 0

    def schedule(self, delay: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback, args))

    def at(self, time: int, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute cycle ``time``."""
        self.schedule(time - self.now, callback, *args)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue is empty, ``until`` cycles, or ``max_events``.

        Returns the final simulation time. If ``until`` is given, the clock is
        advanced to exactly ``until`` even if the queue drains earlier.
        """
        budget = max_events if max_events is not None else float("inf")
        while self._queue and budget > 0:
            time, _seq, callback, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            callback(*args)
            self.events_processed += 1
            budget -= 1
        if max_events is not None and budget <= 0 and self._queue:
            raise SimulationError(
                f"max_events={max_events} exhausted at cycle {self.now}; "
                "simulation is likely livelocked"
            )
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains first (deadlock).
        """
        budget = max_events if max_events is not None else float("inf")
        while not event.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: event queue empty at cycle {self.now} while "
                    f"waiting for {event!r}"
                )
            if budget <= 0:
                raise SimulationError(
                    f"max_events={max_events} exhausted at cycle {self.now}"
                )
            time, _seq, callback, args = heapq.heappop(self._queue)
            self.now = time
            callback(*args)
            self.events_processed += 1
            budget -= 1
        return event.value

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self.now}, pending={len(self._queue)})"
