"""Figure 22: area model."""

import pytest

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig22_area(benchmark):
    result = run_and_render(benchmark, E.fig22)
    values = {row[0]: row[1] for row in result.rows}
    # Headlines: 18.5% of Rocket, ~64 KB of SRAM, mark-queue-dominated.
    assert values["unit/Rocket ratio %"] == pytest.approx(18.5, abs=1.5)
    assert values["unit SRAM-equivalent KB"] == pytest.approx(64, abs=6)
    unit_parts = {k.replace("[c] GC unit / ", ""): v
                  for k, v in values.items() if k.startswith("[c]")}
    assert unit_parts["Mark Q."] == max(unit_parts.values())
    # Fig. 22a ordering: L2 > Rocket > HWGC.
    assert values["[a] L2 Cache"] > values["[a] Rocket"] > values["[a] HWGC"]
