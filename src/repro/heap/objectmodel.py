"""Typed view over an object in the simulated heap.

:class:`ObjectView` wraps an object reference (the virtual address of its
status word under the bidirectional layout) and exposes the fields the
collectors manipulate. Used by the graph generators, the mutator model, and
the verification code in tests; the collectors themselves read memory
directly, as the hardware does.
"""

from __future__ import annotations

from typing import List

from repro.heap.header import (
    MARK_BIT,
    TAG_BIT,
    decode_refcount,
    header_is_marked,
)
from repro.heap.layout import BidirectionalLayout
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


class ObjectView:
    """Accessor for one bidirectional-layout object."""

    __slots__ = ("mem", "addr", "virt_offset")

    def __init__(self, mem: PhysicalMemory, addr: int, virt_offset: int):
        self.mem = mem
        self.addr = addr  # virtual address of the status word
        self.virt_offset = virt_offset

    # -- address translation ------------------------------------------------

    @property
    def status_paddr(self) -> int:
        return self.addr - self.virt_offset

    # -- header ------------------------------------------------------------

    @property
    def status_word(self) -> int:
        return self.mem.read_word(self.status_paddr)

    @property
    def n_refs(self) -> int:
        return decode_refcount(self.status_word)[0]

    @property
    def is_array(self) -> bool:
        return decode_refcount(self.status_word)[1]

    @property
    def is_live_cell(self) -> bool:
        return bool(self.status_word & TAG_BIT)

    def is_marked(self, parity: int) -> bool:
        return header_is_marked(self.status_word, parity)

    @property
    def mark_bit(self) -> int:
        return 1 if self.status_word & MARK_BIT else 0

    # -- reference fields -----------------------------------------------------

    def ref_paddr(self, index: int) -> int:
        vaddr = BidirectionalLayout.ref_field_addr(self.addr, self.n_refs, index)
        return vaddr - self.virt_offset

    def get_ref(self, index: int) -> int:
        """Read reference field ``index`` (0 means null)."""
        return self.mem.read_word(self.ref_paddr(index))

    def set_ref(self, index: int, target_vaddr: int) -> None:
        """Write reference field ``index``; ``0`` stores null."""
        self.mem.write_word(self.ref_paddr(index), target_vaddr)

    def refs(self) -> List[int]:
        """All non-null outgoing references."""
        n = self.n_refs
        if n == 0:
            return []
        start_paddr = self.status_paddr - WORD_BYTES * n
        return [w for w in self.mem.read_words(start_paddr, n) if w != 0]

    # -- payload ---------------------------------------------------------------

    def payload_paddr(self, index: int) -> int:
        return self.status_paddr + WORD_BYTES * (1 + index)

    def get_payload(self, index: int) -> int:
        return self.mem.read_word(self.payload_paddr(index))

    def set_payload(self, index: int, value: int) -> None:
        self.mem.write_word(self.payload_paddr(index), value)

    def __repr__(self) -> str:
        return (
            f"ObjectView({self.addr:#x}, refs={self.n_refs}, "
            f"array={self.is_array}, mark={self.mark_bit})"
        )
