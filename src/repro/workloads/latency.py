"""Query-latency simulation with coordinated-omission correction (Fig. 1b).

"We took the lusearch DaCapo benchmark ... and recorded request latencies
of a 10K query run (discarding the first 1K queries for warm-up), assuming
that a request is issued every 100ms and accounting for coordinated
omission."

The simulator replays an open-loop query schedule against a benchmark
timeline (mutator segments interleaved with GC pauses from a
:class:`~repro.workloads.mutator.MutatorRunResult`, tiled to cover the
run). A query's service only progresses during mutator segments; queries
arriving during (or queueing behind) a pause absorb its full duration.
Coordinated omission is handled the way Tene prescribes: latency is
measured from the *intended* arrival time, never from a delayed issue.

Scale note: our simulated pauses are milliseconds (scaled-down heaps), so
the default inter-arrival gap is scaled to preserve the paper's ratio of
pause duration to arrival interval; the CDF's *shape* — a short head and a
pause-induced tail two orders of magnitude long — is the reproduced result.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workloads.mutator import MutatorRunResult


@dataclass
class QueryRecord:
    """One query of the open-loop run."""

    index: int
    intended_start: int  # cycles on the run timeline
    completion: int
    near_gc: bool  # overlapped (or queued behind) a GC pause

    @property
    def latency_cycles(self) -> int:
        return self.completion - self.intended_start

    @property
    def latency_ms(self) -> float:
        return self.latency_cycles / 1e6


class QuerySimulator:
    """Open-loop single-server query replay over a GC-pause timeline."""

    def __init__(
        self,
        run: MutatorRunResult,
        interval_cycles: int = 1_000_000,  # 1 ms at 1 GHz (scaled 100 ms)
        service_mean_cycles: int = 120_000,
        service_sigma: float = 0.35,
        seed: int = 42,
    ):
        self.run = run
        self.interval = interval_cycles
        self.service_mean = service_mean_cycles
        self.service_sigma = service_sigma
        self.seed = seed
        self._pauses = self._tile_pauses()

    def _tile_pauses(self) -> List[Tuple[int, int]]:
        """Pause windows [(start, end)] from the run, tiled so the schedule
        can extend past one benchmark iteration (DaCapo loops internally).

        A run whose pauses cover the entire window leaves no mutator time
        for service to progress, so ``_advance_through_pauses`` would spin
        forever hopping from one tiled pause straight into the next; such
        degenerate timelines are rejected here, at construction.
        """
        segments = self.run.timeline()
        period = self.run.total_cycles
        base = [(s, e) for kind, s, e in segments if kind == "gc"]
        if not base or period <= 0:
            return []
        covered = sum(end - start for start, end in base)
        if covered >= period:
            raise ValueError(
                f"GC pauses cover the entire run window ({covered} of "
                f"{period} cycles): queries could never complete")
        return base  # tiling handled modulo `period` during lookup

    def _pause_after(self, t: int) -> Tuple[int, int]:
        """The first pause window that ends after time ``t`` (tiled)."""
        period = self.run.total_cycles
        epoch = t // period
        while True:
            offset = epoch * period
            for start, end in self._pauses:
                if end + offset > t:
                    return start + offset, end + offset
            epoch += 1

    def _advance_through_pauses(self, t: int, work: int) -> int:
        """Completion time of ``work`` cycles of service starting at ``t``,
        frozen during GC pauses. A pause-free timeline (e.g. a crashed
        tenant whose collections were all cancelled) serves undisturbed —
        without this guard :meth:`_pause_after` would search the empty
        pause list forever."""
        if not self._pauses:
            return t + work
        while True:
            start, end = self._pause_after(t)
            if t >= start:
                t = end  # currently inside a pause: wait it out
                continue
            available = start - t
            if work <= available:
                return t + work
            work -= available
            t = end

    def run_queries(self, n_queries: int = 10_000,
                    warmup: int = 1_000) -> List[QueryRecord]:
        """Replay the schedule; returns post-warmup records.

        When fewer queries arrive than the warm-up discards
        (``n_queries <= warmup``) the returned list is empty — every query
        was warm-up — and downstream summaries (:func:`percentile_summary`,
        :func:`tail_ratio`) raise ``ValueError("no records")`` rather than
        emitting NaNs.
        """
        rng = random.Random(self.seed)
        records: List[QueryRecord] = []
        prev_completion = 0
        prev_near_gc = False
        for i in range(n_queries):
            intended = i * self.interval
            service = max(
                1000,
                int(rng.lognormvariate(math.log(self.service_mean),
                                       self.service_sigma)),
            )
            start = max(intended, prev_completion)
            completion = self._advance_through_pauses(start, service)
            prev_completion = completion
            # "The colors indicate whether a query was close to a pause":
            # either it absorbed a pause directly, or it queued behind a
            # pause-delayed predecessor (ordinary queueing doesn't count).
            near_gc = (completion - start > service) or (
                start > intended and prev_near_gc
            )
            prev_near_gc = near_gc
            if i >= warmup:
                records.append(QueryRecord(i, intended, completion, near_gc))
        return records


@dataclass
class ReplayResult:
    """Outcome of replaying an explicit arrival schedule.

    ``records`` holds the post-warm-up *serviced* queries (shed queries
    never execute and leave no record); the counters account for every
    arrival exactly once: ``arrived == completed + in_flight + shed``.
    """

    records: List[QueryRecord]
    arrived: int
    completed: int  # serviced with completion <= horizon (incl. warm-up)
    in_flight: int  # serviced but still running at the horizon
    shed: int       # dropped by the backlog admission check

    @property
    def conserved(self) -> bool:
        return self.arrived == self.completed + self.in_flight + self.shed


class QueryReplay(QuerySimulator):
    """Replay an *explicit* arrival schedule against a pause timeline.

    :meth:`QuerySimulator.run_queries` generates its own regular open-loop
    schedule; the fleet layer instead sprays one global arrival stream
    across tenants, so each tenant replays an irregular slice of it. For
    the regular schedule ``[i * interval, ...]`` the two are differentially
    identical: same seed, same service-time draws in the same order, same
    records (asserted by the test battery).
    """

    def replay(
        self,
        arrivals: Sequence[int],
        warmup: int = 0,
        horizon: Optional[int] = None,
        shed_backlog_cycles: Optional[int] = None,
        offline_after_cycle: Optional[int] = None,
    ) -> ReplayResult:
        """Run the schedule; latency is measured from intended arrival.

        ``warmup`` discards the first N records (they are still simulated —
        they consume RNG draws and queue behind-schedule work exactly like
        :meth:`run_queries`'s warm-up). ``horizon`` splits serviced queries
        into completed vs in-flight at a cutoff cycle; ``None`` means no
        cutoff (everything serviced counts as completed).
        ``shed_backlog_cycles`` models load shedding: a query arriving when
        the server is running more than that many cycles behind is dropped
        without service. ``offline_after_cycle`` models a crashed tenant
        (fleet fault plane): arrivals at or after that cycle are shed —
        still drawing their service time from the RNG, so the pre-crash
        prefix replays byte-identically to the fault-free run — and stay
        accounted by the conservation law. An empty schedule returns a
        zero-count result.
        """
        rng = random.Random(self.seed)
        records: List[QueryRecord] = []
        prev_completion = 0
        prev_intended = 0
        prev_near_gc = False
        completed = in_flight = shed = 0
        for i, intended in enumerate(arrivals):
            if intended < prev_intended:
                raise ValueError(
                    f"arrival schedule must be non-decreasing: "
                    f"arrivals[{i}] == {intended} < {prev_intended}")
            prev_intended = intended
            service = max(
                1000,
                int(rng.lognormvariate(math.log(self.service_mean),
                                       self.service_sigma)),
            )
            if (offline_after_cycle is not None
                    and intended >= offline_after_cycle):
                shed += 1
                continue
            if (shed_backlog_cycles is not None
                    and prev_completion - intended > shed_backlog_cycles):
                shed += 1
                continue
            start = max(intended, prev_completion)
            completion = self._advance_through_pauses(start, service)
            near_gc = (completion - start > service) or (
                start > intended and prev_near_gc
            )
            prev_completion = completion
            prev_near_gc = near_gc
            if horizon is not None and completion > horizon:
                in_flight += 1
            else:
                completed += 1
            if i >= warmup:
                records.append(QueryRecord(i, intended, completion, near_gc))
        return ReplayResult(records=records, arrived=len(arrivals),
                            completed=completed, in_flight=in_flight,
                            shed=shed)


def latency_cdf(records: Sequence[QueryRecord]) -> List[Tuple[float, float]]:
    """[(latency_ms, cumulative_fraction), ...] sorted by latency."""
    if not records:
        return []
    latencies = sorted(r.latency_ms for r in records)
    n = len(latencies)
    return [(lat, (i + 1) / n) for i, lat in enumerate(latencies)]


def percentile_summary(
    records: Sequence[QueryRecord],
    percentiles: Sequence[float] = (50.0, 90.0, 99.0, 99.9),
) -> dict:
    """{"p50": ms, ..., "max": ms} latency summary of a query run."""
    latencies = sorted(r.latency_ms for r in records)
    if not latencies:
        raise ValueError("no records")
    out = {}
    for p in percentiles:
        rank = max(1, math.ceil(p / 100.0 * len(latencies)))
        key = f"p{p:g}"
        out[key] = latencies[rank - 1]
    out["max"] = latencies[-1]
    return out


@dataclass
class LatencyComparison:
    """STW vs concurrent collection under the same open-loop query stream.

    The schedule (inter-arrival gap, service-time distribution, RNG seed)
    is derived once from the STW run and applied to both timelines, so any
    difference in the percentile columns is pause-attributed by
    construction.
    """

    stw: dict  # percentile_summary of the STW run
    concurrent: dict
    stw_max_pause_ms: float
    concurrent_max_pause_ms: float
    interval_cycles: int
    service_mean_cycles: int
    n_queries: int

    @property
    def tail_improvement(self) -> float:
        """p99.9 ratio, STW over concurrent (>1 means concurrent wins)."""
        conc = self.concurrent["p99.9"]
        return self.stw["p99.9"] / conc if conc > 0 else float("inf")


def compare_stw_concurrent(
    stw_run: MutatorRunResult,
    concurrent_run: MutatorRunResult,
    n_queries: int = 10_000,
    warmup: int = 1_000,
    interval_cycles: int = 0,
    service_mean_cycles: int = 0,
    seed: int = 42,
) -> LatencyComparison:
    """Replay one query schedule against both timelines (Fig. 1b extended).

    Zero ``interval_cycles``/``service_mean_cycles`` means "derive from the
    STW run's mean pause", preserving the paper's ratio of pause duration
    to arrival interval at our scaled-down heap sizes.
    """
    if not stw_run.pauses:
        raise ValueError("STW run has no pauses to scale the schedule from")
    mean_pause = stw_run.gc_cycles // len(stw_run.pauses)
    interval = interval_cycles or max(50_000, mean_pause // 6)
    service = service_mean_cycles or max(4_000, mean_pause // 60)

    def summarize(run: MutatorRunResult) -> dict:
        sim = QuerySimulator(run, interval_cycles=interval,
                             service_mean_cycles=service, seed=seed)
        return percentile_summary(sim.run_queries(n_queries, warmup))

    return LatencyComparison(
        stw=summarize(stw_run),
        concurrent=summarize(concurrent_run),
        stw_max_pause_ms=max(p.pause_ms for p in stw_run.pauses),
        concurrent_max_pause_ms=max(
            p.pause_ms for p in concurrent_run.pauses),
        interval_cycles=interval,
        service_mean_cycles=service,
        n_queries=n_queries - warmup,
    )


def tail_ratio(records: Sequence[QueryRecord],
               p_low: float = 50.0, p_high: float = 99.9) -> float:
    """How many times longer the p_high tail is than the median —
    the 'two orders of magnitude' stragglers of §II."""
    latencies = sorted(r.latency_ms for r in records)
    if not latencies:
        raise ValueError("no records")

    def pct(p: float) -> float:
        rank = max(1, math.ceil(p / 100.0 * len(latencies)))
        return latencies[rank - 1]

    low = pct(p_low)
    return pct(p_high) / low if low > 0 else float("inf")
