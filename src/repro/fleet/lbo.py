"""Lower-bound overhead (LBO) estimate in the style of Cai et al.

*Distilling the Real Cost of Production Garbage Collectors* (Cai,
Blackburn, Maas et al., PAPERS.md) argues that absolute GC cost is
unmeasurable — you cannot run the same program with free garbage
collection — but a *lower bound* is: take, per workload, the cheapest
observed configuration as the empirical baseline, and report every
collector's cost inflation over it. Any real no-GC baseline could only
be cheaper, so the reported overhead is a lower bound on the true cost.

Our distilled adaptation (honest deviations, see DESIGN §15):

* Their baseline distills over many production collectors × heap sizes;
  ours spans exactly our three collectors (``sw`` stop-the-world
  software, ``hw`` stop-the-world accelerator, ``concurrent``
  accelerator) at one heap scale.
* Their cost joins wall time with CPU utilization from production
  telemetry; ours is simulated wall cycles of the tenant's run
  (mutator + pauses). Work the concurrent collector overlaps with the
  mutator is therefore *excluded* from cost (it hides in the wall) but
  surfaced in the ``GC work %`` column.
* Tenants of one profile share a base run, so the per-collector
  distribution collapses per profile; the fleet-size axis varies the
  profile mix, not sampling noise.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.engine.stats import geomean
from repro.fleet.spec import DEFAULT_PROFILES_CYCLE, FleetSpec
from repro.fleet.timeline import base_run

LBO_HEADERS: Tuple[str, ...] = (
    "fleet size", "collector", "mean cost ms", "GC work %", "LBO %",
)


def _cost_cycles(run) -> int:
    """A tenant's distilled cost: wall cycles of the whole run."""
    return run.total_cycles


def _gc_work_pct(run) -> float:
    """GC work share incl. marking overlapped by the concurrent mutator."""
    overlapped = sum(p.concurrent_mark_cycles for p in run.pauses)
    total = run.total_cycles
    return 100.0 * (run.gc_cycles + overlapped) / total if total else 0.0


def fleet_lbo_rows(
    scale: float,
    seed: int,
    n_gcs: int,
    fleet_sizes: Sequence[int] = (2, 4),
    collectors: Sequence[str] = ("sw", "hw", "concurrent"),
    profiles_cycle: Sequence[str] = DEFAULT_PROFILES_CYCLE,
) -> List[List[Any]]:
    """LBO table rows, grouped by fleet size (the shard axis).

    Per tenant, the baseline is the cheapest of the three collectors;
    ``LBO %`` is the geomean cost inflation over that baseline across the
    fleet — 0% for a collector that is cheapest on every tenant, and a
    lower bound on true GC overhead for every collector by construction
    (each per-tenant ratio is >= 1 against its own empirical minimum).
    """
    rows: List[List[Any]] = []
    for size in fleet_sizes:
        roster = FleetSpec(n_tenants=size,
                           profiles_cycle=tuple(profiles_cycle),
                           scale=scale, seed=seed, n_gcs=n_gcs).tenants()
        runs = {
            collector: [base_run(t.benchmark, collector, scale, seed, n_gcs)
                        for t in roster]
            for collector in collectors
        }
        baseline = [min(_cost_cycles(runs[c][i]) for c in collectors)
                    for i in range(size)]
        for collector in collectors:
            costs = [_cost_cycles(run) for run in runs[collector]]
            ratios = [cost / base for cost, base in zip(costs, baseline)]
            rows.append([
                size, collector,
                geomean([c / 1e6 for c in costs]),
                sum(_gc_work_pct(run) for run in runs[collector]) / size,
                100.0 * (geomean(ratios) - 1.0),
            ])
    return rows
