"""Spill-ring edge cases: wraparound, interleaved operation, conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.markqueue import AddressCodec, MarkQueue
from repro.engine.simulator import Simulator
from repro.memory.config import AddressMap, MemorySystemConfig
from repro.memory.interconnect import build_memory_system
from repro.memory.paging import VIRT_OFFSET


def make_queue_with_tiny_ring(ring_entries=64, compression=False):
    """A mark queue whose spill ring holds only a few batches, forcing the
    ring cursors to wrap."""
    sim = Simulator()
    ms = build_memory_system(sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
    codec = AddressCodec(compression)
    spill_start = ms.address_map.spill[0]
    region = (spill_start, spill_start + ring_entries * codec.entry_bytes)
    mq = MarkQueue(
        sim, ms.phys, ms.port("queue"), region,
        entries=4, out_entries=16, in_entries=16, throttle_level=8,
        codec=codec, stats=ms.stats,
    )
    return sim, mq


@pytest.mark.parametrize("compression", [False, True])
def test_ring_wraps_without_loss(compression):
    """Repeated spill/drain bursts cycle the ring cursors past capacity.

    Each burst exceeds on-chip capacity (spilling ~50 entries) but stays
    below the 128-entry ring; across bursts the tail cursor passes the
    ring size, exercising wraparound."""
    sim, mq = make_queue_with_tiny_ring(ring_entries=128,
                                        compression=compression)
    next_ref = 0
    for _burst in range(6):
        expected = []
        for _ in range(90):
            ref = VIRT_OFFSET + next_ref * 8
            next_ref += 1
            expected.append(ref)
            mq.enqueue(ref)
        got = []

        def drain(count=90):
            for _ in range(count):
                item = yield from mq.dequeue()
                got.append(item)

        proc = sim.process(drain())
        sim.run_until(proc)
        assert sorted(got) == sorted(expected)
    assert mq._spill_tail > 128, "the ring actually wrapped"
    assert mq.is_drained


def test_ring_overflow_detected():
    """Exceeding the static spill region raises, mirroring the driver's
    fixed 4 MB allocation limit (§V-E)."""
    sim, mq = make_queue_with_tiny_ring(ring_entries=32)
    with pytest.raises(MemoryError):
        # Never consume: everything beyond on-chip capacity must spill.
        for i in range(4000):
            mq.enqueue(VIRT_OFFSET + i * 8)
            if i % 8 == 0:
                sim.run(until=sim.now + 200)


@given(
    burst_sizes=st.lists(st.integers(1, 40), min_size=2, max_size=12),
    compression=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_bursty_traffic_conserves_entries(burst_sizes, compression):
    """Property: arbitrary produce bursts with full drains in between never
    lose or duplicate a reference."""
    sim, mq = make_queue_with_tiny_ring(ring_entries=512,
                                        compression=compression)
    next_ref = 0
    for burst in burst_sizes:
        expected = []
        for _ in range(burst):
            ref = VIRT_OFFSET + next_ref * 8
            next_ref += 1
            expected.append(ref)
            mq.enqueue(ref)
        got = []

        def drain(count=burst):
            for _ in range(count):
                item = yield from mq.dequeue()
                got.append(item)

        proc = sim.process(drain())
        sim.run_until(proc)
        assert sorted(got) == sorted(expected)
    assert mq.is_drained
