"""Idealized latency-bandwidth pipe memory model.

Used for the paper's "Potential Performance" study (§VI-A, Fig. 17): "we
replaced our model with a latency-bandwidth pipe of latency 1 cycle and
bandwidth 8 GB/s. In this regime, we outperform the CPU by an average of
9.0x on the mark phase."

At a 1 GHz clock, 8 GB/s is 8 bytes per cycle: a request of ``size`` bytes
occupies the pipe for ``ceil(size / 8)`` cycles and completes ``latency``
cycles after its data slot.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.simulator import Completion, Event, Simulator, fastpath_enabled
from repro.engine.stats import BandwidthTracker, IntervalTracker, StatsRegistry
from repro.memory.config import PipeConfig
from repro.memory.request import AccessKind, MemRequest


class LatencyBandwidthPipe:
    """Fixed-latency, fixed-bandwidth memory; same interface as the DRAM model."""

    def __init__(
        self,
        sim: Simulator,
        config: PipeConfig,
        stats: Optional[StatsRegistry] = None,
        bandwidth: Optional[BandwidthTracker] = None,
    ):
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthTracker("pipe")
        self.request_intervals = IntervalTracker("pipe.requests")
        self._bus_free_at = 0
        self._submit_counters: dict = {}
        self._c_bytes_read = self.stats.counter("dram.bytes_read")
        self._c_bytes_written = self.stats.counter("dram.bytes_written")
        self._fast = fastpath_enabled()

    def submit(self, req: MemRequest):
        """Enqueue a request; the returned handle completes at ``done``.

        The pipe is never contended — the completion time is fully
        determined at submit, so the fast path returns a :class:`Completion`
        with zero queue insertions (a posted write costs nothing at all).
        """
        req.issue_time = self.sim.now
        self.request_intervals.record(self.sim.now)
        self._record_submit(req)
        transfer = max(1, -(-req.size // self.config.bytes_per_cycle))
        start = max(self.sim.now, self._bus_free_at)
        self._bus_free_at = start + transfer
        done = start + transfer + self.config.latency
        self._record_complete(req, done, transfer)
        plane = self.stats.hwfaults
        if plane is not None:
            faulted = self._apply_fault(plane, req, done)
            if faulted is not None:
                return faulted
        if self._fast:
            return Completion(self.sim, done, done)
        event = self.sim.event(name=f"pipe.{req.source}")
        self.sim.at(done, event.trigger, done)
        return event

    def _apply_fault(self, plane, req: MemRequest, done: int):
        """Fault hooks for the pipe model (it *is* the ``dram`` component).

        Returns a replacement wait handle, or ``None`` to deliver normally
        (possibly after mutating memory for ``corrupt``). Off the hot path:
        only reached with a fault plane attached.
        """
        now = self.sim.now
        if plane.is_stuck("dram"):
            dead = Event(self.sim, name=f"pipe.{req.source}.stuck")
            self._note_lost(req, dead)
            return dead
        fault = plane.fire("dram", now)
        if fault is None:
            return None
        if fault.kind in ("drop", "stuck"):
            dead = Event(self.sim, name=f"pipe.{req.source}.{fault.kind}")
            self._note_lost(req, dead)
            return dead
        if fault.kind == "delay":
            late = done + fault.delay_cycles
            event = Event(self.sim, name=f"pipe.{req.source}.delay")
            self.sim.at(late, event.trigger, late)
            return event
        # corrupt: flip a payload bit; timing is unchanged.
        plane.corrupt_word(None, req.addr - req.addr % 8)
        return None

    def _note_lost(self, req: MemRequest, handle) -> None:
        wd = self.stats.watchdog
        if wd is not None:
            wd.note_submit(
                "dram", id(handle), req.issue_time,
                f"{req.kind.value} {req.size}B @0x{req.addr:x} "
                f"from {req.source}")

    @property
    def pending(self) -> int:
        """The pipe never queues; pending work is implicit in bus occupancy."""
        return 0

    def abort_pending(self) -> int:
        """The pipe holds no queued state; nothing to discard."""
        return 0

    def _record_submit(self, req: MemRequest) -> None:
        counters = self._submit_counters.get((req.kind, req.source))
        if counters is None:
            kind = "write" if req.kind is AccessKind.WRITE else (
                "amo" if req.kind is AccessKind.AMO else "read"
            )
            counters = (
                self.stats.counter(f"mem.requests.{req.source}"),
                self.stats.counter(f"mem.{kind}s.{req.source}"),
            )
            self._submit_counters[(req.kind, req.source)] = counters
        counters[0].value += 1
        counters[1].value += 1

    def _record_complete(self, req: MemRequest, done: int, transfer: int) -> None:
        if req.kind is AccessKind.AMO:
            self._c_bytes_read.value += req.size
            self._c_bytes_written.value += req.size
        elif req.kind is AccessKind.WRITE:
            self._c_bytes_written.value += req.size
        else:
            self._c_bytes_read.value += req.size
        self.bandwidth.record(done, req.size, busy_cycles=transfer)
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "req", req.source,
                                 req.kind.value, req.addr, req.size,
                                 req.issue_time, done))
