"""The marker (Fig. 13, §V-C).

"Instead of full memory requests, we only hold a tag and a 64-bit address
for each request, translate them using a dedicated TLB, send the resulting
reads into the memory system and then handle responses in the order they
return. For each response, we then issue the corresponding write-back
request to store the updated mark bit and free the request slot (we can
elide write-backs if the object was already marked)."

The marker dequeues references from the mark queue, filters them through
the optional mark-bit cache, marks the object's status word — receiving the
mark bit and reference count in that single access (§IV-A idea II) — and
hands newly marked objects with outbound references to the tracer queue.

Request slots are modeled as a token pool: the marker stalls when all
``marker_slots`` are in flight, the unit's analogue of MSHR pressure.
The slot contents live in :class:`~repro.memory.request.RequestSlots`
columns indexed by tag — in-flight callbacks carry only the integer tag,
exactly the "tag and a 64-bit address" the paper's tag table holds.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.queues import HWQueue
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.heap.header import decode_refcount, header_is_marked, header_with_mark
from repro.core.markbitcache import MarkBitCache
from repro.core.markqueue import MarkQueue
from repro.memory.memimage import PhysicalMemory
from repro.memory.request import RequestSlots
from repro.memory.tlb import TLB


class Marker:
    """Pipelined mark stage of the traversal unit."""

    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        mark_queue: MarkQueue,
        tracer_queue: HWQueue,
        port,
        tlb: TLB,
        unit,  # TraversalUnit; provides retire_ref() and mark parity
        slots: int = 16,
        mark_bit_cache: Optional[MarkBitCache] = None,
        stats: Optional[StatsRegistry] = None,
        nonblocking_tlb: bool = False,
    ):
        self.sim = sim
        self.mem = mem
        self.mark_queue = mark_queue
        self.tracer_queue = tracer_queue
        self.port = port
        self.tlb = tlb
        self.unit = unit
        self.mark_bit_cache = mark_bit_cache or MarkBitCache(0)
        self.stats = stats if stats is not None else StatsRegistry()
        #: §VI-A future work: a non-blocking TLB lets the marker keep
        #: issuing requests that hit while misses walk in the background
        #: (requires a PTW with ``max_concurrent > 1`` to pay off).
        self.nonblocking_tlb = nonblocking_tlb
        # Request-slot token pool (Fig. 13's tag table): free tags queue
        # here, in-flight (ref, paddr) state lives in the tag-indexed
        # columns.
        self._slots = HWQueue(sim, slots, name="marker.slots")
        for tag in range(slots):
            self._slots.put_nowait(tag)
        self._tags = RequestSlots(slots)
        self.objects_marked = 0
        self.already_marked = 0
        self.filtered = 0
        self.writebacks_elided = 0

    def process(self):
        """The marker's main loop (runs as a simulation process)."""
        while True:
            ref = yield from self.mark_queue.dequeue()
            if self.mark_bit_cache.contains(ref):
                # Known already-marked: no memory traffic at all.
                self.filtered += 1
                trace = self.stats.trace
                if trace is not None:
                    trace.events.append((self.sim.now, "mark", "filtered", ref))
                self.unit.retire_ref()
                continue
            tag = yield self._slots.get()
            translate = self.tlb.translate(ref)
            if self.nonblocking_tlb:
                # Park the miss with its walk; keep consuming the queue.
                translate.add_callback(
                    lambda paddr, r=ref, t=tag: self._issue_to(t, r, paddr)
                )
            else:
                # The paper's design: misses serialize the marker behind
                # the blocking PTW (§VI-A).
                paddr = yield translate
                self._issue_to(tag, ref, paddr)

    def _issue_to(self, tag: int, ref: int, paddr: int) -> None:
        """Fill the slot's columns and issue the mark read under its tag."""
        self._tags.store(tag, ref, paddr)
        self.port.read(paddr, 8).add_callback(
            lambda _v, t=tag: self._response(t)
        )

    def _response(self, tag: int) -> None:
        """Handle a returning mark access (any order, matched by tag)."""
        tags = self._tags
        ref = tags.ref[tag]
        paddr = tags.paddr[tag]
        stats = self.stats
        if stats.hwfaults is not None or stats.watchdog is not None:
            if not self._supervised_response(ref, paddr, tag):
                return
        parity = self.unit.mark_parity
        status = self.mem.read_word(paddr)
        trace = self.stats.trace
        if header_is_marked(status, parity):
            # Already marked: elide the write-back, free the slot.
            self.already_marked += 1
            self.writebacks_elided += 1
            if trace is not None:
                trace.events.append((self.sim.now, "mark", "already", ref))
            self._slots.put_nowait(tag)
            self.unit.retire_ref()
            return
        # Newly marked: functional update + posted write-back.
        self.mem.write_word(paddr, header_with_mark(status, parity))
        self.port.write(paddr, 8)
        self.objects_marked += 1
        if trace is not None:
            trace.events.append((self.sim.now, "mark", "marked", ref))
        self.mark_bit_cache.insert(ref)
        n_refs, _is_array = decode_refcount(status)
        if n_refs == 0:
            self._slots.put_nowait(tag)
            self.unit.retire_ref()
            return
        # Hand to the tracer; if its queue is full this keeps the slot
        # occupied, back-pressuring the marker (the decoupling of §IV-A III).
        put_event = self.tracer_queue.put((ref, n_refs))
        put_event.add_callback(lambda _v, t=tag: self._slots.put_nowait(t))

    def _supervised_response(self, ref: int, paddr: int, tag: int) -> bool:
        """Watchdog heartbeat + fault hooks for a returning mark access.

        Returns ``True`` to process the response normally. ``drop`` and
        ``stuck`` swallow the response — the request slot (tag) is never
        freed and the reference never retired, the unit's analogue of a
        wedged tag-table entry. ``delay`` re-delivers later; ``corrupt``
        flips a bit in the status word before it is decoded.
        """
        now = self.sim.now
        wd = self.stats.watchdog
        if wd is not None:
            wd.beat("marker", now)
        plane = self.stats.hwfaults
        if plane is None:
            return True
        fault = plane.fire("marker", now)
        if fault is None:
            return True
        if fault.kind in ("drop", "stuck"):
            return False
        if fault.kind == "delay":
            # The slot stays occupied, so its columns remain valid for the
            # re-delivered response.
            self.sim.schedule(fault.delay_cycles, self._response, tag)
            return False
        plane.corrupt_word(self.mem, paddr)
        return True

    @property
    def slots_in_flight(self) -> int:
        """Request slots currently holding an outstanding mark access."""
        return self._slots.capacity - self._slots.occupancy
