"""Intra-figure sharding: split one figure across worker processes.

``run_suite(jobs=N)`` parallelizes *across* figures, which strands N-1
workers once only the slowest figure remains. The figures that dominate the
suite's critical path (fig15, fig01a) are embarrassingly parallel *inside*:
they iterate one independent GC comparison per benchmark. This module
splits such a figure's benchmark axis into contiguous chunks, fans the
chunks out over ``fork`` worker processes, and merges the per-chunk
:class:`~repro.harness.experiments.ExperimentResult` rows back into a
single figure whose rendered table — and therefore its determinism digest
— is byte-identical to the unsharded run.

Identity argument: each benchmark's comparison runs on its own simulator
and heap, so per-chunk rows equal the unsharded rows exactly; chunks are
contiguous and merged in order, so row order is preserved; and the geomean
row is recomputed from the merged rows' float values in the same order the
unsharded code folds them, so even the floating-point summation order
matches. The per-shard digests are recorded on the
:class:`~repro.harness.suite.FigureRun` (and in its checkpoint) for
forensics, but excluded from the figure digest itself.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.suite import FigureRun, run_entry
from repro.workloads.profiles import BENCHMARK_ORDER


def _concat_merge(results: List[Any]) -> Any:
    """Merge chunk results whose rows simply concatenate (no summary row)."""
    merged = replace(results[0])
    merged.rows = [row for result in results for row in result.rows]
    merged.extras = {}
    return merged


def _geomean_tail_merge(*speedup_cols: int) -> Callable[[List[Any]], Any]:
    """Merge for figures ending in a geomean row over ``speedup_cols``.

    Each chunk computed its own trailing geomean over its slice; drop
    those, concatenate the per-benchmark rows, and refold the geomean from
    the merged rows — same float values, same left-to-right order as the
    unsharded loop, hence a bit-identical summary row.
    """
    from repro.engine.stats import geomean

    def merge(results: List[Any]) -> Any:
        merged = replace(results[0])
        merged.rows = [row for result in results for row in result.rows[:-1]]
        summary: List[Any] = ["geomean"] + [""] * (len(merged.headers) - 1)
        for col in speedup_cols:
            summary[col] = geomean([row[col] for row in merged.rows])
        merged.rows = merged.rows + [summary]
        merged.extras = {}
        return merged

    return merge


@dataclass(frozen=True)
class ShardSpec:
    """How one experiment splits: the kwarg axis and the row merge."""

    axis: str
    merge: Callable[[List[Any]], Any]


#: Experiments that accept a ``benchmarks=`` axis of independent units of
#: work. fig15's table ends in a geomean row (speedups in columns 3 and 6);
#: fig01a's rows concatenate directly.
SHARDABLE: Dict[str, ShardSpec] = {
    "fig15": ShardSpec(axis="benchmarks", merge=_geomean_tail_merge(3, 6)),
    "fig01a": ShardSpec(axis="benchmarks", merge=_concat_merge),
}


def axis_values(exp_id: str, kwargs: Dict[str, Any]) -> Optional[List[str]]:
    """The benchmark list a sharded run would split, or ``None``."""
    spec = SHARDABLE.get(exp_id)
    if spec is None:
        return None
    values = kwargs.get(spec.axis)
    return list(values) if values is not None else list(BENCHMARK_ORDER)


def split_axis(values: Sequence[str], n_shards: int) -> List[List[str]]:
    """Deterministic contiguous chunks, earlier chunks one longer.

    Contiguity is what makes the merge a plain ordered concatenation.
    """
    n_shards = max(1, min(n_shards, len(values)))
    base, extra = divmod(len(values), n_shards)
    chunks: List[List[str]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        chunks.append(list(values[start:start + size]))
        start += size
    return chunks


def can_shard(exp_id: str, kwargs: Dict[str, Any], jobs: int) -> bool:
    """Whether splitting this entry over ``jobs`` workers buys anything."""
    if jobs < 2:
        return False
    values = axis_values(exp_id, kwargs)
    return values is not None and len(values) >= 2


def _shard_child(conn, exp_id: str, kwargs: Dict[str, Any]) -> None:
    """Worker: run one chunk's experiment, ship the result over a pipe.

    ``extras`` can hold unpicklable/heavy simulation objects and feeds
    neither the rendered table nor the digest, so it is stripped before
    the send.
    """
    try:
        from repro.harness.experiments import ALL_EXPERIMENTS

        result = ALL_EXPERIMENTS[exp_id](**kwargs)
        result.extras = {}
        conn.send(("ok", result))
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def run_entry_sharded(index: int, exp_id: str, kwargs: Dict[str, Any],
                      jobs: int) -> FigureRun:
    """Run one suite entry split across ``jobs`` worker processes.

    Falls back to the inline :func:`~repro.harness.suite.run_entry` when
    the entry is not shardable (unknown axis, one benchmark, jobs < 2).
    A shard failure raises — the caller's retry accounting treats it like
    any other failed attempt.
    """
    from repro.harness.parallel import _pool_context

    spec = SHARDABLE.get(exp_id)
    values = axis_values(exp_id, kwargs)
    if spec is None or jobs < 2 or values is None or len(values) < 2:
        return run_entry(index, exp_id, kwargs)

    chunks = split_axis(values, jobs)
    ctx = _pool_context()
    t0 = time.time()
    workers = []
    for chunk in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        shard_kwargs = dict(kwargs)
        shard_kwargs[spec.axis] = chunk
        proc = ctx.Process(target=_shard_child,
                           args=(child_conn, exp_id, shard_kwargs))
        proc.start()
        child_conn.close()
        workers.append((parent_conn, proc, chunk))

    results, errors, shard_digests = [], [], []
    for parent_conn, proc, chunk in workers:
        try:
            msg = parent_conn.recv()
        except (EOFError, OSError):
            msg = ("error", "shard worker died before reporting")
        parent_conn.close()
        proc.join(5.0)
        if msg[0] == "ok":
            results.append(msg[1])
            shard_digests.append(hashlib.sha256(
                msg[1].render().encode()).hexdigest())
        else:
            errors.append(f"shard {chunk}: {msg[1]}")
    if errors:
        raise RuntimeError(
            f"{exp_id} sharded over {len(chunks)} workers failed: "
            + "; ".join(errors))

    merged = spec.merge(results)
    return FigureRun(
        index=index,
        exp_id=exp_id,
        kwargs=dict(kwargs),
        rendered=merged.render(),
        elapsed=time.time() - t0,
        shard_digests=shard_digests,
    )
