"""Fleet fault plane: grammar, rate model, failover admission, chaos.

The synthetic-timeline batteries mirror ``test_admission.py`` — fast,
and hypothesis explores fault geometries (crash cycles inside, before,
after grants; rosters of mixed kinds) far beyond the curated figure
rosters. The chaos battery is the PR's headline invariant: under *any*
seeded fault roster, every collection of every surviving tenant is
served exactly once, the grant log stays earliest-request-first, and
the replay tier's conservation law holds with shed arrivals counted.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faultplane import FaultSpecGrammarError
from repro.fleet.admission import (
    FailoverConfig,
    _shared,
    schedule_fleet,
)
from repro.fleet.balancer import offline_split
from repro.fleet.faults import (
    DEFAULT_RESILIENCE_ROSTERS,
    FleetFault,
    FleetFaultSpec,
    FleetFaultSpecError,
)
from repro.workloads.latency import QueryReplay
from tests.fleet.test_admission import (
    build_timelines,
    tenant_layouts,
    timeline,
)


class TestGrammar:
    def test_parse_roundtrip_of_every_default_roster(self):
        for label, spec in DEFAULT_RESILIENCE_ROSTERS:
            parsed = FleetFaultSpec.parse(spec)
            assert FleetFaultSpec.parse(parsed.spec()) == parsed, label

    def test_crash_entry_fields(self):
        spec = FleetFaultSpec.parse("crash:u2@1500")
        (fault,) = spec.faults
        assert fault == FleetFault(kind="crash", target_kind="unit",
                                   index=2, at_cycle=1500)

    def test_brownout_defaults_factor(self):
        (fault,) = FleetFaultSpec.parse("brownout:u0@10+20").faults
        assert fault.factor == 4.0 and fault.duration == 20
        assert fault.end_cycle == 30

    def test_slow_tenant_defaults_factor(self):
        (fault,) = FleetFaultSpec.parse("slow:t3").faults
        assert fault.target_kind == "tenant" and fault.factor == 2.0
        assert fault.end_cycle == math.inf

    def test_whitespace_and_empty_chunks_tolerated(self):
        spec = FleetFaultSpec.parse(" crash:u0 , ,slow:t1x2.5 ")
        assert len(spec.faults) == 2
        assert spec.faults[1].factor == 2.5

    @pytest.mark.parametrize("bad", [
        "wedge:u0",            # unknown kind
        "crash:x0",            # unknown target kind
        "crash:u0+100",        # crash takes no duration
        "crash:u0x2",          # crash takes no factor
        "brownout:u0",         # brownout needs a duration
        "brownout:u0+0",       # ...of at least one cycle
        "slow:u0+100",         # slow is permanent
        "slow:u0x1.0",         # factor must exceed 1
        "brownout:u0+10x0.5",  # ...even when explicit
        "crash:u",             # missing index
        "crash",               # missing target
    ])
    def test_bad_entries_raise_with_the_offender(self, bad):
        with pytest.raises(FleetFaultSpecError) as err:
            FleetFaultSpec.parse(bad)
        assert bad.split(",")[0] in str(err.value)

    def test_error_is_catchable_as_shared_grammar_error(self):
        with pytest.raises(FaultSpecGrammarError):
            FleetFaultSpec.parse("bogus:u0")

    def test_validate_rejects_out_of_roster_targets(self):
        spec = FleetFaultSpec.parse("crash:u3,slow:t1")
        with pytest.raises(FleetFaultSpecError, match="unit 3"):
            spec.validate(n_units=2, n_tenants=4)
        with pytest.raises(FleetFaultSpecError, match="tenant 1"):
            FleetFaultSpec.parse("slow:t1").validate(2, 1)
        spec.validate(n_units=4, n_tenants=2)  # in range: returns self

    def test_empty_spec_is_falsy(self):
        assert not FleetFaultSpec.parse("")
        assert FleetFaultSpec.parse("crash:u0")


class TestRateModel:
    def test_rate_segments_cover_zero_to_inf(self):
        spec = FleetFaultSpec.parse("brownout:u0@100+50x2")
        assert spec.rate_segments(0) == [
            (0, 100, 1.0), (100, 150, 2.0), (150, math.inf, 1.0)]
        assert spec.rate_segments(1) == [(0, math.inf, 1.0)]

    def test_overlapping_windows_multiply(self):
        spec = FleetFaultSpec.parse("brownout:u0@0+100x2,slow:u0@50x3")
        assert spec.rate_segments(0) == [
            (0, 50, 2.0), (50, 100, 6.0), (100, math.inf, 3.0)]

    def test_service_end_stretches_inside_a_window(self):
        spec = FleetFaultSpec.parse("brownout:u0@0+1000000x4")
        assert spec.service_end(0, 100, 50) == 100 + 200

    def test_service_end_spans_a_window_boundary(self):
        # 30 work cycles at 2x fit [0, 40): 20 done; the remaining 10
        # run at full rate after the window lifts.
        spec = FleetFaultSpec.parse("brownout:u0@0+40x2")
        assert spec.service_end(0, 0, 30) == 40 + 10

    def test_service_end_identity_off_the_faulted_unit(self):
        spec = FleetFaultSpec.parse("brownout:u0@0+100x4")
        assert spec.service_end(1, 7, 13) == 20

    def test_tenant_factor_windows(self):
        spec = FleetFaultSpec.parse("brownout:t0@100+50x3,slow:t1x2")
        assert spec.tenant_factor(0, 99) == 1.0
        assert spec.tenant_factor(0, 100) == 3.0
        assert spec.tenant_factor(0, 150) == 1.0
        assert spec.tenant_factor(1, 0) == 2.0
        assert spec.tenant_factor(2, 0) == 1.0

    def test_crash_queries(self):
        spec = FleetFaultSpec.parse("crash:u1@500,crash:t0@700")
        assert spec.crash_cycle(1) == 500
        assert spec.crash_cycle(0) is None
        assert spec.tenant_crash_cycle(0) == 700
        assert spec.crashed_units(3) == (1,)


EMPTY = FleetFaultSpec()


class TestFailoverAdmission:
    def test_empty_armed_plane_reproduces_shared_exactly(self):
        tls = build_timelines([[(100_000, 50_000), (400_000, 60_000)],
                               [(100_000, 40_000)]])
        plain = _shared(tls, 2, 0.25)
        armed = schedule_fleet("shared", tls, n_units=2, dram_tax=0.25,
                               faults=EMPTY)
        assert armed.grants == plain.grants
        assert armed.timelines == plain.timelines
        assert armed.queue_wait_cycles == plain.queue_wait_cycles
        assert armed.failovers == [0, 0] and armed.fallbacks == [0, 0]

    @settings(deadline=None, max_examples=40)
    @given(layouts=tenant_layouts(), n_units=st.integers(1, 3),
           dram_tax=st.floats(0.0, 0.5, allow_nan=False))
    def test_empty_armed_plane_equivalence_holds_everywhere(
            self, layouts, n_units, dram_tax):
        # Patience disabled: the timeout is part of the failover
        # discipline and can fire on fault-free congestion too, which is
        # exactly why figure runs route empty specs through _shared.
        tls = build_timelines(layouts)
        plain = _shared(tls, n_units, dram_tax)
        armed = schedule_fleet("shared", tls, n_units=n_units,
                               dram_tax=dram_tax, faults=EMPTY,
                               failover=FailoverConfig(timeout_cycles=0))
        assert armed.grants == plain.grants
        assert armed.timelines == plain.timelines

    def test_crash_interrupts_and_retries_on_the_survivor(self):
        # Tenant 0 granted on unit 0 at 100k for 50k; unit 0 dies at
        # 120k mid-service. The retry backs off 10k and lands on unit 1.
        tls = build_timelines([[(100_000, 50_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=2, dram_tax=0.0,
            faults=FleetFaultSpec.parse("crash:u0@120000"),
            failover=FailoverConfig(backoff_cycles=10_000, max_retries=3,
                                    timeout_cycles=0))
        (event,) = sched.failover_events
        assert (event.unit, event.crash_cycle, event.attempt) == \
            (0, 120_000, 1)
        (grant,) = sched.grants
        assert grant.via == "unit" and grant.unit == 1
        assert grant.request == 130_000      # crash + backoff
        assert grant.first_request == 100_000
        assert grant.attempts == 2
        assert sched.failovers == [1]
        assert sched.retry_wait_cycles == [30_000]  # requeue - request
        # The tenant's recorded pause covers the whole stall from the
        # original request.
        (pause,) = sched.timelines[0].pauses
        assert pause.start_cycle == 100_000
        assert pause.pause_cycles == grant.end - 100_000

    def test_backoff_doubles_per_attempt(self):
        # Units 0 and 1 die in sequence so the request is interrupted
        # twice; the second requeue backs off 2x the first.
        tls = build_timelines([[(100_000, 50_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=3, dram_tax=0.0,
            faults=FleetFaultSpec.parse("crash:u0@110000,crash:u1@125000"),
            failover=FailoverConfig(backoff_cycles=10_000, max_retries=5,
                                    timeout_cycles=0))
        assert [e.attempt for e in sched.failover_events] == [1, 2]
        (grant,) = sched.grants
        assert grant.unit == 2 and grant.attempts == 3
        # attempt 1 died at 110k -> requeue 120k; attempt 2 died at
        # 125k -> backoff 20k -> requeue 145k.
        assert grant.request == 145_000

    def test_retry_budget_exhaustion_falls_back_to_software(self):
        sw = build_timelines([[(100_000, 90_000)]])
        tls = build_timelines([[(100_000, 30_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=1, dram_tax=0.0,
            faults=FleetFaultSpec.parse("crash:u0@110000"),
            failover=FailoverConfig(backoff_cycles=10_000, max_retries=0,
                                    timeout_cycles=0),
            software_timelines=sw)
        (grant,) = sched.grants
        assert grant.via == "fallback" and grant.unit == -1
        assert sched.fallbacks == [1]
        # Fallback runs the software pause duration; the tax is what it
        # cost over the hardware work the request asked for.
        assert grant.end - grant.grant == 90_000
        assert sched.fallback_tax_cycles == [90_000 - 30_000]

    def test_all_units_dead_degrades_immediately(self):
        tls = build_timelines([[(100_000, 30_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=2, dram_tax=0.0,
            faults=FleetFaultSpec.parse("crash:u0,crash:u1"))
        (grant,) = sched.grants
        assert grant.via == "fallback"
        assert grant.grant == 100_000  # no timeout wait: refused, not slow
        assert sched.availability(0) == 0.0
        assert sched.failovers == [0]  # nothing was ever in flight

    def test_timeout_gives_up_at_the_deadline(self):
        # Tenant 1's request at 100k queues behind tenant 0's monster
        # collection; with a 50k patience budget it falls back at 150k.
        tls = build_timelines([[(90_000, 2_000_000)], [(100_000, 30_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=1, dram_tax=0.0, faults=EMPTY,
            failover=FailoverConfig(timeout_cycles=50_000))
        by_tenant = {g.tenant: g for g in sched.grants}
        assert by_tenant[0].via == "unit"
        assert by_tenant[1].via == "fallback"
        assert by_tenant[1].grant == 150_000
        assert sched.retry_wait_cycles[1] == 50_000

    def test_crashed_tenant_collections_are_cancelled(self):
        tls = build_timelines([[(100_000, 10_000), (500_000, 10_000),
                                (900_000, 10_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=1, dram_tax=0.0,
            faults=FleetFaultSpec.parse("crash:t0@400000"))
        assert len(sched.grants) == 1          # only the pre-crash pause
        assert sched.cancelled == [2]
        assert len(sched.timelines[0].pauses) == 1

    def test_slow_tenant_stretches_its_own_collections_only(self):
        tls = build_timelines([[(100_000, 10_000)], [(500_000, 10_000)]])
        sched = schedule_fleet(
            "shared", tls, n_units=1, dram_tax=0.0,
            faults=FleetFaultSpec.parse("slow:t0x3"))
        by_tenant = {g.tenant: g for g in sched.grants}
        assert by_tenant[0].end - by_tenant[0].grant == 30_000
        assert by_tenant[1].end - by_tenant[1].grant == 10_000


def fault_rosters(max_units=3, max_tenants=5):
    """Strategy: valid fault rosters built straight from components."""
    crash = st.builds(
        FleetFault, kind=st.just("crash"),
        target_kind=st.sampled_from(["unit", "tenant"]),
        index=st.integers(0, max_units - 1),
        at_cycle=st.integers(0, 6_000_000))
    degrade = st.builds(
        FleetFault,
        kind=st.sampled_from(["brownout", "slow"]),
        target_kind=st.sampled_from(["unit", "tenant"]),
        index=st.integers(0, max_units - 1),
        at_cycle=st.integers(0, 6_000_000),
        duration=st.integers(1, 4_000_000),
        factor=st.floats(1.1, 8.0, allow_nan=False))
    entry = st.one_of(crash, degrade).map(
        lambda f: f if f.kind == "brownout"
        else FleetFault(kind=f.kind, target_kind=f.target_kind,
                        index=f.index, at_cycle=f.at_cycle,
                        duration=None,
                        factor=None if f.kind == "crash" else f.factor))
    return st.lists(entry, min_size=0, max_size=4).map(
        lambda fs: FleetFaultSpec(faults=tuple(fs)))


class TestChaosBattery:
    """Seeded randomized rosters: the invariants that must never break."""

    @settings(deadline=None, max_examples=80)
    @given(layouts=tenant_layouts(), n_units=st.integers(1, 3),
           dram_tax=st.floats(0.0, 0.5, allow_nan=False),
           faults=fault_rosters(),
           backoff=st.integers(1_000, 200_000),
           retries=st.integers(0, 4),
           timeout=st.sampled_from([0, 50_000, 1_000_000]))
    def test_every_surviving_collection_served_exactly_once(
            self, layouts, n_units, dram_tax, faults, backoff, retries,
            timeout):
        tls = build_timelines(layouts)
        faults = FleetFaultSpec(faults=tuple(
            f for f in faults.faults
            if f.index < (n_units if f.target_kind == "unit"
                          else len(tls))))
        sched = schedule_fleet(
            "shared", tls, n_units=n_units, dram_tax=dram_tax,
            faults=faults,
            failover=FailoverConfig(backoff_cycles=backoff,
                                    max_retries=retries,
                                    timeout_cycles=timeout))
        for t, tl in enumerate(tls):
            served = sorted(g.pause_index for g in sched.grants
                            if g.tenant == t)
            # Served + cancelled partitions the tenant's pause list: the
            # served indices are a prefix (requests are monotone, so a
            # tenant crash cancels exactly the suffix).
            n_served = len(tl.pauses) - sched.cancelled[t]
            assert served == list(range(n_served)), (t, served)
            crash = faults.tenant_crash_cycle(t)
            if crash is None:
                assert sched.cancelled[t] == 0
        # FIFO: the grant log is ordered by (re-queued) request cycle.
        assert all(a.request <= b.request
                   for a, b in zip(sched.grants, sched.grants[1:]))
        # Unit exclusivity among hardware grants; nothing is served by a
        # unit past its crash cycle; fallbacks never name a unit.
        busy_until = {}
        crash_at = {u: faults.crash_cycle(u) for u in range(n_units)}
        for grant in sched.grants:
            assert grant.end > grant.grant >= grant.request >= 0
            assert grant.first_request <= grant.request
            if grant.via == "unit":
                assert grant.grant >= busy_until.get(grant.unit, 0)
                busy_until[grant.unit] = grant.end
                if crash_at[grant.unit] is not None:
                    assert grant.end <= crash_at[grant.unit]
            else:
                assert grant.unit == -1
        # Counter consistency.
        assert sched.failovers == [
            sum(1 for e in sched.failover_events if e.tenant == t)
            for t in range(len(tls))]
        assert all(w >= 0 for w in sched.retry_wait_cycles)
        assert all(w >= 0 for w in sched.fallback_tax_cycles)
        # Adjusted timelines stay monotone and non-overlapping.
        for adjusted in sched.timelines:
            cursor = 0
            for pause in adjusted.pauses:
                assert pause.start_cycle >= cursor
                cursor = pause.start_cycle + pause.pause_cycles

    @settings(deadline=None, max_examples=40)
    @given(gaps=st.lists(st.integers(1, 3_000_000), min_size=1,
                         max_size=40),
           offline=st.integers(0, 40_000_000),
           seed=st.integers(0, 10_000))
    def test_replay_conservation_with_offline_shedding(self, gaps, offline,
                                                       seed):
        arrivals = []
        cursor = 0
        for gap in gaps:
            cursor += gap
            arrivals.append(cursor)
        replay = QueryReplay(
            timeline([(500_000, 40_000)], mutator=5_000_000),
            interval_cycles=100_000, service_mean_cycles=20_000,
            seed=seed,
        ).replay(arrivals, warmup=0, horizon=cursor + 1_000_000,
                 offline_after_cycle=offline)
        assert replay.conserved
        live, dead = offline_split(arrivals, offline)
        assert replay.shed >= len(dead)
        assert replay.completed + replay.in_flight <= len(live)

    def test_offline_prefix_replays_byte_identically(self):
        # The pre-crash records match the fault-free run record-for-
        # record: the RNG stream is drawn identically either way.
        arrivals = [i * 100_000 for i in range(1, 30)]
        tl = timeline([(500_000, 40_000)], mutator=5_000_000)

        def run(**kw):
            return QueryReplay(tl, interval_cycles=100_000,
                               service_mean_cycles=20_000,
                               seed=7).replay(arrivals, **kw)

        free = run()
        faulted = run(offline_after_cycle=1_500_000)
        live, dead = offline_split(arrivals, 1_500_000)
        assert faulted.shed == len(dead)
        assert faulted.records == free.records[:len(live)]
