"""Deterministic fault injection for the suite runner.

The resumable runner (:mod:`repro.harness.parallel`) promises to survive
worker crashes, hangs and transient errors. This module provides the
machinery that *creates* those failures on demand, so the recovery paths
are testable — by the crash-injection suite and by hand:

.. code-block:: console

    REPRO_FAULTS=crash:fig16:1,hang:fig18:2 python -m repro run-all \
        --jobs 4 --retries 2 --timeout 120

The spec is a comma-separated list of ``kind:exp_id[:attempt]`` triples:

* ``kind`` — one of ``crash`` (the worker exits abnormally via
  ``os._exit(139)``, simulating a segfault/OOM kill), ``hang`` (the worker
  sleeps past any reasonable per-task timeout), or ``raise`` (the worker
  raises :class:`FaultInjected`, a plain in-band Python error).
* ``exp_id`` — the suite entry to fault (e.g. ``fig16``).
* ``attempt`` — which attempt to fault, 1-based; ``*`` faults every
  attempt (exhausting retries deterministically). Omitted means ``1``:
  fault the first attempt only, so a retry succeeds.

Injection is purely a function of ``(spec, exp_id, attempt)`` — no
randomness, no clocks — which keeps crash tests reproducible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"

#: How long a ``hang`` fault sleeps. Long enough that any sane per-task
#: timeout fires first; finite so a misconfigured run still terminates.
DEFAULT_HANG_SECONDS = 3600.0

KINDS = ("crash", "hang", "raise")


class FaultSpecError(ValueError):
    """The ``REPRO_FAULTS`` spec does not parse."""


class FaultInjected(RuntimeError):
    """The in-band error raised by a ``raise`` fault."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: ``kind`` hits ``exp_id`` on ``attempt``."""

    kind: str
    exp_id: str
    #: 1-based attempt to fault; ``None`` means every attempt.
    attempt: Optional[int] = 1

    def matches(self, exp_id: str, attempt: int) -> bool:
        if self.exp_id != exp_id:
            return False
        return self.attempt is None or self.attempt == attempt

    def spec(self) -> str:
        nth = "*" if self.attempt is None else str(self.attempt)
        return f"{self.kind}:{self.exp_id}:{nth}"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed spec, matched per ``(exp_id, attempt)`` by the runner.

    The runner resolves the matching fault in the *parent* process and
    ships it to the worker alongside the task, so the plan behaves
    identically under ``fork`` and ``spawn`` start methods.
    """

    faults: Tuple[Fault, ...] = ()
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def match(self, exp_id: str, attempt: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(exp_id, attempt):
                return fault
        return None

    def inject(self, exp_id: str, attempt: int) -> None:
        """Execute the matching fault, if any, in the current process."""
        execute(self.match(exp_id, attempt), hang_seconds=self.hang_seconds)


def execute(fault: Optional[Fault],
            hang_seconds: float = DEFAULT_HANG_SECONDS) -> None:
    """Carry out ``fault`` here: crash, hang, or raise. No-op on ``None``."""
    if fault is None:
        return
    if fault.kind == "crash":
        # os._exit skips atexit/finally handlers: the closest a pure-Python
        # worker gets to a segfault or an OOM kill.
        os._exit(139)
    if fault.kind == "hang":
        time.sleep(hang_seconds)
        return
    raise FaultInjected(f"injected fault {fault.spec()}")


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``kind:exp_id[:attempt],...`` spec into a :class:`FaultPlan`."""
    faults = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (2, 3):
            raise FaultSpecError(
                f"bad fault {chunk!r}: expected kind:exp_id[:attempt]")
        kind, exp_id = parts[0], parts[1]
        if kind not in KINDS:
            raise FaultSpecError(
                f"bad fault {chunk!r}: kind must be one of {'/'.join(KINDS)}")
        if not exp_id:
            raise FaultSpecError(f"bad fault {chunk!r}: empty experiment id")
        attempt: Optional[int] = 1
        if len(parts) == 3:
            if parts[2] == "*":
                attempt = None
            else:
                try:
                    attempt = int(parts[2])
                except ValueError:
                    attempt = 0
                if attempt < 1:
                    raise FaultSpecError(
                        f"bad fault {chunk!r}: attempt must be >= 1 or '*'")
        faults.append(Fault(kind=kind, exp_id=exp_id, attempt=attempt))
    return FaultPlan(faults=tuple(faults))


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """The plan configured via ``REPRO_FAULTS``, or ``None`` if unset."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return parse_spec(raw)
