"""The trace bus, derived metrics, and exporters."""

import csv
import json

import pytest

from repro.engine.stats import StatsRegistry
from repro.engine.trace import (
    TraceBus,
    TraceMetrics,
    to_chrome_trace,
    trace_digest,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)


def make_events():
    """A small hand-built stream exercising every category shape."""
    return [
        (0, "phase", "hw.mark", "B"),
        (1, "queue", "markq", 3),
        (2, "req", "marker", "read", 0x1000, 8, 2, 12),
        (3, "mark", "marked", 0x2000),
        (4, "tlb", "marker", "hit"),
        (5, "req", "tracer", "read", 0x2000, 64, 5, 40),
        (6, "spill", "write", 8, 64),
        (7, "queue", "markq", 1),
        (50, "phase", "hw.mark", "E"),
        (50, "phase", "hw.sweep", "B"),
        (60, "req", "sweeper", "write", 0x3000, 8, 55, 60),
        (70, "sweep", 0, 4, 2),
        (80, "phase", "hw.sweep", "E"),
    ]


class TestBus:
    def test_emit_and_filter(self):
        bus = TraceBus()
        bus.emit(5, "queue", "markq", 2)
        bus.emit(6, "mark", "marked", 0x100)
        assert len(bus) == 2
        assert bus.by_category("queue") == [(5, "queue", "markq", 2)]
        assert list(bus) == bus.events
        bus.clear()
        assert len(bus) == 0

    def test_registry_attachment_defaults_to_none(self):
        # The zero-cost disabled path: the class attribute resolves for
        # fresh registries and for registries unpickled from old caches.
        assert StatsRegistry().trace is None
        reg = StatsRegistry()
        reg.trace = TraceBus()
        assert StatsRegistry().trace is None  # instance attr, not class-wide


class TestDigest:
    def test_equal_streams_equal_digest(self):
        assert trace_digest(make_events()) == trace_digest(make_events())

    def test_order_sensitivity(self):
        events = make_events()
        assert trace_digest(events) != trace_digest(list(reversed(events)))

    def test_boundary_shifts_change_digest(self):
        # Concatenation must not alias across event boundaries.
        assert trace_digest([(1, "a"), (2, "b")]) != trace_digest([(1, "a", 2, "b")])


class TestMetrics:
    def test_phase_windows_and_cycles(self):
        m = TraceMetrics(make_events())
        assert m.phase_windows() == {
            "hw.mark": [(0, 50)], "hw.sweep": [(50, 80)],
        }
        assert m.phase_cycles() == {"hw.mark": 50, "hw.sweep": 30}

    def test_unclosed_phase_ignored(self):
        m = TraceMetrics([(0, "phase", "hw.mark", "B")])
        assert m.phase_windows() == {}

    def test_requests_by_source(self):
        m = TraceMetrics(make_events())
        assert m.requests_by_source() == {
            "marker": 1, "tracer": 1, "sweeper": 1,
        }

    def test_latency_histogram(self):
        m = TraceMetrics(make_events())
        all_lat = m.request_latency_histogram()
        assert sorted(all_lat.counts()) == [5, 10, 35]
        marker = m.request_latency_histogram(source="marker")
        assert marker.counts() == {10: 1}

    def test_phase_breakdown_attributes_by_issue_cycle(self):
        m = TraceMetrics(make_events())
        breakdown = m.phase_breakdown()
        assert breakdown["hw.mark"] == {"marker": 1, "tracer": 1}
        assert breakdown["hw.sweep"] == {"sweeper": 1}

    def test_queue_timeline_and_peak(self):
        m = TraceMetrics(make_events())
        assert m.queue_timeline("markq").points() == [(1, 3), (7, 1)]
        assert m.queue_peak("markq") == 3
        assert m.queue_peak("nosuch") == 0

    def test_bandwidth_timeline_bins_by_completion(self):
        m = TraceMetrics(make_events())
        bins = dict(m.bandwidth_timeline(100))
        # All three requests complete within the first 100-cycle bin.
        assert bins[12] == pytest.approx((8 + 64 + 8) / 100)

    def test_bandwidth_empty_and_bad_bin(self):
        assert TraceMetrics([]).bandwidth_timeline(10) == []
        with pytest.raises(ValueError):
            TraceMetrics(make_events()).bandwidth_timeline(0)

    def test_utilization_histogram(self):
        m = TraceMetrics(make_events())
        hist = m.utilization_histogram(100, peak_bytes_per_cycle=16.0)
        assert hist.n == 1
        (value, _count), = hist.counts().items()
        assert value == round(100 * 0.8 / 16)

    def test_summary_mentions_phases_and_sources(self):
        text = TraceMetrics(make_events()).summary()
        assert "hw.mark" in text and "sweeper" in text


class TestExporters:
    def test_chrome_trace_structure(self):
        doc = to_chrome_trace(make_events(), meta={"target": "unit-test"})
        assert doc["otherData"] == {"target": "unit-test"}
        events = doc["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        # Requests -> X slices with duration in microseconds.
        xs = by_ph["X"]
        assert len(xs) == 3
        marker_slice = next(e for e in xs if e["args"]["addr"] == "0x1000")
        assert marker_slice["ts"] == pytest.approx(0.002)
        assert marker_slice["dur"] == pytest.approx(0.010)
        # Occupancy -> counters; phases -> B/E pairs; the rest -> instants.
        assert len(by_ph["C"]) == 2
        assert len(by_ph["B"]) == len(by_ph["E"]) == 2
        assert {e["cat"] for e in by_ph["i"]} == {"mark", "tlb", "spill", "sweep"}
        # Thread-name metadata exists for every tid used.
        named = {e["tid"] for e in by_ph["M"]}
        used = {e["tid"] for e in events if e["ph"] in ("X", "B", "E", "i")}
        assert used <= named

    def test_chrome_trace_roundtrips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(make_events(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        assert len(doc["traceEvents"]) > len(make_events())  # + metadata

    def test_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(make_events(), str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(make_events())
        assert json.loads(lines[0]) == [0, "phase", "hw.mark", "B"]

    def test_csv_pads_variable_arity(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(make_events(), str(path))
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        header = rows[0]
        assert header[:2] == ["cycle", "category"]
        assert all(len(row) == len(header) for row in rows)

    def test_csv_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], str(path))
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["cycle", "category"]]
