"""Heap-build cache: hits must be byte-identical, keys must not alias.

Covers the satellite requirements: a cache hit returns a byte-identical
``HeapCheckpoint`` (and a fully usable fresh heap), and any change to
profile / scale / seed / memory-config invalidates the key — no stale-heap
reuse, in memory or on disk.
"""

import dataclasses

import numpy as np
import pytest

from repro.harness import heapcache
from repro.harness.heapcache import HeapBuildCache, fingerprint
from repro.memory.config import MemorySystemConfig
from repro.workloads.profiles import DACAPO_PROFILES

SCALE = 0.008
PROFILE = DACAPO_PROFILES["avrora"]


@pytest.fixture(autouse=True)
def _no_disk_env(monkeypatch):
    monkeypatch.delenv("REPRO_HEAP_CACHE", raising=False)
    heapcache.reset_cache()
    yield
    heapcache.reset_cache()


def _checkpoints_byte_identical(a, b) -> bool:
    assert np.array_equal(a.words, b.words)
    assert a.words.dtype == b.words.dtype
    for fld in dataclasses.fields(a):
        if fld.name == "words":
            continue
        assert getattr(a, fld.name) == getattr(b, fld.name), fld.name
    return True


class TestFingerprint:
    def test_stable(self):
        assert fingerprint(PROFILE, 0.01, 1, None) == \
            fingerprint(PROFILE, 0.01, 1, None)

    @pytest.mark.parametrize("mutation", [
        dict(scale=0.011),
        dict(seed=2),
        dict(profile=DACAPO_PROFILES["pmd"]),
        dict(config=MemorySystemConfig()),
        dict(config=MemorySystemConfig(total_bytes=128 * 1024 * 1024)),
    ])
    def test_any_dimension_invalidates(self, mutation):
        base = dict(profile=PROFILE, scale=0.01, seed=1, config=None)
        changed = {**base, **mutation}
        assert fingerprint(**base) != fingerprint(**changed)

    def test_distinct_configs_distinct_keys(self):
        a = MemorySystemConfig()
        b = MemorySystemConfig(use_superpages=not a.use_superpages)
        assert fingerprint(PROFILE, 0.01, 1, a) != fingerprint(PROFILE, 0.01, 1, b)


class TestInProcessCache:
    def test_hit_returns_byte_identical_checkpoint(self):
        cache = HeapBuildCache()
        _built1, cp1 = cache.get_or_build(PROFILE, SCALE, 1)
        _built2, cp2 = cache.get_or_build(PROFILE, SCALE, 1)
        assert cache.hits == 1 and cache.misses == 1
        assert cp1 is not cp2
        assert _checkpoints_byte_identical(cp1, cp2)

    def test_hit_reconstructs_equivalent_built_heap(self):
        cache = HeapBuildCache()
        built1, _ = cache.get_or_build(PROFILE, SCALE, 1)
        built2, _ = cache.get_or_build(PROFILE, SCALE, 1)
        assert built1.heap is not built2.heap
        assert built1.heap.sim is not built2.heap.sim
        assert built1.live == built2.live
        assert built1.garbage == built2.garbage
        assert built1.hot == built2.hot
        assert built1.roots == built2.roots
        assert built1.rng.getstate() == built2.rng.getstate()
        assert np.array_equal(built1.heap.memsys.phys.snapshot(),
                              built2.heap.memsys.phys.snapshot())
        # Allocator lifetime counters drive mutator-time accounting
        # (Fig. 1a); a reconstructed heap must reproduce them exactly.
        assert built1.heap.allocator.bytes_allocated \
            == built2.heap.allocator.bytes_allocated
        assert built1.heap.allocator.objects_allocated \
            == built2.heap.allocator.objects_allocated

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        cache = HeapBuildCache()
        built1, cp1 = cache.get_or_build(PROFILE, SCALE, 1)
        # Scribble over the first result's heap and checkpoint.
        built1.heap.memsys.phys.words[:128] = 0xDEAD
        cp1.words[:128] = 0xBEEF
        built1.live.clear()
        _built2, cp2 = cache.get_or_build(PROFILE, SCALE, 1)
        assert not np.array_equal(cp2.words[:128], cp1.words[:128])
        assert _built2.live

    def test_different_keys_do_not_alias(self):
        cache = HeapBuildCache()
        _, cp_a = cache.get_or_build(PROFILE, SCALE, 1)
        _, cp_b = cache.get_or_build(PROFILE, SCALE, 2)
        assert cache.misses == 2 and cache.hits == 0
        assert not np.array_equal(cp_a.words, cp_b.words)

    def test_lru_eviction(self):
        cache = HeapBuildCache(entries=1)
        cache.get_or_build(PROFILE, SCALE, 1)
        cache.get_or_build(PROFILE, SCALE, 2)  # evicts seed 1
        cache.get_or_build(PROFILE, SCALE, 1)
        assert cache.misses == 3
        assert len(cache._mem) == 1


class TestDiskCache:
    def test_roundtrip_across_processes(self, tmp_path):
        first = HeapBuildCache(disk_dir=tmp_path)
        _, cp1 = first.get_or_build(PROFILE, SCALE, 1)
        assert list(tmp_path.glob("*.heap"))

        fresh = HeapBuildCache(disk_dir=tmp_path)  # simulates a new worker
        _, cp2 = fresh.get_or_build(PROFILE, SCALE, 1)
        assert fresh.disk_hits == 1 and fresh.hits == 1
        assert _checkpoints_byte_identical(cp1, cp2)

    def test_disk_key_isolation(self, tmp_path):
        cache = HeapBuildCache(disk_dir=tmp_path)
        cache.get_or_build(PROFILE, SCALE, 1)
        fresh = HeapBuildCache(disk_dir=tmp_path)
        fresh.get_or_build(PROFILE, SCALE, 2)  # different seed: must rebuild
        assert fresh.disk_hits == 0 and fresh.misses == 1

    def test_env_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_HEAP_CACHE", str(tmp_path))
        heapcache.reset_cache()
        assert heapcache.get_cache().disk_dir == tmp_path
        monkeypatch.setenv("REPRO_HEAP_CACHE", "0")
        heapcache.reset_cache()
        assert heapcache.get_cache().disk_dir is None

    def test_unwritable_disk_is_harmless(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")  # mkdir will fail under this path
        cache = HeapBuildCache(disk_dir=target / "sub")
        _built, cp = cache.get_or_build(PROFILE, SCALE, 1)
        assert cp.words.size  # build still succeeded


class TestCachedRunsAreIdentical:
    def test_collection_on_cached_heap_is_cycle_identical(self):
        """A GC run on a cache-hit heap matches a run on a fresh build."""
        from repro.harness.runners import run_software

        cache = HeapBuildCache()
        built_fresh, _ = cache.get_or_build(PROFILE, SCALE, 1)
        built_hit, _ = cache.get_or_build(PROFILE, SCALE, 1)
        fresh, _ = run_software(built_fresh.heap)
        hit, _ = run_software(built_hit.heap)
        assert (fresh.mark_cycles, fresh.sweep_cycles, fresh.objects_marked) \
            == (hit.mark_cycles, hit.sweep_cycles, hit.objects_marked)
        assert built_fresh.heap.sim.events_processed \
            == built_hit.heap.sim.events_processed
