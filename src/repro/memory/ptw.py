"""Hardware page-table walker (PTW).

The prototype's PTW is *blocking*: one walk at a time, serializing TLB
misses (§VI-A: "as the TLB and page table walker are blocking, TLB misses
can serialize execution"). The paper calls a non-blocking walker out as
future work ("introduce a non-blocking TLB that can perform multiple
page-table walks concurrently while still serving requests that hit in the
TLB") — ``max_concurrent > 1`` models that extension, used by the
corresponding ablation bench.

The walker is backed by a small cache (8 KB in the partitioned design)
that holds the top levels of the page table (§V-C). Each walk performs up
to three dependent PTE reads through that cache; the upper levels almost
always hit, and superpage mappings stop a level early.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.paging import PAGE_SIZE, PageTable
from repro.memory.request import AccessKind, MemRequest


class PageTableWalker:
    """Table walker with a configurable number of concurrent walks."""

    def __init__(
        self,
        sim: Simulator,
        page_table: PageTable,
        port,
        source: str = "ptw",
        stats: Optional[StatsRegistry] = None,
        max_concurrent: int = 1,
    ):
        """``port`` is the timing path for PTE reads — usually a small
        :class:`~repro.memory.cache.Cache`, or the memory model directly.
        ``max_concurrent=1`` is the paper's blocking walker."""
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.sim = sim
        self.page_table = page_table
        self.port = port
        self.source = source
        self.stats = stats if stats is not None else StatsRegistry()
        self.max_concurrent = max_concurrent
        self._active = 0
        self._pending: Deque[Tuple[int, Event]] = deque()
        self._c_walks = self.stats.counter("ptw.walks")
        self._c_pte_reads = self.stats.counter("ptw.pte_reads")

    def walk(self, vaddr: int) -> Event:
        """Translate ``vaddr``; the event triggers with the physical address.

        Walks queue behind ``max_concurrent`` in-flight walks.
        """
        event = self.sim.event(name="ptw.walk")
        self._pending.append((vaddr, event))
        self._c_walks.value += 1
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "ptw", "walk", vaddr))
        self._start_walks()
        return event

    def _start_walks(self) -> None:
        while self._pending and self._active < self.max_concurrent:
            vaddr, event = self._pending.popleft()
            self._active += 1
            # The zero-delay hop stands in for the Process-creation hop the
            # generator-based walker used to pay, keeping bucket positions
            # identical while skipping the generator and Process objects.
            self.sim.schedule(0, self._begin_walk, vaddr, event)

    def _begin_walk(self, vaddr: int, event: Event, _value=None) -> None:
        """Run one walk as a callback chain over its dependent PTE reads.

        Mirrors ``Process._step`` exactly: ready handles (``triggered``)
        are consumed synchronously in the loop; pending ones resume through
        ``add_callback``, whose delivery positions match a waiting process
        hop for hop. Saves a generator + :class:`Process` per walk.
        """
        pte_addrs = self.page_table.walk_addresses(vaddr)
        n = len(pte_addrs)
        state = [0]

        def advance(_v=None) -> None:
            while True:
                i = state[0]
                if i == n:
                    paddr = self.page_table.translate(vaddr)
                    self._active -= 1
                    event.trigger(paddr)
                    self._start_walks()
                    return
                state[0] = i + 1
                req = MemRequest(
                    addr=pte_addrs[i], size=8, kind=AccessKind.READ,
                    source=self.source,
                )
                self._c_pte_reads.value += 1
                handle = self.port.submit(req)
                if handle.triggered:
                    continue
                handle.add_callback(advance)
                return

        advance()

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def active_walks(self) -> int:
        return self._active
