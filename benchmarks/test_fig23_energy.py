"""Figure 23: DRAM power and GC energy."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig23_power_and_energy(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig23, scale=max(bench_scale, 0.04))
    mean_saving = result.rows[-1][-1]
    # Paper: ~14.5% lower energy despite much higher DRAM power. Our model
    # lands in the same regime (positive double-digit savings).
    assert mean_saving > 5.0, f"mean energy saving {mean_saving}%"
    for row in result.rows[:-1]:
        name, cpu_mw, unit_mw, _cpu_mj, _unit_mj, _saving = row
        assert unit_mw > 1.3 * cpu_mw, \
            f"{name}: the unit's DRAM power should be much higher"
