"""Reclamation unit: parallel block sweepers."""

import pytest

from repro.core import GCUnit, GCUnitConfig
from repro.harness.runners import run_sweep_only
from repro.swgc import SoftwareCollector

from tests.conftest import make_random_heap


def marked_heap(n_objects=300, seed=1):
    """A heap with the mark phase already done (unit mark)."""
    heap, views = make_random_heap(n_objects=n_objects, seed=seed)
    unit = GCUnit(heap)
    unit.mark()
    return heap, views, unit


class TestFunctional:
    @pytest.mark.parametrize("n_sweepers", [1, 2, 4, 8])
    def test_sweep_equivalent_to_software(self, n_sweepers):
        heap, _views = make_random_heap(n_objects=300, seed=2)
        cp = heap.checkpoint()
        SoftwareCollector(heap).collect()
        sw_free = heap.check_free_lists()
        heap.restore(cp)
        hw = GCUnit(heap, GCUnitConfig(n_sweepers=n_sweepers)).collect()
        assert heap.check_free_lists() == sw_free
        assert hw.cells_freed + hw.cells_live == 300

    def test_already_free_cells_relinked(self):
        """Cells freed by an earlier GC are threaded onto the new list."""
        heap, _views, _unit = marked_heap()
        _cycles, recl = run_sweep_only(heap)
        were_free = sum(s.cells_were_free for s in recl.sweepers)
        assert were_free > 0  # fresh blocks always have tail free cells
        heap.check_free_lists()

    def test_live_cells_not_written(self):
        """Live cells are skipped without any write (§V-D)."""
        heap, _views, _unit = marked_heap()
        live = heap.live_marksweep_objects()
        words_before = {
            addr: heap.mem.read_word(heap.to_physical(addr)) for addr in live
        }
        run_sweep_only(heap)
        for addr, word in words_before.items():
            assert heap.mem.read_word(heap.to_physical(addr)) == word

    def test_block_descriptor_heads_updated(self):
        heap, _views, _unit = marked_heap()
        run_sweep_only(heap)
        heads = [d.freelist_head for d in heap.block_list]
        assert any(h != 0 for h in heads)

    def test_all_blocks_swept(self):
        heap, _views, _unit = marked_heap()
        _cycles, recl = run_sweep_only(heap)
        assert recl.blocks_swept == len(heap.block_list)


class TestScaling:
    def test_more_sweepers_is_faster_then_saturates(self):
        """Fig. 20's shape: near-linear at first, diminishing returns."""
        heap, _views, _unit = marked_heap(n_objects=600, seed=3)
        marked = heap.checkpoint()
        cycles = {}
        for n in (1, 2, 8):
            heap.restore(marked)
            cycles[n], _recl = run_sweep_only(heap, GCUnitConfig(n_sweepers=n))
        assert cycles[2] < cycles[1]
        gain_1_to_2 = cycles[1] / cycles[2]
        gain_2_to_8 = cycles[2] / cycles[8]
        assert gain_1_to_2 > 1.4  # near-linear early
        # Beyond 2 sweepers, DRAM bank contention and the shared blocking
        # PTW flatten (on small heaps: invert) the curve — the Fig. 20 knee.
        assert gain_2_to_8 < gain_1_to_2

    def test_work_distributed_across_sweepers(self):
        heap, _views, _unit = marked_heap(n_objects=600, seed=4)
        _cycles, recl = run_sweep_only(heap, GCUnitConfig(n_sweepers=4))
        per_sweeper = [s.blocks_swept for s in recl.sweepers]
        assert all(b > 0 for b in per_sweeper)
