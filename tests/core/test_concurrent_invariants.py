"""Property-based invariants for the concurrent collector (§IV-D).

Each property runs a full concurrent cycle against a randomized workload
(profile, mutation count, relocation depth drawn by hypothesis) and checks
an invariant the design argues can never break:

* **Safety** — no reachable object is ever swept (the SATB barrier closes
  Fig. 3's hidden-object race).
* **Completeness** — every reference the mutator overwrote during marking
  is re-discovered: its (resolved) target ends the cycle marked live.
* **Forwarding hygiene** — resolve() is idempotent, and after the fixup
  pass no live field dangles into an evacuated cell.
* **Allocate-black** — objects born during the cycle survive it, marked,
  even when the mutator immediately drops them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concurrent.barriers import MutatorBarriers
from repro.core.concurrent.collect import ConcurrentCycle, relocate_prologue
from repro.core.concurrent.forwarding import ForwardingTable
from repro.engine.trace import TraceBus
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder
from repro.workloads.mutator import ConcurrentMutator
from repro.workloads.profiles import BENCHMARK_ORDER

profiles = st.sampled_from(BENCHMARK_ORDER)
n_ops = st.integers(min_value=20, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
reloc = st.integers(min_value=0, max_value=3)


def _run_cycle(profile, ops, seed, relocate_blocks, trace=False):
    built = HeapGraphBuilder(DACAPO_PROFILES[profile], scale=0.008,
                             seed=13).build()
    heap = built.heap
    if trace:
        heap.memsys.stats.trace = TraceBus()
    mutator = ConcurrentMutator(built, n_ops=ops, seed=seed)
    cycle = ConcurrentCycle(heap, mutator=mutator,
                            relocate_blocks=relocate_blocks)
    result = cycle.run()
    return built, heap, mutator, cycle, result


class TestNoReachableObjectSwept:
    @given(profile=profiles, ops=n_ops, seed=seeds, blocks=reloc)
    @settings(max_examples=12, deadline=None)
    def test_sweep_never_frees_a_live_object(self, profile, ops, seed,
                                             blocks):
        _built, heap, _mut, _cycle, result = _run_cycle(
            profile, ops, seed, blocks)
        # The oracle is the BFS over the post-handshake graph; the sweep
        # ran after it. If any live object were freed, it would vanish
        # from a fresh BFS or decode garbage along the way.
        assert heap.reachable() == result.oracle
        heap.check_free_lists()

    @given(ops=n_ops, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_live_graph_decodes_after_cycle(self, ops, seed):
        _built, heap, _mut, _cycle, _result = _run_cycle(
            "avrora", ops, seed, 2)
        parity = heap.mark_parity
        for addr in heap.reachable():
            view = heap.view(addr)
            assert view.mark_bit == parity  # marked by this cycle
            for ref in view.refs():
                if ref:
                    heap.view(ref)  # must decode, i.e. not swept/corrupt


class TestOverwrittenRefsRediscovered:
    @given(profile=profiles, ops=n_ops, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_every_barrier_published_ref_ends_marked(self, profile, ops,
                                                     seed):
        _built, heap, _mut, cycle, result = _run_cycle(
            profile, ops, seed, 2, trace=True)
        try:
            writes = [e for e in heap.memsys.stats.trace.by_category(
                "barrier") if e[2] == "write"]
            assert len(writes) == result.write_barrier_hits
            parity = heap.mark_parity
            resolve = cycle.forwarding.resolve if cycle.forwarding else \
                (lambda a: a)
            for event in writes:
                old_ref = resolve(event[3])
                # The overwritten target was published, consumed by the
                # reader, and marked — it cannot have been swept even if
                # the mutation made it otherwise unreachable (floating
                # garbage is the accepted cost, losing it is not).
                assert heap.view(old_ref).mark_bit == parity
        finally:
            heap.memsys.stats.trace = None


class TestForwardingHygiene:
    @given(ops=n_ops, seed=seeds, blocks=st.integers(min_value=1,
                                                     max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_resolve_idempotent_and_no_dangling_fields(self, ops, seed,
                                                       blocks):
        _built, heap, _mut, cycle, result = _run_cycle(
            "luindex", ops, seed, blocks)
        table = cycle.forwarding
        assert table is not None and result.objects_relocated > 0
        old = set(table.old_addresses())
        for addr in old:
            moved = table.resolve(addr)
            assert moved != addr
            assert table.resolve(moved) == moved  # idempotent
            # The relocated copy decodes at its new address.
            heap.view(moved)
        # After fixup_references, the live graph holds no old address.
        for addr in heap.reachable():
            assert addr not in old
            for ref in heap.view(addr).refs():
                assert ref not in old

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_prologue_resolves_roots_eagerly(self, seed):
        built = HeapGraphBuilder(DACAPO_PROFILES["sunflow"], scale=0.008,
                                 seed=13).build()
        heap = built.heap
        table, _relocator = relocate_prologue(heap, 2)
        old = set(table.old_addresses())
        assert old
        for root in heap.roots.read_all():
            assert root not in old

    def test_double_forwarding_rejected(self):
        table = ForwardingTable()
        table.add(0x1000, 0x2000)
        with pytest.raises(ValueError, match="twice"):
            table.add(0x1000, 0x3000)
        assert table.resolve(0x1000) == 0x2000


class TestAllocateBlack:
    @given(profile=profiles, ops=st.integers(min_value=40, max_value=240),
           seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_objects_born_during_cycle_are_marked(self, profile, ops, seed):
        _built, heap, mutator, cycle, _result = _run_cycle(
            profile, ops, seed, 2)
        parity = heap.mark_parity
        resolve = cycle.forwarding.resolve if cycle.forwarding else \
            (lambda a: a)
        assert mutator.allocs == len(mutator.allocated)
        for addr in mutator.allocated:
            # Born black: marked at the cycle's parity whether or not the
            # mutator kept it reachable — a new object can never be swept
            # by the cycle it was born into.
            assert heap.view(resolve(addr)).mark_bit == parity
