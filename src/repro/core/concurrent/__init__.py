"""Concurrent-GC support: barriers, forwarding, relocation (§IV-D, §IV-E).

The prototype evaluates the unit stop-the-world, but the design generalizes
to a pause-free collector built from three pieces, all modeled here:

* a **write barrier** that funnels overwritten references into the same
  hwgc-space region used for roots, where the traversal unit's reader picks
  them up mid-traversal — closing the hidden-object race of Fig. 3;
* a **read barrier** (Fig. 9) for a relocating collector: every reference
  load also loads from the address with its MSB flipped; unrelocated pages
  map to a zero page (delta 0), relocated pages map to the reclamation
  unit's address range, which serves per-object deltas from the forwarding
  table — closing the stale-reference race of Fig. 4 without traps;
* the optional **REFLOAD** CPU instruction (§IV-E) that fuses load and
  barrier so the pipeline can speculate over the check; modeled as a
  per-operation cost alongside the software and trap-based alternatives.
"""

from repro.core.concurrent.forwarding import ForwardingTable
from repro.core.concurrent.barriers import (
    ConcurrentMarkSimulation,
    MutatorBarriers,
)
from repro.core.concurrent.relocate import RelocatingSweep
from repro.core.concurrent.refload import (
    BarrierKind,
    BarrierCostModel,
    BARRIER_MODELS,
)
from repro.core.concurrent.collect import (
    ConcurrentCycle,
    ConcurrentGCResult,
    relocate_prologue,
)

__all__ = [
    "ForwardingTable",
    "MutatorBarriers",
    "ConcurrentMarkSimulation",
    "RelocatingSweep",
    "BarrierKind",
    "BarrierCostModel",
    "BARRIER_MODELS",
    "ConcurrentCycle",
    "ConcurrentGCResult",
    "relocate_prologue",
]
