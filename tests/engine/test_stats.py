"""Statistics collectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.stats import (
    BandwidthTracker,
    Counter,
    Histogram,
    IntervalTracker,
    StatsRegistry,
    TimeSeries,
    geomean,
    weighted_mean,
)


class TestRegistry:
    def test_inc_get_total(self):
        reg = StatsRegistry()
        reg.inc("mem.reads.cpu", 3)
        reg.inc("mem.reads.marker")
        reg.inc("mem.writes.cpu", 2)
        assert reg.get("mem.reads.cpu") == 3
        assert reg.total("mem.reads") == 4
        assert reg.with_prefix("mem.writes") == {"mem.writes.cpu": 2}

    def test_merge_and_reset(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 5)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 5
        a.reset()
        assert a.as_dict() == {}

    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert int(c) == 5


class TestHistogram:
    def test_mean_and_percentile(self):
        h = Histogram()
        for v in [1, 1, 2, 3, 10]:
            h.add(v)
        assert h.mean() == pytest.approx(3.4)
        assert h.percentile(50) == 2
        assert h.percentile(100) == 10

    def test_top(self):
        h = Histogram()
        h.add(5, count=10)
        h.add(7, count=3)
        assert h.top(1) == [(5, 10)]

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_empty_percentile_default(self):
        assert Histogram().percentile(50, default=0) == 0
        assert Histogram().percentile(99, default=-1) == -1

    def test_single_sample_every_percentile(self):
        h = Histogram()
        h.add(42)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 42

    def test_percentile_out_of_range(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(100.5)
        # The range check fires before the emptiness check/default.
        with pytest.raises(ValueError):
            Histogram().percentile(101, default=0)

    def test_add_rejects_non_finite(self):
        h = Histogram()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                h.add(bad)
        assert h.n == 0

    def test_add_finite_float_truncates(self):
        h = Histogram()
        h.add(3.7)
        assert h.counts() == {3: 1}

    def test_add_zero_and_negative_count(self):
        h = Histogram()
        h.add(5, count=0)
        assert h.n == 0 and h.counts() == {}
        with pytest.raises(ValueError):
            h.add(5, count=-1)

    def test_empty_mean(self):
        assert Histogram().mean() == 0.0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentile_bounds(self, values):
        h = Histogram()
        for v in values:
            h.add(v)
        assert min(values) <= h.percentile(50) <= max(values)
        assert h.percentile(100) == max(values)


class TestBandwidth:
    def test_binned(self):
        bw = BandwidthTracker()
        bw.record(0, 64)
        bw.record(50, 64)
        bw.record(150, 128)
        bins = bw.binned(100)
        assert bins[0] == (0, 1.28)
        assert bins[1] == (100, 1.28)

    def test_binned_window(self):
        bw = BandwidthTracker()
        for t in range(0, 1000, 100):
            bw.record(t, 100)
        window = bw.binned_window(200, 600, 200)
        assert len(window) == 2
        assert bw.window_bytes(200, 600) == 400

    def test_average_gbps(self):
        bw = BandwidthTracker()
        bw.record(0, 800)
        bw.record(100, 800)
        assert bw.average_gbps() == pytest.approx(16.0)

    def test_bad_bin_raises(self):
        bw = BandwidthTracker()
        bw.record(0, 1)
        with pytest.raises(ValueError):
            bw.binned(0)


class TestIntervals:
    def test_mean_interval(self):
        it = IntervalTracker()
        for t in (0, 10, 20, 40):
            it.record(t)
        assert it.mean_interval() == pytest.approx(40 / 3)
        assert it.span == 40

    def test_single_sample(self):
        it = IntervalTracker()
        it.record(5)
        assert it.mean_interval() == 0.0


class TestTimeSeries:
    def test_points(self):
        ts = TimeSeries()
        ts.sample(1, 2.0)
        ts.sample(5, 3.0)
        assert ts.points() == [(1, 2.0), (5, 3.0)]
        assert len(ts) == 2

    def test_sample_rejects_non_finite(self):
        ts = TimeSeries()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                ts.sample(0, bad)
        assert len(ts) == 0


class TestAggregates:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_weighted_mean(self):
        assert weighted_mean([(10, 1), (20, 3)]) == pytest.approx(17.5)
        assert weighted_mean([]) == 0.0

    def test_weighted_mean_skips_non_finite(self):
        nan, inf = float("nan"), float("inf")
        assert weighted_mean([(10, 1), (nan, 5)]) == pytest.approx(10.0)
        assert weighted_mean([(10, 1), (20, inf)]) == pytest.approx(10.0)
        assert weighted_mean([(nan, 1)]) == 0.0

    def test_geomean_rejects_non_finite(self):
        with pytest.raises(ValueError):
            geomean([2.0, float("nan")])
        with pytest.raises(ValueError):
            geomean([2.0, float("inf")])
