"""Fleet and tenant specifications: the deterministic roster.

A :class:`FleetSpec` is the *only* input to a fleet simulation; every
downstream quantity — tenant profiles, per-tenant RNG seeds, phase
offsets, the balancer's arrival stream — derives from it, which is what
makes per-tenant cells independently recomputable (sharding/simcache) and
byte-identical across worker layouts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.workloads.profiles import DACAPO_PROFILES

#: Default mixed-profile cycle: a latency-sensitive search workload next
#: to two compute-heavy ones, mirroring a mixed-tenancy rack.
DEFAULT_PROFILES_CYCLE: Tuple[str, ...] = ("lusearch", "avrora", "pmd")


@dataclass(frozen=True)
class TenantSpec:
    """One modeled app instance of the fleet."""

    index: int
    name: str
    benchmark: str
    seed: int        # per-tenant RNG seed (service-time draws)
    phase_frac: float  # in [0, 1): GC phase offset vs the shared base run


@dataclass(frozen=True)
class FleetSpec:
    """The whole fleet, derived deterministically from one seed.

    ``interval_cycles``/``service_mean_cycles`` of 0 mean "derive from the
    mean hardware pause of the roster's base runs", preserving Fig. 1b's
    ratio of pause duration to arrival interval at scaled-down heap sizes.
    ``dram_tax`` is the shared-DRAM-channel contention proxy: under the
    ``shared`` policy every admission is stretched by
    ``1 + dram_tax * (n_tenants - 1) / n_units``.
    ``shed_backlog_intervals`` of 0 disables load shedding.

    The ``failover_*`` fields tune the shared policy's retry discipline
    when a fleet fault plane is armed (see
    :class:`~repro.fleet.admission.FailoverConfig`); with no faults they
    are inert and the fault-free schedule stays byte-identical.
    """

    n_tenants: int = 4
    profiles_cycle: Tuple[str, ...] = DEFAULT_PROFILES_CYCLE
    scale: float = 0.015
    seed: int = 1
    n_gcs: int = 2
    n_queries: int = 3000
    warmup: int = 150
    interval_cycles: int = 0
    service_mean_cycles: int = 0
    n_units: int = 1
    dram_tax: float = 0.25
    shed_backlog_intervals: int = 0
    failover_backoff_cycles: int = 50_000
    failover_retries: int = 3
    failover_timeout_cycles: int = 1_000_000

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError("fleet needs at least one tenant")
        if self.n_units < 1:
            raise ValueError("fleet needs at least one GC unit")
        if self.failover_backoff_cycles < 1:
            raise ValueError("failover backoff must be at least one cycle")
        if self.failover_retries < 0:
            raise ValueError("failover retry budget cannot be negative")
        if self.failover_timeout_cycles < 0:
            raise ValueError("failover timeout cannot be negative "
                             "(0 disables the patience budget)")
        if not self.profiles_cycle:
            raise ValueError("profiles_cycle must name at least one profile")
        unknown = [p for p in self.profiles_cycle if p not in DACAPO_PROFILES]
        if unknown:
            raise ValueError(f"unknown profiles in cycle: {unknown}; "
                             f"valid: {', '.join(DACAPO_PROFILES)}")

    def tenants(self) -> Tuple[TenantSpec, ...]:
        """The deterministic roster: profiles cycle, seeds/phases hash."""
        roster = []
        for i in range(self.n_tenants):
            benchmark = self.profiles_cycle[i % len(self.profiles_cycle)]
            phase = random.Random(f"fleet:{self.seed}:tenant:{i}").random()
            roster.append(TenantSpec(
                index=i,
                name=f"t{i}",
                benchmark=benchmark,
                seed=self.seed * 100_003 + i * 7_919 + 17,
                phase_frac=phase,
            ))
        return tuple(roster)
