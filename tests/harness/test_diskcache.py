"""Shared disk-cache plumbing: size caps, atomic writes, LRU eviction.

Both on-disk caches (heap builds and simulation cells) route through
:mod:`repro.harness.diskcache`; these tests pin the discipline they rely
on — caps parse defensively, writes are all-or-nothing, eviction is LRU
by mtime and never touches in-flight ``.tmp`` files or foreign suffixes.
"""

import os

from repro.harness.diskcache import (
    atomic_write_bytes,
    evict_lru,
    max_mb_from_env,
    touch,
)


class TestMaxMbFromEnv:
    def test_parses_positive_caps(self, monkeypatch):
        monkeypatch.setenv("CAP", "12.5")
        assert max_mb_from_env("CAP") == 12.5

    def test_unset_empty_invalid_nonpositive_all_disable(self, monkeypatch):
        monkeypatch.delenv("CAP", raising=False)
        assert max_mb_from_env("CAP") is None
        for raw in ("", "banana", "0", "-5"):
            monkeypatch.setenv("CAP", raw)
            assert max_mb_from_env("CAP") is None


class TestAtomicWrite:
    def test_writes_and_reports_success(self, tmp_path):
        path = tmp_path / "sub" / "entry.bin"
        assert atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        # No .tmp litter left behind.
        assert list(path.parent.glob("*.tmp")) == []

    def test_io_trouble_returns_false(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        assert not atomic_write_bytes(blocker / "entry.bin", b"x")


class TestEviction:
    def _populate(self, directory, names, size=100):
        directory.mkdir(exist_ok=True)
        for i, name in enumerate(names):
            path = directory / name
            path.write_bytes(b"x" * size)
            # Deterministic LRU order: strictly increasing mtimes.
            os.utime(path, (1000 + i, 1000 + i))

    def test_oldest_evicted_first_until_under_cap(self, tmp_path):
        self._populate(tmp_path, ["a.cell", "b.cell", "c.cell"])
        # Cap fits two 100-byte entries.
        removed = evict_lru(tmp_path, 200 / (1024 * 1024), suffix=".cell")
        assert removed == 1
        assert not (tmp_path / "a.cell").exists()
        assert (tmp_path / "b.cell").exists()
        assert (tmp_path / "c.cell").exists()

    def test_touch_protects_a_recently_read_entry(self, tmp_path):
        self._populate(tmp_path, ["a.cell", "b.cell", "c.cell"])
        touch(tmp_path / "a.cell")  # a read refreshes mtime: now newest
        evict_lru(tmp_path, 200 / (1024 * 1024), suffix=".cell")
        assert (tmp_path / "a.cell").exists()
        assert not (tmp_path / "b.cell").exists()

    def test_tmp_files_and_foreign_suffixes_are_untouchable(self, tmp_path):
        self._populate(tmp_path, ["a.cell", "b.other", "c.tmp"])
        evict_lru(tmp_path, 0.0000001, suffix=".cell")
        assert not (tmp_path / "a.cell").exists()
        assert (tmp_path / "b.other").exists()
        assert (tmp_path / "c.tmp").exists()

    def test_no_cap_and_missing_directory_are_noops(self, tmp_path):
        self._populate(tmp_path, ["a.cell"])
        assert evict_lru(tmp_path, None) == 0
        assert evict_lru(tmp_path / "nope", 1.0) == 0
        assert (tmp_path / "a.cell").exists()
