"""Mark-bit cache: a small filter of recently marked objects (§V-C, Fig. 21).

"About 10% of mark operations access the same 56 objects in our benchmarks.
We therefore conclude that a small mark bit cache that stores a set of
recently accessed objects can be efficient at reducing traffic."

A fully associative LRU set of object references sitting in front of the
marker: references that hit are known to be already marked, so the marker
skips the memory fetch-or entirely.

The filter is purely combinational — it answers in the marker's own cycle
with no event-queue traffic at all, which makes ``contains`` one of the
hottest calls in a hardware mark phase (once per dequeued reference). The
enabled check is therefore a plain attribute, not a property descriptor.
"""

from __future__ import annotations

from collections import OrderedDict


class MarkBitCache:
    """LRU filter over recently marked object references."""

    def __init__(self, entries: int):
        if entries < 0:
            raise ValueError("entries must be non-negative")
        self.entries = entries
        self._enabled = entries > 0
        self._set: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.lookups = 0

    @property
    def enabled(self) -> bool:
        return self.entries > 0

    def contains(self, ref: int) -> bool:
        """Filter check; counts a hit and refreshes LRU position on match."""
        if not self._enabled:
            return False
        self.lookups += 1
        if ref in self._set:
            self._set.move_to_end(ref)
            self.hits += 1
            return True
        return False

    def insert(self, ref: int) -> None:
        """Record a freshly marked reference."""
        if not self._enabled:
            return
        if ref in self._set:
            self._set.move_to_end(ref)
            return
        if len(self._set) >= self.entries:
            self._set.popitem(last=False)
        self._set[ref] = None

    def clear(self) -> None:
        self._set.clear()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
