"""Configuration dataclasses for the memory system (paper Table I).

All latencies are in cycles of the 1 GHz SoC clock (1 cycle = 1 ns), so the
DDR3 latencies "14-14-14-47 ns" map directly to cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

WORD_BYTES = 8
CACHE_LINE_BYTES = 64


@dataclass
class DRAMConfig:
    """DDR3-2000 single-rank timing model parameters (Table I).

    ``scheduler`` selects the memory-access scheduler: ``"frfcfs"``
    (first-ready, first-come-first-served — prioritizes row-buffer hits) or
    ``"fifo"``. The paper found FR-FCFS with 16 outstanding reads was
    "significantly improved" over FIFO with 8 for the GC unit (§VI-A).
    """

    n_banks: int = 8
    row_bytes: int = 2048
    t_cas: int = 14  # CL: column access latency (row hit)
    t_rcd: int = 14  # RAS-to-CAS (activate)
    t_rp: int = 14  # precharge
    t_ras: int = 47  # row-active minimum (limits back-to-back row cycles)
    # DDR3-2000 peak bandwidth: 8 bytes x 2000 MT/s = 16 GB/s = 16 B/cycle.
    bus_bytes_per_cycle: int = 16
    scheduler: str = "frfcfs"
    read_window: int = 16  # scheduler visibility: reads in flight
    write_window: int = 8  # scheduler visibility: writes in flight

    def __post_init__(self) -> None:
        if self.scheduler not in ("frfcfs", "fifo"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.n_banks < 1 or self.row_bytes < 64:
            raise ValueError("invalid DRAM geometry")


@dataclass
class PipeConfig:
    """Idealized latency-bandwidth pipe (§VI-A 'Potential Performance').

    The paper uses latency 1 cycle and bandwidth 8 GB/s (= 8 bytes/cycle at
    1 GHz).
    """

    latency: int = 1
    bytes_per_cycle: int = 8


@dataclass
class CacheConfig:
    """Set-associative write-back cache parameters."""

    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = CACHE_LINE_BYTES
    hit_latency: int = 2
    mshrs: int = 8

    @property
    def n_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets < 1:
            raise ValueError(f"cache too small: {self.size_bytes}B / {self.ways}w")
        return sets


@dataclass
class TLBConfig:
    """TLB parameters; Table I: 32 entries each for I/D TLBs."""

    entries: int = 32
    hit_latency: int = 0  # folded into the access it translates


@dataclass
class AddressMap:
    """Carves the physical address space into the regions the system uses.

    Regions (all byte addresses, 8-byte aligned):

    * ``page_tables`` — backing store for the Sv39-style page tables.
    * ``spill`` — the GC unit's mark-queue spill region (a static range the
      Linux driver allocates at boot; paper default 4 MB, §V-E).
    * ``hwgc`` — the root/communication region visible to the GC unit.
    * ``block_list`` — the reclamation unit's global block descriptor list.
    * ``heap`` — everything else: the managed heap's spaces.
    """

    total_bytes: int
    page_table_bytes: int = 2 * 1024 * 1024
    spill_bytes: int = 4 * 1024 * 1024
    hwgc_bytes: int = 1 * 1024 * 1024
    block_list_bytes: int = 1 * 1024 * 1024

    def __post_init__(self) -> None:
        reserved = (
            self.page_table_bytes
            + self.spill_bytes
            + self.hwgc_bytes
            + self.block_list_bytes
        )
        if reserved + 4096 >= self.total_bytes:
            raise ValueError(
                f"address map reserves {reserved}B of {self.total_bytes}B; "
                "no room for the heap"
            )

    # The first word of physical memory is reserved so address 0 can serve
    # as the null pointer / free-list terminator.
    _BASE = 4096

    @property
    def page_tables(self) -> Tuple[int, int]:
        start = self._BASE
        return (start, start + self.page_table_bytes)

    @property
    def spill(self) -> Tuple[int, int]:
        start = self.page_tables[1]
        return (start, start + self.spill_bytes)

    @property
    def hwgc(self) -> Tuple[int, int]:
        start = self.spill[1]
        return (start, start + self.hwgc_bytes)

    @property
    def block_list(self) -> Tuple[int, int]:
        start = self.hwgc[1]
        return (start, start + self.block_list_bytes)

    @property
    def heap(self) -> Tuple[int, int]:
        start = self.block_list[1]
        return (start, self.total_bytes)


@dataclass
class MemorySystemConfig:
    """Top-level memory-system selection.

    ``model`` is ``"ddr3"`` (Table I) or ``"pipe"`` (Fig. 17). The cache
    configurations describe the *CPU-side* hierarchy; the GC unit brings its
    own small caches per the partitioning study (Fig. 18).
    """

    model: str = "ddr3"
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    pipe: PipeConfig = field(default_factory=PipeConfig)
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 * 1024))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, ways=8, hit_latency=12, mshrs=8
        )
    )
    dtlb: TLBConfig = field(default_factory=TLBConfig)
    total_bytes: int = 64 * 1024 * 1024
    #: Map memory with 2 MiB superpages where aligned (§VII: "large heaps
    #: could use superpages instead of 4KB pages").
    use_superpages: bool = False

    def __post_init__(self) -> None:
        if self.model not in ("ddr3", "pipe"):
            raise ValueError(f"unknown memory model {self.model!r}")

    def address_map(self) -> AddressMap:
        return AddressMap(total_bytes=self.total_bytes)


#: Table I, reproduced as data so tests can assert the configuration matches
#: the paper.
TABLE_I: Dict[str, str] = {
    "Physical Registers": "32 (int), 32 (fp)",
    "ITLB/DTLB Reach": "128 KiB (32 entries each)",
    "L1 Caches": "16 KiB ICache, 16 KiB DCache",
    "L2 Cache": "256 KiB (8-way set-associative)",
    "Memory Access Scheduler": "FR-FCFS MAS (16/8 req. in flight)",
    "Page Policy": "Open-Page",
    "DRAM Latencies (ns)": "14-14-14-47",
}
