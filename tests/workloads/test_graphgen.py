"""Graph generator: the live set is exactly the reachable set, by design."""

import pytest

from repro.workloads.graphgen import HeapGraphBuilder
from repro.workloads.profiles import DACAPO_PROFILES


SCALE = 0.006  # ~1-2k objects: fast but structurally representative


class TestReachabilityContract:
    @pytest.mark.parametrize("name", sorted(DACAPO_PROFILES))
    def test_every_profile_builds_consistently(self, name):
        built = HeapGraphBuilder(DACAPO_PROFILES[name], scale=SCALE,
                                 seed=3).build()
        # _verify already ran inside build(); double-check the partition.
        reachable = built.heap.reachable()
        assert reachable == built.live
        assert not (built.garbage & reachable)

    def test_live_fraction_approximates_profile(self):
        profile = DACAPO_PROFILES["avrora"]
        built = HeapGraphBuilder(profile, scale=0.01, seed=1).build()
        ms_total = len(built.live) + len(built.garbage)
        live_frac = (len(built.live) - len(built.roots)) / ms_total
        assert abs(live_frac - profile.live_fraction) < 0.1

    def test_hot_objects_are_live(self):
        built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=SCALE,
                                 seed=2).build()
        assert set(built.hot) <= built.live

    def test_hot_objects_receive_skewed_accesses(self):
        built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.02,
                                 seed=2).build()
        counts = built.incoming_access_counts()
        total = sum(counts.values())
        top = sorted(counts.values(), reverse=True)[:len(built.hot)]
        share = sum(top) / total
        assert share > 0.04  # a small set draws a disproportionate share

    def test_determinism(self):
        a = HeapGraphBuilder(DACAPO_PROFILES["pmd"], scale=SCALE, seed=9).build()
        b = HeapGraphBuilder(DACAPO_PROFILES["pmd"], scale=SCALE, seed=9).build()
        assert a.roots == b.roots
        assert a.live == b.live

    def test_different_seeds_differ(self):
        a = HeapGraphBuilder(DACAPO_PROFILES["pmd"], scale=SCALE, seed=1).build()
        b = HeapGraphBuilder(DACAPO_PROFILES["pmd"], scale=SCALE, seed=2).build()
        assert a.live != b.live

    def test_statics_are_roots(self):
        built = HeapGraphBuilder(DACAPO_PROFILES["avrora"], scale=SCALE,
                                 seed=4).build()
        immortal = built.heap.plan.immortal
        static_roots = [r for r in built.roots
                        if immortal.contains(built.heap.to_physical(r))]
        assert static_roots

    def test_los_objects_created(self):
        built = HeapGraphBuilder(DACAPO_PROFILES["sunflow"], scale=0.02,
                                 seed=5).build()
        assert built.heap.los_objects

    def test_scale_too_small_rejected(self):
        with pytest.raises(ValueError):
            HeapGraphBuilder(DACAPO_PROFILES["avrora"], scale=1e-5).build()


class TestProfiles:
    def test_all_profiles_well_formed(self):
        for name, profile in DACAPO_PROFILES.items():
            assert profile.name == name
            assert 0 < profile.live_fraction < 1
            assert 0 <= profile.null_ref_fraction < 1
            assert profile.hot_objects > 0
            assert profile.gc_time_fraction_paper <= 0.40

    def test_order_covers_all(self):
        from repro.workloads.profiles import BENCHMARK_ORDER
        assert set(BENCHMARK_ORDER) == set(DACAPO_PROFILES)
