"""Forwarding table for the relocating collector (§IV-D, Fig. 9).

"Many relocating GCs operate on large pages or regions, and invalidate all
objects within the same page at a time ... They then compact all objects
from these pages into new locations, keeping a forwarding table to map old
to new addresses."

The table maps old object addresses to new ones and knows which virtual
pages have been invalidated. For the read-barrier protocol it can also
render the *delta cache line* the reclamation unit would serve when a CPU
acquires a line of the barrier address range: per-object deltas
``new - old`` for the objects whose barrier shadow falls in that line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.memory.paging import PAGE_SIZE

#: The stolen virtual-address bit (§IV-D: "we steal one bit of each virtual
#: address (say, the MSB), mapping the heap to the bottom half").
BARRIER_BIT = 1 << 63


def barrier_shadow(vaddr: int) -> int:
    """The barrier-load address for a reference: flip the stolen bit."""
    return vaddr ^ BARRIER_BIT


class ForwardingTable:
    """old address -> new address, with page-granular invalidation."""

    def __init__(self) -> None:
        self._forward: Dict[int, int] = {}
        self._invalid_pages: Set[int] = set()

    def __len__(self) -> int:
        return len(self._forward)

    def add(self, old_addr: int, new_addr: int) -> None:
        if old_addr in self._forward:
            raise ValueError(f"object {old_addr:#x} forwarded twice")
        self._forward[old_addr] = new_addr
        self._invalid_pages.add(old_addr // PAGE_SIZE)

    def invalidate_page(self, vaddr: int) -> None:
        """Mark a page as relocated even if it held no live objects."""
        self._invalid_pages.add(vaddr // PAGE_SIZE)

    def is_relocated_page(self, vaddr: int) -> bool:
        return vaddr // PAGE_SIZE in self._invalid_pages

    def lookup(self, old_addr: int) -> Optional[int]:
        return self._forward.get(old_addr)

    def resolve(self, addr: int) -> int:
        """The address a correct mutator must use: forwarded if moved."""
        return self._forward.get(addr, addr)

    def delta(self, addr: int) -> int:
        """The value the barrier load returns for this reference: 0 when the
        object has not moved, ``new - old`` when it has (§IV-D: "y = x + Δy
        if object was relocated, x otherwise")."""
        new = self._forward.get(addr)
        if new is None:
            return 0
        return new - addr

    def delta_line(self, line_vaddr: int, line_bytes: int = 64) -> List[int]:
        """The delta cache line the reclamation unit serves: one delta per
        8-byte slot of the line (slots without a relocated object are 0)."""
        deltas = []
        for off in range(0, line_bytes, 8):
            deltas.append(self.delta(line_vaddr + off))
        return deltas

    def old_addresses(self) -> Iterable[int]:
        return self._forward.keys()
