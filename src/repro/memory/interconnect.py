"""System bundle: physical memory + timing model + page tables + ports.

:func:`build_memory_system` assembles everything Table I describes into a
:class:`MemorySystem`. Units talk to memory through :class:`TileLinkPort`
objects, which (a) validate transfer sizes/alignment the way the prototype's
TileLink interconnect does, and (b) attribute each request to its source for
the paper's traffic breakdowns.

Functional data access and timing are deliberately split: functional reads
and writes go straight to :attr:`MemorySystem.phys` at issue time, while the
port's events model *when* the transaction would have completed. The GC
algorithms are deterministic, so executing data effects at issue order
preserves the same results the RTL produces, while the timing models
reproduce the performance behaviour.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.faultplane import plane_from_env
from repro.engine.simulator import Simulator
from repro.engine.stats import BandwidthTracker, StatsRegistry
from repro.memory.cache import Cache
from repro.memory.config import MemorySystemConfig
from repro.memory.dram import DRAMController
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import PageTable, VIRT_OFFSET
from repro.memory.pipe import LatencyBandwidthPipe
from repro.memory.request import AccessKind, MemRequest, validate_tilelink


class TileLinkPort:
    """A client port on the system interconnect.

    ``validate=True`` enforces the prototype interconnect's transfer rules
    (naturally aligned powers of two, 8–64 bytes) — the marker and tracer
    connect "to the TileLink interconnect directly" (§V-C) and must obey
    them. CPU-side caches issue full-line transfers which trivially satisfy
    the rules, so their ports skip validation for speed.
    """

    def __init__(self, target, source: str, validate: bool = True):
        # ``target`` is anything with submit(MemRequest) -> Event/Completion.
        # The port forwards the model's completion handle unchanged, so a
        # fast-path Completion propagates to the requester by callback with
        # no join process and no extra allocation at this layer.
        self.target = target
        self.source = source
        self.validate = validate

    def read(self, addr: int, size: int = 8):
        return self._submit(addr, size, AccessKind.READ)

    def write(self, addr: int, size: int = 8):
        return self._submit(addr, size, AccessKind.WRITE)

    def amo(self, addr: int, size: int = 8):
        return self._submit(addr, size, AccessKind.AMO)

    def _submit(self, addr: int, size: int, kind: AccessKind):
        req = MemRequest(addr=addr, size=size, kind=kind, source=self.source)
        # Inline the common legal-transfer case; delegate to
        # validate_tilelink only to raise its detailed error.
        if self.validate and (size & (size - 1) or size < 8 or size > 64
                              or addr % size):
            validate_tilelink(req)
        return self.target.submit(req)

    def submit(self, req: MemRequest):
        """Forward a pre-built request (keeps the request's own source)."""
        size = req.size
        if self.validate and (size & (size - 1) or size < 8 or size > 64
                              or req.addr % size):
            validate_tilelink(req)
        return self.target.submit(req)


class MemorySystem:
    """The assembled memory system shared by CPU and GC unit."""

    def __init__(
        self,
        sim: Simulator,
        config: MemorySystemConfig,
        phys: PhysicalMemory,
        model: Union[DRAMController, LatencyBandwidthPipe],
        page_table: PageTable,
        stats: StatsRegistry,
        bandwidth: BandwidthTracker,
    ):
        self.sim = sim
        self.config = config
        self.phys = phys
        self.model = model
        self.page_table = page_table
        self.stats = stats
        self.bandwidth = bandwidth
        self.address_map = config.address_map()

    def port(self, source: str, validate: bool = True) -> TileLinkPort:
        """A direct port to the memory model (bypassing CPU caches)."""
        return TileLinkPort(self.model, source=source, validate=validate)

    def virt_to_phys(self, vaddr: int) -> int:
        """Functional translation through the page table."""
        return self.page_table.translate(vaddr)

    @staticmethod
    def to_virtual(paddr: int) -> int:
        """The linear mapping used when building the heap image."""
        return paddr + VIRT_OFFSET

    @staticmethod
    def to_physical_linear(vaddr: int) -> int:
        """Inverse of :meth:`to_virtual` (functional shortcuts in tests)."""
        return vaddr - VIRT_OFFSET


def build_memory_system(
    sim: Simulator,
    config: Optional[MemorySystemConfig] = None,
) -> MemorySystem:
    """Construct physical memory, the timing model, and mapped page tables."""
    config = config if config is not None else MemorySystemConfig()
    stats = StatsRegistry()
    bandwidth = BandwidthTracker("mem")
    phys = PhysicalMemory(config.total_bytes)
    if config.model == "ddr3":
        model: Union[DRAMController, LatencyBandwidthPipe] = DRAMController(
            sim, config.dram, stats=stats, bandwidth=bandwidth
        )
    else:
        model = LatencyBandwidthPipe(sim, config.pipe, stats=stats, bandwidth=bandwidth)
    page_table = PageTable(phys, config.address_map().page_tables)
    # Linear-map the whole physical space (the JVM "currently has to map the
    # entire DRAM address space", §VII), optionally with superpages.
    page_table.map_linear(VIRT_OFFSET, 0, config.total_bytes,
                          superpages=config.use_superpages)
    # Arm the hardware fault plane if REPRO_HWFAULTS requests one. With the
    # variable unset this is a no-op and ``stats.hwfaults`` stays the
    # class-level None — the zero-cost disabled path.
    plane = plane_from_env()
    if plane is not None:
        plane.install(stats, phys)
    return MemorySystem(sim, config, phys, model, page_table, stats, bandwidth)
