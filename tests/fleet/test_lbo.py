"""The LBO figure's claims: a lower bound, ordered concurrent < STW."""

import pytest

from repro.fleet.lbo import LBO_HEADERS, fleet_lbo_rows
from repro.harness.experiments import fleet_lbo

SCALE, SEED, N_GCS = 0.008, 1, 2


class TestLBO:
    @pytest.fixture(scope="class")
    def rows(self):
        return fleet_lbo_rows(scale=SCALE, seed=SEED, n_gcs=N_GCS,
                              fleet_sizes=(2, 4))

    def test_lower_bound_property(self, rows):
        """Every collector's LBO is >= 0 (a ratio against the empirical
        per-tenant minimum can never fall below 1), and the baseline
        collector of each fleet reports ~0."""
        for _size, _collector, cost_ms, gc_pct, lbo in rows:
            assert cost_ms > 0
            assert 0.0 <= gc_pct < 100.0
            assert lbo >= 0.0
        for size in (2, 4):
            group = [row for row in rows if row[0] == size]
            assert len(group) == 3
            assert min(row[4] for row in group) == pytest.approx(0.0)

    def test_concurrent_below_stw_at_both_fleet_sizes(self, rows):
        """The acceptance criterion: the concurrent collector's
        lower-bound overhead sits below both stop-the-world collectors
        (hardware and software) for every tested fleet size."""
        for size in (2, 4):
            lbo = {collector: row[4] for row in rows
                   for collector in [row[1]] if row[0] == size}
            assert lbo["concurrent"] < lbo["hw"] < lbo["sw"]

    def test_figure_schema_and_grouping(self, rows):
        result = fleet_lbo(scale=SCALE, seed=SEED, n_gcs=N_GCS,
                           fleet_sizes=(2, 4))
        assert list(result.headers) == list(LBO_HEADERS)
        assert [row[0] for row in result.rows] == [2, 2, 2, 4, 4, 4]
        assert result.rows == rows

    def test_single_collector_reports_zero_lbo(self):
        rows = fleet_lbo_rows(scale=SCALE, seed=SEED, n_gcs=1,
                              fleet_sizes=(2,), collectors=("hw",))
        assert [row[4] for row in rows] == [pytest.approx(0.0)]
