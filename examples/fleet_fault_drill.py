#!/usr/bin/env python3
"""Fleet fault drill: crash a GC unit mid-run, watch interrupted
collections fail over to the survivors, and verify the degraded fleet
still converges to the fault-free heap state.

The paper sizes one accelerator per node; at fleet tier the interesting
failure is a *unit* going away while tenants keep mutating. This drill
walks the resilience machinery end to end on a small shared-policy
fleet:

1. a fault-free run establishes the baseline schedule and the per-tenant
   heap digests every faulted run must converge to;
2. a unit crash is armed (`crash:u1@...`) so it lands inside an
   in-flight collection — the grant is voided, the entry re-queues with
   exponential backoff, and a surviving unit serves it;
3. a unit crash *plus* a tight patience budget forces the degraded
   path: the collection runs on the software collector and the excess
   is booked as fallback tax;
4. a tenant crash cancels its remaining collections and sheds its
   remaining queries — conservation (arrived == completed + in-flight +
   shed) holds throughout;
5. every scenario's served collections are checked against the
   heap-digest oracle: failover may move a collection between units, but
   it may never lose or duplicate one.

Run:  python examples/fleet_fault_drill.py
"""

from repro.fleet import (
    FailoverConfig,
    FleetFaultSpec,
    FleetSpec,
    schedule_fleet,
)
from repro.fleet.timeline import base_run, tenant_heap_digest, tenant_timeline

SPEC = FleetSpec(n_tenants=3, scale=0.008, n_queries=300, warmup=30,
                 n_gcs=2, n_units=2)


def timelines(spec):
    return [tenant_timeline(
        base_run(t.benchmark, "hw", spec.scale, spec.seed, spec.n_gcs),
        t.phase_frac) for t in spec.tenants()]


def drill(title, faults_spec, failover=None):
    print(f"--- {title} " + "-" * max(0, 56 - len(title)))
    faults = FleetFaultSpec.parse(faults_spec)
    if faults_spec:
        print(f"armed: {faults.spec()}")
    tls = timelines(SPEC)
    sched = schedule_fleet("shared", tls, n_units=SPEC.n_units,
                           dram_tax=SPEC.dram_tax,
                           faults=faults if faults else None,
                           failover=failover)
    for t, tenant in enumerate(SPEC.tenants()):
        served = sum(1 for g in sched.grants if g.tenant == t)
        line = (f"  t{t} ({tenant.benchmark:8s}) "
                f"served {served}/{len(tls[t].pauses)} collections, "
                f"availability {100 * sched.availability(t):5.1f}%")
        if sched.failovers[t]:
            line += (f", {sched.failovers[t]} failover(s) "
                     f"(+{sched.retry_wait_cycles[t] / 1e6:.3f} ms retry wait)")
        if sched.fallbacks[t]:
            line += (f", {sched.fallbacks[t]} software fallback(s) "
                     f"(+{sched.fallback_tax_cycles[t] / 1e6:.3f} ms tax)")
        if sched.cancelled[t]:
            line += f", {sched.cancelled[t]} cancelled"
        print(line)
        # The oracle: heap evolution depends only on *which* collections
        # ran, never on which unit (or the software net) served them.
        got = tenant_heap_digest(tenant.benchmark, "hw", SPEC.scale,
                                 SPEC.seed, served)
        want = tenant_heap_digest(tenant.benchmark, "hw", SPEC.scale,
                                  SPEC.seed, SPEC.n_gcs)
        if served == SPEC.n_gcs:
            assert got == want, "heap digest diverged from fault-free"
            print("     heap digest == fault-free oracle")
        else:
            assert got != want, "truncated run should not match the oracle"
            print(f"     heap digest == truncated oracle "
                  f"({served} of {SPEC.n_gcs} collections)")
    print()
    return sched


def main() -> None:
    roster = ", ".join(t.benchmark for t in SPEC.tenants())
    print(f"fleet: {SPEC.n_tenants} tenants ({roster}) on "
          f"{SPEC.n_units} shared GC units, scale {SPEC.scale}\n")

    drill("baseline: no faults", "")
    crashed = drill("unit u1 crashes mid-collection", "crash:u1@1400000")
    assert sum(crashed.failovers) > 0, "the crash should interrupt a grant"
    degraded = drill("same crash, patience budget of one retry",
                     "crash:u1@1400000",
                     failover=FailoverConfig(max_retries=0))
    assert sum(degraded.fallbacks) > 0, "no-retry budget should degrade"
    tenant_down = drill("tenant t1 crashes", "crash:t1@2000000")
    assert sum(tenant_down.cancelled) > 0

    print("All drills converged. A unit can die mid-collection; the "
          "survivors (or the\nsoftware net) finish the exact same "
          "collections, and the heap never notices.")


if __name__ == "__main__":
    main()
