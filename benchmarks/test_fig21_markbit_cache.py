"""Figure 21: hot-object skew and the mark-bit cache."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig21_markbit_cache(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig21, scale=bench_scale,
                            n_warm_gcs=2,
                            cache_sizes=(0, 16, 64, 105, 256))
    # (a) A handful of objects draw a disproportionate share of accesses
    # (paper: 56 objects ~ 10%).
    assert result.extras["top56_share_pct"] > 3.0
    # (b) Filtering grows with cache size; no cache filters nothing; the
    # mark time is barely affected (paper: "not ... a substantial impact").
    rows = result.rows
    assert rows[0][1] == 0
    filtered = [row[1] for row in rows]
    assert filtered[-1] > filtered[1] >= 0
    mark_times = [row[4] for row in rows]
    assert max(mark_times) < 1.25 * min(mark_times)
