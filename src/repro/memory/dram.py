"""DDR3 bank/row timing model with FIFO and FR-FCFS schedulers.

Models the paper's memory system (Table I): DDR3-2000, single rank, 8 banks,
open-page policy, latencies 14-14-14-47 ns at a 1 GHz SoC clock, and a
memory-access scheduler with a visibility window of 16 reads / 8 writes.

The model tracks per-bank open rows and busy times plus a shared data bus.
A request's service latency is:

* row hit: ``t_cas``
* row conflict (another row open): ``t_rp + t_rcd + t_cas``
* row closed (first touch): ``t_rcd + t_cas``

followed by a data-bus occupancy of ``ceil(size / 16B)`` cycles (DDR3-2000
peak bandwidth is 16 GB/s). ``t_ras`` limits back-to-back activates to the
same bank. FR-FCFS prefers row hits (oldest first), then the oldest request,
with reads prioritized over writes; FIFO is strict arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.engine.simulator import Event, Simulator
from repro.engine.stats import BandwidthTracker, IntervalTracker, StatsRegistry
from repro.memory.config import DRAMConfig
from repro.memory.request import AccessKind, MemRequest


class DRAMController:
    """Event-driven DDR3 controller; ``submit`` returns a completion event."""

    def __init__(
        self,
        sim: Simulator,
        config: DRAMConfig,
        stats: Optional[StatsRegistry] = None,
        bandwidth: Optional[BandwidthTracker] = None,
    ):
        self.sim = sim
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthTracker("dram")
        self.request_intervals = IntervalTracker("dram.requests")
        # Bank state lives in parallel columns indexed by bank number —
        # the scheduler's scan touches ``_bank_busy[idx]`` as one list
        # index instead of chasing a per-bank object's attribute.
        self._bank_busy: List[int] = [0] * config.n_banks
        self._bank_row: List[Optional[int]] = [None] * config.n_banks
        self._bank_activate: List[int] = [-(10**9)] * config.n_banks
        self._bus_free_at = 0
        # Queue entries are (request, completion event, bank index, row):
        # the bank/row decode is done once at submit so the scheduler's
        # scans never recompute it.
        self._reads: Deque[Tuple[MemRequest, Event, int, int]] = deque()
        self._writes: Deque[Tuple[MemRequest, Event, int, int]] = deque()
        self._next_pump_at: Optional[int] = None
        self._submit_counters: dict = {}
        self._ev_names: dict = {}
        self._c_activates = self.stats.counter("dram.activates")
        self._c_bytes_read = self.stats.counter("dram.bytes_read")
        self._c_bytes_written = self.stats.counter("dram.bytes_written")
        # Scheduler-hot config fields, captured once: the scan/pick/dispatch
        # loops run per pump wakeup and dominate DRAM model cost, so they
        # must not chase ``self.config.<field>`` attribute chains.
        self._read_window = config.read_window
        self._write_window = config.write_window
        self._fifo = config.scheduler == "fifo"
        self._t_cas = config.t_cas
        self._t_rcd_cas = config.t_rcd + config.t_cas
        self._t_rp_rcd_cas = config.t_rp + config.t_rcd + config.t_cas
        self._t_ras = config.t_ras
        self._bus_bpc = config.bus_bytes_per_cycle
        self._row_bytes = config.row_bytes
        self._n_banks = config.n_banks

    # -- public interface --------------------------------------------------

    def submit(self, req: MemRequest) -> Event:
        """Enqueue a request; the returned event triggers at completion."""
        req.issue_time = self.sim.now
        name = self._ev_names.get(req.source)
        if name is None:
            name = self._ev_names[req.source] = f"dram.{req.source}"
        event = Event(self.sim, name=name)
        row_index = req.addr // self._row_bytes
        queue = self._writes if req.kind is AccessKind.WRITE else self._reads
        queue.append((req, event, row_index % self._n_banks,
                      row_index // self._n_banks))
        now = self.sim.now
        self.request_intervals.record(now)
        self._record_submit(req)
        # Inlined _schedule_pump(0): submit is the hottest pump-arming site.
        next_at = self._next_pump_at
        if next_at is None or now < next_at:
            self._next_pump_at = now
            self.sim.schedule(0, self._pump, now)
        return event

    @property
    def pending(self) -> int:
        return len(self._reads) + len(self._writes)

    # -- scheduling ----------------------------------------------------------

    def _bank_and_row(self, addr: int) -> Tuple[int, int]:
        """Row-interleaved mapping: consecutive rows hit different banks."""
        row_index = addr // self.config.row_bytes
        return row_index % self.config.n_banks, row_index // self.config.n_banks

    def _scan(self, queue, limit: int, now: int):
        """Oldest ready entry, oldest ready row-hit, and next bank-free time.

        Queue position order *is* issue-time order (requests are appended at
        submit time), so the first ready entry found is the oldest — no sort
        needed. Returns ``(first_ready, first_hit, wake)`` where the first
        two are ``(pos, entry)`` or ``None`` and ``wake`` is the earliest
        ``busy_until > now`` among scanned busy banks (the next time this
        window could make progress). ``wake`` is only complete when the scan
        saw the whole window — i.e. whenever no row hit was found — which is
        exactly the case the pump uses it in.
        """
        busy = self._bank_busy
        rows = self._bank_row
        first_ready = None
        wake = None
        pos = 0
        for entry in queue:
            if pos >= limit:
                break
            bank_idx = entry[2]
            busy_until = busy[bank_idx]
            if busy_until <= now:
                if first_ready is None:
                    first_ready = (pos, entry)
                if rows[bank_idx] == entry[3]:
                    return first_ready, (pos, entry), wake
            elif wake is None or busy_until < wake:
                wake = busy_until
            pos += 1
        return first_ready, None, wake

    def _pick(self, now: int):
        """The next dispatch as ((is_write, pos, entry) or None, wake).

        FR-FCFS prefers row hits (oldest first), then the oldest ready
        request; FIFO is strict arrival order. Reads beat writes at equal
        age in both policies. ``wake`` is the earliest visible bank-free
        time, valid precisely when the choice is ``None`` (both windows
        fully scanned), which lets the pump fold the old post-dispatch
        wakeup re-scan into its final failing pick.
        """
        reads = self._reads
        writes = self._writes
        # Single-occupant fast path: with one queued request there is no
        # hit-vs-oldest arbitration — every policy picks it the moment its
        # bank frees. This is the common case for the blocking CPU phases.
        if not writes:
            if len(reads) == 1:
                entry = reads[0]
                busy_until = self._bank_busy[entry[2]]
                if busy_until <= now:
                    return (False, 0, entry), None
                return None, busy_until
        elif not reads and len(writes) == 1:
            entry = writes[0]
            busy_until = self._bank_busy[entry[2]]
            if busy_until <= now:
                return (True, 0, entry), None
            return None, busy_until
        read_ready, read_hit, wake = self._scan(
            self._reads, self._read_window, now)
        write_ready, write_hit, wwake = self._scan(
            self._writes, self._write_window, now)
        if wwake is not None and (wake is None or wwake < wake):
            wake = wwake
        if self._fifo or (read_hit is None and write_hit is None):
            read, write = read_ready, write_ready
        else:
            read, write = read_hit, write_hit
        if read is None:
            if write is None:
                return None, wake
            return (True,) + write, wake
        if write is None or read[1][0].issue_time <= write[1][0].issue_time:
            return (False,) + read, wake
        return (True,) + write, wake

    def _pump(self, target: Optional[int] = None) -> None:
        """Dispatch every ready request, then sleep until a bank frees.

        Batch semantics: one wakeup drains all picks that are ready this
        cycle (the while loop), so back-to-back hits to open rows issue
        without intermediate event-queue round trips.

        A wakeup whose ``target`` no longer matches ``_next_pump_at`` was
        superseded by an earlier one. Such a pump can never dispatch: the
        scheduler window only changes inside pumps, and every completed pump
        re-arms the earliest useful wakeup for the window it left behind —
        so the stale pump would scan the queues and find nothing. Returning
        immediately skips that pointless scan without changing any
        dispatch time.
        """
        if target is not None and target != self._next_pump_at:
            return
        self._next_pump_at = None
        plane = self.stats.hwfaults
        if plane is not None and plane.is_stuck("dram"):
            # Stuck controller: requests accumulate, nothing dispatches,
            # and no further wakeup is armed — the watchdog's outstanding
            # tracking (or the queue-drain deadlock) names us.
            return
        now = self.sim.now
        reads, writes = self._reads, self._writes
        while True:
            choice, wake = self._pick(now)
            if choice is None:
                break
            is_write, pos, entry = choice
            del (writes if is_write else reads)[pos]
            self._dispatch(entry, now)
        if reads or writes:
            if wake is None:
                # All visible banks are free but nothing was picked: cannot
                # happen unless the window is empty; guard anyway.
                wake = now + 1
            self._schedule_pump(wake - now)

    def _dispatch(self, entry: tuple, now: int) -> None:
        req, event, bank_idx, row = entry
        open_row = self._bank_row[bank_idx]
        if open_row == row:
            access_latency = self._t_cas
        else:
            if open_row is None:
                access_latency = self._t_rcd_cas
            else:
                access_latency = self._t_rp_rcd_cas
            # Respect the minimum row-cycle time before re-activating.
            earliest_activate = self._bank_activate[bank_idx] + self._t_ras
            if now < earliest_activate:
                access_latency += earliest_activate - now
                self._bank_activate[bank_idx] = earliest_activate
            else:
                self._bank_activate[bank_idx] = now
            self._bank_row[bank_idx] = row
            self._c_activates.value += 1
        transfer = max(1, -(-req.size // self._bus_bpc))
        data_start = max(now + access_latency, self._bus_free_at)
        done = data_start + transfer
        self._bus_free_at = done
        self._bank_busy[bank_idx] = done
        self._record_complete(req, done, transfer)
        stats = self.stats
        if stats.hwfaults is not None or stats.watchdog is not None:
            self._dispatch_supervised(req, event, now, done)
            return
        self.sim.schedule(done - now, event.trigger, done)

    def _dispatch_supervised(self, req: MemRequest, event: Event,
                             now: int, done: int) -> None:
        """Response delivery with fault injection and/or watchdog tracking.

        Off the hot path: :meth:`_dispatch` only lands here when a fault
        plane or watchdog is attached. Tracking is registered *before* the
        fault is applied so a dropped or wedged response stays visible as
        the oldest outstanding request in the stall diagnosis.
        """
        wd = self.stats.watchdog
        if wd is not None:
            wd.beat("dram", now)
            wd.note_submit(
                "dram", id(event), req.issue_time,
                f"{req.kind.value} {req.size}B @0x{req.addr:x} "
                f"from {req.source}")
        plane = self.stats.hwfaults
        fault = plane.fire("dram", now) if plane is not None else None
        if fault is not None:
            if fault.kind in ("drop", "stuck"):
                # The response never arrives (stuck also wedges the pump
                # via the is_stuck latch checked there).
                return
            if fault.kind == "delay":
                done += fault.delay_cycles
            elif fault.kind == "corrupt":
                # Flip a payload bit in the backing store: the functional
                # read/write split means whoever consumes this word next
                # observes the corruption.
                plane.corrupt_word(None, req.addr - req.addr % 8)
        if wd is not None:
            self.sim.schedule(done - now, self._complete_tracked, event, done)
        else:
            self.sim.schedule(done - now, event.trigger, done)

    def _complete_tracked(self, event: Event, done: int) -> None:
        wd = self.stats.watchdog
        if wd is not None:
            wd.note_complete("dram", id(event))
        event.trigger(done)

    def abort_pending(self) -> int:
        """Drop every queued request and cancel the pump (safety-net abort
        of an abandoned collection). Returns how many were discarded."""
        dropped = len(self._reads) + len(self._writes)
        self._reads.clear()
        self._writes.clear()
        self._next_pump_at = None
        return dropped

    def _schedule_pump(self, delay: int) -> None:
        """Schedule a pump, keeping only the earliest pending wakeup live.

        Stale (later) pumps still fire off the event queue but carry a
        ``target`` that no longer matches ``_next_pump_at``, so ``_pump``
        returns before scanning — a cheap no-op instead of a full window
        scan per superseded wakeup.
        """
        target = self.sim.now + delay
        if self._next_pump_at is None or target < self._next_pump_at:
            self._next_pump_at = target
            self.sim.schedule(delay, self._pump, target)

    # -- statistics ----------------------------------------------------------

    def _record_submit(self, req: MemRequest) -> None:
        counters = self._submit_counters.get((req.kind, req.source))
        if counters is None:
            kind = "write" if req.kind is AccessKind.WRITE else (
                "amo" if req.kind is AccessKind.AMO else "read"
            )
            counters = (
                self.stats.counter(f"mem.requests.{req.source}"),
                self.stats.counter(f"mem.{kind}s.{req.source}"),
            )
            self._submit_counters[(req.kind, req.source)] = counters
        counters[0].value += 1
        counters[1].value += 1

    def _record_complete(self, req: MemRequest, done: int, transfer: int) -> None:
        if req.kind is AccessKind.AMO:
            # A fetch-or both reads and writes its word.
            self._c_bytes_read.value += req.size
            self._c_bytes_written.value += req.size
        elif req.kind is AccessKind.WRITE:
            self._c_bytes_written.value += req.size
        else:
            self._c_bytes_read.value += req.size
        self.bandwidth.record(done, req.size, busy_cycles=transfer)
        trace = self.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "req", req.source, req.kind.value,
                                 req.addr, req.size, req.issue_time, done))
