"""Configuration and result types for the GC unit.

The defaults are the paper's baseline (§VI-A): "Our baseline GC unit design
contains 2 sweepers, a 1,024 entry mark-queue, 16 request slots for the
marker, 32-entry TLBs and a 128-entry shared L2 TLB."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.config import CacheConfig, TLBConfig


@dataclass
class GCUnitConfig:
    """Design-space parameters of the traversal and reclamation units."""

    # Traversal unit.
    mark_queue_entries: int = 1024
    tracer_queue_entries: int = 128
    marker_slots: int = 16
    tlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    l2_tlb_entries: int = 128
    #: Entries in the recently-marked filter; 0 disables it (Fig. 21).
    mark_bit_cache_entries: int = 0
    #: Compress 64-bit references to 32 bits in the queue and spill region
    #: (§V-C "Address Compression"; halves spill traffic, Fig. 19).
    address_compression: bool = False
    #: outQ/inQ staging sizes (entries) for mark-queue spilling (Fig. 12).
    spill_out_entries: int = 48
    spill_in_entries: int = 48
    #: outQ fill level at which the tracer is throttled (§V-C). Must leave
    #: room for at least one full spill batch (16 compressed entries).
    spill_throttle_level: int = 24

    # Reclamation unit.
    n_sweepers: int = 2
    sweeper_slots: int = 4

    #: Bandwidth throttling (§VII): minimum cycles between unit memory
    #: requests (None = unthrottled). Lets a concurrent collector "only use
    #: residual bandwidth" instead of interfering with the application.
    bandwidth_throttle: Optional[int] = None

    #: Concurrent page-table walks (§VI-A future work). 1 = the paper's
    #: blocking walker.
    ptw_concurrent_walks: int = 1

    # Cache organization (the partitioning study, Fig. 18).
    #: "partitioned": marker/tracer talk to the interconnect directly, the
    #: PTW gets a private 8 KB cache, the queue spill path a 2-line buffer.
    #: "shared": everything shares one small L1 through a crossbar — the
    #: design the paper started with and rejected.
    cache_mode: str = "partitioned"
    ptw_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=8 * 1024, ways=4, hit_latency=1, mshrs=1
        )
    )
    shared_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, ways=4, hit_latency=2, mshrs=8
        )
    )

    def __post_init__(self) -> None:
        if self.cache_mode not in ("partitioned", "shared"):
            raise ValueError(f"unknown cache_mode {self.cache_mode!r}")
        if self.marker_slots < 1:
            raise ValueError("marker needs at least one request slot")
        if self.n_sweepers < 1:
            raise ValueError("need at least one block sweeper")
        if self.spill_throttle_level >= self.spill_out_entries:
            raise ValueError("throttle level must leave outQ headroom")

    @property
    def mark_queue_bytes(self) -> int:
        """On-chip mark-queue SRAM (entries x entry width), as in Fig. 19's
        x-axis. Compression halves the entry width."""
        entry_bytes = 4 if self.address_compression else 8
        total_entries = (
            self.mark_queue_entries + self.spill_in_entries + self.spill_out_entries
        )
        return total_entries * entry_bytes


@dataclass
class HardwareGCResult:
    """Timing and work counters for one hardware collection."""

    mark_cycles: int
    sweep_cycles: int
    objects_marked: int
    objects_requeued: int  # dequeued but already marked (duplicates)
    refs_traced: int
    cells_freed: int
    cells_live: int
    spill_writes: int
    spill_reads: int
    spilled_entries: int
    markbit_cache_hits: int
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.mark_cycles + self.sweep_cycles

    @property
    def mark_ms(self) -> float:
        return self.mark_cycles / 1e6

    @property
    def sweep_ms(self) -> float:
        return self.sweep_cycles / 1e6
