"""Marker and tracer behaviours: request legality, page splits, slots."""

import pytest

from repro.core import GCUnit, GCUnitConfig
from repro.core.unit import TraversalUnit
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.memory.paging import PAGE_SIZE
from repro.memory.request import MemRequest, validate_tilelink

from tests.conftest import SMALL_MEM, make_random_heap


class _RecordingPort:
    """Wraps a port, validating and recording every request."""

    def __init__(self, inner):
        self.inner = inner
        self.requests = []

    def read(self, addr, size=8):
        self.requests.append(("read", addr, size))
        return self.inner.read(addr, size)

    def write(self, addr, size=8):
        self.requests.append(("write", addr, size))
        return self.inner.write(addr, size)


class TestTracerRequests:
    def _run_traversal_recording(self, heap):
        unit = TraversalUnit(heap)
        recorder = _RecordingPort(unit.tracer.port)
        unit.tracer.port = recorder
        done = unit.run()
        heap.sim.run_until(done)
        return unit, recorder.requests

    def test_all_tracer_requests_are_legal_tilelink(self):
        heap, _views = make_random_heap(n_objects=200, seed=1, max_refs=12)
        _unit, requests = self._run_traversal_recording(heap)
        assert requests, "tracer issued requests"
        from repro.memory.request import AccessKind
        for kind, addr, size in requests:
            validate_tilelink(MemRequest(addr=addr, size=size,
                                         kind=AccessKind.READ))

    def test_large_array_split_into_maximal_transfers(self, small_heap):
        big = small_heap.new_object(64, 0, is_array=True)  # 512B of refs
        leaf = small_heap.new_object(0)
        for i in range(64):
            big.set_ref(i, leaf.addr)
        small_heap.set_roots([big.addr])
        unit, requests = self._run_traversal_recording(small_heap)
        tracer_reads = [(a, s) for k, a, s in requests if k == "read"]
        assert sum(s for _a, s in tracer_reads) == 64 * 8
        assert max(s for _a, s in tracer_reads) == 64
        assert unit.tracer.refs_copied == 64

    def test_page_boundary_split(self):
        """A reference section crossing a page is re-translated (§V-C)."""
        heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
        # A 600-element reference array spans >4 KiB of reference fields,
        # guaranteeing at least one page crossing.
        crossing = heap.new_object(600, 2, is_array=True)
        start = crossing.status_paddr - 8 * 600
        assert start // PAGE_SIZE != (crossing.status_paddr - 8) // PAGE_SIZE
        heap.set_roots([crossing.addr])
        unit, _requests = self._run_traversal_recording(heap)
        assert unit.tracer.page_boundary_splits >= 1

    def test_null_refs_skipped(self, small_heap):
        a = small_heap.new_object(6)
        b = small_heap.new_object(0)
        a.set_ref(2, b.addr)  # 5 nulls + 1 real
        small_heap.set_roots([a.addr])
        unit, _requests = self._run_traversal_recording(small_heap)
        assert unit.tracer.null_refs_skipped == 5
        assert unit.tracer.refs_copied == 1


class TestMarkerBehaviour:
    def test_writeback_elision(self):
        """Already-marked objects don't generate write-backs (§V-C)."""
        heap, _views = make_random_heap(n_objects=150, seed=3, wire_prob=0.9)
        unit = GCUnit(heap)
        result = unit.collect()
        marker = unit.traversal.marker
        writes = unit.mark_stats.get("mem.writes.marker", 0)
        # One write-back per newly marked object, none for duplicates.
        assert writes == result.objects_marked
        assert marker.writebacks_elided == result.objects_requeued

    def test_single_slot_marker_still_correct(self):
        heap, _views = make_random_heap(n_objects=150, seed=4)
        truth = len(heap.reachable())
        result = GCUnit(heap, GCUnitConfig(marker_slots=1)).collect()
        assert result.objects_marked == truth

    def test_more_slots_is_faster(self):
        heap, _views = make_random_heap(n_objects=400, seed=5)
        cp = heap.checkpoint()
        slow = GCUnit(heap, GCUnitConfig(marker_slots=1)).collect()
        heap.restore(cp)
        fast = GCUnit(heap, GCUnitConfig(marker_slots=16)).collect()
        assert fast.mark_cycles < slow.mark_cycles

    def test_mark_bit_cache_filters_duplicates(self, small_heap):
        hub = small_heap.new_object(0)
        spokes = [small_heap.new_object(1) for _ in range(20)]
        for spoke in spokes:
            spoke.set_ref(0, hub.addr)
        root = small_heap.new_object(21)
        root.set_ref(0, hub.addr)
        for i, spoke in enumerate(spokes):
            root.set_ref(i + 1, spoke.addr)
        small_heap.set_roots([root.addr])
        result = GCUnit(
            small_heap, GCUnitConfig(mark_bit_cache_entries=32)
        ).collect()
        assert result.objects_marked == 22
        assert result.markbit_cache_hits > 0
        # Filtered requests never reached memory.
        assert result.markbit_cache_hits == result.counters["marker_filtered"]


class TestDecoupling:
    def test_tracer_queue_backpressures_marker(self):
        """With a 1-entry tracer queue the pipeline still completes and is
        slower than the decoupled configuration (§IV-A idea III)."""
        heap, _views = make_random_heap(n_objects=400, seed=6, max_refs=8)
        cp = heap.checkpoint()
        coupled = GCUnit(heap, GCUnitConfig(tracer_queue_entries=1)).collect()
        heap.restore(cp)
        decoupled = GCUnit(heap, GCUnitConfig(tracer_queue_entries=128)).collect()
        assert coupled.objects_marked == decoupled.objects_marked
        # Decoupling never hurts (a 1% tolerance absorbs arbitration noise;
        # the large single-slot effect is covered by test_more_slots_is_faster).
        assert decoupled.mark_cycles <= coupled.mark_cycles * 1.01
