"""The reclamation unit: parallel block sweepers (Fig. 8, §IV-B, §V-D).

"Blocks are read from a global block list, distributed to block sweepers
that reclaim them in parallel, and then written back to the respective free
lists of empty and (partially) live blocks." ... "Each of these operations
can be performed with a small state machine."

A block sweeper is a **serial state machine** stepping through the block's
cells: read the word at the cell start — LSB 1 means a live-cell scan word,
from which it computes the status word's location and reads it to check the
tag/mark bits; LSB 0 means a free-list next pointer (or terminator). Dead
and already-free cells get a next pointer written back (posted), linking
them onto the block's free list; live cells are skipped without a write,
and the rebuilt list head is stored into the block descriptor.

Because one sweeper is latency-bound (dependent reads per cell), sweep
performance scales nearly linearly with sweeper count at first; beyond a
few sweepers the shared TLB/PTW and DRAM bank contention take over — the
knee in Fig. 20.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.queues import HWQueue
from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.heap.blocks import BlockDescriptor, BlockList
from repro.heap.header import decode_refcount, header_is_marked, scan_word_is_object
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import PAGE_SIZE
from repro.memory.tlb import TLB

_SENTINEL = object()

#: State-machine cycles per cell beyond the memory accesses (address
#: arithmetic, case dispatch).
CELL_OVERHEAD_CYCLES = 2


class BlockSweeper:
    """One sweeping lane of the reclamation unit."""

    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        port,
        tlb: TLB,
        block_queue: HWQueue,
        unit,  # ReclamationUnit; provides mark_parity / to_physical
        index: int,
    ):
        self.sim = sim
        self.mem = mem
        self.port = port
        self.tlb = tlb
        self.block_queue = block_queue
        self.unit = unit
        self.index = index
        self.blocks_swept = 0
        self.cells_freed = 0
        self.cells_live = 0
        self.cells_were_free = 0

    def process(self):
        """Main loop: sweep blocks until the dispatcher sends the sentinel."""
        while True:
            desc = yield self.block_queue.get()
            if desc is _SENTINEL:
                return
            yield from self._sweep_block(desc)
            self.blocks_swept += 1

    def _sweep_block(self, desc: BlockDescriptor):
        freed_before = self.cells_freed
        live_before = self.cells_live
        fault = None
        stats = self.unit.stats
        if stats.hwfaults is not None or stats.watchdog is not None:
            fault = self._supervised_block()
            if fault is not None:
                if fault.kind == "drop":
                    # The descriptor is lost: the block is never swept, so
                    # its dead cells stay off the free list — caught by the
                    # post-collection sweep verification.
                    return
                if fault.kind == "stuck":
                    # This lane wedges mid-sweep; the sentinel it owes the
                    # dispatcher never drains, so the sweep never completes.
                    yield Event(self.sim, name=f"sweeper{self.index}.stuck")
                elif fault.kind == "delay":
                    yield fault.delay_cycles
        base_paddr = self.unit.to_physical(desc.base_vaddr)
        span = desc.cell_bytes * desc.n_cells
        # One translation per page of the block (shared TLB; the blocking
        # PTW serializes misses across sweepers).
        for page_off in range(0, span, PAGE_SIZE):
            yield self.tlb.translate(desc.base_vaddr + page_off)

        parity = self.unit.mark_parity
        free_head = 0
        for i in range(desc.n_cells):
            cell_paddr = base_paddr + i * desc.cell_bytes
            yield CELL_OVERHEAD_CYCLES
            # Read the cell's first word and decide what the cell holds.
            yield self.port.read(cell_paddr, 8)
            first = self.mem.read_word(cell_paddr)
            if scan_word_is_object(first):
                n_refs, _ = decode_refcount(first)
                status_paddr = cell_paddr + WORD_BYTES * (1 + n_refs)
                yield self.port.read(status_paddr, 8)
                status = self.mem.read_word(status_paddr)
                if header_is_marked(status, parity):
                    self.cells_live += 1
                    continue
                self.cells_freed += 1
            else:
                self.cells_were_free += 1
            # Dead object or already-free cell: (re)link it (posted write).
            self.mem.write_word(cell_paddr, free_head)
            self.port.write(cell_paddr, 8)
            free_head = desc.base_vaddr + i * desc.cell_bytes
        if fault is not None and fault.kind == "corrupt":
            # Bit-flip the rebuilt head before it is stored: the descriptor
            # now points at a garbage cell, which the post-collection
            # free-list walk rejects.
            free_head ^= 1 << 33
        # Store the rebuilt free-list head into the descriptor (Fig. 8's
        # block-list writer).
        head_paddr = self.unit.block_list.descriptor_addr(desc.index) \
            + 3 * WORD_BYTES
        self.mem.write_word(head_paddr, free_head)
        yield self.port.write(head_paddr, 8)
        trace = self.unit.stats.trace
        if trace is not None:
            trace.events.append((self.sim.now, "sweep", desc.index,
                                 self.cells_freed - freed_before,
                                 self.cells_live - live_before))

    def _supervised_block(self):
        """Heartbeat + per-block fault lookup (only called when a plane or
        watchdog is attached)."""
        now = self.sim.now
        stats = self.unit.stats
        wd = stats.watchdog
        if wd is not None:
            wd.beat("sweeper", now)
        plane = stats.hwfaults
        if plane is None:
            return None
        return plane.fire("sweeper", now)


class ReclamationUnit:
    """Block-list reader + writer + N parallel block sweepers."""

    def __init__(
        self,
        sim: Simulator,
        mem: PhysicalMemory,
        block_list: BlockList,
        port_factory,  # callable(source) -> port
        tlb: TLB,
        mark_parity: int,
        virt_offset: int,
        n_sweepers: int = 2,
        sweeper_slots: int = 4,  # reserved: per-lane pipelining (future work)
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.mem = mem
        self.block_list = block_list
        self.mark_parity = mark_parity
        self._virt_offset = virt_offset
        self.stats = stats if stats is not None else StatsRegistry()
        self._queue = HWQueue(sim, max(2, 2 * n_sweepers), name="recl.blocks")
        self._list_port = port_factory("sweeper")
        self.sweepers = [
            BlockSweeper(
                sim, mem, port_factory("sweeper"), tlb, self._queue, self,
                index=i,
            )
            for i in range(n_sweepers)
        ]

    def to_physical(self, vaddr: int) -> int:
        return vaddr - self._virt_offset

    def _dispatch(self):
        """Block-list reader: stream descriptors to the sweepers."""
        n = self.block_list.count
        for index in range(n):
            # One transfer per descriptor (the stream is sequential, so the
            # DRAM row stays open across descriptors).
            yield self._list_port.read(
                self.block_list.descriptor_addr(index), 8
            )
            desc = self.block_list.read(index)
            yield self._queue.put(desc)
        for _ in self.sweepers:
            yield self._queue.put(_SENTINEL)

    def sweep(self) -> Event:
        """Run the full sweep; returns an event triggered at completion."""
        done = self.sim.event(name="recl.done")
        procs = [self.sim.process(s.process(), name=f"sweeper{s.index}")
                 for s in self.sweepers]
        procs.append(self.sim.process(self._dispatch(), name="recl.dispatch"))
        remaining = [len(procs)]

        def _one(_v):
            remaining[0] -= 1
            if remaining[0] == 0:
                done.trigger()

        for proc in procs:
            proc.add_callback(_one)
        return done

    @property
    def block_queue(self) -> HWQueue:
        """The descriptor queue between the block-list reader and lanes."""
        return self._queue

    @property
    def pending_blocks(self) -> int:
        """Descriptors dispatched but not yet claimed by a sweeper lane."""
        return self._queue.occupancy

    @property
    def cells_freed(self) -> int:
        return sum(s.cells_freed for s in self.sweepers)

    @property
    def cells_live(self) -> int:
        return sum(s.cells_live for s in self.sweepers)

    @property
    def blocks_swept(self) -> int:
        return sum(s.blocks_swept for s in self.sweepers)
