#!/usr/bin/env python3
"""System-integration walkthrough (Fig. 10, §V-E): the software stack.

Shows the full control path of the prototype — JikesRVM's MMTk plan calls
libhwgc, which talks to the Linux driver, which programs the unit's MMIO
registers — against the simulated device:

1. the "driver" reads the process state and programs the register file
   (page-table base, hwgc-space, spill region, block list);
2. the "runtime" performs root scanning into hwgc-space;
3. the runtime writes the GC command and polls the status register;
4. results (objects marked, cells freed) come back through MMIO, and the
   runtime hands the rebuilt free lists to the allocator.

Run:  python examples/driver_integration.py
"""

from repro.core.config import GCUnitConfig
from repro.core.driver import HWGCDriver
from repro.core.mmio import Reg
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder


def main() -> None:
    built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.01,
                             seed=13).build()
    heap = built.heap

    print("1. open(/dev/hwgc0): driver programs the MMIO register file")
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    for reg in (Reg.PAGE_TABLE_BASE, Reg.HWGC_BASE, Reg.SPILL_BASE,
                Reg.SPILL_SIZE, Reg.BLOCK_LIST_BASE):
        print(f"   {reg.name:16s} = {driver.mmio.read(reg):#012x}")

    print("\n2. runtime root scan -> hwgc-space "
          f"({heap.roots.count} roots already published by the workload)")

    print("\n3. libhwgc: write COMMAND=START_FULL_GC, poll STATUS...")
    result = driver.run_gc()
    print(f"   status cycled MARKING -> SWEEPING -> DONE -> READY")

    print("\n4. results via MMIO:")
    print(f"   OBJECTS_MARKED = {driver.mmio.read(Reg.OBJECTS_MARKED)}")
    print(f"   CELLS_FREED    = {driver.mmio.read(Reg.CELLS_FREED)}")
    print(f"   pause: mark {result.mark_ms:.3f} ms + "
          f"sweep {result.sweep_ms:.3f} ms")

    print("\n5. allocator picks up the rebuilt free lists:")
    heap.prune_dead(heap.reachable())
    heap.complete_gc_cycle()
    blocks_before = heap.allocator.blocks_in_use
    for _ in range(200):
        heap.new_object(2, 2)
    print(f"   200 allocations served, blocks {blocks_before} -> "
          f"{heap.allocator.blocks_in_use} (reused swept cells)")
    print("\nNo CPU or memory-system modifications involved: the unit is "
          "a memory-mapped\ndevice 'similar to a NIC' (§IV-C).")


if __name__ == "__main__":
    main()
