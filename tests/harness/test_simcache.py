"""Content-addressed simulation result cache (``REPRO_SIM_CACHE``).

The contract under test: a warm cache serves unchanged cells without
re-simulating and renders byte-identical tables; anything that could
change an output (kwargs, engine, code) changes the cell key; anything
broken on disk (corruption, IO trouble) degrades to re-simulation, never
to a wrong or failed run; an armed hardware-fault plane bypasses the
cache entirely.
"""

import pytest

from repro.harness import simcache
from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.harness.sharding import SHARDABLE, ShardSpec, _concat_merge
from repro.harness.simcache import (
    CELL_SUFFIX,
    cache_dir_from_env,
    cell_key,
    run_experiment,
)

AXIS = ("alpha", "beta", "gamma")


def _figfake(benchmarks=AXIS, scale=1.0):
    """A registry-shaped stand-in: one row per benchmark, heavy extras."""
    _figfake.calls.append(tuple(benchmarks))
    return ExperimentResult(
        exp_id="figfake", title="fake", paper_claim="none",
        headers=["benchmark", "value"],
        rows=[[name, scale * (1 + AXIS.index(name))] for name in benchmarks],
        extras={"unpicklable": lambda: None},
    )


_figfake.calls = []


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Enabled cache in a temp dir, fake shardable experiment registered."""
    monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "cells"))
    monkeypatch.delenv("REPRO_SIM_CACHE_MAX_MB", raising=False)
    monkeypatch.delenv("REPRO_HWFAULTS", raising=False)
    monkeypatch.setitem(ALL_EXPERIMENTS, "figfake", _figfake)
    monkeypatch.setitem(SHARDABLE, "figfake",
                        ShardSpec(axis="benchmarks", merge=_concat_merge,
                                  default=AXIS))
    _figfake.calls = []
    return tmp_path / "cells"


def _cells(cache_dir):
    return sorted(cache_dir.glob(f"*{CELL_SUFFIX}"))


class TestLifecycle:
    def test_disabled_is_a_passthrough(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", "")
        result, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (0, 0)
        assert _figfake.calls == [AXIS]  # one whole-figure invocation
        assert "unpicklable" in result.extras  # extras intact
        assert not cache_env.exists()

    def test_cold_decomposes_into_per_value_cells(self, cache_env):
        result, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (0, 3)
        assert _figfake.calls == [("alpha",), ("beta",), ("gamma",)]
        assert len(_cells(cache_env)) == 3
        assert [row[0] for row in result.rows] == list(AXIS)

    def test_warm_serves_every_cell_byte_identically(self, cache_env):
        cold, _ = run_experiment("figfake", {})
        _figfake.calls = []
        warm, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (3, 0)
        assert _figfake.calls == []  # zero re-simulation
        assert warm.render() == cold.render()

    def test_kwargs_change_only_invalidates_its_cells(self, cache_env):
        run_experiment("figfake", {})
        _figfake.calls = []
        _, acct = run_experiment("figfake", {"benchmarks": ["beta"]})
        assert acct.as_tuple() == (1, 0)  # beta's cell is shared
        _, acct = run_experiment("figfake", {"scale": 2.0})
        assert acct.as_tuple() == (0, 3)  # scale keys every cell

    def test_whole_figure_cells_for_nonshardable(self, cache_env):
        direct = ALL_EXPERIMENTS["fig22"]()
        cold, acct = run_experiment("fig22", {})
        assert acct.as_tuple() == (0, 1)
        warm, acct = run_experiment("fig22", {})
        assert acct.as_tuple() == (1, 0)
        assert cold.render() == warm.render() == direct.render()


class TestKeying:
    def test_tuple_and_list_spellings_share_a_cell(self):
        assert (cell_key("figfake", {"benchmarks": ("alpha",)})
                == cell_key("figfake", {"benchmarks": ["alpha"]}))

    def test_engine_and_fastpath_key_distinct_cells(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        base = cell_key("figfake", {})
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert cell_key("figfake", {}) != base
        monkeypatch.delenv("REPRO_ENGINE")
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert cell_key("figfake", {}) != base

    def test_code_fingerprint_keys_the_cell(self, monkeypatch):
        monkeypatch.setattr(simcache, "_CODE_FINGERPRINT", "a" * 64)
        before = cell_key("figfake", {})
        monkeypatch.setattr(simcache, "_CODE_FINGERPRINT", "b" * 64)
        assert cell_key("figfake", {}) != before


class TestRobustness:
    def test_corrupt_cell_is_resimulated_and_overwritten(self, cache_env):
        cold, _ = run_experiment("figfake", {})
        victim = _cells(cache_env)[0]
        victim.write_text("{ not a checkpoint envelope")
        again, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (2, 1)
        assert again.render() == cold.render()
        # The overwrite healed the entry: next run is all hits.
        _, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (3, 0)

    def test_disk_trouble_degrades_to_resimulation(self, tmp_path,
                                                   monkeypatch, cache_env):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory should be")
        monkeypatch.setenv("REPRO_SIM_CACHE", str(blocker / "cells"))
        result, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (0, 3)
        assert [row[0] for row in result.rows] == list(AXIS)

    def test_hwfaults_plane_bypasses_the_cache(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_HWFAULTS", "marker:drop:1")
        assert cache_dir_from_env() is None
        _, acct = run_experiment("figfake", {})
        assert acct.as_tuple() == (0, 0)
        assert not cache_env.exists()  # nothing stored under an armed plane

    def test_max_mb_cap_evicts_after_writes(self, cache_env, monkeypatch):
        run_experiment("figfake", {})
        assert len(_cells(cache_env)) == 3
        monkeypatch.setenv("REPRO_SIM_CACHE_MAX_MB", "0.0000001")
        run_experiment("figfake", {"scale": 2.0})
        assert len(_cells(cache_env)) < 3
