#!/usr/bin/env python3
"""Multi-process GC service (§VII "Supporting multiple applications").

The paper notes the unit "could perform GC for multiple processes
simultaneously, by tagging references by process and supporting multiple
page tables". The prototype supports one process at a time, with cheap
context switches ("the minimum overhead would be equivalent to
transferring less than 64B into an MMIO region").

This example runs the context-switched version: two independent
"processes" (separate heaps, separate page tables) share one GC unit; the
driver reprograms the page-table base and region registers between
collections — exactly the per-process state the Linux driver extracts.

Run:  python examples/multi_process.py
"""

from repro.core.driver import HWGCDriver
from repro.core.mmio import Reg
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder


def main() -> None:
    processes = {}
    for pid, (name, scale, seed) in enumerate([
        ("avrora", 0.012, 1), ("xalan", 0.010, 2),
    ]):
        built = HeapGraphBuilder(DACAPO_PROFILES[name], scale=scale,
                                 seed=seed).build()
        processes[pid] = (name, built)
        print(f"process {pid} ({name}): {built.n_objects} objects, "
              f"page-table root {built.heap.memsys.page_table.root:#x}")

    print("\nThe unit context-switches between address spaces; each "
          "switch is a handful\nof MMIO writes (the driver re-reads the "
          "process's page-table base):\n")
    for round_no in range(2):
        for pid, (name, built) in processes.items():
            driver = HWGCDriver(built.heap)
            driver.init_device()  # the "context switch": reprogram MMIO
            result = driver.run_gc()
            built.heap.prune_dead(built.heap.reachable())
            built.heap.complete_gc_cycle()
            print(f"  round {round_no}, process {pid} ({name:7s}): "
                  f"ptbase={driver.mmio.read(Reg.PAGE_TABLE_BASE):#08x}  "
                  f"marked {result.objects_marked:5d}  "
                  f"freed {result.cells_freed:5d}  "
                  f"pause {result.total_cycles / 1e6:.3f} ms")
            # Mutate a little between rounds so the next GC has real work.
            from repro.workloads import MutatorModel
            MutatorModel(built, collector="hw").mutate_phase()

    print("\nEach process's collections are fully isolated: separate page "
          "tables, spill\nregions, block lists and root regions — the unit "
          "only ever sees the address\nspace the driver programmed.")


if __name__ == "__main__":
    main()
