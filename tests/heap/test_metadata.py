"""HeapMetadata (SoA sidecar) vs ObjectView ground truth.

The sidecar is a pure cache of immutable layout facts: every answer it
gives must equal what a meta-less :class:`ObjectView` computes by decoding
the status word from memory. These tests compare the two for generated and
hand-built heaps, exercise the mutable-mark-bit rule (liveness always reads
live memory), the untracked-address fallback in :meth:`HeapMetadata.
reachable`, and the invalidation points on :class:`ManagedHeap`.
"""

import pytest

from repro.heap.header import MARK_BIT
from repro.heap.heapimage import ManagedHeap
from repro.heap.metadata import HeapMetadata
from repro.heap.objectmodel import ObjectView
from repro.memory.config import WORD_BYTES
from repro.memory.paging import VIRT_OFFSET
from repro.workloads.graphgen import HeapGraphBuilder
from repro.workloads.profiles import DACAPO_PROFILES

from tests.conftest import make_random_heap


def raw_view(heap, addr):
    """An ObjectView with no sidecar attached: the decoding ground truth."""
    return ObjectView(heap.mem, addr, VIRT_OFFSET, meta=None)


@pytest.fixture(params=["random", "profile"])
def populated_heap(request):
    if request.param == "random":
        heap, _views = make_random_heap(n_objects=300, seed=7)
        return heap
    return HeapGraphBuilder(
        DACAPO_PROFILES["avrora"], scale=0.008, seed=11
    ).build().heap


class TestColumnsMatchViews:
    def test_every_object_indexed_once(self, populated_heap):
        heap = populated_heap
        meta = heap.metadata()
        assert set(meta.index) == set(heap.objects)
        assert len(meta) == len(set(heap.objects))
        slots = sorted(meta.index.values())
        assert slots == list(range(len(meta)))

    def test_layout_columns(self, populated_heap):
        heap = populated_heap
        meta = heap.metadata()
        for addr in heap.objects:
            view = raw_view(heap, addr)
            i = meta.index[addr]
            assert meta.n_refs[i] == view.n_refs
            assert meta.is_array[i] == view.is_array
            assert meta.status_index[i] * WORD_BYTES == view.status_paddr
            assert meta.header_word[i] == view.status_word
            assert meta.ref_base_index[i] == (
                view.status_paddr - WORD_BYTES * view.n_refs) // WORD_BYTES

    def test_ref_accessors(self, populated_heap):
        heap = populated_heap
        meta = heap.metadata()
        for addr in heap.objects:
            view = raw_view(heap, addr)
            assert meta.refs(addr) == view.refs()
            assert meta.ref_slot_paddrs(addr) == [
                view.ref_paddr(k) for k in range(view.n_refs)
            ]

    def test_attached_view_agrees_with_raw_view(self, populated_heap):
        heap = populated_heap
        heap.metadata()  # build + cache, so heap.view attaches it
        for addr in heap.objects:
            attached = heap.view(addr)
            assert attached._slot is not None
            raw = raw_view(heap, addr)
            assert attached.n_refs == raw.n_refs
            assert attached.is_array == raw.is_array
            assert attached.refs() == raw.refs()
            for k in range(raw.n_refs):
                assert attached.ref_paddr(k) == raw.ref_paddr(k)
                assert attached.get_ref(k) == raw.get_ref(k)


class TestMutableState:
    def test_mark_bit_reads_live_memory(self):
        heap, _views = make_random_heap(n_objects=40, seed=3)
        meta = heap.metadata()
        addr = heap.objects[0]
        view = raw_view(heap, addr)
        for parity in (0, 1):
            assert meta.is_marked(addr, parity) == view.is_marked(parity)
        # Flip the mark bit behind the sidecar's back: it must see the
        # change (mark state is mutable; only layout is cached).
        paddr = addr - VIRT_OFFSET
        heap.mem.write_word(paddr, heap.mem.read_word(paddr) ^ MARK_BIT)
        for parity in (0, 1):
            assert meta.is_marked(addr, parity) == view.is_marked(parity)

    def test_set_ref_through_sidecar_is_visible_raw(self):
        heap = ManagedHeap()
        a = heap.new_object(2)
        b = heap.new_object(0)
        heap.metadata()
        attached = heap.view(a.addr)
        attached.set_ref(1, b.addr)
        assert raw_view(heap, a.addr).get_ref(1) == b.addr
        assert attached.get_ref(0) == 0

    def test_ref_index_bounds_checked(self):
        heap = ManagedHeap()
        a = heap.new_object(1)
        heap.metadata()
        attached = heap.view(a.addr)
        with pytest.raises(IndexError):
            attached.get_ref(1)
        with pytest.raises(IndexError):
            attached.ref_paddr(-1)
        with pytest.raises(IndexError):
            attached.set_ref(5, 0)


class TestReachable:
    def test_matches_view_bfs(self, populated_heap):
        heap = populated_heap
        roots = heap.roots.read_all()
        expected = set()
        frontier = [r for r in roots if r]
        while frontier:
            addr = frontier.pop()
            if addr in expected:
                continue
            expected.add(addr)
            frontier.extend(raw_view(heap, addr).refs())
        assert heap.metadata().reachable(roots) == expected
        assert heap.reachable() == expected

    def test_untracked_address_falls_back_to_memory_decode(self):
        heap, _views = make_random_heap(n_objects=60, seed=5, root_count=6)
        full = heap.metadata().reachable(heap.roots.read_all())
        # Rebuild the sidecar with some tracked objects missing: the BFS
        # must decode those from memory and still find the same set.
        partial_meta = HeapMetadata(
            heap.mem, heap.objects[::2], VIRT_OFFSET
        )
        assert partial_meta.reachable(heap.roots.read_all()) == full

    def test_null_and_duplicate_roots(self):
        heap = ManagedHeap()
        a = heap.new_object(1)
        b = heap.new_object(0)
        a.set_ref(0, b.addr)
        heap.set_roots([0, a.addr, a.addr, 0, b.addr])
        assert heap.metadata().reachable([0, a.addr, a.addr, 0, b.addr]) \
            == {a.addr, b.addr}


class TestInvalidation:
    def test_allocation_drops_cached_sidecar(self):
        heap = ManagedHeap()
        heap.new_object(1)
        first = heap.metadata()
        fresh = heap.new_object(0)
        rebuilt = heap.metadata()
        assert rebuilt is not first
        assert fresh.addr in rebuilt.index
        assert fresh.addr not in first.index

    def test_restore_drops_cached_sidecar(self):
        heap, _views = make_random_heap(n_objects=30, seed=1)
        checkpoint = heap.checkpoint()
        first = heap.metadata()
        heap.restore(checkpoint)
        assert heap.metadata() is not first

    def test_sidecar_is_cached_while_population_stable(self):
        heap, _views = make_random_heap(n_objects=30, seed=2)
        assert heap.metadata() is heap.metadata()
