"""Query-latency simulation: pause freezing and coordinated omission."""

import pytest

from repro.workloads.latency import QuerySimulator, latency_cdf, tail_ratio
from repro.workloads.mutator import GCPauseRecord, MutatorRunResult


def synthetic_run(pause_at=1_000_000, pause_len=500_000,
                  total_mutator=10_000_000, n_pauses=1):
    """A hand-built timeline with known pauses."""
    run = MutatorRunResult(collector="sw")
    cursor = 0
    for i in range(n_pauses):
        cursor += pause_at
        run.pauses.append(GCPauseRecord(
            index=i, start_cycle=cursor, mark_cycles=pause_len,
            sweep_cycles=0, objects_marked=0, cells_freed=0,
        ))
        cursor += pause_len
    run.mutator_cycles = n_pauses * pause_at
    return run


class TestPauseFreezing:
    def test_query_before_pause_completes_normally(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=100_000,
                             service_mean_cycles=10_000, seed=1)
        records = sim.run_queries(n_queries=5, warmup=0)
        assert records[0].latency_cycles < 100_000
        assert not records[0].near_gc

    def test_query_overlapping_pause_absorbs_it(self):
        run = synthetic_run(pause_at=1_000_000, pause_len=500_000)
        sim = QuerySimulator(run, interval_cycles=990_000,
                             service_mean_cycles=50_000, seed=1)
        records = sim.run_queries(n_queries=3, warmup=0)
        straggler = records[1]  # arrives at 990k, runs into the 1M pause
        assert straggler.latency_cycles > 500_000
        assert straggler.near_gc

    def test_coordinated_omission_measured_from_intent(self):
        """Queries queued behind a pause-delayed predecessor still measure
        from their intended start."""
        run = synthetic_run(pause_at=500_000, pause_len=2_000_000)
        sim = QuerySimulator(run, interval_cycles=100_000,
                             service_mean_cycles=50_000, seed=2)
        records = sim.run_queries(n_queries=20, warmup=0)
        # Several queries arrive during the pause; their latencies decrease
        # roughly by the interval as their intended starts advance.
        in_pause = [r for r in records if r.near_gc]
        assert len(in_pause) >= 3
        assert in_pause[0].latency_cycles > in_pause[2].latency_cycles
        # The backlog queries measure from intent, not from issue.
        assert in_pause[1].latency_cycles > 1_000_000

    def test_pauses_tile_past_one_iteration(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=3_000_000,
                             service_mean_cycles=10_000, seed=3)
        records = sim.run_queries(n_queries=30, warmup=0)
        assert len(records) == 30  # timeline wrapped without error


class TestAggregation:
    def test_cdf_monotone(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=150_000,
                             service_mean_cycles=20_000, seed=4)
        cdf = latency_cdf(sim.run_queries(n_queries=200, warmup=10))
        xs = [x for x, _y in cdf]
        ys = [y for _x, y in cdf]
        assert xs == sorted(xs)
        assert ys[-1] == pytest.approx(1.0)

    def test_tail_ratio_reflects_pauses(self):
        # Same GC duty cycle cannot saturate the open-loop system; only the
        # pause length differs.
        short = synthetic_run(pause_at=10_000_000, pause_len=100_000)
        long = synthetic_run(pause_at=10_000_000, pause_len=1_200_000)
        ratios = {}
        for label, run in (("short", short), ("long", long)):
            sim = QuerySimulator(run, interval_cycles=150_000,
                                 service_mean_cycles=15_000, seed=5)
            ratios[label] = tail_ratio(sim.run_queries(1000, warmup=0))
        assert ratios["long"] > ratios["short"]

    def test_empty_records(self):
        assert latency_cdf([]) == []
        with pytest.raises(ValueError):
            tail_ratio([])
