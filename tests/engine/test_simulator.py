"""Kernel semantics: scheduling order, processes, events, termination."""

import pytest

from repro.engine.simulator import Delay, Event, Simulator, SimulationError


class TestScheduling:
    def test_schedule_runs_in_time_order(self, sim):
        order = []
        sim.schedule(10, lambda: order.append("b"))
        sim.schedule(5, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20

    def test_same_cycle_events_are_fifo(self, sim):
        order = []
        for i in range(5):
            sim.schedule(7, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_run_until_time(self, sim):
        hits = []
        sim.schedule(5, lambda: hits.append(5))
        sim.schedule(50, lambda: hits.append(50))
        sim.run(until=10)
        assert hits == [5]
        assert sim.now == 10
        sim.run()
        assert hits == [5, 50]

    def test_run_advances_clock_to_until_even_if_idle(self, sim):
        sim.run(until=123)
        assert sim.now == 123

    def test_at_absolute_time(self, sim):
        sim.schedule(10, lambda: None)
        hits = []
        sim.at(30, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [30]

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(1, loop)

        sim.schedule(0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestEvents:
    def test_trigger_resumes_waiters_with_value(self, sim):
        ev = sim.event()
        got = []
        ev.add_callback(got.append)
        sim.schedule(3, ev.trigger, 42)
        sim.run()
        assert got == [42]

    def test_double_trigger_is_error(self, sim):
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_callback_after_trigger_fires_immediately(self, sim):
        ev = sim.event()
        ev.trigger("v")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["v"]


class TestProcesses:
    def test_process_delays(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield 10
            trace.append(sim.now)
            yield Delay(5)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0, 10, 15]

    def test_process_waits_on_event(self, sim):
        ev = sim.event()
        out = []

        def proc():
            value = yield ev
            out.append((sim.now, value))

        sim.process(proc())
        sim.schedule(25, ev.trigger, "data")
        sim.run()
        assert out == [(25, "data")]

    def test_process_join(self, sim):
        def child():
            yield 10
            return "result"

        def parent():
            value = yield sim.process(child())
            return value

        p = sim.process(parent())
        sim.run()
        assert p.triggered and p.value == "result"

    def test_yield_from_subroutine(self, sim):
        def sub():
            yield 5
            return 7

        def proc():
            value = yield from sub()
            yield value
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 12

    def test_zero_delay_continues_same_cycle(self, sim):
        def proc():
            yield 0
            yield 0
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0

    def test_already_triggered_event_fast_path(self, sim):
        ev = sim.event()
        ev.trigger(99)

        def proc():
            value = yield ev
            return value

        p = sim.process(proc())
        sim.run()
        assert p.value == 99

    def test_bad_yield_type_raises(self, sim):
        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_event(self, sim):
        ev = sim.event()
        sim.schedule(40, ev.trigger, "x")
        sim.schedule(100, lambda: None)
        assert sim.run_until(ev) == "x"
        assert sim.now == 40

    def test_run_until_deadlock_detected(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until(ev)
