"""§VII/§VI-A extension features: throttling, non-blocking TLB, superpages —
correctness under every new configuration."""

import pytest

from repro.core import GCUnit, GCUnitConfig
from repro.memory.config import MemorySystemConfig
from repro.heap.heapimage import ManagedHeap

from tests.conftest import SMALL_MEM, make_random_heap


class TestBandwidthThrottle:
    def test_throttled_gc_is_correct_and_slower(self):
        heap, _views = make_random_heap(n_objects=300, seed=1)
        truth = len(heap.reachable())
        cp = heap.checkpoint()
        fast = GCUnit(heap, GCUnitConfig()).collect()
        heap.restore(cp)
        slow = GCUnit(heap, GCUnitConfig(bandwidth_throttle=24)).collect()
        assert slow.objects_marked == fast.objects_marked == truth
        assert slow.mark_cycles > 1.2 * fast.mark_cycles
        assert slow.sweep_cycles > fast.sweep_cycles

    def test_tighter_throttle_is_monotone(self):
        heap, _views = make_random_heap(n_objects=200, seed=2)
        cp = heap.checkpoint()
        cycles = []
        for interval in (None, 16, 48):
            heap.restore(cp)
            cfg = GCUnitConfig(bandwidth_throttle=interval)
            cycles.append(GCUnit(heap, cfg).collect().total_cycles)
        assert cycles[0] < cycles[1] < cycles[2]


class TestNonBlockingTLB:
    def test_correctness_preserved(self):
        heap, views = make_random_heap(n_objects=300, seed=3)
        truth = heap.reachable()
        result = GCUnit(
            heap, GCUnitConfig(ptw_concurrent_walks=4)
        ).collect()
        assert result.objects_marked == len(truth)
        parity = heap.mark_parity
        for view in views:
            assert view.is_marked(parity) == (view.addr in truth)

    def test_helps_under_tlb_pressure(self):
        from repro.memory.config import CacheConfig, TLBConfig
        # A heap spanning many more pages than the TLB reach, so nearly
        # every mark access misses (the paper's 200 MB regime).
        heap, _views = make_random_heap(n_objects=1500, seed=4,
                                        max_payload=10)
        cp = heap.checkpoint()

        def cfg(walks):
            return GCUnitConfig(
                tlb=TLBConfig(entries=2), l2_tlb_entries=4,
                ptw_cache=CacheConfig(size_bytes=512, ways=2, hit_latency=1,
                                      mshrs=max(1, walks)),
                ptw_concurrent_walks=walks,
            )

        blocking = GCUnit(heap, cfg(1)).collect()
        heap.restore(cp)
        concurrent = GCUnit(heap, cfg(4)).collect()
        assert concurrent.objects_marked == blocking.objects_marked
        assert concurrent.mark_cycles < blocking.mark_cycles


class TestSuperpageGC:
    def test_gc_on_superpage_mapped_heap(self):
        import random
        rng = random.Random(5)
        heap = ManagedHeap(config=MemorySystemConfig(
            total_bytes=SMALL_MEM, use_superpages=True))
        views = [heap.new_object(rng.randint(0, 4), rng.randint(0, 4))
                 for _ in range(300)]
        for view in views:
            for i in range(view.n_refs):
                if rng.random() < 0.8:
                    view.set_ref(i, rng.choice(views).addr)
        heap.set_roots([views[i].addr for i in range(20)])
        truth = len(heap.reachable())
        cp = heap.checkpoint()
        result = GCUnit(heap).collect()
        assert result.objects_marked == truth
        heap.check_free_lists()
        # And the software collector agrees on the same mapping.
        from repro.swgc import SoftwareCollector
        heap.restore(cp)
        sw = SoftwareCollector(heap).collect()
        assert sw.objects_marked == truth

    @pytest.mark.slow
    def test_superpages_cut_ptw_traffic(self):
        from repro.harness.runners import build_heap, run_hardware
        from repro.harness.experiments import _scaled_tlb_unit
        from repro.workloads.profiles import DACAPO_PROFILES
        profile = DACAPO_PROFILES["avrora"]
        walks = {}
        for use_super in (False, True):
            built, cp = build_heap(
                profile, scale=0.008, seed=6,
                config=MemorySystemConfig(use_superpages=use_super))
            built.heap.restore(cp)
            _hw, unit = run_hardware(built.heap,
                                     _scaled_tlb_unit("partitioned"))
            walks[use_super] = unit.mark_stats.get("ptw.walks", 0)
        assert walks[True] < walks[False] / 5
