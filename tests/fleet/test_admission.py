"""Admission queue: FIFO order, unit exclusivity, well-formed timelines.

All on hand-built synthetic timelines — fast, and hypothesis can explore
the space (pause layouts × unit counts × tax rates) far beyond what real
simulated runs would cover.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.admission import (
    POLICIES,
    resolve_policy,
    schedule_fleet,
)
from repro.workloads.mutator import GCPauseRecord, MutatorRunResult


def timeline(pauses, mutator=5_000_000, collector="hw"):
    """pauses: [(start, duration)], monotone and non-overlapping."""
    run = MutatorRunResult(collector=collector, mutator_cycles=mutator)
    for i, (start, duration) in enumerate(pauses):
        run.pauses.append(GCPauseRecord(
            index=i, start_cycle=start, mark_cycles=duration,
            sweep_cycles=0, objects_marked=0, cells_freed=0))
    return run


#: Per-tenant pause layout: gaps between pauses and durations; starts are
#: accumulated so base timelines are monotone and non-overlapping.
def tenant_layouts():
    pause = st.tuples(st.integers(1, 2_000_000),   # gap before the pause
                      st.integers(1, 800_000))     # duration
    return st.lists(st.lists(pause, min_size=0, max_size=5),
                    min_size=1, max_size=5)


def build_timelines(layouts):
    timelines = []
    for layout in layouts:
        cursor = 0
        pauses = []
        for gap, duration in layout:
            cursor += gap
            pauses.append((cursor, duration))
            cursor += duration
        timelines.append(timeline(pauses, mutator=cursor + 1_000_000))
    return timelines


class TestPolicies:
    def test_resolve_policy_lists_valid_names(self):
        with pytest.raises(ValueError) as err:
            resolve_policy("bogus")
        for name in POLICIES:
            assert name in str(err.value)

    def test_schedule_fleet_validates_policy(self):
        with pytest.raises(ValueError, match="valid policies"):
            schedule_fleet("bogus", [timeline([(100, 10)])])

    def test_dedicated_is_passthrough(self):
        tls = build_timelines([[(100_000, 50_000)], [(120_000, 60_000)]])
        sched = schedule_fleet("dedicated", tls)
        assert sched.grants == []
        assert sched.queue_wait_cycles == [0, 0]
        for got, want in zip(sched.timelines, tls):
            assert got.pauses == want.pauses
            assert got.total_cycles == want.total_cycles

    def test_software_is_passthrough_of_sw_timelines(self):
        tls = build_timelines([[(100_000, 300_000)]])
        sched = schedule_fleet("software", tls)
        assert sched.policy == "software"
        assert sched.timelines[0].pauses == tls[0].pauses


class TestSharedQueue:
    def test_uncontended_single_tenant_only_pays_the_tax(self):
        tls = build_timelines([[(100_000, 50_000), (500_000, 60_000)]])
        sched = schedule_fleet("shared", tls, n_units=1, dram_tax=0.25)
        # One tenant: contention tax factor is 1.0, no queueing.
        assert sched.queue_wait_cycles == [0]
        assert [p.pause_cycles for p in sched.timelines[0].pauses] == \
            [p.pause_cycles for p in tls[0].pauses]

    def test_colliding_requests_queue_fifo(self):
        # Both tenants request at cycle 100_000; tenant 0 wins the tie,
        # tenant 1 waits out tenant 0's whole taxed collection.
        tls = build_timelines([[(100_000, 50_000)], [(100_000, 40_000)]])
        sched = schedule_fleet("shared", tls, n_units=1, dram_tax=0.0)
        first, second = sched.grants
        assert (first.tenant, second.tenant) == (0, 1)
        assert first.grant == first.request == 100_000
        assert second.grant == first.end
        assert sched.queue_wait_cycles[1] == first.end - second.request
        # The waiting tenant's recorded pause covers its whole stall.
        pause = sched.timelines[1].pauses[0]
        assert pause.start_cycle == second.request
        assert pause.pause_cycles == second.end - second.request

    def test_two_units_serve_colliding_requests_in_parallel(self):
        tls = build_timelines([[(100_000, 50_000)], [(100_000, 40_000)]])
        sched = schedule_fleet("shared", tls, n_units=2, dram_tax=0.0)
        assert {g.unit for g in sched.grants} == {0, 1}
        assert all(g.wait_cycles == 0 for g in sched.grants)

    def test_dram_tax_stretches_service(self):
        tls = build_timelines([[(100_000, 100_000)], [(900_000, 100_000)]])
        sched = schedule_fleet("shared", tls, n_units=1, dram_tax=0.5)
        # tax = 1 + 0.5 * (2-1)/1 = 1.5
        assert all(g.end - g.grant == 150_000 for g in sched.grants)

    @settings(deadline=None, max_examples=60)
    @given(layouts=tenant_layouts(), n_units=st.integers(1, 3),
           dram_tax=st.floats(0.0, 0.5, allow_nan=False))
    def test_schedule_is_deterministic(self, layouts, n_units, dram_tax):
        timelines = build_timelines(layouts)
        first = schedule_fleet("shared", timelines, n_units=n_units,
                               dram_tax=dram_tax)
        second = schedule_fleet("shared", timelines, n_units=n_units,
                                dram_tax=dram_tax)
        assert first.grants == second.grants
        assert first.timelines == second.timelines

    @settings(deadline=None, max_examples=60)
    @given(layouts=tenant_layouts(),
           extra_units=st.integers(0, 3),
           dram_tax=st.floats(0.0, 0.5, allow_nan=False))
    def test_surplus_units_mean_no_tenant_ever_waits(self, layouts,
                                                     extra_units, dram_tax):
        # Edge geometry n_units > n_tenants: a tenant has at most one
        # collection outstanding (its mutator is stopped), so with a
        # unit to spare every grant starts at its request cycle and
        # FIFO order is exactly request order.
        timelines = build_timelines(layouts)
        n_units = len(timelines) + max(1, extra_units)
        sched = schedule_fleet("shared", timelines, n_units=n_units,
                               dram_tax=dram_tax)
        assert sched.queue_wait_cycles == [0] * len(timelines)
        assert all(g.grant == g.request for g in sched.grants)
        assert all(a.request <= b.request
                   for a, b in zip(sched.grants, sched.grants[1:]))

    def test_unit_tie_break_is_lowest_index(self):
        # Three idle units, two simultaneous requests: tenant 0 (tie
        # broken by tenant index) lands on unit 0, tenant 1 on unit 1 —
        # never units 2/1, never dependent on dict/hash order.
        tls = build_timelines([[(100_000, 50_000)], [(100_000, 40_000)]])
        sched = schedule_fleet("shared", tls, n_units=3, dram_tax=0.0)
        assert [(g.tenant, g.unit) for g in sched.grants] == [(0, 0), (1, 1)]

    @settings(deadline=None, max_examples=60)
    @given(layouts=tenant_layouts(), dram_tax=st.floats(0.0, 0.5,
                                                        allow_nan=False))
    def test_single_unit_without_collisions_is_dedicated_with_tax(
            self, layouts, dram_tax):
        # Edge geometry n_units == 1 with well-separated tenants: space
        # the layouts out so no two requests ever overlap in service,
        # then the shared queue is pure passthrough-plus-tax — each
        # pause starts at its request and lasts ceil(base * tax).
        import math

        from dataclasses import replace

        timelines = build_timelines(layouts)
        spaced = []
        offset = 0
        for tl in timelines:
            spaced.append(MutatorRunResult(
                collector=tl.collector,
                pauses=[replace(p, start_cycle=p.start_cycle + offset)
                        for p in tl.pauses],
                mutator_cycles=tl.mutator_cycles + offset))
            # Far past any taxed service of this tenant's whole window.
            offset += 2 * tl.total_cycles + 10_000_000
        sched = schedule_fleet("shared", spaced, n_units=1,
                               dram_tax=dram_tax)
        tax = 1.0 + dram_tax * (len(spaced) - 1)
        assert sched.queue_wait_cycles == [0] * len(spaced)
        for base, adjusted in zip(spaced, sched.timelines):
            # Like a dedicated unit whose collector is tax× slower:
            # each pause lasts ceil(base * tax) and later pauses slip
            # by the accumulated stretch (the mutator restarts late).
            drift = 0
            for want, got in zip(base.pauses, adjusted.pauses):
                assert got.start_cycle == want.start_cycle + drift
                assert got.pause_cycles == \
                    math.ceil(want.pause_cycles * tax)
                drift += got.pause_cycles - want.pause_cycles

    @settings(deadline=None, max_examples=60)
    @given(layouts=tenant_layouts(), n_units=st.integers(1, 3),
           dram_tax=st.floats(0.0, 0.5, allow_nan=False))
    def test_invariants(self, layouts, n_units, dram_tax):
        timelines = build_timelines(layouts)
        sched = schedule_fleet("shared", timelines, n_units=n_units,
                               dram_tax=dram_tax)
        grants = sched.grants
        # Every base pause was admitted exactly once.
        assert len(grants) == sum(len(tl.pauses) for tl in timelines)
        # FIFO: the admission log is ordered by request time.
        assert all(a.request <= b.request
                   for a, b in zip(grants, grants[1:]))
        # Unit exclusivity: a unit never serves two tenants in the same
        # cycle — its grant windows are disjoint in admission order.
        busy_until = {}
        for grant in grants:
            assert grant.grant >= grant.request
            assert grant.end > grant.grant
            assert grant.grant >= busy_until.get(grant.unit, 0)
            busy_until[grant.unit] = grant.end
        # Per-tenant adjusted timelines stay monotone, non-overlapping,
        # and inside their run window.
        for base, adjusted in zip(timelines, sched.timelines):
            assert len(adjusted.pauses) == len(base.pauses)
            cursor = 0
            for pause in adjusted.pauses:
                assert pause.start_cycle >= cursor
                cursor = pause.start_cycle + pause.pause_cycles
            assert cursor <= adjusted.total_cycles
            # Stalls only ever widen a pause, never shrink it.
            for got, want in zip(adjusted.pauses, base.pauses):
                assert got.pause_cycles >= want.pause_cycles
        assert all(wait >= 0 for wait in sched.queue_wait_cycles)
