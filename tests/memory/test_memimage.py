"""Physical-memory image: word access, atomics, bulk ops, snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.memimage import PhysicalMemory

U64 = (1 << 64) - 1


@pytest.fixture
def mem():
    return PhysicalMemory(64 * 1024)


class TestScalar:
    def test_roundtrip(self, mem):
        mem.write_word(0x100, 0xDEAD_BEEF_CAFE_F00D)
        assert mem.read_word(0x100) == 0xDEAD_BEEF_CAFE_F00D

    def test_wraps_to_64_bits(self, mem):
        mem.write_word(8, (1 << 70) | 5)
        assert mem.read_word(8) == 5

    def test_unaligned_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.read_word(3)
        with pytest.raises(ValueError):
            mem.write_word(12, 0)  # 12 is not 8-aligned

    def test_out_of_range_rejected(self, mem):
        with pytest.raises(IndexError):
            mem.read_word(64 * 1024)

    def test_size_must_be_word_aligned(self):
        with pytest.raises(ValueError):
            PhysicalMemory(100)


class TestAtomics:
    def test_fetch_or_returns_old(self, mem):
        mem.write_word(0, 0b0101)
        assert mem.fetch_or(0, 0b0010) == 0b0101
        assert mem.read_word(0) == 0b0111

    def test_fetch_and_returns_old(self, mem):
        mem.write_word(0, 0b0111)
        assert mem.fetch_and(0, ~0b0010 & U64) == 0b0111
        assert mem.read_word(0) == 0b0101

    def test_fetch_or_idempotent_on_set_bit(self, mem):
        mem.fetch_or(0, 1)
        old = mem.fetch_or(0, 1)
        assert old == 1 and mem.read_word(0) == 1


class TestBulk:
    def test_read_write_words(self, mem):
        mem.write_words(0x200, [1, 2, 3])
        assert mem.read_words(0x200, 3) == [1, 2, 3]

    def test_fill(self, mem):
        mem.fill(0x300, 4, 9)
        assert mem.read_words(0x300, 4) == [9, 9, 9, 9]

    def test_bulk_bounds(self, mem):
        with pytest.raises(IndexError):
            mem.read_words(64 * 1024 - 8, 2)
        with pytest.raises(IndexError):
            mem.write_words(64 * 1024 - 8, [1, 2])


class TestSnapshot:
    def test_snapshot_restore(self, mem):
        mem.write_word(0x80, 42)
        snap = mem.snapshot()
        mem.write_word(0x80, 0)
        mem.restore(snap)
        assert mem.read_word(0x80) == 42

    def test_snapshot_is_a_copy(self, mem):
        snap = mem.snapshot()
        mem.write_word(0, 7)
        assert snap[0] == 0

    def test_shape_mismatch_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.restore(np.zeros(3, dtype=np.uint64))


class TestDirtyBlockRestore:
    """The block-sparse restore must be byte-exact vs. a dense copy.

    Every write helper, both atomics, and the out-of-band ``note_dirty``
    contract feed the dirty set; restoring the clean-point snapshot copies
    only those blocks, so a missed dirty bit would silently leave stale
    data behind — these tests pin exactness for every mutation path.
    """

    # A memory spanning several 32 KiB blocks.
    SIZE = 256 * 1024

    def _scribble_then_restore(self, mutate):
        mem = PhysicalMemory(self.SIZE)
        for addr in range(0, self.SIZE, 4096 * 8):
            mem.write_word(addr, addr | 1)
        snap = mem.snapshot()
        reference = snap.copy()
        mutate(mem)
        mem.restore(snap)
        assert np.array_equal(mem.words, reference)
        # The clean point survives a sparse restore: a second
        # mutate/restore round must also be exact.
        mutate(mem)
        mem.restore(snap)
        assert np.array_equal(mem.words, reference)

    def test_write_word_tracked(self):
        self._scribble_then_restore(
            lambda m: [m.write_word(a, 0xBAD) for a in (0, 40960, self.SIZE - 8)])

    def test_atomics_tracked(self):
        def mutate(m):
            m.fetch_or(32768, 0xFF)
            m.fetch_and(self.SIZE - 16, 0)
        self._scribble_then_restore(mutate)

    def test_bulk_writes_tracked(self):
        def mutate(m):
            m.write_words(8, list(range(100)))
            m.fill(65536, 5000, 7)  # spans a block boundary
        self._scribble_then_restore(mutate)

    def test_note_dirty_covers_direct_writes(self):
        def mutate(m):
            # The SoA fast-path idiom: raw array store + note_dirty.
            m.words[5000] = np.uint64(123)
            m.note_dirty(5000)
            m.words[9000:9300] = np.uint64(9)
            m.note_dirty(9000, 300)
        self._scribble_then_restore(mutate)

    def test_foreign_snapshot_restores_densely_and_rebases(self):
        mem = PhysicalMemory(self.SIZE)
        snap_a = mem.snapshot()
        mem.write_word(0, 1)
        foreign = mem.words.copy()  # not produced by snapshot()
        mem.write_word(0, 2)
        mem.restore(foreign)
        assert mem.read_word(0) == 1
        # ``foreign`` is now the clean point; sparse restore back to it
        # must still be exact.
        mem.write_word(0, 3)
        mem.write_word(self.SIZE - 8, 4)
        mem.restore(foreign)
        assert mem.read_word(0) == 1
        assert mem.read_word(self.SIZE - 8) == 0
        # And the original snapshot still restores correctly (densely).
        mem.restore(snap_a)
        assert mem.read_word(0) == 0


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 1023), st.integers(0, U64)),
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_last_write_wins(writes):
    mem = PhysicalMemory(8 * 1024)
    expected = {}
    for word_index, value in writes:
        mem.write_word(word_index * 8, value)
        expected[word_index] = value
    for word_index, value in expected.items():
        assert mem.read_word(word_index * 8) == value
