"""Shared experiment plumbing: build heaps, run both collectors, compare.

The pattern every figure uses: generate a profile's heap once, checkpoint
it, collect with the software baseline, restore, collect with the unit
(possibly across a sweep of unit configurations), and report per-phase
cycles plus memory-system stat deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.unit import GCUnit
from repro.heap.heapimage import HeapCheckpoint, ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.swgc.cpu import CPUConfig
from repro.swgc.marksweep import SoftwareCollector, SoftwareGCResult
from repro.workloads.graphgen import BuiltHeap, HeapGraphBuilder
from repro.workloads.profiles import BenchmarkProfile

#: Default scale for harness runs: ~12-20k objects per heap, a few seconds
#: of simulation per collector. Figures that sweep many configurations use
#: smaller scales (set per experiment).
DEFAULT_SCALE = 0.05


def build_heap(
    profile: BenchmarkProfile,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    config: Optional[MemorySystemConfig] = None,
) -> Tuple[BuiltHeap, HeapCheckpoint]:
    """Generate a heap and checkpoint it for repeated collections.

    Builds are memoized through :mod:`repro.harness.heapcache`: repeated
    requests for the same ``(profile, scale, seed, config)`` reconstruct a
    fresh heap from the cached checkpoint instead of regenerating the
    object graph. Set ``REPRO_HEAP_CACHE`` to also persist builds on disk.
    """
    from repro.harness.heapcache import get_cache

    return get_cache().get_or_build(profile, scale, seed, config)


def run_software(
    heap: ManagedHeap,
    cpu_config: Optional[CPUConfig] = None,
    layout: str = "bidirectional",
) -> Tuple[SoftwareGCResult, Dict[str, int]]:
    """Run the CPU baseline; returns (result, memory-stat delta)."""
    before = heap.memsys.stats.as_dict()
    result = SoftwareCollector(heap, cpu_config=cpu_config,
                               layout=layout).collect()
    after = heap.memsys.stats.as_dict()
    delta = {k: v - before.get(k, 0) for k, v in after.items()
             if v != before.get(k, 0)}
    return result, delta


def run_hardware(
    heap: ManagedHeap,
    config: Optional[GCUnitConfig] = None,
) -> Tuple[HardwareGCResult, GCUnit]:
    """Run the GC unit; returns (result, the unit with per-phase stats)."""
    unit = GCUnit(heap, config)
    result = unit.collect()
    return result, unit


def run_sweep_only(
    heap: ManagedHeap,
    config: Optional[GCUnitConfig] = None,
) -> Tuple[int, "object"]:
    """Run just the reclamation unit on an already-marked heap.

    Used by sweeps over sweeper counts (Fig. 20): the mark phase does not
    depend on ``n_sweepers``, so it is run once and checkpointed.
    Returns (sweep_cycles, reclamation_unit).
    """
    from repro.core.sweeper import ReclamationUnit
    from repro.memory.cache import Cache
    from repro.memory.paging import VIRT_OFFSET
    from repro.memory.ptw import PageTableWalker
    from repro.memory.tlb import TLB, SharedL2TLB

    config = config if config is not None else GCUnitConfig()
    sim = heap.sim
    memsys = heap.memsys
    ptw_cache = Cache(sim, config.ptw_cache, memsys.model, name="ptw_cache",
                      stats=memsys.stats)
    ptw = PageTableWalker(sim, memsys.page_table, ptw_cache, source="ptw",
                          stats=memsys.stats)
    tlb = TLB(sim, config.tlb, ptw, name="recl",
              l2=SharedL2TLB(config.l2_tlb_entries), stats=memsys.stats)
    unit = ReclamationUnit(
        sim, memsys.phys, heap.block_list,
        lambda source: memsys.port(source), tlb,
        mark_parity=heap.mark_parity, virt_offset=VIRT_OFFSET,
        n_sweepers=config.n_sweepers, sweeper_slots=config.sweeper_slots,
        stats=memsys.stats,
    )
    start = sim.now
    done = unit.sweep()
    sim.run_until(done)
    return sim.now - start, unit


def attempt_stats() -> Dict[str, float]:
    """Process-level resource snapshot for per-attempt accounting.

    Workers attach this to each attempt record so the suite runner can
    annotate retries with CPU time and peak RSS — the signal that
    distinguishes an OOM-killed attempt (rss climbing to the cgroup limit)
    from a plain crash. Values are cumulative for the calling process; on
    a fresh per-task worker they describe just that attempt.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return {}
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {"cpu_s": round(ru.ru_utime + ru.ru_stime, 3),
            "max_rss_kb": float(ru.ru_maxrss)}


@dataclass
class GCComparison:
    """One benchmark, both collectors, same heap."""

    benchmark: str
    sw: SoftwareGCResult
    hw: HardwareGCResult
    sw_stats: Dict[str, int] = field(default_factory=dict)
    hw_mark_stats: Dict[str, int] = field(default_factory=dict)
    hw_sweep_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def mark_speedup(self) -> float:
        return self.sw.mark_cycles / self.hw.mark_cycles

    @property
    def sweep_speedup(self) -> float:
        return self.sw.sweep_cycles / self.hw.sweep_cycles

    @property
    def overall_speedup(self) -> float:
        return self.sw.total_cycles / self.hw.total_cycles

    def summary(self) -> str:
        return (
            f"{self.benchmark}: mark {self.sw.mark_ms:.2f}ms -> "
            f"{self.hw.mark_ms:.2f}ms (x{self.mark_speedup:.2f}), sweep "
            f"{self.sw.sweep_ms:.2f}ms -> {self.hw.sweep_ms:.2f}ms "
            f"(x{self.sweep_speedup:.2f})"
        )


def run_gc_comparison(
    profile: BenchmarkProfile,
    scale: float = DEFAULT_SCALE,
    seed: int = 1,
    unit_config: Optional[GCUnitConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
    memsys_config: Optional[MemorySystemConfig] = None,
    built: Optional[Tuple[BuiltHeap, HeapCheckpoint]] = None,
) -> GCComparison:
    """Collect one generated heap with both collectors and compare.

    Both collectors see the byte-identical heap (checkpoint/restore), and
    the results are cross-checked: identical mark counts and identical
    free-cell counts, or the comparison raises.
    """
    if built is None:
        built = build_heap(profile, scale=scale, seed=seed,
                           config=memsys_config)
    built_heap, checkpoint = built
    heap = built_heap.heap
    heap.restore(checkpoint)
    sw_result, sw_stats = run_software(heap, cpu_config=cpu_config)
    sw_free = heap.check_free_lists()
    heap.restore(checkpoint)
    hw_result, unit = run_hardware(heap, unit_config)
    hw_free = heap.check_free_lists()
    if sw_result.objects_marked != hw_result.objects_marked:
        raise AssertionError(
            f"collector divergence on {profile.name}: SW marked "
            f"{sw_result.objects_marked}, HW {hw_result.objects_marked}"
        )
    if sw_free != hw_free:
        raise AssertionError(
            f"free-list divergence on {profile.name}: SW {sw_free} cells, "
            f"HW {hw_free}"
        )
    return GCComparison(
        benchmark=profile.name,
        sw=sw_result,
        hw=hw_result,
        sw_stats=sw_stats,
        hw_mark_stats=unit.mark_stats,
        hw_sweep_stats=unit.sweep_stats,
    )
