"""Query-latency simulation: pause freezing and coordinated omission."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.latency import (
    QueryReplay,
    QuerySimulator,
    latency_cdf,
    percentile_summary,
    tail_ratio,
)
from repro.workloads.mutator import GCPauseRecord, MutatorRunResult


def synthetic_run(pause_at=1_000_000, pause_len=500_000,
                  total_mutator=10_000_000, n_pauses=1):
    """A hand-built timeline with known pauses."""
    run = MutatorRunResult(collector="sw")
    cursor = 0
    for i in range(n_pauses):
        cursor += pause_at
        run.pauses.append(GCPauseRecord(
            index=i, start_cycle=cursor, mark_cycles=pause_len,
            sweep_cycles=0, objects_marked=0, cells_freed=0,
        ))
        cursor += pause_len
    run.mutator_cycles = n_pauses * pause_at
    return run


class TestPauseFreezing:
    def test_query_before_pause_completes_normally(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=100_000,
                             service_mean_cycles=10_000, seed=1)
        records = sim.run_queries(n_queries=5, warmup=0)
        assert records[0].latency_cycles < 100_000
        assert not records[0].near_gc

    def test_query_overlapping_pause_absorbs_it(self):
        run = synthetic_run(pause_at=1_000_000, pause_len=500_000)
        sim = QuerySimulator(run, interval_cycles=990_000,
                             service_mean_cycles=50_000, seed=1)
        records = sim.run_queries(n_queries=3, warmup=0)
        straggler = records[1]  # arrives at 990k, runs into the 1M pause
        assert straggler.latency_cycles > 500_000
        assert straggler.near_gc

    def test_coordinated_omission_measured_from_intent(self):
        """Queries queued behind a pause-delayed predecessor still measure
        from their intended start."""
        run = synthetic_run(pause_at=500_000, pause_len=2_000_000)
        sim = QuerySimulator(run, interval_cycles=100_000,
                             service_mean_cycles=50_000, seed=2)
        records = sim.run_queries(n_queries=20, warmup=0)
        # Several queries arrive during the pause; their latencies decrease
        # roughly by the interval as their intended starts advance.
        in_pause = [r for r in records if r.near_gc]
        assert len(in_pause) >= 3
        assert in_pause[0].latency_cycles > in_pause[2].latency_cycles
        # The backlog queries measure from intent, not from issue.
        assert in_pause[1].latency_cycles > 1_000_000

    def test_pauses_tile_past_one_iteration(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=3_000_000,
                             service_mean_cycles=10_000, seed=3)
        records = sim.run_queries(n_queries=30, warmup=0)
        assert len(records) == 30  # timeline wrapped without error


class TestAggregation:
    def test_cdf_monotone(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=150_000,
                             service_mean_cycles=20_000, seed=4)
        cdf = latency_cdf(sim.run_queries(n_queries=200, warmup=10))
        xs = [x for x, _y in cdf]
        ys = [y for _x, y in cdf]
        assert xs == sorted(xs)
        assert ys[-1] == pytest.approx(1.0)

    def test_tail_ratio_reflects_pauses(self):
        # Same GC duty cycle cannot saturate the open-loop system; only the
        # pause length differs.
        short = synthetic_run(pause_at=10_000_000, pause_len=100_000)
        long = synthetic_run(pause_at=10_000_000, pause_len=1_200_000)
        ratios = {}
        for label, run in (("short", short), ("long", long)):
            sim = QuerySimulator(run, interval_cycles=150_000,
                                 service_mean_cycles=15_000, seed=5)
            ratios[label] = tail_ratio(sim.run_queries(1000, warmup=0))
        assert ratios["long"] > ratios["short"]

    def test_empty_records(self):
        assert latency_cdf([]) == []
        with pytest.raises(ValueError):
            tail_ratio([])


class TestEdgeCases:
    """The degenerate inputs the fleet layer now feeds this module."""

    def test_pause_covering_entire_window_rejected(self):
        """No mutator time at all would spin _advance_through_pauses
        forever; the simulator must refuse at construction."""
        run = MutatorRunResult(collector="sw", mutator_cycles=0)
        run.pauses.append(GCPauseRecord(
            index=0, start_cycle=0, mark_cycles=1_000_000, sweep_cycles=0,
            objects_marked=0, cells_freed=0))
        with pytest.raises(ValueError, match="entire run window"):
            QuerySimulator(run, seed=1)

    def test_warmup_discarding_everything_is_empty_not_nan(self):
        run = synthetic_run()
        sim = QuerySimulator(run, interval_cycles=100_000,
                             service_mean_cycles=10_000, seed=1)
        records = sim.run_queries(n_queries=50, warmup=100)
        assert records == []
        with pytest.raises(ValueError, match="no records"):
            percentile_summary(records)
        with pytest.raises(ValueError, match="no records"):
            tail_ratio(records)

    def test_empty_replay_schedule(self):
        sim = QueryReplay(synthetic_run(), service_mean_cycles=10_000,
                          seed=1)
        result = sim.replay([])
        assert (result.arrived, result.completed, result.in_flight,
                result.shed) == (0, 0, 0, 0)
        assert result.records == []
        assert result.conserved

    def test_replay_rejects_decreasing_arrivals(self):
        sim = QueryReplay(synthetic_run(), service_mean_cycles=10_000,
                          seed=1)
        with pytest.raises(ValueError, match="non-decreasing"):
            sim.replay([0, 200_000, 100_000])


class TestQueryReplay:
    def test_regular_schedule_matches_run_queries(self):
        """The differential identity simulate_fleet's dedicated path rests
        on: an explicit [i*interval] schedule replays to the exact records
        run_queries produces (same RNG draws, same completions)."""
        run = synthetic_run(pause_at=700_000, pause_len=400_000, n_pauses=3)
        kwargs = dict(interval_cycles=120_000, service_mean_cycles=30_000,
                      seed=9)
        reference = QuerySimulator(run, **kwargs).run_queries(
            n_queries=300, warmup=25)
        replayed = QueryReplay(run, **kwargs).replay(
            [i * 120_000 for i in range(300)], warmup=25)
        assert replayed.records == reference
        assert replayed.arrived == 300
        assert replayed.shed == 0
        assert replayed.conserved

    @settings(deadline=None, max_examples=60)
    @given(
        gaps=st.lists(st.integers(0, 400_000), min_size=0, max_size=80),
        warmup=st.integers(0, 90),
        shed_intervals=st.one_of(st.none(), st.integers(1, 6)),
        use_horizon=st.booleans(),
        seed=st.integers(0, 5),
    )
    def test_conservation(self, gaps, warmup, shed_intervals, use_horizon,
                          seed):
        """Every arrival is exactly one of completed/in-flight/shed."""
        arrivals = []
        t = 0
        for gap in gaps:
            t += gap
            arrivals.append(t)
        sim = QueryReplay(synthetic_run(), interval_cycles=100_000,
                          service_mean_cycles=40_000, seed=seed)
        shed_cycles = (shed_intervals * 100_000
                       if shed_intervals is not None else None)
        horizon = (arrivals[-1] + 200_000
                   if use_horizon and arrivals else None)
        result = sim.replay(arrivals, warmup=warmup, horizon=horizon,
                            shed_backlog_cycles=shed_cycles)
        assert result.arrived == len(arrivals)
        assert result.conserved
        serviced = result.completed + result.in_flight
        # Records are the post-warmup slice of the serviced queries.
        assert len(result.records) <= serviced
        assert all(r.index >= warmup for r in result.records)
        if shed_cycles is None:
            assert result.shed == 0
        # Latency is measured from intent and is never negative.
        assert all(r.latency_cycles >= 0 for r in result.records)
