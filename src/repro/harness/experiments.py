"""One experiment runner per figure of the paper's evaluation.

Each ``figNN`` function regenerates the corresponding table/figure: it runs
the simulation at a configurable scale and returns an
:class:`ExperimentResult` holding the same rows/series the paper plots,
together with the paper's claim for side-by-side comparison. The pytest
benchmarks under ``benchmarks/`` and the EXPERIMENTS.md generator both call
these functions.

Scales are chosen so a figure regenerates in seconds-to-minutes of wall
time; the reproduced quantities are ratios and shapes, which are stable
across scale (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import GCUnitConfig
from repro.core.concurrent.refload import BARRIER_MODELS, BarrierKind
from repro.engine.stats import geomean
from repro.harness.reporting import render_series, render_table
from repro.harness.runners import (
    build_heap,
    run_gc_comparison,
    run_hardware,
    run_software,
    run_sweep_only,
)
from repro.memory.config import (
    CacheConfig,
    DRAMConfig,
    MemorySystemConfig,
    TLBConfig,
)
from repro.power.area import AreaModel
from repro.power.energy import EnergyModel
from repro.swgc.cpu import CPUConfig
from repro.workloads.latency import QuerySimulator, latency_cdf, tail_ratio
from repro.workloads.mutator import MutatorModel
from repro.workloads.profiles import BENCHMARK_ORDER, DACAPO_PROFILES


@dataclass
class ExperimentResult:
    """Rows of one regenerated figure, plus the paper's claim."""

    exp_id: str
    title: str
    paper_claim: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [
            f"## {self.exp_id}: {self.title}",
            f"Paper: {self.paper_claim}",
            "",
            render_table(self.headers, self.rows),
        ]
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)


def _profiles(benchmarks: Optional[Sequence[str]] = None):
    names = benchmarks if benchmarks is not None else BENCHMARK_ORDER
    return [(name, DACAPO_PROFILES[name]) for name in names]


# ---------------------------------------------------------------------------
# Figure 1 — motivation
# ---------------------------------------------------------------------------

def fig01a(scale: float = 0.03, seed: int = 1, n_gcs: int = 3,
           benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Fraction of CPU time spent in GC pauses per benchmark (Fig. 1a)."""
    rows = []
    for name, profile in _profiles(benchmarks):
        built, _cp = build_heap(profile, scale=scale, seed=seed)
        run = MutatorModel(built, collector="sw").run(n_gcs=n_gcs)
        rows.append([
            name,
            100.0 * run.gc_time_fraction,
            100.0 * profile.gc_time_fraction_paper,
            len(run.pauses),
            run.mean_mark_cycles / 1e6,
        ])
    return ExperimentResult(
        exp_id="fig01a",
        title="CPU time spent in GC",
        paper_claim="workloads spend up to ~35% of CPU time in GC pauses",
        headers=["benchmark", "GC time %", "paper %", "pauses",
                 "mean mark ms"],
        rows=rows,
    )


def fig01b(scale: float = 0.03, seed: int = 1, n_gcs: int = 4,
           n_queries: int = 10_000, warmup: int = 1_000) -> ExperimentResult:
    """lusearch query-latency distribution with coordinated omission."""
    built, _cp = build_heap(DACAPO_PROFILES["lusearch"], scale=scale,
                            seed=seed)
    run = MutatorModel(built, collector="sw").run(n_gcs=n_gcs)
    # Scale the open-loop schedule to the simulated pause lengths, keeping
    # the paper's ratios (pauses several times the arrival interval, two
    # orders of magnitude above the median service time).
    mean_pause = run.gc_cycles // max(1, len(run.pauses))
    sim = QuerySimulator(
        run,
        interval_cycles=max(50_000, mean_pause // 6),
        service_mean_cycles=max(4_000, mean_pause // 60),
        seed=seed,
    )
    records = sim.run_queries(n_queries=n_queries, warmup=warmup)
    cdf = latency_cdf(records)
    lat = [r.latency_ms for r in records]
    lat.sort()

    def pct(p: float) -> float:
        idx = min(len(lat) - 1, max(0, int(p / 100.0 * len(lat)) - 1))
        return lat[idx]

    near_gc = sum(1 for r in records if r.near_gc)
    rows = [
        ["p50", pct(50)], ["p90", pct(90)], ["p99", pct(99)],
        ["p99.9", pct(99.9)], ["max", lat[-1]],
        ["tail ratio p99.9/p50", tail_ratio(records)],
        ["queries near GC (%)", 100.0 * near_gc / len(records)],
    ]
    return ExperimentResult(
        exp_id="fig01b",
        title="lusearch query latencies (ms), open-loop, CO-corrected",
        paper_claim="GC pauses introduce stragglers up to two orders of "
        "magnitude longer than the average request",
        headers=["statistic", "latency ms"],
        rows=rows,
        extras={"cdf": cdf, "records": len(records)},
    )


def conc_latency(scale: float = 0.03, seed: int = 1, n_gcs: int = 4,
                 n_queries: int = 10_000, warmup: int = 1_000,
                 benchmark: str = "lusearch") -> ExperimentResult:
    """STW vs concurrent collection under one open-loop query stream.

    Extends Fig. 1b's methodology to the collector §IV-D sketches: the
    same hardware unit runs once stop-the-world and once concurrently
    (mutator racing the mark; pause = termination handshake + sweep), and
    the identical query schedule is replayed against both timelines. The
    percentile gap is pause-attributed by construction.
    """
    from repro.workloads.latency import compare_stw_concurrent

    profile = DACAPO_PROFILES[benchmark]
    built, checkpoint = build_heap(profile, scale=scale, seed=seed)
    stw_run = MutatorModel(built, collector="hw", seed=seed).run(n_gcs=n_gcs)
    built.heap.restore(checkpoint)
    conc_run = MutatorModel(built, collector="concurrent",
                            seed=seed).run(n_gcs=n_gcs)
    comparison = compare_stw_concurrent(
        stw_run, conc_run, n_queries=n_queries, warmup=warmup, seed=seed)
    rows = [[stat, comparison.stw[stat], comparison.concurrent[stat]]
            for stat in ("p50", "p90", "p99", "p99.9", "max")]
    rows.append(["max GC pause", comparison.stw_max_pause_ms,
                 comparison.concurrent_max_pause_ms])
    conc_mark_ms = sum(p.concurrent_mark_cycles
                       for p in conc_run.pauses) / 1e6
    return ExperimentResult(
        exp_id="conc_latency",
        title=f"{benchmark} query latency (ms): STW vs concurrent "
        "collection",
        paper_claim="a concurrent version of the design only pauses the "
        "application for the termination handshake and the sweep (§IV-D), "
        "removing the mark phase from the pause-induced tail",
        headers=["statistic", "STW ms", "concurrent ms"],
        rows=rows,
        notes=f"{conc_mark_ms:.2f} ms of marking overlapped the running "
        "mutator instead of pausing it; schedule derived from the STW "
        f"run (interval {comparison.interval_cycles} cycles).",
        extras={"comparison": comparison},
    )


# ---------------------------------------------------------------------------
# Figure 15 — headline GC performance (DDR3 model)
# ---------------------------------------------------------------------------

def fig15(scale: float = 0.05, seed: int = 1,
          benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Mark/sweep time, CPU vs GC unit, per benchmark (Fig. 15)."""
    rows = []
    mark_speedups, sweep_speedups = [], []
    comparisons = {}
    for name, profile in _profiles(benchmarks):
        comp = run_gc_comparison(profile, scale=scale, seed=seed)
        comparisons[name] = comp
        mark_speedups.append(comp.mark_speedup)
        sweep_speedups.append(comp.sweep_speedup)
        rows.append([
            name, comp.sw.mark_ms, comp.hw.mark_ms, comp.mark_speedup,
            comp.sw.sweep_ms, comp.hw.sweep_ms, comp.sweep_speedup,
        ])
    rows.append([
        "geomean", "", "", geomean(mark_speedups), "", "",
        geomean(sweep_speedups),
    ])
    return ExperimentResult(
        exp_id="fig15",
        title="GC performance, DDR3 model (baseline unit config)",
        paper_claim="the GC unit outperforms the CPU by 4.2x for mark and "
        "1.9x for sweep (2 sweepers)",
        headers=["benchmark", "CPU mark ms", "unit mark ms", "mark x",
                 "CPU sweep ms", "unit sweep ms", "sweep x"],
        rows=rows,
        extras={"comparisons": comparisons},
    )


# ---------------------------------------------------------------------------
# Figure 16 — memory bandwidth over a pause
# ---------------------------------------------------------------------------

def fig16(scale: float = 0.05, seed: int = 1, n_warm_gcs: int = 2,
          bin_cycles: int = 20_000,
          benchmarks: Sequence[str] = ("avrora",)) -> ExperimentResult:
    """Bandwidth during the last GC pause, CPU vs unit, per benchmark.

    Each benchmark is a self-contained cell on a freshly built heap so the
    figure shards along the benchmark axis (and caches per cell) with
    byte-identical rows: no simulator or DRAM state leaks between cells.
    """
    rows = []
    sw_series_all: Dict[str, Any] = {}
    hw_series_all: Dict[str, Any] = {}
    for name, profile in _profiles(benchmarks):
        built, _cp = build_heap(profile, scale=scale, seed=seed)
        heap = built.heap
        # Evolve the heap through a couple of collections ("last GC pause").
        warm = MutatorModel(built, collector="sw")
        warm.run(n_gcs=n_warm_gcs)
        warm.mutate_phase()
        evolved = heap.checkpoint()

        bw = heap.memsys.bandwidth
        start_sw = heap.sim.now
        sw_result, sw_stats = run_software(heap)
        sw_window = (start_sw, heap.sim.now)
        sw_series_all[name] = bw.binned_window(*sw_window,
                                               bin_cycles=bin_cycles)
        sw_bytes = bw.window_bytes(*sw_window)
        sw_requests = sum(v for k, v in sw_stats.items()
                          if k.startswith("mem.requests."))

        heap.restore(evolved)
        hw_result, unit = run_hardware(heap)
        hw_series_all[name] = bw.binned_window(*unit.mark_window,
                                               bin_cycles=bin_cycles)
        hw_window = (unit.mark_window[0], unit.sweep_window[1])
        hw_bytes = bw.window_bytes(*hw_window)
        hw_requests = sum(v for k, v in unit.mark_stats.items()
                          if k.startswith("mem.requests."))
        hw_requests += sum(v for k, v in unit.sweep_stats.items()
                           if k.startswith("mem.requests."))

        sw_cycles = sw_window[1] - sw_window[0]
        hw_cycles = hw_window[1] - hw_window[0]
        # The paper plots bandwidth "based on 64B cache line accesses":
        # each memory request counts as one line access. That is the
        # natural unit for comparing a line-fill CPU against the unit's
        # sub-line requests.
        sw_eq = 64.0 * sw_requests / sw_cycles
        hw_eq = 64.0 * hw_requests / hw_cycles
        rows += [
            [name, "CPU", sw_eq, sw_bytes / sw_cycles,
             sw_result.total_cycles / 1e6],
            [name, "GC unit", hw_eq, hw_bytes / hw_cycles,
             hw_result.total_cycles / 1e6],
            [name, "unit / CPU", hw_eq / sw_eq, (hw_bytes / hw_cycles)
             / (sw_bytes / sw_cycles), ""],
        ]
    return ExperimentResult(
        exp_id="fig16",
        title="Memory bandwidth, last GC pause",
        paper_claim="the unit is far more effective at exploiting memory "
        "bandwidth, particularly during the mark phase (plotted as 64B "
        "line accesses)",
        headers=["benchmark", "collector", "64B-access GB/s",
                 "raw data GB/s", "pause ms"],
        rows=rows,
        extras={"sw_series": sw_series_all,
                "hw_mark_series": hw_series_all},
    )


# ---------------------------------------------------------------------------
# Figure 17 — potential performance (latency-bandwidth pipe)
# ---------------------------------------------------------------------------

def fig17(scale: float = 0.05, seed: int = 1,
          benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Mark speedup and request cadence with the 1-cycle / 8 GB/s pipe."""
    pipe_cfg = MemorySystemConfig(model="pipe")
    rows = []
    speedups = []
    for name, profile in _profiles(benchmarks):
        built, cp = build_heap(profile, scale=scale, seed=seed,
                               config=replace(pipe_cfg))
        comp = run_gc_comparison(profile, built=(built, cp))
        speedups.append(comp.mark_speedup)
        mark_requests = sum(
            v for k, v in comp.hw_mark_stats.items()
            if k.startswith("mem.requests.")
        )
        mark_cycles = comp.hw.mark_cycles
        interval = mark_cycles / mark_requests if mark_requests else 0.0
        data_bytes = (comp.hw_mark_stats.get("dram.bytes_read", 0)
                      + comp.hw_mark_stats.get("dram.bytes_written", 0))
        busy_pct = 100.0 * (data_bytes / 8) / mark_cycles
        rows.append([name, comp.mark_speedup, comp.sweep_speedup, interval,
                     busy_pct, data_bytes / mark_cycles])
    rows.append(["geomean", geomean(speedups), "", "", "", ""])
    return ExperimentResult(
        exp_id="fig17",
        title="GC performance with 1-cycle DRAM and 8 GB/s bandwidth",
        paper_claim="9.0x mark speedup; a request enters the memory system "
        "every 8.66 cycles; the port is busy 88% of mark cycles",
        headers=["benchmark", "mark x", "sweep x", "cycles/request",
                 "port busy %", "GB/s"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 18 — cache partitioning
# ---------------------------------------------------------------------------

def _scaled_tlb_unit(cache_mode: str) -> GCUnitConfig:
    """Unit config with TLB/PTW reach scaled to the heap like the paper's.

    The prototype's 32-entry TLBs reach 128 KB of a 200 MB heap (0.06%) and
    its 8 KB PTW cache covers ~2% of the leaf PTEs. At our reduced heap
    sizes the same entry counts would cover the whole heap, so this config
    scales them down to preserve the miss behaviour that Fig. 18 measures.
    """
    return GCUnitConfig(
        cache_mode=cache_mode,
        tlb=TLBConfig(entries=4),
        l2_tlb_entries=8,
        ptw_cache=CacheConfig(size_bytes=512, ways=2, hit_latency=1, mshrs=1),
        shared_cache=CacheConfig(size_bytes=2 * 1024, ways=4, hit_latency=2,
                                 mshrs=8),
    )


def fig18(scale: float = 0.04, seed: int = 1,
          benchmark: str = "avrora",
          cache_modes: Sequence[str] = ("shared", "partitioned"),
          ) -> ExperimentResult:
    """Traversal-unit request breakdown: shared cache vs partitioned.

    Each cache mode is a self-contained cell on a freshly built heap; a
    mode fills its own column pair and leaves the other mode's columns
    blank, so a run restricted to one mode produces exactly the columns
    the sharding merge overlays back together.
    """
    profile = DACAPO_PROFILES[benchmark]
    sources = ["queue", "tracer", "ptw", "marker"]
    # Column pair (count, %) each mode owns in the combined table.
    mode_cols = {"shared": (1, 2), "partitioned": (3, 4)}
    rows: List[List[Any]] = [[source, "", "", "", ""] for source in sources]
    cycles_row: List[Any] = ["mark cycles", "", "", "", ""]
    for mode in cache_modes:
        count_col, pct_col = mode_cols[mode]
        built, cp = build_heap(profile, scale=scale, seed=seed)
        heap = built.heap
        heap.restore(cp)
        _hw, unit = run_hardware(heap, _scaled_tlb_unit(mode))
        # Shared mode reports what reaches the (shared) L1; partitioned
        # mode reports what reaches memory — the paper's two panels.
        prefix = ("cache.gcu_l1.requests." if mode == "shared"
                  else "mem.requests.")
        reqs = {
            k.rsplit(".", 1)[-1]: v
            for k, v in unit.mark_stats.items()
            if k.startswith(prefix)
        }
        total = sum(reqs.values()) or 1
        for row, source in zip(rows, sources):
            row[count_col] = reqs.get(source, 0)
            row[pct_col] = 100.0 * reqs.get(source, 0) / total
        cycles_row[count_col] = (unit.mark_window[1]
                                 - unit.mark_window[0])
    rows.append(cycles_row)
    return ExperimentResult(
        exp_id="fig18",
        title=f"Traversal-unit requests by source ({benchmark}, "
        "TLB reach scaled to heap)",
        paper_claim="shared cache: 2/3 of L1 requests come from the PTW, "
        "drowning out other units; after partitioning, marker and tracer "
        "dominate the requests that reach memory",
        headers=["source", "shared L1 reqs", "shared %",
                 "partitioned mem reqs", "partitioned %"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 19 — mark-queue size, spilling, compression
# ---------------------------------------------------------------------------

def fig19(scale: float = 0.04, seed: int = 1,
          benchmark: str = "luindex",
          queue_entries: Sequence[int] = (128, 512, 2048, 16384),
          ) -> ExperimentResult:
    """Spill traffic and mark time vs mark-queue size (Fig. 19).

    Each queue size is a self-contained cell on a freshly built heap (the
    three per-size configs still share that cell's heap), so the figure
    shards along the queue-size axis with byte-identical rows.
    """
    profile = DACAPO_PROFILES[benchmark]
    configs = [
        ("TQ=128", dict(tracer_queue_entries=128)),
        ("TQ=8", dict(tracer_queue_entries=8)),
        ("Comp.", dict(tracer_queue_entries=128, address_compression=True)),
    ]
    rows = []
    for entries in queue_entries:
        built, cp = build_heap(profile, scale=scale, seed=seed)
        heap = built.heap
        for label, overrides in configs:
            heap.restore(cp)
            cfg = GCUnitConfig(mark_queue_entries=entries, **overrides)
            hw, unit = run_hardware(heap, cfg)
            total_requests = sum(
                v for k, v in unit.mark_stats.items()
                if k.startswith("mem.requests.")
            )
            spill_requests = hw.spill_writes + hw.spill_reads
            rows.append([
                cfg.mark_queue_bytes / 1024, label, spill_requests,
                100.0 * spill_requests / max(1, total_requests),
                hw.mark_ms, hw.spilled_entries,
            ])
    return ExperimentResult(
        exp_id="fig19",
        title=f"Mark-queue size trade-offs ({benchmark})",
        paper_claim="spilling accounts for only ~2% of memory requests; "
        "queue size barely affects mark time; compression reduces spilling "
        "by 2x",
        headers=["queue KB", "config", "spill reqs", "spill % of reqs",
                 "mark ms", "entries spilled"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 20 — block-sweeper scaling
# ---------------------------------------------------------------------------

def fig20(scale: float = 0.03, seed: int = 1,
          sweeper_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
          benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Sweep speedup vs number of block sweepers (Fig. 20)."""
    rows = []
    for name, profile in _profiles(benchmarks):
        built, cp = build_heap(profile, scale=scale, seed=seed)
        heap = built.heap
        sw_result, _stats = run_software(heap)
        sw_sweep = sw_result.sweep_cycles
        # Re-run the mark once with the unit, checkpoint the marked heap,
        # then sweep it under each sweeper count.
        heap.restore(cp)
        from repro.core.unit import GCUnit
        unit = GCUnit(heap, GCUnitConfig())
        unit.mark()
        marked = heap.checkpoint()
        speedups = []
        for n in sweeper_counts:
            heap.restore(marked)
            sweep_cycles, _recl = run_sweep_only(
                heap, GCUnitConfig(n_sweepers=n)
            )
            speedups.append(sw_sweep / sweep_cycles)
        rows.append([name] + speedups)
    return ExperimentResult(
        exp_id="fig20",
        title="Sweep speedup vs software, by number of block sweepers",
        paper_claim="linear scaling to 2 sweepers, diminishing beyond "
        "(DRAM contention); 4 sweepers outperform the CPU by 2-3x",
        headers=["benchmark"] + [f"{n} sweepers" for n in sweeper_counts],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 21 — mark-bit cache
# ---------------------------------------------------------------------------

def fig21(scale: float = 0.05, seed: int = 1, n_warm_gcs: int = 2,
          cache_sizes: Sequence[int] = (0, 16, 64, 105, 128, 256),
          benchmark: str = "luindex") -> ExperimentResult:
    """Object access frequencies and mark-bit-cache filtering (Fig. 21).

    Each cache size is a self-contained cell: the measured mark runs on a
    *freshly built* heap (zeroed simulator, cold DRAM) restored to the
    deterministically evolved image, so any subset of sizes produces
    exactly the rows of the full sweep — the property the sharding merge
    and the simulation cache rely on.
    """
    profile = DACAPO_PROFILES[benchmark]
    built, _cp = build_heap(profile, scale=scale, seed=seed)
    heap = built.heap
    # Evolve the heap (the paper samples the 8th GC of luindex). The warm
    # phase is deterministic from the fresh build, so every process that
    # runs a cell reconstructs the identical evolved image.
    warm = MutatorModel(built, collector="hw")
    warm.run(n_gcs=n_warm_gcs)
    warm.mutate_phase()
    evolved = heap.checkpoint()

    # (a) access-frequency histogram from the live graph.
    counts: Dict[int, int] = {}
    for root in heap.roots.read_all():
        if root:
            counts[root] = counts.get(root, 0) + 1
    for addr in heap.reachable():
        for ref in heap.view(addr).refs():
            counts[ref] = counts.get(ref, 0) + 1
    total_accesses = sum(counts.values())
    by_count = sorted(counts.values(), reverse=True)
    top56 = sum(by_count[:56])

    # (b) filter effectiveness per cache size, each on a fresh heap.
    rows = []
    for size in cache_sizes:
        cell_built, _ = build_heap(profile, scale=scale, seed=seed)
        cell_heap = cell_built.heap
        cell_heap.restore(evolved)
        hw, _unit = run_hardware(
            cell_heap, GCUnitConfig(mark_bit_cache_entries=size)
        )
        duplicates = hw.objects_requeued + hw.counters["marker_filtered"]
        filtered_pct = (100.0 * hw.counters["marker_filtered"]
                        / max(1, duplicates))
        rows.append([size, hw.counters["marker_filtered"], duplicates,
                     filtered_pct, hw.mark_ms])
    return ExperimentResult(
        exp_id="fig21",
        title=f"Mark-bit cache ({benchmark} after {n_warm_gcs + 1} GCs)",
        paper_claim="~56 objects account for ~10% of mark accesses; a "
        "small cache filters them with little effect on mark time",
        headers=["cache entries", "filtered", "duplicate accesses",
                 "filtered %", "mark ms"],
        rows=rows,
        extras={
            "top56_share_pct": 100.0 * top56 / max(1, total_accesses),
            "access_histogram": by_count[:200],
            "total_accesses": total_accesses,
        },
    )


# ---------------------------------------------------------------------------
# Figure 22 — area
# ---------------------------------------------------------------------------

def fig22(config: Optional[GCUnitConfig] = None) -> ExperimentResult:
    """Area estimates (Fig. 22)."""
    model = AreaModel()
    config = config if config is not None else GCUnitConfig()
    rows = [["[a] " + k, v] for k, v in model.totals(config).items()]
    rows += [["[b] Rocket / " + k, v]
             for k, v in model.rocket_breakdown().items()]
    rows += [["[c] GC unit / " + k, v]
             for k, v in model.unit_breakdown(config).items()]
    rows.append(["unit/Rocket ratio %", 100.0 * model.unit_to_rocket_ratio(config)])
    rows.append(["unit SRAM-equivalent KB", model.sram_equivalent_kb(config)])
    return ExperimentResult(
        exp_id="fig22",
        title="Area (mm^2, SAED EDK 32/28-anchored model)",
        paper_claim="the GC unit is 18.5% the size of the Rocket CPU, "
        "equivalent to ~64 KB of SRAM; the mark queue dominates",
        headers=["component", "mm^2"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 23 — power and energy
# ---------------------------------------------------------------------------

def fig23(scale: float = 0.05, seed: int = 1,
          benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """DRAM power and total energy per pause, CPU vs unit (Fig. 23)."""
    model = EnergyModel()
    rows = []
    savings = []
    for name, profile in _profiles(benchmarks):
        comp = run_gc_comparison(profile, scale=scale, seed=seed)
        hw_stats = dict(comp.hw_mark_stats)
        for k, v in comp.hw_sweep_stats.items():
            hw_stats[k] = hw_stats.get(k, 0) + v
        e_sw = model.pause_energy(name, "sw", comp.sw.total_cycles,
                                  comp.sw_stats)
        e_hw = model.pause_energy(name, "hw", comp.hw.total_cycles, hw_stats)
        saving = EnergyModel.savings(e_sw, e_hw)
        savings.append(saving)
        rows.append([
            name, e_sw.dram.dynamic_mw, e_hw.dram.dynamic_mw,
            e_sw.attributable_mj, e_hw.attributable_mj, 100.0 * saving,
        ])
    rows.append(["mean", "", "", "", "",
                 100.0 * sum(savings) / len(savings)])
    return ExperimentResult(
        exp_id="fig23",
        title="DRAM power and GC energy per pause",
        paper_claim="the unit's DRAM power is much higher, but overall GC "
        "energy improves (~14.5% in the paper's estimate)",
        headers=["benchmark", "CPU DRAM mW", "unit DRAM mW", "CPU mJ",
                 "unit mJ", "energy saving %"],
        rows=rows,
        notes="Scale sensitivity: below scale~0.03 the simulated heap fits "
        "the CPU's caches (a regime the paper's 200 MB heaps never enter) "
        "and the comparison flips; run at scale>=0.05 for the paper-like "
        "regime.",
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in §IV/§VI)
# ---------------------------------------------------------------------------

def abl_layout(scale: float = 0.04, seed: int = 1,
               benchmarks: Sequence[str] = ("avrora", "pmd"),
               ) -> ExperimentResult:
    """Bidirectional vs conventional (TIB) layout cost on the CPU mark."""
    rows = []
    for name in benchmarks:
        profile = DACAPO_PROFILES[name]
        built, cp = build_heap(profile, scale=scale, seed=seed)
        heap = built.heap
        bi, _ = run_software(heap, layout="bidirectional")
        heap.restore(cp)
        conv, _ = run_software(heap, layout="conventional")
        rows.append([name, bi.mark_ms, conv.mark_ms,
                     conv.mark_cycles / bi.mark_cycles])
    return ExperimentResult(
        exp_id="abl_layout",
        title="Object-layout ablation (software mark)",
        paper_claim="the conventional TIB layout adds two accesses per "
        "object; bidirectional eliminates them (§IV-A idea I)",
        headers=["benchmark", "bidirectional ms", "conventional ms",
                 "conv/bidir"],
        rows=rows,
    )


def abl_decoupling(scale: float = 0.04, seed: int = 1,
                   benchmark: str = "pmd") -> ExperimentResult:
    """Decoupled marker/tracer vs a tightly coupled pipeline (idea II/III)."""
    profile = DACAPO_PROFILES[benchmark]
    built, cp = build_heap(profile, scale=scale, seed=seed)
    heap = built.heap
    rows = []
    for label, tq, slots in (("decoupled (TQ=128, 16 slots)", 128, 16),
                             ("coupled (TQ=1, 16 slots)", 1, 16),
                             ("single-slot marker", 128, 1)):
        heap.restore(cp)
        hw, _unit = run_hardware(
            heap, GCUnitConfig(tracer_queue_entries=tq, marker_slots=slots)
        )
        rows.append([label, hw.mark_ms])
    base = rows[0][1]
    for row in rows:
        row.append(row[1] / base)
    return ExperimentResult(
        exp_id="abl_decoupling",
        title=f"Marker/tracer decoupling ablation ({benchmark})",
        paper_claim="decoupling marking and tracing via the tracer queue "
        "lets the unit use bandwidth a control-flow-limited CPU cannot",
        headers=["configuration", "mark ms", "vs decoupled"],
        rows=rows,
    )


def abl_scheduler(scale: float = 0.04, seed: int = 1,
                  benchmark: str = "avrora") -> ExperimentResult:
    """FR-FCFS vs FIFO memory scheduling, 8 vs 16 outstanding reads."""
    profile = DACAPO_PROFILES[benchmark]
    rows = []
    results = {}
    for label, sched, window in (("FR-FCFS/16", "frfcfs", 16),
                                 ("FR-FCFS/8", "frfcfs", 8),
                                 ("FIFO/16", "fifo", 16),
                                 ("FIFO/8", "fifo", 8)):
        mem_cfg = MemorySystemConfig(
            dram=DRAMConfig(scheduler=sched, read_window=window)
        )
        comp = run_gc_comparison(profile, scale=scale, seed=seed,
                                 memsys_config=mem_cfg)
        results[label] = comp
        rows.append([label, comp.sw.mark_ms, comp.hw.mark_ms,
                     comp.mark_speedup])
    return ExperimentResult(
        exp_id="abl_scheduler",
        title=f"Memory-access-scheduler ablation ({benchmark})",
        paper_claim="performance significantly improved changing from FIFO "
        "MAS to FR-FCFS and raising outstanding reads from 8 to 16; Rocket "
        "was insensitive to the configuration",
        headers=["scheduler", "CPU mark ms", "unit mark ms", "mark x"],
        rows=rows,
    )


def abl_barriers(mutator_cycles: int = 100_000_000,
                 ref_ops: int = 4_000_000) -> ExperimentResult:
    """Barrier-design cost comparison (§III, §IV-E)."""
    rows = []
    for kind in (BarrierKind.SOFTWARE_CONDITIONAL, BarrierKind.VM_TRAP,
                 BarrierKind.COHERENCE, BarrierKind.REFLOAD):
        model = BARRIER_MODELS[kind]
        quiet = model.slowdown(mutator_cycles, ref_ops, slow_fraction=1e-4)
        churn = model.slowdown(mutator_cycles, ref_ops, slow_fraction=2e-2)
        rows.append([kind.value, 100.0 * (quiet - 1.0),
                     100.0 * (churn - 1.0)])
    return ExperimentResult(
        exp_id="abl_barriers",
        title="Concurrent-GC barrier overheads (analytic, one guarded op "
        "per 25 cycles)",
        paper_claim="ZGC-style software barriers target up to 15% "
        "slow-down; trap-based designs suffer trap storms under churn; the "
        "coherence/REFLOAD designs avoid both",
        headers=["barrier", "overhead % (low churn)",
                 "overhead % (high churn)"],
        rows=rows,
    )


def abl_superpages(scale: float = 0.04, seed: int = 1,
                   benchmark: str = "avrora") -> ExperimentResult:
    """Superpages vs 4 KiB pages under TLB pressure (§VII).

    Uses reach-scaled TLBs (as in fig18) so translation pressure at our
    heap sizes matches the paper's 200 MB regime.
    """
    profile = DACAPO_PROFILES[benchmark]
    rows = []
    for label, use_super in (("4 KiB pages", False), ("2 MiB superpages", True)):
        mem_cfg = MemorySystemConfig(use_superpages=use_super)
        built, cp = build_heap(profile, scale=scale, seed=seed,
                               config=mem_cfg)
        heap = built.heap
        heap.restore(cp)
        cfg = _scaled_tlb_unit("partitioned")
        hw, unit = run_hardware(heap, cfg)
        walks = unit.mark_stats.get("ptw.walks", 0)
        pte_reads = unit.mark_stats.get("ptw.pte_reads", 0)
        rows.append([label, hw.mark_ms, walks, pte_reads])
    base = rows[0][1]
    for row in rows:
        row.append(base / row[1])
    return ExperimentResult(
        exp_id="abl_superpages",
        title=f"Page-size ablation ({benchmark}, reach-scaled TLBs)",
        paper_claim="the TLB is currently a bottleneck, but large heaps "
        "could use superpages instead of 4KB pages (§VII)",
        headers=["mapping", "mark ms", "PTW walks", "PTE reads",
                 "speedup vs 4KiB"],
        rows=rows,
    )


def abl_nonblocking_ptw(scale: float = 0.04, seed: int = 1,
                        benchmark: str = "avrora") -> ExperimentResult:
    """Blocking vs concurrent page-table walker (§VI-A future work)."""
    profile = DACAPO_PROFILES[benchmark]
    built, cp = build_heap(profile, scale=scale, seed=seed)
    heap = built.heap
    rows = []
    for label, walks, mshrs in (("blocking PTW (paper)", 1, 1),
                                ("2 concurrent walks", 2, 2),
                                ("4 concurrent walks", 4, 4)):
        heap.restore(cp)
        cfg = _scaled_tlb_unit("partitioned")
        cfg = replace(cfg, ptw_concurrent_walks=walks,
                      ptw_cache=replace(cfg.ptw_cache, mshrs=mshrs))
        hw, _unit = run_hardware(heap, cfg)
        rows.append([label, hw.mark_ms, hw.sweep_ms])
    base = rows[0][1]
    for row in rows:
        row.append(base / row[1])
    return ExperimentResult(
        exp_id="abl_nonblocking_ptw",
        title=f"Page-table-walker concurrency ({benchmark}, reach-scaled "
        "TLBs)",
        paper_claim="future work should introduce a non-blocking TLB that "
        "can perform multiple page-table walks concurrently (§VI-A)",
        headers=["walker", "mark ms", "sweep ms", "mark speedup"],
        rows=rows,
    )


def abl_throttle(scale: float = 0.04, seed: int = 1,
                 benchmark: str = "avrora",
                 intervals=(None, 8, 16, 32)) -> ExperimentResult:
    """Bandwidth throttling of the unit (§VII)."""
    profile = DACAPO_PROFILES[benchmark]
    built, cp = build_heap(profile, scale=scale, seed=seed)
    heap = built.heap
    rows = []
    for interval in intervals:
        heap.restore(cp)
        hw, unit = run_hardware(
            heap, GCUnitConfig(bandwidth_throttle=interval)
        )
        requests = sum(v for k, v in unit.mark_stats.items()
                       if k.startswith("mem.requests."))
        label = "unthrottled" if interval is None else f"1 req / {interval} cy"
        rows.append([
            label, hw.mark_ms, hw.sweep_ms,
            requests / max(1, hw.mark_cycles),
        ])
    return ExperimentResult(
        exp_id="abl_throttle",
        title=f"Bandwidth-throttling ablation ({benchmark})",
        paper_claim="interference could be reduced by communicating with "
        "the memory controller to only use residual bandwidth; switching "
        "units on and off would let a concurrent GC throttle or boost "
        "tracing (§VII)",
        headers=["throttle", "mark ms", "sweep ms", "requests/cycle"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Fleet figures — multi-tenant GC under SLO (ROADMAP item 2)
# ---------------------------------------------------------------------------

def fleet_slo(scale: float = 0.015, seed: int = 1, n_gcs: int = 2,
              n_tenants: int = 4, n_queries: int = 3000, warmup: int = 150,
              policies: Sequence[str] = ("dedicated", "shared", "software"),
              n_units: int = 1, dram_tax: float = 0.25,
              shed_backlog_intervals: int = 0,
              profiles_cycle: Optional[Sequence[str]] = None,
              tenants: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Per-tenant tail latency and GC tax under fleet scheduling policies.

    One seeded open-loop arrival stream is sprayed across ``n_tenants``
    mixed-profile instances; each policy arbitrates their collections
    (dedicated unit per tenant / shared units behind a FIFO admission
    queue with a DRAM contention tax / software fallback) and every
    tenant replays its slice of the *identical* schedule against its
    adjusted pause timeline. ``tenants`` restricts which tenants are
    replayed — the shard/cache cell axis; the fleet schedule itself is
    always derived from the full roster, so any subset reproduces its
    rows byte-identically.
    """
    from repro.fleet.report import SLO_HEADERS, fleet_summary_rows, \
        simulate_fleet
    from repro.fleet.spec import DEFAULT_PROFILES_CYCLE, FleetSpec

    spec = FleetSpec(
        n_tenants=n_tenants,
        profiles_cycle=tuple(profiles_cycle) if profiles_cycle is not None
        else DEFAULT_PROFILES_CYCLE,
        scale=scale, seed=seed, n_gcs=n_gcs,
        n_queries=n_queries, warmup=warmup,
        n_units=n_units, dram_tax=dram_tax,
        shed_backlog_intervals=shed_backlog_intervals,
    )
    result = simulate_fleet(spec, policies=tuple(policies),
                            tenant_indices=tenants)
    rows = result.rows()
    return ExperimentResult(
        exp_id="fleet_slo",
        title=f"fleet SLO report: {n_tenants} tenants, "
        f"{n_units} shared unit(s)",
        paper_claim="in tail-latency-sensitive workloads, the effective "
        "performance impact of GC pauses is even higher than the raw CPU "
        "share (§I); a decoupled accelerator serves collections off the "
        "critical path",
        headers=list(SLO_HEADERS),
        rows=rows + fleet_summary_rows(rows),
        notes=f"open-loop schedule derived from the roster's hardware "
        f"base runs: one query per {result.interval_cycles} cycles, mean "
        f"service {result.service_mean_cycles} cycles; latency columns "
        "are per-tenant percentiles (fleet rows: worst tenant), goodput "
        "counts queries completed inside the run horizon.",
    )


def fleet_lbo(scale: float = 0.015, seed: int = 1, n_gcs: int = 2,
              fleet_sizes: Sequence[int] = (2, 4),
              collectors: Sequence[str] = ("sw", "hw", "concurrent"),
              profiles_cycle: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Lower-bound GC overhead per collector (Cai et al.), per fleet size."""
    from repro.fleet.lbo import LBO_HEADERS, fleet_lbo_rows
    from repro.fleet.spec import DEFAULT_PROFILES_CYCLE

    rows = fleet_lbo_rows(
        scale=scale, seed=seed, n_gcs=n_gcs, fleet_sizes=tuple(fleet_sizes),
        collectors=tuple(collectors),
        profiles_cycle=tuple(profiles_cycle) if profiles_cycle is not None
        else DEFAULT_PROFILES_CYCLE,
    )
    return ExperimentResult(
        exp_id="fleet_lbo",
        title="lower-bound GC overhead (LBO) per collector",
        paper_claim="Cai et al.: the cheapest observed configuration is an "
        "empirical baseline no real no-GC run could beat, so cost "
        "inflation over it lower-bounds the true GC overhead",
        headers=list(LBO_HEADERS),
        rows=rows,
        notes="cost = simulated wall cycles per tenant (geomean); the "
        "baseline is each tenant's cheapest of the three collectors; GC "
        "work % includes marking the concurrent collector overlapped "
        "with the mutator. Deviations from Cai et al. in DESIGN §15.",
    )


def fleet_resilience(scale: float = 0.015, seed: int = 1, n_gcs: int = 2,
                     n_tenants: int = 4, n_queries: int = 2000,
                     warmup: int = 100, n_units: int = 3,
                     dram_tax: float = 0.25,
                     failover_backoff_cycles: int = 50_000,
                     failover_retries: int = 3,
                     failover_timeout_cycles: int = 1_000_000,
                     profiles_cycle: Optional[Sequence[str]] = None,
                     rosters: Optional[Sequence[Sequence[str]]] = None
                     ) -> ExperimentResult:
    """Fleet goodput and tail latency under unit outages and brownouts.

    One fleet-level row per fault roster, all under the ``shared`` policy
    with failover armed: grants in flight on a crashed unit re-queue
    earliest-request-first onto the survivors with exponential backoff,
    and a request that exhausts its retry budget or its patience budget
    is served by the tenant's software collector (degraded mode, taxed
    honestly in its own column). ``rosters`` — ``(label, fault spec)``
    pairs — is the shard/cache cell axis: every cell recomputes its
    whole fleet schedule from the spec, so any roster subset reproduces
    its row byte-identically.
    """
    from repro.fleet.faults import DEFAULT_RESILIENCE_ROSTERS
    from repro.fleet.report import RESILIENCE_HEADERS, fleet_resilience_row
    from repro.fleet.spec import DEFAULT_PROFILES_CYCLE, FleetSpec

    if rosters is None:
        rosters = DEFAULT_RESILIENCE_ROSTERS
    spec = FleetSpec(
        n_tenants=n_tenants,
        profiles_cycle=tuple(profiles_cycle) if profiles_cycle is not None
        else DEFAULT_PROFILES_CYCLE,
        scale=scale, seed=seed, n_gcs=n_gcs,
        n_queries=n_queries, warmup=warmup,
        n_units=n_units, dram_tax=dram_tax,
        failover_backoff_cycles=failover_backoff_cycles,
        failover_retries=failover_retries,
        failover_timeout_cycles=failover_timeout_cycles,
    )
    rows = [fleet_resilience_row(label, spec, faults_spec)
            for label, faults_spec in rosters]
    return ExperimentResult(
        exp_id="fleet_resilience",
        title=f"fleet resilience: {n_tenants} tenants, {n_units} units, "
        f"fault drills",
        paper_claim="by replacing libhwgc, we can swap in a software "
        "implementation of our GC (§V-E) — at fleet scale that escape "
        "hatch is failover plus per-tenant software fallback, and the "
        "SLO report must price the degraded mode honestly",
        headers=list(RESILIENCE_HEADERS),
        rows=rows,
        notes="shared policy only (the dedicated/software baselines have "
        "no shared pool to fail); latency and availability columns take "
        "the worst tenant, counts sum; 'cancelled' are collections of "
        "crashed tenants (their later arrivals are shed and counted); "
        "conservation (arrived == done + in-flight + shed) is asserted "
        "per tenant before any row renders.",
    )


#: Registry used by EXPERIMENTS.md generation and the benchmark suite.
ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig01a": fig01a,
    "fig01b": fig01b,
    "conc_latency": conc_latency,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
    "fig23": fig23,
    "abl_layout": abl_layout,
    "abl_decoupling": abl_decoupling,
    "abl_scheduler": abl_scheduler,
    "abl_barriers": abl_barriers,
    "abl_superpages": abl_superpages,
    "abl_nonblocking_ptw": abl_nonblocking_ptw,
    "abl_throttle": abl_throttle,
    "fleet_slo": fleet_slo,
    "fleet_lbo": fleet_lbo,
    "fleet_resilience": fleet_resilience,
}
