"""Figure 20: block-sweeper scaling."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig20_sweeper_scaling(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig20, scale=bench_scale * 0.6,
                            sweeper_counts=(1, 2, 4, 8))
    for row in result.rows:
        name, s1, s2, s4, s8 = row
        # Near-linear to 2 sweepers...
        assert s2 > 1.25 * s1, f"{name}: 1->2 gain too small"
        # ...then contention flattens the curve (paper's knee).
        assert (s4 / s2) < (s2 / s1), f"{name}: no knee by 4 sweepers"
        assert s8 < 2.0 * s2, f"{name}: 8 sweepers scaled implausibly"
        # 2+ sweepers beat the CPU sweep outright.
        assert s2 > 1.2, f"{name}: 2 sweepers should beat the CPU"
