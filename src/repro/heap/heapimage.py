"""The assembled managed heap: spaces + allocator + roots + block list.

:class:`ManagedHeap` is the substrate both collectors operate on. It owns
the memory system, carves the MMTk-style spaces, and provides:

* allocation (`alloc`) routed to the MarkSweep space or, for objects larger
  than the biggest size class, the page-granular large-object space;
* root publication into hwgc-space;
* **functional ground truth**: :meth:`reachable` computes the reachable set
  by direct BFS over the memory image — the reference result every collector
  configuration must match exactly (property-tested);
* checkpoint/restore so one generated heap can be collected repeatedly
  under different hardware configurations (the paper's parameter sweeps).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.engine.simulator import Simulator
from repro.heap.allocator import SegregatedFreeListAllocator
from repro.heap.blocks import BlockList
from repro.heap.header import TAG_BIT, decode_refcount
from repro.heap.layout import BidirectionalLayout, ObjectShape
from repro.heap.metadata import HeapMetadata
from repro.heap.objectmodel import ObjectView
from repro.heap.roots import RootRegion
from repro.heap.sizeclass import SizeClassTable
from repro.heap.spaces import Space, SpaceKind, SpacePlan
from repro.memory.config import MemorySystemConfig, WORD_BYTES
from repro.memory.interconnect import MemorySystem, build_memory_system
from repro.memory.paging import PAGE_SIZE, VIRT_OFFSET


@dataclass
class HeapCheckpoint:
    """Opaque state captured by :meth:`ManagedHeap.checkpoint`."""

    words: np.ndarray
    mark_parity: int
    alloc_mark_value: int
    fresh_cursor: int
    class_blocks: Dict[int, List[int]]
    block_class: Dict[int, int]
    space_cursors: Dict[str, int]
    objects: List[int]
    los_objects: List[int]
    # Allocator lifetime counters (mutator-time accounting depends on them;
    # restoring into a fresh heap must reproduce them exactly).
    objects_allocated: int = 0
    bytes_allocated: int = 0


class ManagedHeap:
    """A JikesRVM-style heap inside the simulated memory system."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        config: Optional[MemorySystemConfig] = None,
        size_classes: Optional[SizeClassTable] = None,
    ):
        self.sim = sim if sim is not None else Simulator()
        self.memsys: MemorySystem = build_memory_system(self.sim, config)
        address_map = self.memsys.address_map
        self.plan = SpacePlan(address_map.heap)
        self.block_list = BlockList(self.memsys.phys, address_map.block_list)
        self.roots = RootRegion(self.memsys.phys, address_map.hwgc)
        self.size_classes = size_classes or SizeClassTable()
        #: Mark-bit value meaning "marked" for the *next* collection.
        self.mark_parity = 1
        self.allocator = SegregatedFreeListAllocator(
            self.memsys.phys,
            self.block_list,
            self.plan.marksweep.pstart,
            self.plan.marksweep.pend,
            VIRT_OFFSET,
            size_classes=self.size_classes,
            alloc_mark_value=0,
        )
        #: Every object ever allocated (virtual addresses); dead entries are
        #: pruned by :meth:`prune_dead` after a verified collection.
        self.objects: List[int] = []
        self.los_objects: List[int] = []
        self.gc_count = 0
        # Lazily-built SoA layout sidecar; dropped whenever the object
        # population can change (alloc / restore / prune_dead).
        self._metadata: Optional[HeapMetadata] = None

    # -- convenience -------------------------------------------------------

    @property
    def mem(self):
        return self.memsys.phys

    def view(self, addr: int) -> ObjectView:
        return ObjectView(self.memsys.phys, addr, VIRT_OFFSET,
                          meta=self._metadata)

    def metadata(self) -> HeapMetadata:
        """The SoA layout sidecar for the current object population.

        Built on first use and cached; any operation that allocates,
        restores, or prunes objects invalidates it, so callers may hold the
        returned reference only while the population is stable. Views handed
        out by :meth:`view` pick it up automatically once built.
        """
        meta = self._metadata
        if meta is None:
            meta = HeapMetadata(
                self.memsys.phys,
                self.objects,
                VIRT_OFFSET,
                ms_pstart=self.plan.marksweep.pstart,
                block_class=self.allocator._block_class,
            )
            self._metadata = meta
        return meta

    def to_virtual(self, paddr: int) -> int:
        return paddr + VIRT_OFFSET

    def to_physical(self, vaddr: int) -> int:
        return vaddr - VIRT_OFFSET

    # -- allocation ---------------------------------------------------------

    def alloc(self, shape: ObjectShape, space: str = "auto") -> int:
        """Allocate an object; returns its reference (virtual address).

        ``space`` may be ``"auto"`` (MarkSweep if it fits, else LOS),
        ``"immortal"`` or ``"code"``.
        """
        n_words = BidirectionalLayout.words_needed(shape)
        if space == "auto":
            if self.size_classes.fits(n_words):
                addr = self.allocator.alloc(shape)
                self.objects.append(addr)
                self._metadata = None
                return addr
            return self._alloc_bump(self.plan.los, shape, align=PAGE_SIZE,
                                    track_los=True)
        if space == "immortal":
            return self._alloc_bump(self.plan.immortal, shape)
        if space == "code":
            return self._alloc_bump(self.plan.code, shape)
        raise ValueError(f"unknown space {space!r}")

    def _alloc_bump(
        self, target: Space, shape: ObjectShape, align: int = WORD_BYTES,
        track_los: bool = False,
    ) -> int:
        nbytes = BidirectionalLayout.words_needed(shape) * WORD_BYTES
        if align == PAGE_SIZE:
            nbytes = -(-nbytes // PAGE_SIZE) * PAGE_SIZE
        cell_paddr = target.bump_alloc(nbytes, align=align)
        status_paddr = BidirectionalLayout.initialize(
            self.memsys.phys, cell_paddr, shape,
            mark=self.allocator.alloc_mark_value,
        )
        addr = self.to_virtual(status_paddr)
        self.objects.append(addr)
        self._metadata = None
        if track_los:
            self.los_objects.append(addr)
        return addr

    def new_object(
        self, n_refs: int, payload_words: int = 0, is_array: bool = False,
        space: str = "auto",
    ) -> ObjectView:
        """Allocate and wrap in an :class:`ObjectView` in one call."""
        addr = self.alloc(ObjectShape(n_refs, payload_words, is_array), space)
        return self.view(addr)

    # -- roots ------------------------------------------------------------------

    def set_roots(self, refs: Iterable[int]) -> None:
        self.roots.write_roots(refs)

    # -- ground truth ---------------------------------------------------------------

    def reachable(self) -> Set[int]:
        """The exact reachable set (BFS over the memory image).

        Uses the SoA sidecar's flat layout columns to avoid re-decoding a
        status word per visited object; the traversal itself still reads the
        live memory image, so the result reflects current reference slots.
        """
        return self.metadata().reachable(self.roots.read_all())

    def live_marksweep_objects(self) -> Set[int]:
        """Reachable objects that live in the MarkSweep space."""
        ms = self.plan.marksweep
        return {a for a in self.reachable() if ms.contains(self.to_physical(a))}

    def remap_tracked(self, mapper) -> int:
        """Apply an address mapping to the tracked object lists.

        Used by relocation: after evacuation the forwarding table's
        ``resolve`` is the mapping from old to new addresses, and the
        tracking lists (which feed the metadata sidecar and the BFS
        oracle) must follow the objects. Returns how many entries moved.
        """
        moved = 0
        new_objects = []
        for addr in self.objects:
            new = mapper(addr)
            if new != addr:
                moved += 1
            new_objects.append(new)
        self.objects = new_objects
        self.los_objects = [mapper(addr) for addr in self.los_objects]
        self._metadata = None
        return moved

    def prune_dead(self, live: Set[int]) -> int:
        """Drop freed MarkSweep objects from the tracking list after a GC."""
        ms = self.plan.marksweep
        before = len(self.objects)
        self.objects = [
            a for a in self.objects
            if a in live or not ms.contains(self.to_physical(a))
        ]
        self._metadata = None
        return before - len(self.objects)

    # -- GC epoch management -------------------------------------------------------

    def complete_gc_cycle(self) -> None:
        """Flip mark parity after a finished mark+sweep.

        Objects that survived carry the just-used parity, which is exactly
        "unmarked" under the flipped parity; fresh allocations must match,
        so the allocator's initial mark value becomes the old parity.
        """
        old_parity = self.mark_parity
        self.mark_parity = 1 - old_parity
        self.allocator.alloc_mark_value = old_parity
        self.allocator.refresh_free_lists()
        self.gc_count += 1

    # -- checkpoint / restore ----------------------------------------------------------

    def checkpoint(self) -> HeapCheckpoint:
        return HeapCheckpoint(
            words=self.memsys.phys.snapshot(),
            mark_parity=self.mark_parity,
            alloc_mark_value=self.allocator.alloc_mark_value,
            fresh_cursor=self.allocator._fresh_cursor,
            class_blocks=copy.deepcopy(self.allocator._class_blocks),
            block_class=dict(self.allocator._block_class),
            space_cursors={s.name: s.cursor for s in self.plan},
            objects=list(self.objects),
            los_objects=list(self.los_objects),
            objects_allocated=self.allocator.objects_allocated,
            bytes_allocated=self.allocator.bytes_allocated,
        )

    def restore(self, checkpoint: HeapCheckpoint) -> None:
        self.memsys.phys.restore(checkpoint.words)
        self.mark_parity = checkpoint.mark_parity
        self.allocator.alloc_mark_value = checkpoint.alloc_mark_value
        self.allocator._fresh_cursor = checkpoint.fresh_cursor
        self.allocator._class_blocks = copy.deepcopy(checkpoint.class_blocks)
        self.allocator._block_class = dict(checkpoint.block_class)
        for space in self.plan:
            space.cursor = checkpoint.space_cursors[space.name]
        self.objects = list(checkpoint.objects)
        self.los_objects = list(checkpoint.los_objects)
        self.allocator.objects_allocated = checkpoint.objects_allocated
        self.allocator.bytes_allocated = checkpoint.bytes_allocated
        self._metadata = None

    # -- integrity checks (used by tests and debug harnesses) ----------------------------

    def check_free_lists(self) -> int:
        """Validate all block free lists; returns the number of free cells.

        Asserts: pointers stay within their block, land on cell boundaries,
        no cycles, and free cells are not tagged live.
        """
        total = 0
        for desc in self.block_list:
            head = desc.freelist_head
            seen = 0
            while head != 0:
                if not desc.base_vaddr <= head < desc.base_vaddr + desc.size_bytes:
                    raise AssertionError(
                        f"free ptr {head:#x} escapes block {desc.index}"
                    )
                if (head - desc.base_vaddr) % desc.cell_bytes:
                    raise AssertionError(
                        f"free ptr {head:#x} not on a cell boundary"
                    )
                word = self.memsys.phys.read_word(self.to_physical(head))
                if word & TAG_BIT:
                    raise AssertionError(
                        f"free cell {head:#x} still tagged live"
                    )
                seen += 1
                if seen > desc.n_cells:
                    raise AssertionError(f"cyclic free list in block {desc.index}")
                head = word
            total += seen
        return total

    def __repr__(self) -> str:
        return (
            f"ManagedHeap(objects={len(self.objects)}, "
            f"blocks={self.allocator.blocks_in_use}, gc={self.gc_count})"
        )
