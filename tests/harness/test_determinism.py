"""Determinism guarantees: kernels and worker counts must not change results.

The simulation is only trustworthy if the same ``(profile, scale, seed)``
produces bit-identical cycle counts and ``events_processed`` regardless of

* which event-queue kernel runs it (``REPRO_ENGINE=bucket``, ``heapq``,
  or ``vector``),
* whether figures are regenerated serially or fanned out across worker
  processes (``run-all --jobs 1`` vs ``--jobs N``),
* whether the heap came from a fresh build or a warm ``REPRO_HEAP_CACHE``.

The cycle-stamped trace stream is the strongest fingerprint: it records
every request, queue sample, and phase edge, so its sha256 digest equality
is a per-event assertion of identical execution.
"""

import pytest

from repro.engine.simulator import (
    ENGINES,
    BucketSimulator,
    HeapqSimulator,
    SimulationError,
    Simulator,
    VectorSimulator,
)
from repro.harness import heapcache
from repro.harness.parallel import digests, run_suite
from repro.harness.runners import build_heap, run_hardware, run_software
from repro.harness.suite import run_entry
from repro.harness.tracing import trace_collection
from repro.workloads.profiles import DACAPO_PROFILES

SCALE = 0.008


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    """Each test builds through a pristine in-process cache, no disk layer."""
    monkeypatch.delenv("REPRO_HEAP_CACHE", raising=False)
    heapcache.reset_cache()
    yield
    heapcache.reset_cache()


def _collect_fingerprint(profile, scale, seed):
    """Everything a GC run reports, plus the kernel's event count."""
    built, checkpoint = build_heap(profile, scale=scale, seed=seed)
    sw, _delta = run_software(built.heap)
    sw_events = built.heap.sim.events_processed
    built.heap.restore(checkpoint)
    hw, _unit = run_hardware(built.heap)
    return (
        sw.mark_cycles, sw.sweep_cycles, sw.objects_marked, sw_events,
        hw.mark_cycles, hw.sweep_cycles, hw.objects_marked,
        built.heap.sim.events_processed,
    )


class TestKernelSelection:
    def test_default_is_bucket(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert isinstance(Simulator(), BucketSimulator)

    def test_env_selects_heapq(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        assert isinstance(Simulator(), HeapqSimulator)

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert isinstance(Simulator(), VectorSimulator)

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "quantum")
        with pytest.raises(SimulationError, match="REPRO_ENGINE"):
            Simulator()

    def test_unknown_engine_error_lists_kernels(self, monkeypatch):
        """The rejection names every registered kernel, sorted, so a typo'd
        env var is self-correcting from the error message alone."""
        monkeypatch.setenv("REPRO_ENGINE", "simd")
        with pytest.raises(SimulationError) as excinfo:
            Simulator()
        message = str(excinfo.value)
        assert "'simd'" in message
        assert str(sorted(ENGINES)) in message
        assert "vector" in message

    def test_direct_instantiation_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        assert isinstance(BucketSimulator(), BucketSimulator)


class TestKernelDeterminism:
    @pytest.mark.slow
    def test_kernels_bit_identical(self, monkeypatch):
        """Both kernels must agree on every cycle count and event count."""
        profile = DACAPO_PROFILES["avrora"]
        prints = {}
        for engine in ("bucket", "heapq", "vector"):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            heapcache.reset_cache()  # rebuild under this kernel
            prints[engine] = _collect_fingerprint(profile, SCALE, seed=1)
        assert prints["bucket"] == prints["heapq"] == prints["vector"]

    @pytest.mark.slow
    def test_same_seed_same_result(self):
        profile = DACAPO_PROFILES["luindex"]
        first = _collect_fingerprint(profile, SCALE, seed=3)
        heapcache.reset_cache()
        second = _collect_fingerprint(profile, SCALE, seed=3)
        assert first == second

    def test_synthetic_workload_event_parity(self):
        """A mixed zero-delay / short-delay workload, kernel by kernel."""

        def pinger(sim, n):
            for i in range(n):
                yield i % 3  # exercises 0-delay and wheel delays
                event = sim.event()
                sim.schedule(2, event.trigger, i)
                got = yield event
                assert got == i

        outcomes = []
        for kernel in (BucketSimulator, HeapqSimulator, VectorSimulator):
            sim = kernel()
            sim.process(pinger(sim, 500))
            sim.run()
            outcomes.append((sim.now, sim.events_processed))
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestTraceDeterminism:
    """The event stream itself, not just the summary counters, must be
    bit-identical across kernels and cache states."""

    @pytest.mark.slow
    def test_trace_digest_identical_across_kernels(self, monkeypatch):
        digests_by_engine = {}
        for engine in ("bucket", "heapq", "vector"):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            heapcache.reset_cache()
            capture = trace_collection("avrora", scale=SCALE, seed=1)
            assert len(capture.bus) > 0
            digests_by_engine[engine] = capture.digest
        assert (digests_by_engine["bucket"] == digests_by_engine["heapq"]
                == digests_by_engine["vector"])

    @pytest.mark.slow
    def test_trace_digest_identical_warm_vs_cold_cache(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv("REPRO_HEAP_CACHE", str(tmp_path / "heaps"))
        heapcache.reset_cache()
        cold = trace_collection("avrora", scale=SCALE, seed=2)
        # Drop the in-process layer so the warm run reconstructs the heap
        # from the on-disk checkpoint.
        heapcache.reset_cache()
        warm = trace_collection("avrora", scale=SCALE, seed=2)
        assert len(cold.bus) > 0
        assert cold.digest == warm.digest
        assert cold.phase_cycles == warm.phase_cycles

    def test_single_collector_trace_repeats(self):
        first = trace_collection("avrora", scale=SCALE, seed=1,
                                 collectors="hw")
        heapcache.reset_cache()
        second = trace_collection("avrora", scale=SCALE, seed=1,
                                  collectors="hw")
        assert first.digest == second.digest

    def test_bus_detached_after_capture(self):
        capture = trace_collection("avrora", scale=SCALE, seed=1,
                                   collectors="hw")
        assert capture.bus is not None
        # The module-level registry default must remain untouched: a later
        # simulation in the same process starts with tracing disabled.
        from repro.engine.stats import StatsRegistry
        assert StatsRegistry().trace is None


class TestParallelDeterminism:
    def test_jobs_merge_is_deterministic(self):
        """--jobs 1 and --jobs 4 must yield identical per-figure digests."""
        only = ["fig22", "abl_barriers"]  # static models: instant
        serial = run_suite(jobs=1, only=only)
        fanned = run_suite(jobs=4, only=only)
        assert [r.exp_id for r in serial] == [r.exp_id for r in fanned]
        assert digests(serial) == digests(fanned)

    @pytest.mark.slow
    def test_worker_process_matches_inline(self):
        """A simulated figure digests identically in-process and in a pool."""
        import multiprocessing

        kwargs = dict(scale=SCALE, seed=1, n_gcs=1, benchmarks=["avrora"])
        inline = run_entry(0, "fig01a", kwargs)
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=2) as pool:
            remote = pool.apply(run_entry, (0, "fig01a", kwargs))
        assert inline.digest == remote.digest
        assert inline.rendered == remote.rendered
