"""Interconnect glue: ports, validation, system assembly."""

import pytest

from repro.engine.simulator import Simulator
from repro.memory.config import MemorySystemConfig
from repro.memory.interconnect import MemorySystem, TileLinkPort, build_memory_system
from repro.memory.paging import VIRT_OFFSET
from repro.memory.request import AccessKind, MemRequest


@pytest.fixture
def system():
    sim = Simulator()
    return sim, build_memory_system(
        sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))


class TestPorts:
    def test_port_reads_writes_amos(self, system):
        sim, ms = system
        port = ms.port("unit")
        events = [port.read(4096, 64), port.write(8192, 8), port.amo(0x4000, 8)]
        sim.run()
        assert all(e.triggered for e in events)
        assert ms.stats.get("mem.requests.unit") == 3

    def test_validating_port_rejects_bad_transfers(self, system):
        _sim, ms = system
        port = ms.port("unit")
        with pytest.raises(ValueError):
            port.read(4096, 24)
        with pytest.raises(ValueError):
            port.read(4100, 8)

    def test_non_validating_port_allows_line_plus(self, system):
        sim, ms = system
        port = ms.port("cpu", validate=False)
        event = port.read(4096, 128)
        sim.run()
        assert event.triggered

    def test_submit_keeps_request_source(self, system):
        sim, ms = system
        port = ms.port("wrapper")
        req = MemRequest(addr=4096, size=8, kind=AccessKind.READ,
                         source="inner")
        port.submit(req)
        sim.run()
        assert ms.stats.get("mem.requests.inner") == 1
        assert ms.stats.get("mem.requests.wrapper") == 0


class TestSystemAssembly:
    def test_whole_memory_is_mapped(self, system):
        _sim, ms = system
        # First and last heap pages translate through the real page table.
        start, end = ms.address_map.heap
        assert ms.virt_to_phys(ms.to_virtual(start)) == start
        assert ms.virt_to_phys(ms.to_virtual(end - 8)) == end - 8

    def test_linear_mapping_helpers_are_inverse(self):
        paddr = 0x123458
        assert MemorySystem.to_physical_linear(
            MemorySystem.to_virtual(paddr)) == paddr
        assert MemorySystem.to_virtual(0) == VIRT_OFFSET

    def test_pipe_model_selection(self):
        sim = Simulator()
        ms = build_memory_system(
            sim, MemorySystemConfig(model="pipe",
                                    total_bytes=16 * 1024 * 1024))
        from repro.memory.pipe import LatencyBandwidthPipe
        assert isinstance(ms.model, LatencyBandwidthPipe)

    def test_bandwidth_shared_with_model(self, system):
        sim, ms = system
        ms.port("x").read(4096, 64)
        sim.run()
        assert ms.bandwidth.total_bytes == 64
