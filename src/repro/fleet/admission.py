"""GC scheduling policies and the shared-unit admission queue.

Three policies arbitrate who collects on what:

* ``dedicated`` — one accelerator unit (and DRAM channel) per tenant;
  pause timelines pass through untouched. The upper bound: zero queueing,
  zero contention, maximum silicon.
* ``shared`` — the fleet shares ``n_units`` accelerator units behind a
  FIFO admission queue. A tenant wanting to collect *stops its mutator at
  the request cycle* (stop-the-world) and resumes when a unit finishes
  its collection, so queue wait widens the pause; every admitted
  collection is additionally stretched by the shared-DRAM-channel
  service-rate tax ``1 + dram_tax * (n_tenants - 1) / n_units``.
* ``software`` — no accelerator at all: every tenant falls back to the
  software collector on its own CPU (the under-contention fallback).

The ``shared`` event loop is a plain earliest-request-first heap. FIFO is
well-defined because each tenant's requests are pushed in order and a
tenant's next request time never precedes its previous grant's end (the
mutator was stopped), so the heap never reorders an earlier request
behind a later one.

With a :class:`~repro.fleet.faults.FleetFaultSpec` armed, ``shared``
grows failover: a grant in flight when its unit crashes is re-queued
earliest-request-first onto the surviving units with deterministic
exponential backoff; a request that exhausts its retry budget, or whose
wait would exceed the per-request timeout, is served by the tenant's own
*software* collector instead (the fleet-scale analogue of
``run_gc_safe``'s graceful degradation — the collection still happens,
the tenant just pays the software-duration fallback tax). Collections
are never shed: a skipped GC would be heap-semantically wrong. Load
shedding stays where it is honest, at the query-replay tier, where shed
arrivals are counted by the conservation law.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.workloads.mutator import MutatorRunResult

POLICIES: Tuple[str, ...] = ("dedicated", "shared", "software")


def resolve_policy(name: str) -> str:
    """Validate a policy name, raising with the valid list (CLI UX)."""
    if name not in POLICIES:
        raise ValueError(f"unknown policy {name!r}; "
                         f"valid policies: {', '.join(POLICIES)}")
    return name


@dataclass(frozen=True)
class FailoverConfig:
    """Retry discipline of the shared policy under an armed fault plane.

    ``backoff_cycles`` seeds the deterministic exponential backoff: the
    k-th retry of a request re-enters the queue ``backoff_cycles *
    2**(k-1)`` cycles after the crash was detected. ``max_retries``
    bounds hardware attempts per request (beyond it: software fallback).
    ``timeout_cycles`` is the per-request patience budget measured from
    the *original* request; a request that cannot start hardware service
    inside it falls back to software at the deadline (0 disables).
    """

    backoff_cycles: int = 50_000
    max_retries: int = 3
    timeout_cycles: int = 1_000_000


@dataclass(frozen=True)
class ServiceGrant:
    """One admitted collection on one unit (or its software fallback)."""

    tenant: int
    pause_index: int
    unit: int     # -1 when served by the tenant's software fallback
    request: int  # cycle of this (possibly re-queued) service attempt
    grant: int    # cycle service started (>= request)
    end: int      # grant + stretched duration
    #: The original request cycle (== ``request`` unless re-queued).
    first_request: int = -1
    #: Hardware service attempts consumed, interrupted ones included.
    attempts: int = 1
    #: ``"unit"`` or ``"fallback"``.
    via: str = "unit"

    def __post_init__(self) -> None:
        if self.first_request < 0:
            object.__setattr__(self, "first_request", self.request)

    @property
    def wait_cycles(self) -> int:
        return self.grant - self.request


@dataclass(frozen=True)
class FailoverEvent:
    """One interrupted service attempt: the unit died mid-collection."""

    tenant: int
    pause_index: int
    unit: int
    grant: int        # cycle the doomed attempt started
    crash_cycle: int  # cycle the unit died (service discarded here)
    attempt: int      # 1-based attempt number that was interrupted


@dataclass
class ScheduleResult:
    """The fleet schedule under one policy."""

    policy: str
    #: Per-tenant adjusted timelines — what each tenant's queries see.
    timelines: List[MutatorRunResult]
    #: Admission log (empty for ``dedicated``/``software``).
    grants: List[ServiceGrant]
    #: Per-tenant total cycles spent stopped waiting for a unit.
    queue_wait_cycles: List[int]
    #: Per-tenant interrupted-attempt counts (unit died mid-service).
    failovers: List[int] = field(default_factory=list)
    #: Per-tenant cycles burned on doomed attempts and backoff waits.
    retry_wait_cycles: List[int] = field(default_factory=list)
    #: Per-tenant collections served by the software fallback.
    fallbacks: List[int] = field(default_factory=list)
    #: Per-tenant extra stall cycles the fallback cost over the taxed
    #: hardware duration the request originally asked for.
    fallback_tax_cycles: List[int] = field(default_factory=list)
    #: Per-tenant collections cancelled because the tenant crashed.
    cancelled: List[int] = field(default_factory=list)
    #: The failover log (empty without an armed fault plane).
    failover_events: List[FailoverEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.timelines)
        for name in ("failovers", "retry_wait_cycles", "fallbacks",
                     "fallback_tax_cycles", "cancelled"):
            if not getattr(self, name):
                setattr(self, name, [0] * n)

    def availability(self, tenant: int) -> float:
        """Fraction of the tenant's served collections that hardware
        served (1.0 for the fault-free policies and for a tenant with no
        collections at all)."""
        hw = sum(1 for g in self.grants
                 if g.tenant == tenant and g.via == "unit")
        total = hw + self.fallbacks[tenant]
        return hw / total if total else 1.0


def _dedicated(timelines: Sequence[MutatorRunResult]) -> ScheduleResult:
    return ScheduleResult(
        policy="dedicated",
        timelines=[replace(tl) for tl in timelines],
        grants=[],
        queue_wait_cycles=[0] * len(timelines),
    )


def _shared(timelines: Sequence[MutatorRunResult], n_units: int,
            dram_tax: float) -> ScheduleResult:
    n_tenants = len(timelines)
    tax = 1.0 + dram_tax * (n_tenants - 1) / n_units
    #: (request cycle, tenant, pause index) — tenant breaks ties.
    pending: List[Tuple[int, int, int]] = []
    for t, tl in enumerate(timelines):
        if tl.pauses:
            heapq.heappush(pending, (tl.pauses[0].start_cycle, t, 0))
    units = [0] * n_units  # cycle each unit becomes free
    drift = [0] * n_tenants  # how far each tenant's schedule has slipped
    adjusted: List[List] = [[] for _ in range(n_tenants)]
    grants: List[ServiceGrant] = []
    waits = [0] * n_tenants
    while pending:
        request, t, i = heapq.heappop(pending)
        unit = min(range(n_units), key=lambda u: (units[u], u))
        grant = max(request, units[unit])
        base_pause = timelines[t].pauses[i]
        duration = math.ceil(base_pause.pause_cycles * tax)
        end = grant + duration
        units[unit] = end
        grants.append(ServiceGrant(tenant=t, pause_index=i, unit=unit,
                                   request=request, grant=grant, end=end))
        waits[t] += grant - request
        # The tenant is stopped from request to end: its recorded pause is
        # the whole stall (wait + taxed collection).
        adjusted[t].append(replace(base_pause, start_cycle=request,
                                   mark_cycles=end - request,
                                   sweep_cycles=0))
        drift[t] += (end - request) - base_pause.pause_cycles
        if i + 1 < len(timelines[t].pauses):
            heapq.heappush(
                pending,
                (timelines[t].pauses[i + 1].start_cycle + drift[t], t, i + 1))
    return ScheduleResult(
        policy="shared",
        timelines=[
            MutatorRunResult(collector=tl.collector, pauses=adjusted[t],
                             mutator_cycles=tl.mutator_cycles)
            for t, tl in enumerate(timelines)
        ],
        grants=grants,
        queue_wait_cycles=waits,
    )


def _shared_failover(timelines: Sequence[MutatorRunResult], n_units: int,
                     dram_tax: float, faults, failover: FailoverConfig,
                     software_timelines: Optional[
                         Sequence[MutatorRunResult]]) -> ScheduleResult:
    """The ``shared`` event loop under an armed fleet fault plane.

    Identical arbitration to :func:`_shared` — earliest-request-first
    heap, least-loaded-unit pick with index tie-break, DRAM tax — plus
    the fault semantics of the module docstring. With an *empty* armed
    plane and the patience budget disabled it reproduces
    :func:`_shared`'s grants exactly (asserted by the chaos battery);
    the timeout is part of the failover discipline and can fire on
    fault-free congestion too, which is one more reason fault-free
    callers route through :func:`_shared` — the PR 9 digest contract
    never depends on this equivalence holding.
    """
    n_tenants = len(timelines)
    tax = 1.0 + dram_tax * (n_tenants - 1) / n_units
    #: (eligible cycle, original request, tenant, pause index, attempt)
    #: — re-queued entries become eligible after backoff but keep their
    #: original request for ordering, so grants that died together on a
    #: crashed unit re-enter earliest-request-first.
    pending: List[Tuple[int, int, int, int, int]] = []
    for t, tl in enumerate(timelines):
        if tl.pauses:
            start = tl.pauses[0].start_cycle
            heapq.heappush(pending, (start, start, t, 0, 1))
    units = [0] * n_units
    crash_at = [faults.crash_cycle(u) for u in range(n_units)]
    drift = [0] * n_tenants
    adjusted: List[List] = [[] for _ in range(n_tenants)]
    grants: List[ServiceGrant] = []
    events: List[FailoverEvent] = []
    waits = [0] * n_tenants
    failovers = [0] * n_tenants
    retry_wait = [0] * n_tenants
    fallbacks = [0] * n_tenants
    fallback_tax = [0] * n_tenants
    cancelled = [0] * n_tenants

    def sw_duration(t: int, i: int, hw_work: int) -> int:
        """Software-fallback duration for tenant ``t``'s pause ``i``:
        the matching pause of its software base timeline, or a 3x stall
        when no software timeline was supplied (documented coarse
        stand-in for the sw/hw pause ratio)."""
        if software_timelines is not None and \
                i < len(software_timelines[t].pauses):
            return software_timelines[t].pauses[i].pause_cycles
        return 3 * hw_work

    while pending:
        eligible, first_request, t, i, attempt = heapq.heappop(pending)
        tenant_crash = faults.tenant_crash_cycle(t)
        if tenant_crash is not None and first_request >= tenant_crash:
            # The tenant is offline: this and every later collection of
            # its monotone request schedule is cancelled, not admitted.
            cancelled[t] += len(timelines[t].pauses) - i
            continue
        base_pause = timelines[t].pauses[i]
        work = math.ceil(base_pause.pause_cycles * tax
                         * faults.tenant_factor(t, first_request))
        deadline = (first_request + failover.timeout_cycles
                    if failover.timeout_cycles > 0 else None)

        def finish(end: int, grant: ServiceGrant) -> None:
            grants.append(grant)
            adjusted[t].append(replace(base_pause,
                                       start_cycle=first_request,
                                       mark_cycles=end - first_request,
                                       sweep_cycles=0))
            drift[t] += (end - first_request) - base_pause.pause_cycles
            if i + 1 < len(timelines[t].pauses):
                nxt = timelines[t].pauses[i + 1].start_cycle + drift[t]
                heapq.heappush(pending, (nxt, nxt, t, i + 1, 1))

        def fall_back(at: int) -> None:
            fallbacks[t] += 1
            duration = math.ceil(sw_duration(t, i, work)
                                 * faults.tenant_factor(t, first_request))
            end = at + duration
            # The degraded-mode tax: what the software stall cost over
            # the taxed hardware duration the request asked for.
            fallback_tax[t] += max(0, duration - work)
            finish(end, ServiceGrant(tenant=t, pause_index=i, unit=-1,
                                     request=eligible, grant=at, end=end,
                                     first_request=first_request,
                                     attempts=attempt, via="fallback"))

        # Units that can still start this grant: alive at their earliest
        # possible start. The pick replicates _shared exactly —
        # least-loaded first, unit index breaking ties — so an empty
        # armed plane reproduces the fault-free schedule.
        alive = [u for u in range(n_units)
                 if crash_at[u] is None
                 or max(eligible, units[u]) < crash_at[u]]
        if not alive:
            # No hardware anywhere (connection refused, not a timeout):
            # the tenant detects immediately and degrades.
            fall_back(eligible)
            continue
        unit = min(alive, key=lambda u: (units[u], u))
        grant_cycle = max(eligible, units[unit])
        if deadline is not None and grant_cycle > deadline:
            # The queue cannot serve it inside the patience budget; the
            # tenant gives up at the deadline and collects in software.
            retry_wait[t] += deadline - eligible
            fall_back(deadline)
            continue
        end = faults.service_end(unit, grant_cycle, work)
        crash = crash_at[unit]
        if crash is not None and end > crash:
            # Interrupted mid-service: discard, back off, re-queue
            # earliest-request-first onto the survivors.
            events.append(FailoverEvent(tenant=t, pause_index=i, unit=unit,
                                        grant=grant_cycle, crash_cycle=crash,
                                        attempt=attempt))
            failovers[t] += 1
            units[unit] = crash  # the unit is dead; freeze its clock
            if attempt > failover.max_retries:
                retry_wait[t] += crash - eligible
                fall_back(crash)
                continue
            backoff = failover.backoff_cycles * (2 ** (attempt - 1))
            requeue = crash + backoff
            retry_wait[t] += requeue - eligible
            if deadline is not None and requeue > deadline:
                fall_back(max(crash, deadline))
                continue
            heapq.heappush(pending, (requeue, first_request, t, i,
                                     attempt + 1))
            continue
        units[unit] = end
        waits[t] += grant_cycle - eligible
        finish(end, ServiceGrant(tenant=t, pause_index=i, unit=unit,
                                 request=eligible, grant=grant_cycle,
                                 end=end, first_request=first_request,
                                 attempts=attempt, via="unit"))

    return ScheduleResult(
        policy="shared",
        timelines=[
            MutatorRunResult(collector=tl.collector, pauses=adjusted[t],
                             mutator_cycles=tl.mutator_cycles)
            for t, tl in enumerate(timelines)
        ],
        grants=grants,
        queue_wait_cycles=waits,
        failovers=failovers,
        retry_wait_cycles=retry_wait,
        fallbacks=fallbacks,
        fallback_tax_cycles=fallback_tax,
        cancelled=cancelled,
        failover_events=events,
    )


def schedule_fleet(policy: str, timelines: Sequence[MutatorRunResult],
                   n_units: int = 1, dram_tax: float = 0.25,
                   faults=None,
                   failover: Optional[FailoverConfig] = None,
                   software_timelines: Optional[
                       Sequence[MutatorRunResult]] = None) -> ScheduleResult:
    """Arbitrate the fleet's collections under ``policy``.

    ``timelines`` are the per-tenant *requested* timelines (already
    phase-offset): hardware-collector runs for ``dedicated``/``shared``,
    software-collector runs for ``software``. The returned timelines are
    what each tenant's query replay should run against.

    ``faults`` (a :class:`~repro.fleet.faults.FleetFaultSpec`) arms the
    fleet fault plane for the ``shared`` policy; ``failover`` tunes the
    retry discipline and ``software_timelines`` supplies the per-tenant
    software-collector runs that price the degraded-mode fallback. With
    ``faults`` unset the legacy fault-free event loop runs unchanged, so
    fault-free schedules stay byte-identical to the pinned PR 9 contract.
    """
    resolve_policy(policy)
    if n_units < 1:
        raise ValueError(
            f"fleet needs at least one GC unit (n_units={n_units}): the "
            f"shared DRAM tax divides by n_units and admission picks "
            f"min() over the unit pool")
    if policy == "shared":
        if faults is not None:
            return _shared_failover(timelines, n_units, dram_tax, faults,
                                    failover or FailoverConfig(),
                                    software_timelines)
        return _shared(timelines, n_units, dram_tax)
    result = _dedicated(timelines)
    return replace(result, policy=policy)
