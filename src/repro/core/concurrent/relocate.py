"""Relocating sweep: block evacuation with a forwarding table (§IV-B opt. 1).

The reclamation unit's relocating variant "evacuat[es] all live objects in
a block into a new location" instead of threading dead cells onto free
lists. Evacuation produces the forwarding table the read barrier consults
(Fig. 9) and invalidates the evacuated pages; a later *fixup* (remap) pass
rewrites stale references — in a Pauseless-style collector that work rides
along with the next traversal, here it is an explicit phase so tests can
exercise each step.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.concurrent.forwarding import ForwardingTable
from repro.heap.blocks import BlockDescriptor
from repro.heap.header import decode_refcount, header_is_marked, scan_word_is_object
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import WORD_BYTES
from repro.memory.paging import PAGE_SIZE


class RelocatingSweep:
    """Evacuates whole blocks, building old->new forwardings."""

    def __init__(self, heap: ManagedHeap, parity: Optional[int] = None):
        self.heap = heap
        #: Mark parity identifying live objects (defaults to the parity the
        #: just-finished mark used).
        self.parity = parity if parity is not None else heap.mark_parity
        self.objects_moved = 0
        self.bytes_copied = 0
        # Fresh destination blocks per size class (never evacuated from).
        self._dest_blocks: Dict[int, int] = {}

    # -- destination allocation (fresh blocks only) -------------------------

    def _fresh_cell(self, class_index: int) -> int:
        """A cell from a destination block that is not being evacuated."""
        allocator = self.heap.allocator
        block_index = self._dest_blocks.get(class_index)
        if block_index is not None:
            head = self.heap.block_list.freelist_head(block_index)
            if head != 0:
                next_vaddr = self.heap.mem.read_word(
                    allocator.to_physical(head)
                )
                self.heap.block_list.set_freelist_head(block_index, next_vaddr)
                return head
        block_index = allocator._carve_block(class_index)
        self._dest_blocks[class_index] = block_index
        return self._fresh_cell(class_index)

    # -- evacuation -------------------------------------------------------------

    def evacuate_blocks(self, block_indices: Iterable[int],
                        defer_free: bool = False) -> ForwardingTable:
        """Evacuate the live objects of the given blocks.

        Returns the forwarding table; the evacuated blocks end up fully
        free (their free lists rebuilt), and every page they span is marked
        invalidated for the read-barrier protocol.

        With ``defer_free`` the source blocks are *quarantined* instead:
        scan words cleared, free-list head left empty. A concurrent cycle
        needs this because the forwarding table is keyed by old addresses —
        if the allocator handed an evacuated cell out again while the table
        is live, a reference to the new object would resolve through the
        stale forwarding entry (the ABA race). The cycle's own sweep
        relinks the quarantined cells, so they become allocatable exactly
        when the table is dropped.
        """
        heap = self.heap
        mem = heap.mem
        table = ForwardingTable()
        for index in block_indices:
            desc = heap.block_list.read(index)
            class_index = heap.size_classes.class_for(
                desc.cell_bytes // WORD_BYTES
            )
            for i in range(desc.n_cells):
                cell_vaddr = desc.base_vaddr + i * desc.cell_bytes
                cell_paddr = heap.to_physical(cell_vaddr)
                first = mem.read_word(cell_paddr)
                if not scan_word_is_object(first):
                    continue
                n_refs, _ = decode_refcount(first)
                status_paddr = cell_paddr + WORD_BYTES * (1 + n_refs)
                status = mem.read_word(status_paddr)
                if not header_is_marked(status, self.parity):
                    continue  # dead: evacuation simply abandons it
                # Copy the whole cell (scan word, refs, status, payload)
                # into a fresh cell of the same class — preserving the mark
                # state, unlike a fresh allocation.
                new_cell_vaddr = self._fresh_cell(class_index)
                new_cell_paddr = heap.to_physical(new_cell_vaddr)
                words = mem.read_words(cell_paddr,
                                       desc.cell_bytes // WORD_BYTES)
                mem.write_words(new_cell_paddr, words)
                old_obj = cell_vaddr + WORD_BYTES * (1 + n_refs)
                new_obj = new_cell_vaddr + WORD_BYTES * (1 + n_refs)
                table.add(old_obj, new_obj)
                self.objects_moved += 1
                self.bytes_copied += desc.cell_bytes
            # The whole source block is now free: rebuild its free list and
            # invalidate its pages.
            if defer_free:
                self._quarantine_block(desc)
            else:
                self._free_whole_block(desc)
            span = desc.cell_bytes * desc.n_cells
            for off in range(0, span, PAGE_SIZE):
                table.invalidate_page(desc.base_vaddr + off)
        return table

    def _free_whole_block(self, desc: BlockDescriptor) -> None:
        mem = self.heap.mem
        for i in range(desc.n_cells):
            cell_vaddr = desc.base_vaddr + i * desc.cell_bytes
            next_vaddr = (
                desc.base_vaddr + (i + 1) * desc.cell_bytes
                if i + 1 < desc.n_cells else 0
            )
            mem.write_word(self.heap.to_physical(cell_vaddr), next_vaddr)
        self.heap.block_list.set_freelist_head(desc.index, desc.base_vaddr)

    def _quarantine_block(self, desc: BlockDescriptor) -> None:
        """Empty the block without making its cells allocatable: scan words
        cleared (so the sweeper relinks every cell as free) and the
        free-list head zeroed (so the allocator cannot reuse an old address
        while the forwarding table still maps it)."""
        mem = self.heap.mem
        for i in range(desc.n_cells):
            cell_vaddr = desc.base_vaddr + i * desc.cell_bytes
            mem.write_word(self.heap.to_physical(cell_vaddr), 0)
        self.heap.block_list.set_freelist_head(desc.index, 0)

    # -- remap / fixup -------------------------------------------------------------

    def fixup_references(self, table: ForwardingTable) -> int:
        """Rewrite every stale reference (roots + live heap fields).

        In a concurrent collector this is folded into the next traversal;
        standalone it lets tests verify the heap is identical (modulo
        placement) after relocation. Returns the number of fields fixed.
        """
        heap = self.heap
        fixed = 0
        new_roots = []
        for root in heap.roots.read_all():
            resolved = table.resolve(root)
            if resolved != root:
                fixed += 1
            new_roots.append(resolved)
        heap.roots.write_roots(new_roots)
        # Walk from the (fixed) roots, resolving fields as we go.
        frontier = [r for r in new_roots if r != 0]
        seen: Set[int] = set()
        while frontier:
            addr = frontier.pop()
            if addr in seen:
                continue
            seen.add(addr)
            view = heap.view(addr)
            for i in range(view.n_refs):
                ref = view.get_ref(i)
                if ref == 0:
                    continue
                resolved = table.resolve(ref)
                if resolved != ref:
                    view.set_ref(i, resolved)
                    fixed += 1
                frontier.append(resolved)
        return fixed
