"""Request validation and the tracer's aligned-transfer splitter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.request import (
    AccessKind,
    MemRequest,
    split_into_aligned_transfers,
    validate_tilelink,
)


class TestMemRequest:
    def test_basic_fields(self):
        req = MemRequest(addr=0x100, size=8, kind=AccessKind.READ,
                         source="marker")
        assert not req.is_write
        assert req.kind.needs_response_data

    def test_write_is_posted(self):
        req = MemRequest(addr=0, size=8, kind=AccessKind.WRITE)
        assert req.is_write
        assert not req.kind.needs_response_data

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MemRequest(addr=0, size=0, kind=AccessKind.READ)
        with pytest.raises(ValueError):
            MemRequest(addr=-8, size=8, kind=AccessKind.READ)


class TestTileLinkRules:
    @pytest.mark.parametrize("size", [8, 16, 32, 64])
    def test_aligned_sizes_pass(self, size):
        validate_tilelink(MemRequest(addr=size * 3, size=size,
                                     kind=AccessKind.READ))

    @pytest.mark.parametrize("size", [4, 12, 24, 128])
    def test_bad_sizes_fail(self, size):
        with pytest.raises(ValueError):
            validate_tilelink(MemRequest(addr=0, size=size,
                                         kind=AccessKind.READ))

    def test_misaligned_fails(self):
        with pytest.raises(ValueError):
            validate_tilelink(MemRequest(addr=8, size=16,
                                         kind=AccessKind.READ))


class TestSplitter:
    def test_paper_example(self):
        """§V-C: 15 refs at 0x1a18 -> sizes 8, 32, 64, 16 in this order."""
        transfers = split_into_aligned_transfers(0x1A18, 15 * 8)
        assert [size for _a, size in transfers] == [8, 32, 64, 16]

    def test_aligned_full_lines(self):
        transfers = split_into_aligned_transfers(0x1000, 128)
        assert transfers == [(0x1000, 64), (0x1040, 64)]

    def test_single_word(self):
        assert split_into_aligned_transfers(0x18, 8) == [(0x18, 8)]

    def test_unaligned_input_rejected(self):
        with pytest.raises(ValueError):
            split_into_aligned_transfers(0x1001, 8)
        with pytest.raises(ValueError):
            split_into_aligned_transfers(0x1000, 12)

    @given(
        start_words=st.integers(0, 4096),
        n_words=st.integers(1, 200),
    )
    @settings(max_examples=200, deadline=None)
    def test_split_properties(self, start_words, n_words):
        """Every split covers the range exactly once with legal transfers."""
        addr, nbytes = start_words * 8, n_words * 8
        transfers = split_into_aligned_transfers(addr, nbytes)
        cursor = addr
        for t_addr, t_size in transfers:
            assert t_addr == cursor, "transfers must be contiguous"
            assert t_size in (8, 16, 32, 64)
            assert t_addr % t_size == 0, "transfers must be naturally aligned"
            cursor += t_size
        assert cursor == addr + nbytes, "must cover the range exactly"
