"""A full concurrent collection cycle (§IV-D/E), end to end.

The prototype evaluates the unit stop-the-world; this module assembles the
pause-free cycle the design generalizes to, from the pieces that already
exist: the write/read barriers (:mod:`.barriers`), the forwarding table
(:mod:`.forwarding`), and relocation (:mod:`.relocate`), orchestrated
around the unmodified traversal and reclamation units.

Phase structure of one cycle (the pause the application observes is only
the handshake + sweep):

1. **Relocation prologue** (optional, brief STW): evacuate a few blocks
   with ``defer_free`` — the forwarding table stays keyed by old
   addresses, so the evacuated cells are quarantined (not reallocatable)
   until the cycle's own sweep relinks them. Tracked addresses and the
   root table are remapped immediately; live heap *fields* stay stale and
   are served by the forwarding table mid-traversal.
2. **Concurrent mark**: snapshot-at-the-beginning. New objects are
   allocated black (mark value = the cycle's parity) so the sweep cannot
   reclaim them; the write barrier publishes every overwritten reference
   into hwgc-space, where the polling reader funnels it back into the mark
   queue; the read barrier heals stale fields through the forwarding
   table, and the traversal unit resolves every queued reference through
   the same table.
3. **Termination handshake** (pause begins): mutation has quiesced; the
   reader drains the final publications and the traversal completes.
4. **Root reconciliation + fixup**: hwgc-space is rewritten with the
   mutator's *actual* root set (barrier publications were queue traffic,
   not roots), and — if relocation ran — every remaining stale reference
   is rewritten via the forwarding table.
5. **Sweep** (STW, as in the paper): unreachable-and-unmarked cells are
   freed. Objects that died *during* marking were still marked (floating
   garbage, the SATB guarantee's price); they are reclaimed by the next
   cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.core.concurrent.barriers import MutatorBarriers
from repro.core.concurrent.forwarding import ForwardingTable
from repro.core.concurrent.relocate import RelocatingSweep
from repro.core.config import GCUnitConfig
from repro.core.unit import GCUnit
from repro.heap.heapimage import ManagedHeap


def relocate_prologue(
    heap: ManagedHeap, n_blocks: int
) -> Tuple[Optional[ForwardingTable], Optional[RelocatingSweep]]:
    """Evacuate the first ``n_blocks`` allocated blocks (deterministic
    choice), quarantining the sources for the lifetime of the returned
    forwarding table.

    At cycle start every allocated cell carries the allocator's current
    mark value, so evacuating at that parity moves *all* objects in the
    chosen blocks — garbage moves too and is reclaimed by this cycle's
    sweep, the conservative choice a cycle-start relocation must make.
    """
    indices: List[int] = []
    for desc in heap.block_list:
        indices.append(desc.index)
        if len(indices) >= n_blocks:
            break
    if not indices:
        return None, None
    relocator = RelocatingSweep(heap, parity=heap.allocator.alloc_mark_value)
    table = relocator.evacuate_blocks(indices, defer_free=True)
    heap.remap_tracked(table.resolve)
    heap.roots.write_roots(
        [table.resolve(r) for r in heap.roots.read_all()])
    return table, relocator


@dataclass
class ConcurrentGCResult:
    """Outcome of one concurrent cycle.

    ``mark_cycles`` spans the whole concurrent mark (racing span +
    handshake); only ``handshake_cycles`` of it pauses the application, so
    ``pause_cycles`` — the quantity the latency figures attribute to GC —
    is handshake + sweep.
    """

    mark_cycles: int
    handshake_cycles: int
    sweep_cycles: int
    objects_marked: int
    cells_freed: int
    cells_live: int
    write_barrier_hits: int
    read_barrier_fixes: int
    barrier_appends_read: int
    refs_forwarded: int
    objects_relocated: int
    fields_fixed: int
    mutator_ops: int
    mutator_allocs: int
    alloc_failures: int
    #: Reachable set captured at the handshake (after root reconciliation
    #: and fixup) — the only oracle valid for verifying a collection whose
    #: object graph changed mid-cycle.
    oracle: Set[int] = field(default_factory=set)

    @property
    def pause_cycles(self) -> int:
        return self.handshake_cycles + self.sweep_cycles

    @property
    def concurrent_cycles(self) -> int:
        """Marking cycles that overlapped the running mutator."""
        return self.mark_cycles - self.handshake_cycles


class ConcurrentCycle:
    """Orchestrates one concurrent collection against a live mutator.

    ``mutator`` is duck-typed: it must provide ``process(barriers)`` (a
    simulation-process generator performing every reference operation
    through the given :class:`MutatorBarriers`) and ``final_roots()`` (the
    logical root set after mutation, consulted once the mutator has
    quiesced). :class:`repro.workloads.mutator.ConcurrentMutator` is the
    standard implementation.
    """

    def __init__(
        self,
        heap: ManagedHeap,
        config: Optional[GCUnitConfig] = None,
        mutator=None,
        relocate_blocks: int = 0,
    ):
        if mutator is None:
            raise ValueError("a concurrent cycle needs a mutator")
        self.heap = heap
        self.config = config if config is not None else GCUnitConfig()
        self.mutator = mutator
        self.relocate_blocks = relocate_blocks
        self.barriers: Optional[MutatorBarriers] = None
        self.forwarding: Optional[ForwardingTable] = None
        self.result: Optional[ConcurrentGCResult] = None

    def run(self, unit: Optional[GCUnit] = None,
            on_phase: Optional[Callable[[str], None]] = None,
            ) -> ConcurrentGCResult:
        heap = self.heap
        unit = unit if unit is not None else GCUnit(heap, self.config)
        notify = on_phase if on_phase is not None else (lambda _p: None)

        # 1. Relocation prologue (STW, brief).
        relocator: Optional[RelocatingSweep] = None
        if self.relocate_blocks:
            notify("relocate")
            self.forwarding, relocator = relocate_prologue(
                heap, self.relocate_blocks)

        # 2+3. Concurrent mark with allocate-black, then the handshake.
        # New objects must survive this cycle's sweep even if the traversal
        # never reaches them: they are born with the marking parity.
        allocator = heap.allocator
        prev_alloc_mark = allocator.alloc_mark_value
        allocator.alloc_mark_value = heap.mark_parity
        self.barriers = MutatorBarriers(heap, forwarding=self.forwarding)
        notify("mark")
        try:
            mark_cycles, handshake_cycles = unit.mark_concurrent(
                self.mutator, self.barriers, forwarding=self.forwarding)
        finally:
            allocator.alloc_mark_value = prev_alloc_mark

        # 4. Root reconciliation + fixup. The hwgc region accumulated the
        # write barrier's publications; those were queue traffic, not
        # roots. Rewrite it with the mutator's logical root set, then (if
        # relocation ran) rewrite every remaining stale field.
        logical_roots = self.mutator.final_roots()
        if self.forwarding is not None:
            logical_roots = [self.forwarding.resolve(r)
                             for r in logical_roots]
        heap.set_roots(logical_roots)
        fields_fixed = 0
        if relocator is not None:
            fields_fixed = relocator.fixup_references(self.forwarding)
        oracle = heap.reachable()

        # 5. STW sweep. Floating garbage (died during marking, but marked)
        # survives to the next cycle; quarantined evacuated cells are
        # relinked here, ending the forwarding table's lifetime.
        notify("sweep")
        sweep_cycles = unit.sweep()

        trav = unit.traversal
        recl = unit.reclamation
        assert trav is not None and recl is not None
        self.result = ConcurrentGCResult(
            mark_cycles=mark_cycles,
            handshake_cycles=handshake_cycles,
            sweep_cycles=sweep_cycles,
            objects_marked=trav.marker.objects_marked,
            cells_freed=recl.cells_freed,
            cells_live=recl.cells_live,
            write_barrier_hits=self.barriers.write_barrier_hits,
            read_barrier_fixes=self.barriers.read_barrier_fixes,
            barrier_appends_read=trav.reader.barrier_appends_read,
            refs_forwarded=trav.refs_forwarded,
            objects_relocated=(relocator.objects_moved
                               if relocator is not None else 0),
            fields_fixed=fields_fixed,
            mutator_ops=getattr(self.mutator, "ops", 0),
            mutator_allocs=getattr(self.mutator, "allocs", 0),
            alloc_failures=getattr(self.mutator, "alloc_failures", 0),
            oracle=oracle,
        )
        return self.result
