"""Header/status-word encoding (Fig. 11) and mark-parity logic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heap.header import (
    ARRAY_FLAG,
    MARK_BIT,
    MAX_REFS,
    SCAN_WORD_FLAGS,
    TAG_BIT,
    decode_refcount,
    header_is_live,
    header_is_marked,
    header_with_mark,
    make_header,
    make_scan_word,
    scan_word_is_object,
)


class TestEncoding:
    def test_header_has_tag_bit(self):
        assert make_header(0) & TAG_BIT

    def test_scan_word_low_bits_are_101(self):
        assert make_scan_word(3) & 0b111 == SCAN_WORD_FLAGS

    def test_array_flag_is_msb(self):
        assert make_header(5, is_array=True) & ARRAY_FLAG
        assert decode_refcount(make_header(5, is_array=True)) == (5, True)

    def test_refcount_range_checked(self):
        with pytest.raises(ValueError):
            make_header(-1)
        with pytest.raises(ValueError):
            make_header(MAX_REFS + 1)
        with pytest.raises(ValueError):
            make_scan_word(MAX_REFS + 1)

    def test_mark_validated(self):
        with pytest.raises(ValueError):
            make_header(0, mark=2)

    @given(n_refs=st.integers(0, MAX_REFS), is_array=st.booleans(),
           mark=st.integers(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, n_refs, is_array, mark):
        header = make_header(n_refs, is_array, mark=mark)
        assert decode_refcount(header) == (n_refs, is_array)
        scan = make_scan_word(n_refs, is_array)
        assert decode_refcount(scan) == (n_refs, is_array)
        assert scan_word_is_object(scan)


class TestParity:
    def test_marked_under_parity_1(self):
        header = make_header(2, mark=1)
        assert header_is_marked(header, 1)
        assert not header_is_marked(header, 0)

    def test_marked_under_parity_0(self):
        header = make_header(2, mark=0)
        assert header_is_marked(header, 0)
        assert not header_is_marked(header, 1)

    @given(n_refs=st.integers(0, 100), start_mark=st.integers(0, 1),
           parity=st.integers(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_header_with_mark_drives_bit(self, n_refs, start_mark, parity):
        header = make_header(n_refs, mark=start_mark)
        marked = header_with_mark(header, parity)
        assert header_is_marked(marked, parity)
        # Marking never disturbs the refcount or tag.
        assert decode_refcount(marked) == decode_refcount(header)
        assert marked & TAG_BIT

    def test_alternating_parity_needs_no_clear(self):
        """The sweep never clears mark bits: surviving objects are simply
        'unmarked' under the next (flipped) parity."""
        header = header_with_mark(make_header(1, mark=0), 1)  # GC 1 marks it
        next_parity = 0
        assert not header_is_marked(header, next_parity)


class TestSweepDiscrimination:
    def test_free_cell_next_pointer_is_not_object(self):
        # Free-list next pointers are 8-aligned: LSB 0.
        assert not scan_word_is_object(0x40_0008)
        assert not scan_word_is_object(0)  # terminator

    def test_live_detection(self):
        assert header_is_live(make_header(0))
        assert not header_is_live(0x40_0008)
