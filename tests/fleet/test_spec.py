"""FleetSpec: the roster is deterministic, validated, and well-mixed."""

import pytest

from repro.fleet.spec import DEFAULT_PROFILES_CYCLE, FleetSpec
from repro.fleet.timeline import base_run, tenant_timeline
from repro.workloads.mutator import GCPauseRecord, MutatorRunResult


class TestRoster:
    def test_deterministic(self):
        assert FleetSpec(seed=7).tenants() == FleetSpec(seed=7).tenants()

    def test_seed_changes_roster_phases(self):
        a = FleetSpec(seed=1).tenants()
        b = FleetSpec(seed=2).tenants()
        assert [t.phase_frac for t in a] != [t.phase_frac for t in b]

    def test_profiles_cycle(self):
        roster = FleetSpec(n_tenants=5).tenants()
        cycle = DEFAULT_PROFILES_CYCLE
        assert [t.benchmark for t in roster] == [
            cycle[i % len(cycle)] for i in range(5)]

    def test_tenants_get_distinct_seeds_and_phases(self):
        roster = FleetSpec(n_tenants=6).tenants()
        assert len({t.seed for t in roster}) == 6
        assert len({t.phase_frac for t in roster}) == 6
        assert all(0.0 <= t.phase_frac < 1.0 for t in roster)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            FleetSpec(n_tenants=0)
        with pytest.raises(ValueError, match="at least one GC unit"):
            FleetSpec(n_units=0)
        with pytest.raises(ValueError, match="unknown profiles"):
            FleetSpec(profiles_cycle=("lusearch", "nope"))
        with pytest.raises(ValueError, match="at least one profile"):
            FleetSpec(profiles_cycle=())


def synthetic_base(starts_and_durations, mutator=5_000_000):
    run = MutatorRunResult(collector="hw", mutator_cycles=mutator)
    for i, (start, duration) in enumerate(starts_and_durations):
        run.pauses.append(GCPauseRecord(
            index=i, start_cycle=start, mark_cycles=duration,
            sweep_cycles=0, objects_marked=0, cells_freed=0))
    return run


class TestTenantTimeline:
    def test_phase_zero_is_the_base_run(self):
        base = synthetic_base([(1_000_000, 200_000), (3_000_000, 250_000)])
        shifted = tenant_timeline(base, 0.0)
        assert shifted.pauses == base.pauses
        assert shifted.mutator_cycles == base.mutator_cycles

    def test_offset_shifts_pauses_and_mutator_together(self):
        base = synthetic_base([(1_000_000, 200_000), (3_000_000, 250_000)])
        shifted = tenant_timeline(base, 0.5)
        offset = shifted.pauses[0].start_cycle - base.pauses[0].start_cycle
        assert offset > 0
        assert shifted.mutator_cycles == base.mutator_cycles + offset
        assert [p.start_cycle - offset for p in shifted.pauses] == \
            [p.start_cycle for p in base.pauses]
        # Well-formed: monotone, non-overlapping, inside the window.
        cursor = 0
        for pause in shifted.pauses:
            assert pause.start_cycle >= cursor
            cursor = pause.start_cycle + pause.pause_cycles
        assert cursor <= shifted.total_cycles

    def test_base_run_never_mutated(self):
        base = synthetic_base([(1_000_000, 200_000)])
        before = [p.start_cycle for p in base.pauses]
        tenant_timeline(base, 0.9)
        assert [p.start_cycle for p in base.pauses] == before

    def test_phase_frac_validated(self):
        base = synthetic_base([(1_000_000, 200_000)])
        with pytest.raises(ValueError, match="phase_frac"):
            tenant_timeline(base, 1.0)

    @pytest.mark.slow
    def test_base_run_memoized(self):
        a = base_run("luindex", "hw", 0.008, 1, 1)
        b = base_run("luindex", "hw", 0.008, 1, 1)
        assert a is b
