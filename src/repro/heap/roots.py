"""The hwgc root-communication region (§V-A "Root Scanning", §IV-C).

"We modify the root scanning mechanism in Jikes to not write the references
into the software GC's mark queue but instead write them into a region in
memory that is visible to the GC unit (hwgc-space)."

Layout: word 0 holds the number of roots; words 1.. hold object references
(virtual addresses). The same region doubles as the concurrent write
barrier's communication channel: "When overwriting a reference, write it
into the same region in memory that is used to communicate the roots"
(§IV-D) — :meth:`RootRegion.append` is that barrier write.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


class RootRegion:
    """The in-memory root table shared between runtime and GC unit."""

    def __init__(self, mem: PhysicalMemory, region: Tuple[int, int]):
        self.mem = mem
        self.base, self.end = region
        self.capacity = (self.end - self.base) // WORD_BYTES - 1
        self.mem.write_word(self.base, 0)

    @property
    def count(self) -> int:
        return self.mem.read_word(self.base)

    def clear(self) -> None:
        self.mem.write_word(self.base, 0)

    def write_roots(self, roots: Iterable[int]) -> None:
        """Replace the table contents — what root scanning does at GC start."""
        roots = list(roots)
        if len(roots) > self.capacity:
            raise MemoryError(
                f"{len(roots)} roots exceed hwgc-space capacity {self.capacity}"
            )
        self.mem.write_words(self.base + WORD_BYTES, roots)
        self.mem.write_word(self.base, len(roots))

    def append(self, ref: int) -> None:
        """Write-barrier append of an overwritten reference (§IV-D)."""
        count = self.count
        if count >= self.capacity:
            raise MemoryError("hwgc-space overflow (write-barrier storm)")
        self.mem.write_word(self.base + WORD_BYTES * (1 + count), ref)
        self.mem.write_word(self.base, count + 1)

    def read_all(self) -> List[int]:
        count = self.count
        if count == 0:
            return []
        return self.mem.read_words(self.base + WORD_BYTES, count)

    def entry_addr(self, index: int) -> int:
        """Physical address of entry ``index`` (the reader streams these)."""
        if index < 0 or index >= self.count:
            raise IndexError(f"root {index} out of {self.count}")
        return self.base + WORD_BYTES * (1 + index)
