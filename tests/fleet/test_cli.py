"""``python -m repro fleet`` CLI: policy validation UX and output."""

import pytest

from repro.__main__ import main


class TestPolicyValidation:
    def test_bogus_policy_exits_nonzero_listing_valid(self, capsys):
        assert main(["fleet", "--policy", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in ("dedicated", "shared", "software"):
            assert name in err

    def test_one_bad_policy_in_a_list_still_fails(self, capsys):
        assert main(["fleet", "--policy", "dedicated,bogus"]) == 2
        assert "valid policies" in capsys.readouterr().err

    def test_empty_policy_selection_fails(self, capsys):
        assert main(["fleet", "--policy", ","]) == 2
        assert "valid policies" in capsys.readouterr().err


class TestFleetCommand:
    def test_prints_table_and_digest(self, capsys):
        rc = main(["fleet", "--scale", "0.008", "--tenants", "2",
                   "--queries", "300", "--warmup", "30", "--gcs", "1",
                   "--policy", "dedicated", "--digest"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "## fleet_slo" in out
        assert "goodput q/s" in out
        digest = out.strip().splitlines()[-1]
        assert len(digest) == 64 and int(digest, 16) >= 0

    @pytest.mark.slow
    def test_lbo_flag_appends_the_lbo_table(self, capsys):
        rc = main(["fleet", "--scale", "0.008", "--tenants", "2",
                   "--queries", "200", "--warmup", "20", "--gcs", "1",
                   "--policy", "dedicated", "--lbo"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "## fleet_lbo" in out
        assert "LBO %" in out
