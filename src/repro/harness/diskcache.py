"""Shared on-disk cache plumbing: atomic writes, LRU eviction, size caps.

Both content-addressed caches — the heap-build cache
(:mod:`repro.harness.heapcache`, ``REPRO_HEAP_CACHE``) and the simulation
result cache (:mod:`repro.harness.simcache`, ``REPRO_SIM_CACHE``) — share
the same disk discipline:

* writes are tmp + ``os.replace`` so concurrent workers never observe a
  torn entry;
* the directory is a *bounded* LRU: with a ``*_MAX_MB`` cap configured,
  the least-recently-used entries (by mtime; readers ``os.utime`` on hit)
  are evicted after each write until the directory fits the cap;
* disk trouble is never fatal — a cache is an optimization, so every
  helper here swallows ``OSError`` and degrades to "no cache".
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple


def max_mb_from_env(var: str) -> Optional[float]:
    """Parse a ``*_MAX_MB`` cap; unset/empty/invalid/non-positive → None."""
    raw = os.environ.get(var, "")
    if not raw:
        return None
    try:
        cap = float(raw)
    except ValueError:
        return None
    return cap if cap > 0 else None


def atomic_write_bytes(path: Path, blob: bytes) -> bool:
    """tmp + rename write; returns False (instead of raising) on IO error."""
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def touch(path: Path) -> None:
    """Refresh an entry's mtime on read so eviction is LRU, not FIFO."""
    try:
        os.utime(path)
    except OSError:
        pass


def evict_lru(directory: Path, max_mb: Optional[float],
              suffix: str = "") -> int:
    """Delete least-recently-used ``*suffix`` entries until under the cap.

    Returns how many entries were removed. A ``None`` cap, a missing
    directory, or any IO trouble is a no-op. Entries that vanish
    concurrently (another worker evicting) are skipped silently.
    """
    if max_mb is None:
        return 0
    directory = Path(directory)
    entries: List[Tuple[float, int, Path]] = []
    try:
        for path in directory.iterdir():
            if suffix and not path.name.endswith(suffix):
                continue
            if path.name.endswith(".tmp"):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
    except OSError:
        return 0
    budget = max_mb * 1024 * 1024
    total = sum(size for _mtime, size, _path in entries)
    if total <= budget:
        return 0
    removed = 0
    # Oldest first; stop as soon as the survivors fit the cap.
    for _mtime, size, path in sorted(entries):
        if total <= budget:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
    return removed
