"""Software verification of hardware-GC results (§V-E).

"By replacing libhwgc, we can swap in a software implementation of our GC,
as well as a version that performs software checks of the hardware unit
(or produces a snapshot of the heap). This approach helped for debugging."

:class:`HeapVerifier` is that debug path: a functional (untimed) mark over
the heap image compared bit-for-bit against what a collector produced,
plus structural checks of free lists and block metadata.
:func:`snapshot_heap` / :func:`diff_snapshots` support the snapshot-based
debugging workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.heap.header import (
    decode_refcount,
    header_is_marked,
    scan_word_is_object,
)
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import WORD_BYTES


@dataclass
class VerificationReport:
    """Outcome of a software check of a collection."""

    objects_checked: int = 0
    mark_errors: List[str] = field(default_factory=list)
    sweep_errors: List[str] = field(default_factory=list)
    freelist_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.mark_errors or self.sweep_errors
                    or self.freelist_errors)

    def raise_if_failed(self) -> None:
        if not self.ok:
            problems = (self.mark_errors + self.sweep_errors
                        + self.freelist_errors)
            preview = "; ".join(problems[:5])
            raise AssertionError(
                f"hardware GC verification failed "
                f"({len(problems)} problems): {preview}"
            )


class HeapVerifier:
    """Functional re-execution of marking, compared against the heap image."""

    def __init__(self, heap: ManagedHeap):
        self.heap = heap

    def software_mark_set(self) -> Set[int]:
        """The reference result: BFS straight over the memory image."""
        return self.heap.reachable()

    def check_marks(self, parity: Optional[int] = None,
                    report: Optional[VerificationReport] = None,
                    live: Optional[Set[int]] = None,
                    ) -> VerificationReport:
        """Every tracked object's mark bit must match functional liveness.

        ``live`` lets the caller supply a pre-computed oracle (e.g. the
        reachable set captured *before* a hardware run). That matters under
        fault injection: a corrupting fault mutates the object graph, so a
        post-hoc BFS would agree with the corrupted heap and miss the
        damage.
        """
        heap = self.heap
        parity = parity if parity is not None else heap.mark_parity
        report = report or VerificationReport()
        expected_live = live if live is not None else self.software_mark_set()
        for addr in heap.objects:
            view = heap.view(addr)
            report.objects_checked += 1
            is_marked = view.is_marked(parity)
            should_be = addr in expected_live
            if is_marked != should_be:
                kind = "unmarked live" if should_be else "marked garbage"
                report.mark_errors.append(f"{kind} object at {addr:#x}")
        return report

    def check_sweep(self, report: Optional[VerificationReport] = None,
                    parity: Optional[int] = None,
                    live: Optional[Set[int]] = None,
                    floating_ok: bool = False) -> VerificationReport:
        """After a sweep: dead MarkSweep cells are free, live ones intact.

        ``live`` optionally supplies a pre-computed oracle reachable set
        (see :meth:`check_marks`). ``floating_ok`` relaxes the "surviving
        garbage" arm: a *concurrent* cycle legitimately keeps marked
        objects that died during marking (SATB floating garbage), so only
        unswept-dead cells are errors there.
        """
        heap = self.heap
        parity = parity if parity is not None else heap.mark_parity
        report = report or VerificationReport()
        live = live if live is not None else self.software_mark_set()
        ms = heap.plan.marksweep
        for desc in heap.block_list:
            base_paddr = heap.to_physical(desc.base_vaddr)
            if not ms.contains(base_paddr):
                report.sweep_errors.append(
                    f"block {desc.index} outside the MarkSweep space")
                continue
            for i in range(desc.n_cells):
                cell_paddr = base_paddr + i * desc.cell_bytes
                first = heap.mem.read_word(cell_paddr)
                if not scan_word_is_object(first):
                    continue  # a free cell; the free-list check covers it
                n_refs, _ = decode_refcount(first)
                status = heap.mem.read_word(
                    cell_paddr + WORD_BYTES * (1 + n_refs))
                obj_addr = desc.base_vaddr + i * desc.cell_bytes \
                    + WORD_BYTES * (1 + n_refs)
                if header_is_marked(status, parity):
                    if obj_addr not in live and not floating_ok:
                        report.sweep_errors.append(
                            f"surviving garbage cell at {obj_addr:#x}")
                else:
                    report.sweep_errors.append(
                        f"unswept dead object at {obj_addr:#x} "
                        "(cell still tagged live, not marked)")
        return report

    def check_free_lists(self, report: Optional[VerificationReport] = None,
                         ) -> VerificationReport:
        report = report or VerificationReport()
        try:
            self.heap.check_free_lists()
        except AssertionError as exc:
            report.freelist_errors.append(str(exc))
        return report

    def full_check(self, parity: Optional[int] = None,
                   live: Optional[Set[int]] = None) -> VerificationReport:
        """Marks + sweep + free lists in one report."""
        report = VerificationReport()
        self.check_marks(parity=parity, report=report, live=live)
        self.check_sweep(parity=parity, report=report, live=live)
        self.check_free_lists(report=report)
        return report


# -- heap snapshots (the debugging aid of §V-E) -----------------------------

@dataclass(frozen=True)
class ObjectSnapshot:
    addr: int
    n_refs: int
    is_array: bool
    mark_bit: int
    refs: Tuple[int, ...]


def snapshot_heap(heap: ManagedHeap) -> Dict[int, ObjectSnapshot]:
    """Capture the logical state of every tracked object."""
    out: Dict[int, ObjectSnapshot] = {}
    for addr in heap.objects:
        view = heap.view(addr)
        out[addr] = ObjectSnapshot(
            addr=addr,
            n_refs=view.n_refs,
            is_array=view.is_array,
            mark_bit=view.mark_bit,
            refs=tuple(view.refs()),
        )
    return out


def heap_digest(heap: ManagedHeap) -> str:
    """SHA-256 over the heap's *logical* post-GC state.

    Hashes the live-set snapshots (address, refcount, array flag, mark
    bit, outgoing references), each block's rebuilt free list, and the
    mark parity — the state a collection is supposed to produce. It
    deliberately excludes raw memory outside that (the hardware path
    leaves spill-ring residue the software path does not), so a hardware
    collection, a software collection, and a fault-recovered fallback of
    the same heap all digest identically — which is exactly the identity
    the CI fault smoke asserts.
    """
    import hashlib
    hasher = hashlib.sha256()
    hasher.update(f"parity={heap.mark_parity}\n".encode())
    # Live objects only: swept dead cells have had their scan word
    # overwritten by the free-list relink and no longer decode as objects.
    for addr in sorted(heap.reachable()):
        snap = heap.view(addr)
        hasher.update(
            f"obj {addr:#x} {snap.n_refs} {int(snap.is_array)} "
            f"{snap.mark_bit} {tuple(snap.refs())!r}\n".encode())
    for desc in heap.block_list:
        cells = []
        cur = desc.freelist_head
        # Bounded walk: a corrupted list (cycle, garbage pointer) must
        # still terminate with a distinctive digest, not an exception.
        for _ in range(desc.n_cells + 1):
            if cur == 0:
                break
            cells.append(cur)
            try:
                cur = heap.mem.read_word(heap.to_physical(cur))
            except Exception:
                cells.append(-1)
                break
        hasher.update(
            f"free block={desc.index} {cells!r}\n".encode())
    return hasher.hexdigest()


def reachable_digest(heap: ManagedHeap, include_marks: bool = False) -> str:
    """SHA-256 over the *reachable object graph only* — addresses, shapes
    and reference fields, excluding free lists, parity and (by default)
    mark bits.

    This is the differential currency for concurrent collections: a
    concurrent cycle and an untimed functional replay of the same mutator
    must produce byte-identical reachable graphs, even though their mark
    bits, free lists and floating garbage legitimately differ.
    """
    import hashlib
    hasher = hashlib.sha256()
    for addr in sorted(heap.reachable()):
        view = heap.view(addr)
        mark = view.mark_bit if include_marks else 0
        hasher.update(
            f"obj {addr:#x} {view.n_refs} {int(view.is_array)} "
            f"{mark} {tuple(view.refs())!r}\n".encode())
    return hasher.hexdigest()


def diff_snapshots(before: Dict[int, ObjectSnapshot],
                   after: Dict[int, ObjectSnapshot]) -> List[str]:
    """Human-readable differences between two snapshots."""
    diffs: List[str] = []
    for addr in sorted(set(before) | set(after)):
        a, b = before.get(addr), after.get(addr)
        if a is None:
            diffs.append(f"+ object {addr:#x} appeared")
        elif b is None:
            diffs.append(f"- object {addr:#x} disappeared")
        elif a != b:
            details = []
            if a.mark_bit != b.mark_bit:
                details.append(f"mark {a.mark_bit}->{b.mark_bit}")
            if a.refs != b.refs:
                details.append(f"refs changed ({len(a.refs)}->{len(b.refs)})")
            diffs.append(f"~ object {addr:#x}: {', '.join(details) or 'meta'}")
    return diffs
