"""Object layouts: bidirectional (the co-designed one) and conventional/TIB.

**Bidirectional layout** (Fig. 6b, Fig. 11). Within a cell of ``C`` words::

    word 0           scan word   (#refs | array? | 0b101)   <- cell start
    words 1..R       reference fields
    word R+1         status word (#refs | array? | mark | tag)  <- object ref
    words R+2..C-1   non-reference payload

An object *reference* is the virtual address of the status word. The
reference fields sit immediately below it, so the traversal unit locates
them with no extra accesses: ``[obj - 8R, obj)`` — the unit-stride copy the
tracer performs.

**Conventional layout** (Fig. 6a), used only by the layout-ablation study:
the header points to a type-information block (TIB) listing reference-field
offsets, costing "two additional memory accesses per object in a cacheless
system" (§IV-A). Cells are::

    word 0           status word (tag | mark)                <- object ref
    word 1           TIB pointer
    words 2..C-1     fields (references interspersed, per the TIB)

Both layouts implement the same protocol so the collectors can be
parameterized by layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.heap.header import (
    decode_refcount,
    make_header,
    make_scan_word,
)
from repro.memory.config import WORD_BYTES
from repro.memory.memimage import PhysicalMemory


@dataclass(frozen=True)
class ObjectShape:
    """The allocation request for one object."""

    n_refs: int
    n_payload_words: int = 0
    is_array: bool = False

    @property
    def bidirectional_words(self) -> int:
        """Cell words needed under the bidirectional layout."""
        return 2 + self.n_refs + self.n_payload_words

    @property
    def conventional_words(self) -> int:
        """Cell words needed under the conventional layout (header + TIB)."""
        return 2 + self.n_refs + self.n_payload_words


class BidirectionalLayout:
    """Writer/reader for the bidirectional cell format."""

    name = "bidirectional"

    @staticmethod
    def words_needed(shape: ObjectShape) -> int:
        return shape.bidirectional_words

    @staticmethod
    def initialize(
        mem: PhysicalMemory, cell_paddr: int, shape: ObjectShape, mark: int
    ) -> int:
        """Write metadata for a fresh object; returns the *physical* address
        of the status word (callers convert to virtual for references)."""
        mem.write_word(cell_paddr, make_scan_word(shape.n_refs, shape.is_array))
        mem.fill(cell_paddr + WORD_BYTES, shape.n_refs, 0)  # null refs
        status_paddr = cell_paddr + WORD_BYTES * (1 + shape.n_refs)
        mem.write_word(
            status_paddr, make_header(shape.n_refs, shape.is_array, mark=mark)
        )
        return status_paddr

    @staticmethod
    def status_paddr_from_cell(mem: PhysicalMemory, cell_paddr: int) -> int:
        """Locate the status word from the cell start via the scan word —
        the computation each block sweeper performs (§V-D)."""
        scan = mem.read_word(cell_paddr)
        n_refs, _is_array = decode_refcount(scan)
        return cell_paddr + WORD_BYTES * (1 + n_refs)

    @staticmethod
    def ref_field_addr(obj_addr: int, n_refs: int, index: int) -> int:
        """Address of reference field ``index`` given the object address."""
        if not 0 <= index < n_refs:
            raise IndexError(f"ref index {index} out of {n_refs}")
        return obj_addr - WORD_BYTES * (n_refs - index)

    @staticmethod
    def ref_section(obj_addr: int, n_refs: int) -> Tuple[int, int]:
        """(start, nbytes) of the reference section below the status word."""
        return obj_addr - WORD_BYTES * n_refs, WORD_BYTES * n_refs

    @staticmethod
    def cell_paddr_from_status(status_paddr: int, n_refs: int) -> int:
        return status_paddr - WORD_BYTES * (1 + n_refs)


class ConventionalLayout:
    """Conventional TIB-based layout for the ablation study.

    The TIB itself is a separate heap structure shared per "type"; we model
    one TIB per distinct reference count, each a small immortal array of
    field offsets. Collectors traversing this layout must (1) read the
    header, (2) read the TIB pointer, (3) read the TIB's offset list, then
    (4) gather each reference field individually — the extra accesses the
    bidirectional layout removes.
    """

    name = "conventional"

    def __init__(self) -> None:
        # type id -> list of field offsets (in words, relative to object).
        self._tibs: Dict[int, List[int]] = {}
        self._tib_addrs: Dict[int, int] = {}

    @staticmethod
    def words_needed(shape: ObjectShape) -> int:
        return shape.conventional_words

    def register_tib(
        self, mem: PhysicalMemory, type_id: int, offsets: Sequence[int], paddr: int
    ) -> None:
        """Materialize a TIB: word 0 = count, then one offset per word."""
        self._tibs[type_id] = list(offsets)
        self._tib_addrs[type_id] = paddr
        mem.write_word(paddr, len(offsets))
        mem.write_words(paddr + WORD_BYTES, offsets)

    def tib_addr(self, type_id: int) -> int:
        return self._tib_addrs[type_id]

    def offsets(self, type_id: int) -> List[int]:
        return self._tibs[type_id]
