"""Root reader: streaming, alignment, concurrent polling."""

import pytest

from repro.core import GCUnitConfig
from repro.core.unit import TraversalUnit

from tests.conftest import make_random_heap


def run_traversal(heap, concurrent=False, stop_after=None):
    unit = TraversalUnit(heap, GCUnitConfig(), concurrent=concurrent)
    done = unit.run()
    if stop_after is not None:
        heap.sim.schedule(stop_after, unit.request_stop)
    heap.sim.run_until(done)
    return unit


class TestStopTheWorld:
    def test_reads_all_roots(self):
        heap, views = make_random_heap(n_objects=100, seed=1, root_count=37)
        unit = run_traversal(heap)
        assert unit.reader.roots_read == 37

    def test_null_roots_not_enqueued(self, small_heap):
        a = small_heap.new_object(0)
        small_heap.set_roots([0, 0, a.addr])
        unit = run_traversal(small_heap)
        assert unit.reader.roots_read == 3
        assert unit.marker.objects_marked == 1

    def test_many_roots_stream_in_batches(self, small_heap):
        objs = [small_heap.new_object(0) for _ in range(100)]
        small_heap.set_roots([o.addr for o in objs])
        unit = run_traversal(small_heap)
        # 100 roots took far fewer than 100 transfers (64B batching).
        queue_reads = small_heap.memsys.stats.get("mem.reads.queue")
        assert queue_reads < 60
        assert unit.marker.objects_marked == 100


class TestConcurrentPolling:
    def test_reader_picks_up_appended_roots(self, small_heap):
        a = small_heap.new_object(0)
        b = small_heap.new_object(0)  # appended mid-traversal
        small_heap.set_roots([a.addr])
        sim = small_heap.sim
        sim.schedule(500, lambda: small_heap.roots.append(b.addr))
        unit = run_traversal(small_heap, concurrent=True, stop_after=2_000)
        assert unit.marker.objects_marked == 2

    def test_appends_after_stop_are_still_drained(self, small_heap):
        """The stop handshake re-reads the count before finishing."""
        a = small_heap.new_object(0)
        small_heap.set_roots([a.addr])
        unit = TraversalUnit(small_heap, GCUnitConfig(), concurrent=True)
        done = unit.run()
        sim = small_heap.sim
        b = small_heap.new_object(0)

        def stop_with_late_append():
            small_heap.roots.append(b.addr)
            unit.request_stop()

        sim.schedule(1_000, stop_with_late_append)
        sim.run_until(done)
        assert unit.marker.objects_marked == 2

    def test_stw_mode_terminates_without_stop(self):
        heap, _views = make_random_heap(n_objects=50, seed=2)
        unit = run_traversal(heap, concurrent=False)
        assert unit._done_event.triggered
