"""Cycle-stamped trace capture for figure workloads (``python -m repro trace``).

Resolves a trace *target* — a DaCapo profile name (``avrora``) or a figure
id (``fig16``) — builds the workload heap through the memoizing
:mod:`repro.harness.heapcache` layer, attaches a :class:`~repro.engine.trace.TraceBus`
to the heap's :class:`~repro.engine.stats.StatsRegistry`, and replays one
collection per requested collector from the heap checkpoint.

The bus is attached *after* the build returns, so the (possibly cached)
heap-construction traffic is never traced: warm and cold ``REPRO_HEAP_CACHE``
runs produce bit-identical event streams, and so do the ``bucket`` and
``heapq`` kernels — properties the determinism suite asserts via
:func:`~repro.engine.trace.trace_digest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.trace import TraceBus, TraceMetrics, trace_digest
from repro.workloads.profiles import DACAPO_PROFILES, BenchmarkProfile

#: Figure ids mapped to (profile, suite scale) — the workload each figure's
#: timeline is most representative of. Profiles can also be named directly.
TRACE_TARGETS: Dict[str, Tuple[str, float]] = {
    "fig15": ("avrora", 0.05),
    "fig16": ("avrora", 0.04),
    "fig17": ("lusearch", 0.04),
    "fig18": ("pmd", 0.03),
    "fig19": ("xalan", 0.03),
    "fig20": ("sunflow", 0.025),
    "fig21": ("luindex", 0.04),
}

#: Default build scale when a profile is named directly.
DEFAULT_TRACE_SCALE = 0.02


def resolve_target(target: str,
                   scale: Optional[float] = None) -> Tuple[BenchmarkProfile, float]:
    """Map a CLI target (profile name or figure id) to (profile, scale)."""
    if target in DACAPO_PROFILES:
        return DACAPO_PROFILES[target], (
            scale if scale is not None else DEFAULT_TRACE_SCALE
        )
    if target in TRACE_TARGETS:
        name, suite_scale = TRACE_TARGETS[target]
        return DACAPO_PROFILES[name], (
            scale if scale is not None else suite_scale
        )
    raise KeyError(
        f"unknown trace target {target!r}; expected a profile "
        f"({', '.join(sorted(DACAPO_PROFILES))}) or a figure id "
        f"({', '.join(sorted(TRACE_TARGETS))})"
    )


@dataclass
class TraceCapture:
    """One traced run: the event stream plus per-collector summaries."""

    target: str
    profile: str
    scale: float
    seed: int
    collectors: Tuple[str, ...]
    bus: TraceBus
    #: Collector name -> {phase name: cycles} from the collection results.
    phase_cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: The run's stats registry, for counter-backed views (queue put
    #: stalls) that have no per-event trace representation.
    stats: Optional[object] = None

    @property
    def events(self) -> list:
        return self.bus.events

    @property
    def digest(self) -> str:
        return trace_digest(self.bus.events)

    def metrics(self) -> TraceMetrics:
        return TraceMetrics(self.bus.events, stats=self.stats)


def trace_collection(
    target: str,
    scale: Optional[float] = None,
    seed: int = 1,
    collectors: str = "both",
) -> TraceCapture:
    """Capture a cycle-stamped trace of one GC on the target workload.

    ``collectors`` is ``"hw"``, ``"sw"``, or ``"both"``; with ``"both"``
    the software collector runs first and the heap is restored from the
    checkpoint in between, so both collections see the byte-identical heap
    and share one event stream (distinguished by phase names and request
    sources).
    """
    from repro.harness.runners import build_heap, run_hardware, run_software

    if collectors not in ("hw", "sw", "both"):
        raise ValueError(f"collectors must be hw|sw|both, got {collectors!r}")
    wanted = ("sw", "hw") if collectors == "both" else (collectors,)

    profile, resolved_scale = resolve_target(target, scale)
    built, checkpoint = build_heap(profile, scale=resolved_scale, seed=seed)
    heap = built.heap

    bus = TraceBus()
    heap.memsys.stats.trace = bus
    phase_cycles: Dict[str, Dict[str, int]] = {}
    try:
        for collector in wanted:
            heap.restore(checkpoint)
            if collector == "sw":
                result, _delta = run_software(heap)
                phase_cycles["sw"] = {
                    "sw.mark": result.mark_cycles,
                    "sw.sweep": result.sweep_cycles,
                }
            else:
                result, _unit = run_hardware(heap)
                phase_cycles["hw"] = {
                    "hw.mark": result.mark_cycles,
                    "hw.sweep": result.sweep_cycles,
                }
    finally:
        heap.memsys.stats.trace = None

    return TraceCapture(
        target=target,
        profile=profile.name,
        scale=resolved_scale,
        seed=seed,
        collectors=wanted,
        bus=bus,
        phase_cycles=phase_cycles,
        stats=heap.memsys.stats,
    )


def render_summary(capture: TraceCapture) -> str:
    """A human-readable digest of a capture for the CLI."""
    metrics = capture.metrics()
    lines: List[str] = [
        f"trace target: {capture.target} (profile {capture.profile}, "
        f"scale {capture.scale}, seed {capture.seed})",
        f"digest: {capture.digest}",
        metrics.summary(),
    ]
    peak = metrics.queue_peak("markq")
    if peak:
        lines.append(f"  mark queue peak: {peak} entries")
    return "\n".join(lines)
