"""Spaces plan and the hwgc root region."""

import pytest

from repro.heap.roots import RootRegion
from repro.heap.spaces import Space, SpaceKind, SpacePlan
from repro.memory.memimage import PhysicalMemory
from repro.memory.paging import PAGE_SIZE


class TestSpacePlan:
    def test_carves_disjoint_spaces(self):
        plan = SpacePlan((PAGE_SIZE, 32 * 1024 * 1024))
        spaces = list(plan)
        for a, b in zip(spaces, spaces[1:]):
            assert a.pend <= b.pstart
        assert plan.marksweep.size_bytes > plan.los.size_bytes

    def test_space_for(self):
        plan = SpacePlan((PAGE_SIZE, 32 * 1024 * 1024))
        assert plan.space_for(plan.los.pstart) is plan.los
        assert plan.space_for(plan.marksweep.pend - 8) is plan.marksweep
        assert plan.space_for(0) is None

    def test_by_name(self):
        plan = SpacePlan((PAGE_SIZE, 32 * 1024 * 1024))
        assert plan.by_name("code").kind is SpaceKind.CODE
        with pytest.raises(KeyError):
            plan.by_name("nursery")

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            SpacePlan((PAGE_SIZE, 32 * 1024 * 1024), immortal_frac=0.5,
                      code_frac=0.3, los_frac=0.2)


class TestSpace:
    def test_bump_alloc(self):
        space = Space("s", SpaceKind.IMMORTAL, 4096, 8192)
        a = space.bump_alloc(100)
        b = space.bump_alloc(100)
        assert b >= a + 100
        assert space.bytes_used >= 200

    def test_bump_alignment(self):
        space = Space("s", SpaceKind.LARGE_OBJECT, 4096, 1024 * 1024)
        addr = space.bump_alloc(10, align=PAGE_SIZE)
        assert addr % PAGE_SIZE == 0

    def test_exhaustion(self):
        space = Space("s", SpaceKind.IMMORTAL, 4096, 4096 + 64)
        space.bump_alloc(64)
        with pytest.raises(MemoryError):
            space.bump_alloc(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            Space("s", SpaceKind.CODE, 100, 200)  # unaligned
        with pytest.raises(ValueError):
            Space("s", SpaceKind.CODE, 4096, 4096)  # empty


class TestRootRegion:
    @pytest.fixture
    def roots(self):
        mem = PhysicalMemory(64 * 1024)
        return RootRegion(mem, (4096, 4096 + 1024))

    def test_write_and_read(self, roots):
        roots.write_roots([0x10, 0x20, 0x30])
        assert roots.count == 3
        assert roots.read_all() == [0x10, 0x20, 0x30]

    def test_append_is_barrier_write(self, roots):
        roots.write_roots([0x10])
        roots.append(0x99)
        assert roots.read_all() == [0x10, 0x99]

    def test_clear(self, roots):
        roots.write_roots([1, 2])
        roots.clear()
        assert roots.read_all() == []

    def test_capacity_enforced(self, roots):
        with pytest.raises(MemoryError):
            roots.write_roots(list(range(8, 8 * 200, 8)))

    def test_append_overflow(self, roots):
        roots.write_roots([8] * roots.capacity)
        with pytest.raises(MemoryError):
            roots.append(16)

    def test_entry_addr(self, roots):
        roots.write_roots([0x10, 0x20])
        assert roots.mem.read_word(roots.entry_addr(1)) == 0x20
        with pytest.raises(IndexError):
            roots.entry_addr(2)
