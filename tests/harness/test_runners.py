"""Harness plumbing: comparisons are self-checking."""

import pytest

from repro.core.config import GCUnitConfig
from repro.harness.parallel import run_suite
from repro.harness.runners import (
    attempt_stats,
    build_heap,
    run_gc_comparison,
    run_hardware,
    run_software,
    run_sweep_only,
)
from repro.harness.suite import select
from repro.workloads.profiles import DACAPO_PROFILES


@pytest.fixture(scope="module")
def prepared():
    return build_heap(DACAPO_PROFILES["avrora"], scale=0.008, seed=31)


class TestRunners:
    def test_comparison_is_cross_checked(self, prepared):
        comp = run_gc_comparison(DACAPO_PROFILES["avrora"], built=prepared)
        assert comp.mark_speedup > 1.5
        assert comp.sweep_speedup > 1.0
        assert comp.overall_speedup > 1.0
        assert "avrora" in comp.summary()

    def test_run_software_returns_stat_delta(self, prepared):
        built, cp = prepared
        built.heap.restore(cp)
        result, delta = run_software(built.heap)
        assert result.objects_marked == len(built.heap.reachable())
        assert any(k.startswith("mem.requests") for k in delta)

    def test_run_hardware_phase_windows(self, prepared):
        built, cp = prepared
        built.heap.restore(cp)
        result, unit = run_hardware(built.heap, GCUnitConfig())
        assert unit.mark_window[1] - unit.mark_window[0] == result.mark_cycles
        assert unit.sweep_window[1] - unit.sweep_window[0] == \
            result.sweep_cycles

    def test_attempt_stats_snapshot(self):
        stats = attempt_stats()
        assert stats["cpu_s"] >= 0.0
        assert stats["max_rss_kb"] > 0

    def test_sweep_only_matches_full_sweep(self, prepared):
        built, cp = prepared
        heap = built.heap
        heap.restore(cp)
        full, unit = run_hardware(heap, GCUnitConfig())
        heap.restore(cp)
        unit2 = __import__("repro.core.unit", fromlist=["GCUnit"]).GCUnit(
            heap, GCUnitConfig())
        unit2.mark()
        cycles, recl = run_sweep_only(heap, GCUnitConfig())
        assert recl.cells_freed == full.cells_freed
        assert recl.cells_live == full.cells_live


class TestSuiteSelection:
    """Regression: empty/unknown selections must raise, not silently
    run nothing (run_suite used to clamp jobs against `len(tasks) or 1`
    and return an empty report with exit 0)."""

    def test_empty_selection_raises_listing_valid_ids(self):
        with pytest.raises(KeyError, match="valid ids.*fig15"):
            select([])

    def test_unknown_id_raises_listing_valid_ids(self):
        with pytest.raises(KeyError, match="fig99.*valid ids"):
            select(["fig99"])

    def test_run_suite_propagates_empty_selection(self):
        with pytest.raises(KeyError, match="empty experiment selection"):
            run_suite(jobs=1, only=[])

    def test_all_unknown_selection_raises(self):
        with pytest.raises(KeyError, match="unknown experiment ids"):
            run_suite(jobs=2, only=["nope", "nada"])
