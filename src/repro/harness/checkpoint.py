"""Per-figure run checkpoints: atomic, schema-versioned, corruption-safe.

A resumable ``run-all`` writes one JSON file per completed
:class:`~repro.harness.suite.FigureRun` into a run directory. A later
invocation with ``--resume <dir>`` loads whatever completed, verifies it
belongs to the *same* suite configuration (via a digest over the task
list), and re-executes only the missing entries — reproducing the
fault-free report byte-for-byte, because the checkpoint stores the
rendered table verbatim.

Robustness properties, each covered by ``tests/harness/test_checkpoint.py``:

* **Atomicity** — checkpoints are written tmp+``os.replace`` in the run
  directory, so a crash mid-write (or a concurrent reader) never observes
  a torn file; at worst the entry is absent and gets re-run.
* **Integrity** — every file embeds a schema version and a sha256 over its
  payload JSON. Truncation, bit-rot, hand-editing, or a future schema all
  surface as :class:`CheckpointCorrupt`; ``load_completed`` treats corrupt
  entries as missing (they are re-executed and overwritten) and reports
  them to the caller.
* **Round-trip fidelity** — ``FigureRun`` ↔ JSON preserves unicode
  rendered tables, NaN/inf floats (Python's JSON dialect), empty tables,
  and the per-attempt history, property-tested with hypothesis.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.suite import FigureRun

#: Bump when the checkpoint or manifest layout changes; old files are then
#: detected as foreign and re-run rather than misparsed.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ENTRY_PREFIX = "entry-"


class CheckpointError(Exception):
    """The run directory cannot be used (schema/suite mismatch, IO)."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed validation (truncated, edited, wrong hash)."""


def _dumps(payload: Any) -> str:
    # sort_keys makes the serialization canonical so the embedded sha256 is
    # reproducible; allow_nan keeps NaN/inf stats round-tripping (Python's
    # JSON dialect, matching the loader below).
    return json.dumps(payload, ensure_ascii=False, sort_keys=True,
                      allow_nan=True)


def suite_digest(tasks: Sequence[Tuple[int, str, Dict[str, Any]]]) -> str:
    """Fingerprint of a task list: the identity of a resumable run.

    Two invocations may share a run directory iff they would execute the
    same entries with the same kwargs in the same suite order.
    """
    canon = [[index, exp_id, sorted(kwargs.items())]
             for index, exp_id, *rest in tasks
             for kwargs in [rest[0] if rest else {}]]
    return hashlib.sha256(_dumps(canon).encode("utf-8")).hexdigest()


def figure_run_to_payload(run: FigureRun) -> Dict[str, Any]:
    """A plain-JSON projection of one completed (or failed) suite entry."""
    return {
        "index": run.index,
        "exp_id": run.exp_id,
        "kwargs": dict(run.kwargs),
        "rendered": run.rendered,
        "elapsed": run.elapsed,
        "digest": run.digest,
        "status": run.status,
        "attempts": run.attempts,
        "error": run.error,
        "attempt_history": list(run.attempt_history),
        "shard_digests": list(run.shard_digests),
        "cache_hits": run.cache_hits,
        "cache_misses": run.cache_misses,
    }


def figure_run_from_payload(payload: Dict[str, Any]) -> FigureRun:
    try:
        return FigureRun(
            index=int(payload["index"]),
            exp_id=payload["exp_id"],
            kwargs=dict(payload["kwargs"]),
            rendered=payload["rendered"],
            elapsed=float(payload["elapsed"]),
            digest=payload["digest"],
            status=payload.get("status", "ok"),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error"),
            attempt_history=list(payload.get("attempt_history", [])),
            shard_digests=list(payload.get("shard_digests", [])),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorrupt(f"checkpoint payload invalid: {exc}") from exc


def _wrap(payload: Dict[str, Any]) -> str:
    body = _dumps(payload)
    sha = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return _dumps({"schema": SCHEMA_VERSION, "sha256": sha,
                   "payload_json": body})


def _unwrap(text: str, path: Path) -> Dict[str, Any]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(f"{path.name}: not valid JSON "
                                f"(truncated write?): {exc}") from exc
    if not isinstance(doc, dict) or "payload_json" not in doc:
        raise CheckpointCorrupt(f"{path.name}: missing checkpoint envelope")
    if doc.get("schema") != SCHEMA_VERSION:
        raise CheckpointCorrupt(
            f"{path.name}: schema {doc.get('schema')!r} != {SCHEMA_VERSION}")
    body = doc["payload_json"]
    sha = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if sha != doc.get("sha256"):
        raise CheckpointCorrupt(f"{path.name}: sha256 mismatch — file "
                                "corrupted or hand-edited")
    return json.loads(body)


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: Public aliases: the simulation result cache (:mod:`repro.harness
#: .simcache`) reuses this module's sha256-verified envelope and atomic
#: write, so cache entries get the same torn-write/bit-rot detection as
#: run checkpoints.
wrap_payload = _wrap
unwrap_payload = _unwrap
atomic_write_text = _atomic_write


class CheckpointStore:
    """One resumable run: a directory of per-entry checkpoints + manifest."""

    def __init__(self, run_dir: Path, digest: str):
        self.run_dir = Path(run_dir)
        self.digest = digest
        #: paths that failed validation during the last ``load_completed``
        self.corrupt: List[Path] = []

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, run_dir, tasks: Sequence[Tuple[int, str, Dict[str, Any]]]
             ) -> "CheckpointStore":
        """Create or resume a run directory for exactly this task list.

        A fresh directory gets a manifest; an existing one must carry a
        matching suite digest, otherwise its checkpoints belong to a
        different suite configuration and resuming would splice wrong
        results into the report.
        """
        run_dir = Path(run_dir)
        digest = suite_digest(tasks)
        store = cls(run_dir, digest)
        manifest = run_dir / MANIFEST_NAME
        if manifest.exists():
            doc = _unwrap(manifest.read_text(encoding="utf-8"), manifest)
            if doc.get("suite_digest") != digest:
                raise CheckpointError(
                    f"{run_dir} was created for a different suite "
                    f"configuration (manifest digest "
                    f"{doc.get('suite_digest', '?')[:12]}… != {digest[:12]}…); "
                    "pass a fresh --resume directory or rerun with the "
                    "original --only selection")
        else:
            _atomic_write(manifest, _wrap({
                "suite_digest": digest,
                "tasks": [[i, exp_id, sorted(kwargs.items())]
                          for i, exp_id, kwargs in tasks],
            }))
        return store

    # -- entries -----------------------------------------------------------

    def _entry_path(self, index: int) -> Path:
        return self.run_dir / f"{ENTRY_PREFIX}{index:03d}.json"

    def save(self, run: FigureRun) -> None:
        """Checkpoint one completed entry atomically (tmp + rename)."""
        _atomic_write(self._entry_path(run.index),
                      _wrap(figure_run_to_payload(run)))

    def load(self, path: Path) -> FigureRun:
        """Load and validate a single checkpoint file."""
        return figure_run_from_payload(
            _unwrap(path.read_text(encoding="utf-8"), path))

    def load_completed(self) -> Dict[int, FigureRun]:
        """All valid *successful* checkpoints, keyed by suite index.

        Corrupt files and failed entries are left out — both get re-run —
        and corrupt paths are collected in :attr:`corrupt` for reporting.
        """
        completed: Dict[int, FigureRun] = {}
        self.corrupt = []
        if not self.run_dir.is_dir():
            return completed
        for path in sorted(self.run_dir.glob(f"{ENTRY_PREFIX}*.json")):
            try:
                run = self.load(path)
            except CheckpointCorrupt:
                self.corrupt.append(path)
                continue
            if run.status == "ok":
                completed[run.index] = run
        return completed


def open_store(run_dir: Optional[str],
               tasks: Sequence[Tuple[int, str, Dict[str, Any]]]
               ) -> Optional[CheckpointStore]:
    """CLI helper: a store for ``--resume DIR``, or ``None`` without it."""
    if not run_dir:
        return None
    return CheckpointStore.open(run_dir, tasks)
