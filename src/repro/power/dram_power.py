"""Micron-style DDR3 power calculator (§VI-C, Fig. 23).

"To estimate energy, we collected DRAM-level counters for the GC pauses ...
and ran them through MICRON's DDR3 Power Calculator spreadsheet."

The calculator's structure (Micron TN-41-01, adapted to our counters):

* **background** — all-banks-active standby: ``IDD3N x VDD`` per device;
* **activate/precharge** — per-ACT energy derived from IDD0 minus the
  standby current over one row cycle (tRC);
* **read/write burst** — ``(IDD4R/W - IDD3N) x VDD`` scaled by data-bus
  utilization;
* **refresh** — ``(IDD5 - IDD3N) x VDD x tRFC/tREFI``.

One single-rank DDR3-2000 DIMM of eight x8 2 Gb devices (Table I's 2 GiB
rank). The interesting consequence the paper reports falls out of the
equations: the GC unit's small random requests activate a row per 8-byte
read, so its DRAM power is *much higher* than the CPU's — while its total
energy is still lower because the pause is so much shorter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class DDR3Currents:
    """Datasheet currents (mA) and voltages for one x8 DDR3-2000 device."""

    vdd: float = 1.5
    idd0: float = 95.0  # one-bank ACT->PRE cycling
    idd2n: float = 42.0  # precharged standby
    idd3n: float = 55.0  # active standby
    idd4r: float = 180.0  # read burst
    idd4w: float = 185.0  # write burst
    idd5b: float = 215.0  # burst refresh
    t_rc_ns: float = 61.0  # tRAS + tRP = 47 + 14
    t_ras_ns: float = 47.0
    t_rfc_ns: float = 160.0
    t_refi_ns: float = 7800.0
    devices_per_rank: int = 8
    peak_bw_bytes_per_ns: float = 16.0  # DDR3-2000, 64-bit bus


@dataclass
class DRAMPowerBreakdown:
    """Average power over a window, in milliwatts."""

    background_mw: float
    activate_mw: float
    read_mw: float
    write_mw: float
    refresh_mw: float

    @property
    def dynamic_mw(self) -> float:
        return self.activate_mw + self.read_mw + self.write_mw

    @property
    def total_mw(self) -> float:
        return (self.background_mw + self.activate_mw + self.read_mw
                + self.write_mw + self.refresh_mw)

    def as_dict(self) -> Dict[str, float]:
        return {
            "background": self.background_mw,
            "activate": self.activate_mw,
            "read": self.read_mw,
            "write": self.write_mw,
            "refresh": self.refresh_mw,
            "total": self.total_mw,
        }


class DDR3PowerCalculator:
    """Turns simulation activity counters into the Fig. 23 power numbers."""

    def __init__(self, currents: Optional[DDR3Currents] = None):
        self.c = currents if currents is not None else DDR3Currents()

    # -- per-event energies ---------------------------------------------------

    def activate_energy_nj(self) -> float:
        """Energy of one ACT+PRE pair across the rank (Micron's IDD0 form)."""
        c = self.c
        # Subtract the standby current that would have flowed anyway.
        standby = (c.idd3n * c.t_ras_ns
                   + c.idd2n * (c.t_rc_ns - c.t_ras_ns)) / c.t_rc_ns
        ma = c.idd0 - standby
        return ma * 1e-3 * c.vdd * c.t_rc_ns * c.devices_per_rank

    # -- window power -------------------------------------------------------------

    def power(
        self,
        activates: int,
        bytes_read: int,
        bytes_written: int,
        window_cycles: int,
    ) -> DRAMPowerBreakdown:
        """Average power over ``window_cycles`` (1 cycle = 1 ns at 1 GHz)."""
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        c = self.c
        n = c.devices_per_rank
        background_mw = c.idd3n * c.vdd * n
        refresh_mw = ((c.idd5b - c.idd3n) * c.vdd * n
                      * c.t_rfc_ns / c.t_refi_ns)
        act_rate_per_ns = activates / window_cycles
        activate_mw = self.activate_energy_nj() * act_rate_per_ns * 1e3
        rd_util = min(1.0, bytes_read / (c.peak_bw_bytes_per_ns * window_cycles))
        wr_util = min(1.0, bytes_written / (c.peak_bw_bytes_per_ns * window_cycles))
        read_mw = (c.idd4r - c.idd3n) * c.vdd * n * rd_util
        write_mw = (c.idd4w - c.idd3n) * c.vdd * n * wr_util
        return DRAMPowerBreakdown(
            background_mw=background_mw,
            activate_mw=activate_mw,
            read_mw=read_mw,
            write_mw=write_mw,
            refresh_mw=refresh_mw,
        )

    def power_from_stats(self, stats_delta: Dict[str, int],
                         window_cycles: int) -> DRAMPowerBreakdown:
        """Convenience: consume the per-phase stat deltas the GC runs emit."""
        return self.power(
            activates=stats_delta.get("dram.activates", 0),
            bytes_read=stats_delta.get("dram.bytes_read", 0),
            bytes_written=stats_delta.get("dram.bytes_written", 0),
            window_cycles=window_cycles,
        )
