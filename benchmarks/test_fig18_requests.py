"""Figure 18: cache partitioning — request breakdown by source."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig18_partitioning(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig18, scale=bench_scale * 0.75)
    shares = {row[0]: (row[2], row[4]) for row in result.rows[:-1]}
    # Shared-cache design: PTW requests dominate the L1 (paper: ~2/3),
    # drowning out the units doing actual work.
    assert shares["ptw"][0] > 40.0
    assert shares["ptw"][0] > shares["marker"][0]
    # Partitioned design: marker + tracer dominate memory requests.
    assert shares["marker"][1] + shares["tracer"][1] > 50.0
    assert shares["ptw"][1] < shares["ptw"][0]
