"""Intra-figure sharding: split figures must reproduce unsharded digests.

The whole value of :mod:`repro.harness.sharding` rests on one invariant —
a figure split across worker processes renders the byte-identical table
(same digest) as the inline run — plus honest bookkeeping: per-shard
digests land on the ``FigureRun`` and round-trip through checkpoints, and
non-shardable entries silently fall back to the inline path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import heapcache
from repro.harness.experiments import ExperimentResult
from repro.harness.sharding import (
    SHARDABLE,
    _column_refold_merge,
    _concat_merge,
    _geomean_tail_merge,
    axis_values,
    can_shard,
    run_entry_sharded,
    split_axis,
)
from repro.harness.suite import FigureRun, run_entry
from repro.workloads.profiles import BENCHMARK_ORDER

SCALE = 0.008


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_HEAP_CACHE", raising=False)
    heapcache.reset_cache()
    yield
    heapcache.reset_cache()


class TestSplit:
    def test_contiguous_and_exhaustive(self):
        values = list("abcdefg")
        for n in range(1, 9):
            chunks = split_axis(values, n)
            assert [v for chunk in chunks for v in chunk] == values
            assert all(chunk for chunk in chunks)
            assert len(chunks) == min(n, len(values))

    def test_earlier_chunks_take_the_remainder(self):
        assert split_axis(["a", "b", "c"], 2) == [["a", "b"], ["c"]]

    def test_axis_defaults_to_benchmark_order(self):
        assert axis_values("fig15", {}) == list(BENCHMARK_ORDER)
        assert axis_values("fig15", {"benchmarks": ["avrora"]}) == ["avrora"]
        assert axis_values("fig01b", {}) is None

    def test_can_shard(self):
        assert can_shard("fig15", {}, 2)
        assert not can_shard("fig15", {}, 1)
        assert not can_shard("fig15", {"benchmarks": ["avrora"]}, 4)
        assert not can_shard("fig01b", {}, 4)

    def test_can_shard_declines_oversubscription(self):
        # fig19's default axis has 4 queue sizes: 4 workers is the most
        # a shard can use; a 5th would idle on an empty chunk.
        assert can_shard("fig19", {}, 4)
        assert not can_shard("fig19", {}, 5)
        # fig18's axis is the two cache modes.
        assert can_shard("fig18", {}, 2)
        assert not can_shard("fig18", {}, 3)

    def test_every_new_figure_is_registered(self):
        assert {"fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
                "fleet_slo", "fleet_lbo"} <= set(SHARDABLE)

    def test_kwargs_aware_default_fn(self):
        # fleet_slo's tenant axis tracks the n_tenants kwarg rather than
        # a static default; explicit tenants kwargs still win.
        assert axis_values("fleet_slo", {"n_tenants": 2}) == [0, 1]
        assert axis_values("fleet_slo", {}) == [0, 1, 2, 3]
        assert axis_values("fleet_slo", {"n_tenants": 2,
                                         "tenants": (0,)}) == [0]


def _synthetic(headers, rows):
    return ExperimentResult(exp_id="syn", title="t", paper_claim="p",
                            headers=headers, rows=rows,
                            extras={"heavy": object()})


#: Positive, finite: the geomean refold takes logs of these.
POS = st.floats(min_value=1e-3, max_value=1e3,
                allow_nan=False, allow_infinity=False)


class TestMergeProperties:
    """merge(shard-split rows) == unsharded rows, byte-for-byte, for every
    merge family and every shard count (including oversubscribed)."""

    @settings(deadline=None)
    @given(values=st.lists(POS, min_size=1, max_size=8),
           n_shards=st.integers(1, 10))
    def test_concat(self, values, n_shards):
        headers = ["bench", "value"]
        rows = [[f"b{i}", v] for i, v in enumerate(values)]
        full = _synthetic(headers, rows)
        chunks = split_axis(rows, n_shards)
        merged = _concat_merge([_synthetic(headers, c) for c in chunks])
        assert merged.rows == rows
        assert merged.render() == full.render()
        assert merged.extras == {}

    @settings(deadline=None)
    @given(values=st.lists(st.tuples(POS, POS), min_size=1, max_size=8),
           n_shards=st.integers(1, 10))
    def test_geomean_tail_refolds_bit_identically(self, values, n_shards):
        from repro.engine.stats import geomean

        headers = ["bench", "mark", "sweep"]
        merge = _geomean_tail_merge(1, 2)

        def result_for(rows):
            # The unsharded figures fold a trailing geomean over the
            # speedup columns, left to right over the row order.
            summary = ["geomean",
                       geomean([r[1] for r in rows]),
                       geomean([r[2] for r in rows])]
            return _synthetic(headers, [list(r) for r in rows] + [summary])

        rows = [[f"b{i}", m, s] for i, (m, s) in enumerate(values)]
        full = result_for(rows)
        merged = merge([result_for(c) for c in split_axis(rows, n_shards)])
        assert merged.rows == full.rows
        assert merged.render() == full.render()

    @settings(deadline=None)
    @given(data=st.data())
    def test_column_refold_overlay(self, data):
        n_rows = data.draw(st.integers(1, 6))
        n_modes = data.draw(st.integers(2, 4))
        n_shards = data.draw(st.integers(1, 6))
        matrix = data.draw(st.lists(
            st.lists(POS, min_size=n_modes, max_size=n_modes),
            min_size=n_rows, max_size=n_rows))
        # One trailing column blank in every chunk must stay blank.
        headers = ["source"] + [f"m{m}" for m in range(n_modes)] + ["pad"]
        full_rows = [[f"r{r}", *matrix[r], ""] for r in range(n_rows)]
        chunk_results = []
        for modes in split_axis(list(range(n_modes)), n_shards):
            rows = [[f"r{r}",
                     *(matrix[r][m] if m in modes else ""
                       for m in range(n_modes)), ""]
                    for r in range(n_rows)]
            chunk_results.append(_synthetic(headers, rows))
        merged = _column_refold_merge(chunk_results)
        assert merged.rows == full_rows
        assert merged.render() == _synthetic(headers, full_rows).render()

    def test_column_refold_rejects_row_count_mismatch(self):
        a = _synthetic(["s", "x"], [["r0", 1.0]])
        b = _synthetic(["s", "x"], [["r0", ""], ["r1", ""]])
        with pytest.raises(ValueError, match="row count"):
            _column_refold_merge([a, b])


class TestShardedIdentity:
    """The gate: sharded digest == unsharded digest, rows and geomean."""

    @pytest.mark.slow
    @pytest.mark.parametrize("exp_id,kwargs", [
        ("fig15", dict(scale=SCALE, seed=1,
                       benchmarks=["avrora", "luindex", "lusearch"])),
        ("fig01a", dict(scale=SCALE, seed=1, n_gcs=1,
                        benchmarks=["avrora", "luindex"])),
        ("fig16", dict(scale=SCALE, seed=1,
                       benchmarks=["avrora", "luindex"])),
        ("fig17", dict(scale=SCALE, seed=1,
                       benchmarks=["avrora", "luindex"])),
        ("fig18", dict(scale=SCALE, seed=1)),
        ("fig19", dict(scale=SCALE, seed=1, queue_entries=(64, 2048))),
        ("fig20", dict(scale=SCALE, seed=1, sweeper_counts=(1, 2),
                       benchmarks=["avrora", "luindex"])),
        ("fig21", dict(scale=SCALE, seed=1, cache_sizes=(0, 256))),
    ])
    def test_sharded_matches_unsharded(self, exp_id, kwargs):
        inline = run_entry(0, exp_id, kwargs)
        heapcache.reset_cache()
        sharded = run_entry_sharded(0, exp_id, kwargs, jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest
        assert len(sharded.shard_digests) == 2
        assert inline.shard_digests == []

    def test_fallback_for_non_shardable(self):
        kwargs = dict(scale=SCALE, seed=1, n_gcs=1, n_queries=200, warmup=10)
        run = run_entry_sharded(3, "fig01b", kwargs, jobs=4)
        assert run.exp_id == "fig01b"
        assert run.shard_digests == []
        assert run.ok

    def test_single_benchmark_falls_back(self):
        kwargs = dict(scale=SCALE, seed=1, n_gcs=1, benchmarks=["avrora"])
        run = run_entry_sharded(0, "fig01a", kwargs, jobs=4)
        assert run.shard_digests == []
        assert run.ok


class TestCheckpointRoundTrip:
    def test_shard_digests_survive_checkpoint(self, tmp_path):
        from repro.harness.checkpoint import CheckpointStore

        run = FigureRun(index=0, exp_id="fig15", kwargs={"scale": 0.01},
                        rendered="## table", elapsed=1.0,
                        shard_digests=["aa" * 32, "bb" * 32])
        store = CheckpointStore.open(tmp_path, [(0, "fig15", {"scale": 0.01})])
        store.save(run)
        loaded = store.load_completed()[0]
        assert loaded.shard_digests == run.shard_digests
        assert loaded.digest == run.digest

    def test_legacy_payload_defaults_to_empty(self):
        from repro.harness.checkpoint import (
            figure_run_from_payload,
            figure_run_to_payload,
        )

        payload = figure_run_to_payload(FigureRun(
            index=1, exp_id="fig16", kwargs={}, rendered="x", elapsed=0.1))
        payload.pop("shard_digests")  # a pre-sharding checkpoint file
        assert figure_run_from_payload(payload).shard_digests == []


class TestSuiteIntegration:
    @pytest.mark.slow
    def test_run_suite_shard_figures_matches_serial(self):
        """``run-all --jobs 2 --shard-figures`` digests == serial digests."""
        from repro.harness.parallel import digests, run_suite
        from repro.harness.suite import SUITE

        # Shrink fig15 to a tiny two-benchmark slice for test runtime; the
        # suite entry itself is patched in-place and restored.
        import repro.harness.suite as suite_mod

        original = list(suite_mod.SUITE)
        tiny = [("fig15", dict(scale=SCALE, seed=1,
                               benchmarks=["avrora", "luindex"]))]
        suite_mod.SUITE[:] = tiny
        try:
            serial = run_suite(jobs=1, only=["fig15"])
            heapcache.reset_cache()
            sharded = run_suite(jobs=2, only=["fig15"], shard_figures=True)
        finally:
            suite_mod.SUITE[:] = original
        assert digests(serial) == digests(sharded)
        assert sharded[0].shard_digests and not serial[0].shard_digests

    def test_shardable_registry_names_are_suite_entries(self):
        from repro.harness.suite import SUITE

        suite_ids = {exp_id for exp_id, _ in SUITE}
        assert set(SHARDABLE) <= suite_ids
