#!/usr/bin/env python3
"""Design-space exploration: the knobs of §VI-B on one workload.

Sweeps the GC unit's main parameters — marker request slots, mark-queue
size (with and without address compression), number of block sweepers,
mark-bit-cache size — against one heap, printing mark/sweep times for
each point. This is the kind of exploration the paper's Figs. 19-21 distil.

Run:  python examples/design_space_sweep.py
"""

from repro.core import GCUnit, GCUnitConfig
from repro.harness.reporting import render_table
from repro.power.area import AreaModel
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder


def sweep(heap, checkpoint, configs):
    rows = []
    for label, config in configs:
        heap.restore(checkpoint)
        result = GCUnit(heap, config).collect()
        rows.append([
            label, result.mark_ms, result.sweep_ms,
            result.spill_writes + result.spill_reads,
            AreaModel().unit_total(config),
        ])
    return rows


def main() -> None:
    built = HeapGraphBuilder(DACAPO_PROFILES["xalan"], scale=0.02,
                             seed=11).build()
    heap = built.heap
    checkpoint = heap.checkpoint()
    print(f"workload: xalan at scale 0.02 "
          f"({built.n_objects} objects, {len(built.live)} live)\n")

    print(render_table(
        ["config", "mark ms", "sweep ms", "spill reqs", "unit mm^2"],
        sweep(heap, checkpoint, [
            ("baseline (paper §VI-A)", GCUnitConfig()),
            ("1 marker slot", GCUnitConfig(marker_slots=1)),
            ("4 marker slots", GCUnitConfig(marker_slots=4)),
            ("64 marker slots", GCUnitConfig(marker_slots=64)),
            ("tiny queue (64)", GCUnitConfig(mark_queue_entries=64)),
            ("tiny queue + compression",
             GCUnitConfig(mark_queue_entries=64, address_compression=True)),
            ("1 sweeper", GCUnitConfig(n_sweepers=1)),
            ("4 sweepers", GCUnitConfig(n_sweepers=4)),
            ("8 sweepers", GCUnitConfig(n_sweepers=8)),
            ("64-entry mark-bit cache",
             GCUnitConfig(mark_bit_cache_entries=64)),
            ("shared 16KB cache (rejected design)",
             GCUnitConfig(cache_mode="shared")),
        ]),
        title="GC-unit design space (one xalan collection per row)",
    ))
    print("\nTakeaways the paper reports: request slots buy mark "
          "throughput until DRAM\nsaturates; queue size barely matters "
          "(spilling is cheap); compression halves\nspill traffic; sweepers "
          "scale to ~2-4 then contend; the shared cache wastes\nits area "
          "(Fig. 18).")


if __name__ == "__main__":
    main()
