"""Configuration: Table I fidelity and address-map integrity."""

import pytest

from repro.memory.config import (
    AddressMap,
    CacheConfig,
    DRAMConfig,
    MemorySystemConfig,
    TABLE_I,
    TLBConfig,
)


class TestTableI:
    """The reproduced configuration matches the paper's Table I."""

    def test_documented_values(self):
        assert TABLE_I["DRAM Latencies (ns)"] == "14-14-14-47"
        assert "FR-FCFS" in TABLE_I["Memory Access Scheduler"]
        assert TABLE_I["Page Policy"] == "Open-Page"

    def test_dram_defaults_match(self):
        dram = DRAMConfig()
        assert (dram.t_cas, dram.t_rcd, dram.t_rp, dram.t_ras) == (14, 14, 14, 47)
        assert dram.scheduler == "frfcfs"
        assert (dram.read_window, dram.write_window) == (16, 8)
        # DDR3-2000: 16 GB/s peak at a 1 GHz clock.
        assert dram.bus_bytes_per_cycle == 16

    def test_cpu_cache_defaults_match(self):
        cfg = MemorySystemConfig()
        assert cfg.l1d.size_bytes == 16 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.l2.ways == 8
        assert cfg.dtlb.entries == 32  # 128 KiB reach with 4 KiB pages

    def test_tlb_reach(self):
        assert TLBConfig().entries * 4096 == 128 * 1024


class TestAddressMap:
    def test_regions_disjoint_and_ordered(self):
        amap = AddressMap(total_bytes=64 * 1024 * 1024)
        regions = [amap.page_tables, amap.spill, amap.hwgc, amap.block_list,
                   amap.heap]
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 == s2, "regions must tile the space"
            assert s1 < e1
        assert amap.heap[1] == 64 * 1024 * 1024

    def test_null_page_reserved(self):
        amap = AddressMap(total_bytes=64 * 1024 * 1024)
        assert amap.page_tables[0] >= 4096, "address 0 stays unmapped (null)"

    def test_spill_region_default_4mb(self):
        """The driver 'currently allocate[s] a static 4MB range by default'
        (§V-E)."""
        amap = AddressMap(total_bytes=64 * 1024 * 1024)
        assert amap.spill[1] - amap.spill[0] == 4 * 1024 * 1024

    def test_too_small_memory_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(total_bytes=4 * 1024 * 1024)


class TestValidation:
    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            MemorySystemConfig(model="quantum")

    def test_cache_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, ways=4).n_sets

    def test_dram_geometry_validated(self):
        with pytest.raises(ValueError):
            DRAMConfig(n_banks=0)
