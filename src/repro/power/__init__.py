"""Area and energy models (§VI-C, Figs. 22-23).

The paper estimates area/power with Synopsys DC on the SAED EDK 32/28
standard-cell library and DRAM energy with Micron's DDR3 power-calculator
methodology driven by DRAM-level activity counters. Neither tool exists
here, so:

* :mod:`repro.power.area` is a static component-level area model whose
  constants are anchored to the paper's published ratios (GC unit = 18.5%
  of Rocket ~= 64 KB of SRAM; mark queue dominates the unit) and scale
  parametrically with the unit configuration for ablations;
* :mod:`repro.power.dram_power` implements the Micron-style DDR3 power
  equations (background, activate, read/write, refresh) over the activity
  counters the simulation collects;
* :mod:`repro.power.energy` combines core/unit power (the Design Compiler
  numbers, as constants) with DRAM power and phase durations into the
  per-benchmark energy comparison of Fig. 23.
"""

from repro.power.area import AreaModel, AREA_SAED32
from repro.power.dram_power import DDR3PowerCalculator, DRAMPowerBreakdown
from repro.power.energy import EnergyModel, EnergyReport

__all__ = [
    "AreaModel",
    "AREA_SAED32",
    "DDR3PowerCalculator",
    "DRAMPowerBreakdown",
    "EnergyModel",
    "EnergyReport",
]
