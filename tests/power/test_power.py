"""DDR3 power calculator and energy accounting (Fig. 23)."""

import pytest

from repro.power.dram_power import DDR3Currents, DDR3PowerCalculator
from repro.power.energy import EnergyModel


@pytest.fixture
def calc():
    return DDR3PowerCalculator()


class TestDRAMPower:
    def test_background_without_activity(self, calc):
        power = calc.power(activates=0, bytes_read=0, bytes_written=0,
                           window_cycles=1_000_000)
        assert power.dynamic_mw == 0.0
        assert power.background_mw > 0
        assert power.refresh_mw > 0

    def test_activate_power_scales_with_rate(self, calc):
        low = calc.power(1000, 0, 0, 1_000_000)
        high = calc.power(10_000, 0, 0, 1_000_000)
        assert high.activate_mw == pytest.approx(10 * low.activate_mw)

    def test_read_power_scales_with_utilization(self, calc):
        quarter = calc.power(0, 4_000_000, 0, 1_000_000)
        half = calc.power(0, 8_000_000, 0, 1_000_000)
        assert half.read_mw == pytest.approx(2 * quarter.read_mw)

    def test_utilization_clamped_at_peak(self, calc):
        crazy = calc.power(0, 10**12, 10**12, 1_000)
        c = DDR3Currents()
        assert crazy.read_mw <= (c.idd4r - c.idd3n) * c.vdd * 8 + 1e-9

    def test_activate_energy_magnitude(self, calc):
        """A rank activate costs tens of nanojoules — the reason the unit's
        small random requests make its DRAM power 'much higher' (§VI-C)."""
        assert 5 < calc.activate_energy_nj() < 50

    def test_invalid_window(self, calc):
        with pytest.raises(ValueError):
            calc.power(0, 0, 0, 0)

    def test_from_stats_delta(self, calc):
        delta = {"dram.activates": 5000, "dram.bytes_read": 1_000_000,
                 "dram.bytes_written": 500_000}
        power = calc.power_from_stats(delta, 1_000_000)
        assert power.activate_mw > 0 and power.read_mw > power.write_mw
        assert power.as_dict()["total"] == pytest.approx(power.total_mw)


class TestEnergy:
    def test_pause_energy_composition(self):
        model = EnergyModel()
        report = model.pause_energy(
            "x", "sw", 2_000_000,
            {"dram.activates": 10_000, "dram.bytes_read": 2_000_000,
             "dram.bytes_written": 1_000_000},
        )
        assert report.duration_ms == pytest.approx(2.0)
        assert report.total_mj == pytest.approx(
            report.compute_mj + report.dram_mj)
        assert report.attributable_mj < report.total_mj

    def test_unit_beats_cpu_when_faster_at_equal_traffic(self):
        model = EnergyModel()
        traffic = {"dram.activates": 50_000, "dram.bytes_read": 10_000_000,
                   "dram.bytes_written": 5_000_000}
        sw = model.pause_energy("b", "sw", 3_000_000, traffic)
        hw = model.pause_energy("b", "hw", 1_000_000, traffic)
        saving = EnergyModel.savings(sw, hw)
        assert 0 < saving < 1
        # The unit's *power* is higher (same traffic in a third the time)...
        assert hw.dram.dynamic_mw > sw.dram.dynamic_mw
        # ...but its energy is lower — the Fig. 23 result.
        assert hw.attributable_mj < sw.attributable_mj

    def test_invalid_collector(self):
        with pytest.raises(ValueError):
            EnergyModel().pause_energy("x", "gpu", 1000, {})

    def test_savings_validation(self):
        model = EnergyModel()
        sw = model.pause_energy("x", "sw", 1, {})
        hw = model.pause_energy("x", "hw", 1, {})
        assert EnergyModel.savings(sw, hw) == pytest.approx(
            1 - hw.attributable_mj / sw.attributable_mj)
