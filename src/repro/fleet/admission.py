"""GC scheduling policies and the shared-unit admission queue.

Three policies arbitrate who collects on what:

* ``dedicated`` — one accelerator unit (and DRAM channel) per tenant;
  pause timelines pass through untouched. The upper bound: zero queueing,
  zero contention, maximum silicon.
* ``shared`` — the fleet shares ``n_units`` accelerator units behind a
  FIFO admission queue. A tenant wanting to collect *stops its mutator at
  the request cycle* (stop-the-world) and resumes when a unit finishes
  its collection, so queue wait widens the pause; every admitted
  collection is additionally stretched by the shared-DRAM-channel
  service-rate tax ``1 + dram_tax * (n_tenants - 1) / n_units``.
* ``software`` — no accelerator at all: every tenant falls back to the
  software collector on its own CPU (the under-contention fallback).

The ``shared`` event loop is a plain earliest-request-first heap. FIFO is
well-defined because each tenant's requests are pushed in order and a
tenant's next request time never precedes its previous grant's end (the
mutator was stopped), so the heap never reorders an earlier request
behind a later one.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from repro.workloads.mutator import MutatorRunResult

POLICIES: Tuple[str, ...] = ("dedicated", "shared", "software")


def resolve_policy(name: str) -> str:
    """Validate a policy name, raising with the valid list (CLI UX)."""
    if name not in POLICIES:
        raise ValueError(f"unknown policy {name!r}; "
                         f"valid policies: {', '.join(POLICIES)}")
    return name


@dataclass(frozen=True)
class ServiceGrant:
    """One admitted collection on one unit."""

    tenant: int
    pause_index: int
    unit: int
    request: int  # cycle the tenant stopped and asked to collect
    grant: int    # cycle a unit started serving it (>= request)
    end: int      # grant + taxed duration

    @property
    def wait_cycles(self) -> int:
        return self.grant - self.request


@dataclass
class ScheduleResult:
    """The fleet schedule under one policy."""

    policy: str
    #: Per-tenant adjusted timelines — what each tenant's queries see.
    timelines: List[MutatorRunResult]
    #: Admission log (empty for ``dedicated``/``software``).
    grants: List[ServiceGrant]
    #: Per-tenant total cycles spent stopped waiting for a unit.
    queue_wait_cycles: List[int]


def _dedicated(timelines: Sequence[MutatorRunResult]) -> ScheduleResult:
    return ScheduleResult(
        policy="dedicated",
        timelines=[replace(tl) for tl in timelines],
        grants=[],
        queue_wait_cycles=[0] * len(timelines),
    )


def _shared(timelines: Sequence[MutatorRunResult], n_units: int,
            dram_tax: float) -> ScheduleResult:
    n_tenants = len(timelines)
    tax = 1.0 + dram_tax * (n_tenants - 1) / n_units
    #: (request cycle, tenant, pause index) — tenant breaks ties.
    pending: List[Tuple[int, int, int]] = []
    for t, tl in enumerate(timelines):
        if tl.pauses:
            heapq.heappush(pending, (tl.pauses[0].start_cycle, t, 0))
    units = [0] * n_units  # cycle each unit becomes free
    drift = [0] * n_tenants  # how far each tenant's schedule has slipped
    adjusted: List[List] = [[] for _ in range(n_tenants)]
    grants: List[ServiceGrant] = []
    waits = [0] * n_tenants
    while pending:
        request, t, i = heapq.heappop(pending)
        unit = min(range(n_units), key=lambda u: (units[u], u))
        grant = max(request, units[unit])
        base_pause = timelines[t].pauses[i]
        duration = math.ceil(base_pause.pause_cycles * tax)
        end = grant + duration
        units[unit] = end
        grants.append(ServiceGrant(tenant=t, pause_index=i, unit=unit,
                                   request=request, grant=grant, end=end))
        waits[t] += grant - request
        # The tenant is stopped from request to end: its recorded pause is
        # the whole stall (wait + taxed collection).
        adjusted[t].append(replace(base_pause, start_cycle=request,
                                   mark_cycles=end - request,
                                   sweep_cycles=0))
        drift[t] += (end - request) - base_pause.pause_cycles
        if i + 1 < len(timelines[t].pauses):
            heapq.heappush(
                pending,
                (timelines[t].pauses[i + 1].start_cycle + drift[t], t, i + 1))
    return ScheduleResult(
        policy="shared",
        timelines=[
            MutatorRunResult(collector=tl.collector, pauses=adjusted[t],
                             mutator_cycles=tl.mutator_cycles)
            for t, tl in enumerate(timelines)
        ],
        grants=grants,
        queue_wait_cycles=waits,
    )


def schedule_fleet(policy: str, timelines: Sequence[MutatorRunResult],
                   n_units: int = 1, dram_tax: float = 0.25) -> ScheduleResult:
    """Arbitrate the fleet's collections under ``policy``.

    ``timelines`` are the per-tenant *requested* timelines (already
    phase-offset): hardware-collector runs for ``dedicated``/``shared``,
    software-collector runs for ``software``. The returned timelines are
    what each tenant's query replay should run against.
    """
    resolve_policy(policy)
    if policy == "shared":
        return _shared(timelines, n_units, dram_tax)
    result = _dedicated(timelines)
    return replace(result, policy=policy)
