"""Bounded hardware FIFO queues with backpressure.

:class:`HWQueue` models an on-chip FIFO (e.g. the traversal unit's mark queue
and tracer queue). ``put`` blocks the producing process while the queue is
full and ``get`` blocks the consumer while it is empty — exactly the
back-pressure behaviour the paper relies on ("the queues exert back-pressure
to avoid overflowing, and marker and tracer can only issue requests if there
is space", §V-C).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.engine.simulator import (
    Completion,
    Event,
    SimulationError,
    Simulator,
    fastpath_enabled,
)


class QueueFullError(SimulationError):
    """Raised by :meth:`HWQueue.put_nowait` when the queue is full."""


class QueueEmptyError(SimulationError):
    """Raised by :meth:`HWQueue.get_nowait` when the queue is empty."""


class HWQueue:
    """A bounded FIFO connecting two hardware processes.

    ``yield queue.put(item)`` completes once the item has been accepted;
    ``item = yield queue.get()`` completes with the dequeued item. Both
    maintain FIFO order among waiters.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self._ev_put = f"{name}.put"
        self._ev_get = f"{name}.get"
        self._fast = fastpath_enabled()
        # Shared always-ready handle for immediate puts: a Completion with
        # time 0 is triggered at every cycle >= 0 and carries value None,
        # which is observably identical to the fresh zero-latency
        # Completion ``put`` used to allocate per call — so one handle per
        # queue serves every immediate put for the simulation's lifetime.
        # (``get`` cannot share: its value is the dequeued item.)
        self._put_done = Completion(sim, 0, None)
        # Statistics.
        self.total_puts = 0
        self.total_gets = 0
        self.peak_occupancy = 0
        self.put_stall_count = 0  # puts that found the queue full

    # -- non-blocking interface ------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of items currently held."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def put_nowait(self, item: Any) -> None:
        """Enqueue immediately; raises :class:`QueueFullError` if full."""
        if self.is_full:
            raise QueueFullError(f"queue {self.name!r} full")
        self._accept(item)

    def get_nowait(self) -> Any:
        """Dequeue immediately; raises :class:`QueueEmptyError` if empty."""
        if not self._items:
            raise QueueEmptyError(f"queue {self.name!r} empty")
        return self._release()

    def try_put(self, item: Any) -> bool:
        """Enqueue if space is available; returns whether it was accepted."""
        if self.is_full:
            return False
        self._accept(item)
        return True

    # -- blocking (process) interface ------------------------------------

    def put(self, item: Any):
        """Yieldable put: completes when the item has been accepted."""
        if not self._putters and len(self._items) < self.capacity:
            # Immediate acceptance. The fast path returns the queue's
            # shared pre-resolved handle — observably identical to an
            # Event triggered before any waiter attaches (consumed
            # synchronously either way), minus any per-put allocation.
            if self._fast:
                self._accept(item)
                return self._put_done
            event = Event(self.sim, name=self._ev_put)
            self._accept(item)
            event.trigger()
            return event
        event = Event(self.sim, name=self._ev_put)
        self.put_stall_count += 1
        self._putters.append((event, item))
        return event

    def get(self):
        """Yieldable get: completes with the dequeued item."""
        if self._items:
            if self._fast:
                return Completion(self.sim, self.sim.now, self._release())
            event = Event(self.sim, name=self._ev_get)
            event.trigger(self._release())
            return event
        event = Event(self.sim, name=self._ev_get)
        self._getters.append(event)
        return event

    # -- internals --------------------------------------------------------

    def _accept(self, item: Any) -> None:
        """Add an item, waking a waiting getter if there is one."""
        self.total_puts += 1
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            self.total_gets += 1
            getter.trigger(item)
            return
        self._items.append(item)
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)

    def _release(self) -> Any:
        """Remove the head item, admitting a waiting putter if there is one."""
        item = self._items.popleft()
        self.total_gets += 1
        if self._putters:
            putter_event, pending = self._putters.popleft()
            self._items.append(pending)
            self.total_puts += 1
            putter_event.trigger()
        return item

    def drain(self) -> list:
        """Remove and return all queued items (used when resetting a unit)."""
        items = list(self._items)
        self._items.clear()
        self.total_gets += len(items)
        while self._putters and not self.is_full:
            putter_event, pending = self._putters.popleft()
            self._items.append(pending)
            self.total_puts += 1
            putter_event.trigger()
        return items

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"HWQueue({self.name!r}, {len(self._items)}/{self.capacity}, "
            f"waiting_put={len(self._putters)}, waiting_get={len(self._getters)})"
        )
