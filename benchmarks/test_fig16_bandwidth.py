"""Figure 16: memory bandwidth during the last GC pause of avrora."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E
from repro.harness.reporting import render_series


def test_fig16_bandwidth_trace(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig16, scale=bench_scale)
    print()
    print(render_series(result.extras["hw_mark_series"]["avrora"],
                        x_label="cycle", y_label="GB/s",
                        title="GC unit, mark phase"))
    rows = {row[1]: row for row in result.rows if row[0] == "avrora"}
    # In the paper's accounting (one 64B line access per memory request)
    # the unit exploits far more of the memory system than the CPU.
    assert rows["GC unit"][2] > 2.0 * rows["CPU"][2]
    # Its pause is far shorter despite touching the same heap.
    assert rows["GC unit"][4] < 0.6 * rows["CPU"][4]
