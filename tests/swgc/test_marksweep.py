"""Software Mark & Sweep: functional exactness and timing behaviours."""

import pytest

from repro.swgc import SoftwareCollector

from tests.conftest import make_random_heap


class TestMarkCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_marks_exactly_the_reachable_set(self, seed):
        heap, views = make_random_heap(n_objects=300, seed=seed)
        truth = heap.reachable()
        result = SoftwareCollector(heap).collect()
        assert result.objects_marked == len(truth)
        parity = heap.mark_parity
        for view in views:
            assert view.is_marked(parity) == (view.addr in truth)

    def test_null_roots_skipped(self, small_heap):
        a = small_heap.new_object(0)
        small_heap.set_roots([0, a.addr, 0])
        result = SoftwareCollector(small_heap).collect()
        assert result.objects_marked == 1

    def test_empty_roots(self, small_heap):
        small_heap.new_object(0)
        small_heap.set_roots([])
        result = SoftwareCollector(small_heap).collect()
        assert result.objects_marked == 0

    def test_second_gc_with_flipped_parity(self):
        heap, _views = make_random_heap(n_objects=200, seed=7)
        truth = heap.reachable()
        first = SoftwareCollector(heap).collect()
        heap.complete_gc_cycle()
        # No mutation: the second GC must mark the same set under parity 0.
        second = SoftwareCollector(heap).collect()
        assert first.objects_marked == second.objects_marked == len(truth)


class TestSweepCorrectness:
    def test_sweep_frees_exactly_the_garbage(self):
        heap, _views = make_random_heap(n_objects=300, seed=5)
        live_ms = heap.live_marksweep_objects()
        total_ms = sum(
            1 for a in heap.objects
            if heap.plan.marksweep.contains(heap.to_physical(a))
        )
        result = SoftwareCollector(heap).collect()
        assert result.cells_live == len(live_ms)
        assert result.cells_freed == total_ms - len(live_ms)
        heap.check_free_lists()

    def test_swept_free_lists_stay_within_blocks(self):
        heap, _views = make_random_heap(n_objects=400, seed=9)
        SoftwareCollector(heap).collect()
        free = heap.check_free_lists()  # raises on any corruption
        assert free > 0


class TestTiming:
    def test_queue_peak_reported(self):
        heap, _views = make_random_heap(n_objects=300, seed=2)
        result = SoftwareCollector(heap).collect()
        assert result.queue_peak > 0
        assert result.total_cycles == result.mark_cycles + result.sweep_cycles
        assert result.mark_ms == result.mark_cycles / 1e6

    def test_conventional_layout_is_slower(self):
        """Fig. 6a vs 6b: the TIB indirection costs extra accesses."""
        heap, _views = make_random_heap(n_objects=300, seed=4)
        cp = heap.checkpoint()
        bi = SoftwareCollector(heap, layout="bidirectional").collect()
        heap.restore(cp)
        conv = SoftwareCollector(heap, layout="conventional").collect()
        assert conv.mark_cycles > bi.mark_cycles
        assert conv.objects_marked == bi.objects_marked

    def test_unknown_layout_rejected(self, small_heap):
        with pytest.raises(ValueError):
            SoftwareCollector(small_heap, layout="sideways")

    def test_mark_dominates_sweep_on_ref_heavy_heaps(self):
        """§IV: '75% of time in a Mark & Sweep collector is spent in the
        mark phase' — ref-dense heaps spend most time marking."""
        heap, _views = make_random_heap(n_objects=400, seed=6, max_refs=6,
                                        wire_prob=0.95)
        result = SoftwareCollector(heap).collect()
        assert result.mark_cycles > result.sweep_cycles
