"""Watchdog supervision for modeled GC collections.

A wedged accelerator (dropped DRAM response, stuck request slot) used to
surface as a bare ``SimulationError: deadlock`` with no indication of
*which* component stopped making progress. The watchdog turns that into a
:class:`~repro.engine.simulator.StallReport` naming the culprit, its
oldest outstanding request, and queue occupancies — the software-check
half of the paper's §V-E escape hatch.

Three detection rules, all evaluated outside the simulation's event flow:

* **deadlock** — the event queue drains while the collection's completion
  event is still pending (the pre-existing condition, now diagnosed);
* **no progress** — simulated time advances ``stall_cycles`` without a
  single event being processed (a response delayed far into the future
  looks exactly like this);
* **overdue request** — an outstanding tracked request (DRAM, page walk)
  has been in flight longer than ``request_timeout`` even though other
  components are still busy (livelock).

Determinism: supervision runs the simulation in bounded slices via
``sim.run(until=now + check_interval)`` and inspects state *between*
slices. It schedules no events and emits no trace records on the
fault-free path, so a supervised run is bit-identical to an unsupervised
one — the clock merely stops at the first slice boundary at/after the
completion trigger, which only matters to code reading ``sim.now`` after
the collection (the driver does not).

Zero-cost disabled path: components consult ``stats.watchdog`` (class
default ``None``) before every heartbeat or outstanding-request note, so
an unsupervised run pays one attribute load and a ``None`` check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.simulator import Event, Simulator, StallReport

#: Cycles of simulated time with zero events processed before the watchdog
#: declares the collection stalled. GC pauses in the modeled configuration
#: are single-digit milliseconds (millions of cycles) of *continuous*
#: activity; the longest legitimate quiet gap is a DRAM round trip
#: (hundreds of cycles), so 200k cycles of silence is unambiguous.
DEFAULT_STALL_CYCLES = 200_000

#: In-flight age at which a tracked request (DRAM, page walk) is declared
#: overdue. Worst-case legitimate latency is queueing behind a full FR-FCFS
#: window plus a two-level walk — well under 10k cycles; 400k is a stall.
DEFAULT_REQUEST_TIMEOUT = 400_000

#: Supervision slice length. Bounds how far the clock can overshoot the
#: completion trigger and how stale the between-slice checks can be.
DEFAULT_CHECK_INTERVAL = 50_000


class GCWatchdog:
    """Progress supervisor for one (or more) simulated collections.

    Attach with :meth:`attach` before running, supervise the completion
    event with :meth:`run_until`, and read the structured diagnosis from
    the raised :class:`StallReport`. Components report liveness through
    three channels, all optional and all skipped when unattached:

    * :meth:`beat` — "component X did useful work at cycle N";
    * :meth:`note_submit` / :meth:`note_complete` — request-level tracking
      for components whose failure mode is a response that never arrives;
    * :meth:`register_probe` — occupancy probes sampled only at diagnosis
      time (queue depths, slots in flight), which double as the culprit
      ranking when no tracked request is outstanding.
    """

    def __init__(self, stall_cycles: int = DEFAULT_STALL_CYCLES,
                 request_timeout: int = DEFAULT_REQUEST_TIMEOUT,
                 check_interval: int = DEFAULT_CHECK_INTERVAL):
        self.stall_cycles = stall_cycles
        self.request_timeout = request_timeout
        self.check_interval = check_interval
        #: component -> cycle of its most recent heartbeat.
        self.heartbeats: Dict[str, int] = {}
        #: (component, key) -> (submit cycle, description).
        self.outstanding: Dict[Tuple[str, Any], Tuple[int, str]] = {}
        #: probe name -> (component, zero-arg occupancy callable).
        self._probes: Dict[str, Tuple[str, Callable[[], int]]] = {}
        self._stats = None
        self.trips = 0
        #: Cycle at which the last supervised event actually triggered.
        #: Slicing lets the clock overshoot the trigger by up to
        #: ``check_interval``; cycle accounting must use this, not
        #: ``sim.now``, after :meth:`run_until` returns.
        self.completed_at: Optional[int] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, sim: Simulator, stats=None) -> "GCWatchdog":
        """Bind to ``sim`` (as its stall diagnostician) and optionally to a
        stats registry (``stats.watchdog``) so components can report."""
        sim.diagnostics = self
        if stats is not None:
            stats.watchdog = self
            self._stats = stats
        return self

    def detach(self, sim: Optional[Simulator] = None) -> None:
        if sim is not None and sim.diagnostics is self:
            sim.diagnostics = None
        if self._stats is not None and self._stats.watchdog is self:
            self._stats.watchdog = None
        self._stats = None

    def register_probe(self, name: str, component: str,
                       fn: Callable[[], int]) -> None:
        """Register an occupancy probe. Registration order is the culprit
        tie-break order when no tracked request is outstanding, so register
        upstream components (marker) before downstream ones (sweeper)."""
        self._probes[name] = (component, fn)

    # -- component-facing reporting (hot-ish paths; keep them cheap) -------

    def beat(self, component: str, now: int) -> None:
        """Record that ``component`` made progress at cycle ``now``."""
        self.heartbeats[component] = now

    def note_submit(self, component: str, key: Any, now: int,
                    desc: str) -> None:
        """Track an in-flight request expected to complete promptly."""
        self.outstanding[(component, key)] = (now, desc)

    def note_complete(self, component: str, key: Any) -> None:
        self.outstanding.pop((component, key), None)

    # -- supervision -------------------------------------------------------

    def run_until(self, sim: Simulator, event: Event) -> Any:
        """Run ``sim`` until ``event`` triggers, under supervision.

        Returns the event's value. Raises :class:`StallReport` on deadlock
        (via the kernel's own ``_stall``, which routes back through
        :meth:`diagnose`), on ``stall_cycles`` of zero progress, or on an
        overdue outstanding request.
        """
        self.completed_at = None

        def _stamp(_value):
            self.completed_at = sim.now

        event.add_callback(_stamp)
        last_processed = sim.events_processed
        last_progress = sim.now
        while not event.triggered:
            if sim.pending_events == 0:
                raise sim._stall(event)
            sim.run(until=sim.now + self.check_interval)
            now = sim.now
            if sim.events_processed != last_processed:
                last_processed = sim.events_processed
                last_progress = now
            elif now - last_progress >= self.stall_cycles:
                raise self.diagnose(
                    sim, event,
                    f"watchdog: no progress for {now - last_progress} "
                    f"cycles at cycle {now} while waiting for {event!r}")
            overdue = self._oldest_overdue(now)
            if overdue is not None:
                (component, _key), (t0, desc) = overdue
                raise self.diagnose(
                    sim, event,
                    f"watchdog: request overdue at cycle {now} "
                    f"({desc}, submitted to {component} at cycle {t0}, "
                    f"{now - t0} cycles in flight) "
                    f"while waiting for {event!r}")
        if self.completed_at is None:
            self.completed_at = sim.now
        return event.value

    def _oldest_overdue(self, now: int):
        oldest = None
        for item in self.outstanding.items():
            if oldest is None or item[1][0] < oldest[1][0]:
                oldest = item
        if oldest is not None and now - oldest[1][0] >= self.request_timeout:
            return oldest
        return None

    # -- diagnosis ---------------------------------------------------------

    def diagnose(self, sim: Simulator, event: Event,
                 message: str) -> StallReport:
        """Build the :class:`StallReport` for a detected stall. Also the
        kernel's ``diagnostics`` callback, so plain queue-drain deadlocks
        get the same treatment."""
        self.trips += 1
        occupancies: Dict[str, int] = {}
        for name, (_component, probe) in self._probes.items():
            try:
                occupancies[name] = int(probe())
            except Exception:
                occupancies[name] = -1
        culprit, oldest_desc = self._find_culprit(sim.now, occupancies)
        faults: List[Any] = []
        stats = self._stats
        if stats is not None:
            stats.inc("watchdog.trips")
            plane = stats.hwfaults
            if plane is not None:
                faults = list(plane.fired)
        detail = []
        if culprit:
            detail.append(f"culprit: {culprit}")
        if oldest_desc:
            detail.append(f"oldest outstanding: {oldest_desc}")
        if occupancies:
            detail.append("occupancy: " + ", ".join(
                f"{name}={value}" for name, value in occupancies.items()))
        if faults:
            detail.append("injected faults: " + "; ".join(
                str(fault) for fault in faults))
        full = message if not detail else (
            message + " [" + " | ".join(detail) + "]")
        return StallReport(full, cycle=sim.now, waiting_for=repr(event),
                           culprit=culprit, oldest_request=oldest_desc,
                           occupancies=occupancies, faults=faults)

    def _find_culprit(self, now: int,
                      occupancies: Dict[str, int]) -> Tuple[str, str]:
        """Deterministic culprit ranking: (1) the component holding the
        oldest tracked outstanding request; (2) the first registered probe
        with non-zero occupancy (work held but not moving); (3) the
        component with the stalest heartbeat."""
        oldest = None
        for (component, _key), (t0, desc) in self.outstanding.items():
            if oldest is None or t0 < oldest[1]:
                oldest = (component, t0, desc)
        if oldest is not None:
            component, t0, desc = oldest
            return component, (f"{desc} (submitted at cycle {t0}, "
                               f"{now - t0} cycles in flight)")
        for _name, (component, _probe) in self._probes.items():
            if occupancies.get(_name, 0) > 0:
                return component, ""
        if self.heartbeats:
            component = min(self.heartbeats, key=lambda c: self.heartbeats[c])
            return component, ""
        return "", ""
