"""The GC accelerator — the paper's primary contribution (§IV, §V).

Two units connected to the on-chip interconnect like any DMA-capable device:

* the **traversal unit** (:class:`~repro.core.unit.TraversalUnit`): reader,
  marker and tracer pipelined around an on-chip mark queue that spills to a
  dedicated memory region when full;
* the **reclamation unit** (:class:`~repro.core.unit.ReclamationUnit`):
  a block-list reader feeding parallel block sweepers that rebuild the
  segregated free lists in memory.

:class:`~repro.core.unit.GCUnit` composes both behind the MMIO register
file and Linux-driver model of §V-E, and `collect()` runs a full
stop-the-world hardware collection against a :class:`~repro.heap.heapimage.
ManagedHeap`.
"""

from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.markqueue import MarkQueue, AddressCodec
from repro.core.markbitcache import MarkBitCache
from repro.core.unit import GCUnit, TraversalUnit, ReclamationUnit
from repro.core.mmio import MMIORegisterFile, Reg
from repro.core.driver import HWGCDriver

__all__ = [
    "GCUnitConfig",
    "HardwareGCResult",
    "MarkQueue",
    "AddressCodec",
    "MarkBitCache",
    "GCUnit",
    "TraversalUnit",
    "ReclamationUnit",
    "MMIORegisterFile",
    "Reg",
    "HWGCDriver",
]
