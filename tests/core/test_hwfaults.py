"""Differential fault-injection suite: every fault kind x component pair
must end in a diagnosed fallback whose recovered heap matches the BFS
oracle exactly (the §V-E safety net, exercised adversarially)."""

import itertools

import pytest

from repro.core.config import GCUnitConfig
from repro.core.driver import HWGCDriver
from repro.core.mmio import Reg, Status
from repro.engine.faultplane import COMPONENTS, KINDS, parse_hwfault_spec
from repro.engine.simulator import StallReport
from repro.engine.trace import TraceBus
from repro.heap.verify import heap_digest
from repro.workloads import DACAPO_PROFILES, HeapGraphBuilder

PAIRS = list(itertools.product(KINDS, COMPONENTS))


@pytest.fixture(scope="module")
def drill_env():
    """One workload heap + checkpoint, its reachability oracle, and the
    fault-free reference digest every faulted run must converge to."""
    built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                             seed=13).build()
    heap = built.heap
    checkpoint = heap.checkpoint()
    oracle = heap.reachable()
    driver = HWGCDriver(heap, GCUnitConfig())
    driver.init_device()
    safe = driver.run_gc_safe()
    assert safe.outcome == "hardware", safe.reason()
    assert heap.reachable() == oracle
    heap.prune_dead(oracle)
    reference = heap_digest(heap)
    heap.restore(checkpoint)
    return heap, checkpoint, oracle, reference


def _run_with_fault(heap, spec):
    plane = parse_hwfault_spec(spec)
    plane.install(heap.memsys.stats, heap.memsys.phys)
    try:
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        return driver.run_gc_safe(), driver, plane
    finally:
        plane.uninstall()


class TestDifferentialMatrix:
    @pytest.mark.parametrize("kind,component", PAIRS,
                             ids=[f"{k}:{c}" for k, c in PAIRS])
    def test_fault_forces_recorded_fallback_to_oracle(self, drill_env,
                                                      kind, component):
        heap, checkpoint, oracle, reference = drill_env
        heap.restore(checkpoint)
        before = heap.memsys.stats.get("driver.fallbacks")
        safe, driver, plane = _run_with_fault(heap, f"{kind}:{component}")
        # Never silent: the fault fired, the run degraded, and said so.
        assert plane.fired, "the armed fault never fired"
        assert safe.fallback, (
            f"{kind}:{component} was silently absorbed: {safe.reason()}")
        assert safe.result is not None  # the software net did collect
        assert heap.memsys.stats.get("driver.fallbacks") == before + 1
        assert heap.memsys.stats.get(f"hwfault.{kind}.{component}") >= 1
        assert driver.mmio.read(Reg.FALLBACKS) == 1
        assert driver.mmio.status == Status.READY
        # Exact convergence: live set == BFS oracle, logical digest == the
        # fault-free reference.
        assert heap.reachable() == oracle
        heap.prune_dead(heap.reachable())
        assert heap_digest(heap) == reference


class TestNamedCulprits:
    """The two diagnosis scenarios the watchdog must get right by name."""

    def test_dropped_dram_response_names_dram(self, drill_env):
        heap, checkpoint, _oracle, _reference = drill_env
        heap.restore(checkpoint)
        safe, _driver, _plane = _run_with_fault(heap, "drop:dram")
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "dram"
        assert "dram" in safe.stall.oldest_request or \
            "from" in safe.stall.oldest_request
        assert "deadlock" in str(safe.stall) or \
            "watchdog" in str(safe.stall)

    def test_stuck_marker_slot_names_marker(self, drill_env):
        heap, checkpoint, _oracle, _reference = drill_env
        heap.restore(checkpoint)
        safe, _driver, _plane = _run_with_fault(heap, "stuck:marker")
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "marker"
        assert safe.stall.occupancies.get("marker.slots_in_flight", 0) > 0


@pytest.fixture(scope="class")
def vector_drill_env():
    """The drill environment rebuilt on the vector kernel: the watchdog,
    ``discard_pending``, and the software fallback are kernel-facing code
    paths, so the two named drills must pass on every kernel."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_ENGINE", "vector")
    try:
        built = HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                                 seed=13).build()
        heap = built.heap
        checkpoint = heap.checkpoint()
        oracle = heap.reachable()
        driver = HWGCDriver(heap, GCUnitConfig())
        driver.init_device()
        safe = driver.run_gc_safe()
        assert safe.outcome == "hardware", safe.reason()
        heap.prune_dead(oracle)
        reference = heap_digest(heap)
        heap.restore(checkpoint)
        yield heap, checkpoint, oracle, reference
    finally:
        mp.undo()


class TestVectorKernelDrills:
    """drop:dram and stuck:marker on ``REPRO_ENGINE=vector``."""

    def test_heap_runs_on_vector_kernel(self, vector_drill_env):
        from repro.engine.simulator import VectorSimulator

        heap, *_ = vector_drill_env
        assert isinstance(heap.sim, VectorSimulator)

    def test_dropped_dram_response_falls_back(self, vector_drill_env):
        heap, checkpoint, oracle, reference = vector_drill_env
        heap.restore(checkpoint)
        safe, driver, plane = _run_with_fault(heap, "drop:dram")
        assert plane.fired
        assert safe.fallback, safe.reason()
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "dram"
        assert driver.mmio.status == Status.READY
        assert heap.reachable() == oracle
        heap.prune_dead(heap.reachable())
        assert heap_digest(heap) == reference

    def test_stuck_marker_slot_falls_back(self, vector_drill_env):
        heap, checkpoint, oracle, reference = vector_drill_env
        heap.restore(checkpoint)
        safe, _driver, _plane = _run_with_fault(heap, "stuck:marker")
        assert safe.fallback, safe.reason()
        assert isinstance(safe.stall, StallReport)
        assert safe.stall.culprit == "marker"
        assert heap.reachable() == oracle
        heap.prune_dead(heap.reachable())
        assert heap_digest(heap) == reference


class TestObservability:
    def test_fault_and_fallback_ride_the_trace(self, drill_env):
        heap, checkpoint, _oracle, _reference = drill_env
        heap.restore(checkpoint)
        stats = heap.memsys.stats
        stats.trace = TraceBus()
        try:
            safe, _driver, _plane = _run_with_fault(heap, "drop:dram")
            assert safe.fallback
            faults = stats.trace.by_category("fault")
            assert faults and faults[0][2:4] == ("drop", "dram")
            fallbacks = stats.trace.by_category("fallback")
            assert len(fallbacks) == 1
            assert "dram" in fallbacks[0][2]  # reason names the culprit
        finally:
            stats.trace = None

    def test_watchdog_trip_counter_exported(self, drill_env):
        heap, checkpoint, _oracle, _reference = drill_env
        heap.restore(checkpoint)
        stats = heap.memsys.stats
        before = stats.get("watchdog.trips")
        safe, _driver, _plane = _run_with_fault(heap, "stuck:tlb")
        assert safe.fallback
        assert stats.get("watchdog.trips") == before + 1


class TestZeroCostWhenArmedButQuiet:
    def test_supervised_unfired_run_matches_unsupervised(self):
        """A plane that never fires + a watchdog that never trips must not
        perturb the modeled collection at all: same cycle counts, same
        logical heap."""
        def fresh():
            return HeapGraphBuilder(DACAPO_PROFILES["luindex"], scale=0.008,
                                    seed=13).build().heap

        plain_heap = fresh()
        plain = HWGCDriver(plain_heap, GCUnitConfig())
        plain.init_device()
        plain_result = plain.run_gc()
        plain_heap.prune_dead(plain_heap.reachable())

        armed_heap = fresh()
        plane = parse_hwfault_spec("drop:dram:1000000000")  # never reached
        plane.install(armed_heap.memsys.stats, armed_heap.memsys.phys)
        armed = HWGCDriver(armed_heap, GCUnitConfig())
        armed.init_device()
        safe = armed.run_gc_safe()
        assert safe.outcome == "hardware" and not safe.faults
        armed_heap.prune_dead(armed_heap.reachable())

        assert safe.result.mark_cycles == plain_result.mark_cycles
        assert safe.result.sweep_cycles == plain_result.sweep_cycles
        assert safe.result.objects_marked == plain_result.objects_marked
        assert safe.result.cells_freed == plain_result.cells_freed
        assert heap_digest(armed_heap) == heap_digest(plain_heap)


class TestEnvAttach:
    def test_env_spec_installs_plane_at_build(self, monkeypatch):
        from repro.heap.heapimage import ManagedHeap
        from repro.memory.config import MemorySystemConfig

        monkeypatch.setenv("REPRO_HWFAULTS", "corrupt:sweeper")
        heap = ManagedHeap(
            config=MemorySystemConfig(total_bytes=32 * 1024 * 1024))
        plane = heap.memsys.stats.hwfaults
        assert plane is not None
        assert plane.faults[0].spec() == "corrupt:sweeper:1"

    def test_env_unset_means_zero_cost_none(self, monkeypatch):
        from repro.heap.heapimage import ManagedHeap
        from repro.memory.config import MemorySystemConfig

        monkeypatch.delenv("REPRO_HWFAULTS", raising=False)
        heap = ManagedHeap(
            config=MemorySystemConfig(total_bytes=32 * 1024 * 1024))
        assert heap.memsys.stats.hwfaults is None
