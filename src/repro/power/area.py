"""Component-level area model (Fig. 22).

Anchored to the paper's published results on SAED EDK 32/28:

* "our GC unit is 18.5% the size of the CPU, most of which is taken by the
  mark queue. This is comparable to the area of 64KB of SRAM."
* Fig. 22a compares Rocket, the GC unit (HWGC) and the 256 KB L2.
* Fig. 22b splits Rocket into L1 DCache / Frontend / Other.
* Fig. 22c splits the unit into Mark Queue / Tracer / Marker / PTW /
  Sweeper / Other.

SRAM-dominated components scale as ``mm2_per_kb x KB`` plus a logic
constant, so the model responds to configuration changes (queue size,
compression, mark-bit cache, sweeper count) — used by the area ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import GCUnitConfig


@dataclass(frozen=True)
class AreaConstants:
    """Technology constants for one library (defaults: SAED EDK 32/28)."""

    #: mm^2 per KB of SRAM, including array, tags and periphery. Anchored
    #: so 64 KB of SRAM ~= the baseline unit's 0.42 mm^2.
    sram_mm2_per_kb: float = 0.0066
    #: mm^2 per KB of flop-based FIFO/CAM storage (queues, TLBs). Flop
    #: arrays are ~3x less dense than compiled SRAM, which is why the mark
    #: queue dominates the unit in Fig. 22c and why the paper suggests
    #: "bigger multi-cycle TLBs ... as they can use sequential SRAMs".
    fifo_mm2_per_kb: float = 0.0205
    #: The educational SAED32 library yields low-density compiled L2 macros;
    #: the paper's Fig. 22a shows the 256 KB L2 towering over Rocket.
    l2_sram_mm2_per_kb: float = 0.0255
    # Rocket (Table I configuration). "Note that Rocket is a small CPU."
    rocket_l1d_mm2: float = 0.50  # 16 KB + tags + MSHRs
    rocket_frontend_mm2: float = 0.46  # 16 KB ICache + fetch/branch
    rocket_other_mm2: float = 1.31  # int/FP datapath, CSRs, PTW, TLBs
    # GC-unit logic constants (non-SRAM portions of each block).
    marker_logic_mm2: float = 0.030
    tracer_logic_mm2: float = 0.038
    sweeper_logic_mm2: float = 0.008  # per sweeper ("negligibly small")
    unit_other_mm2: float = 0.020  # MMIO, crossbar, control
    ptw_logic_mm2: float = 0.010


AREA_SAED32 = AreaConstants()


class AreaModel:
    """Parametric area estimates for CPU, L2 and the GC unit."""

    def __init__(self, constants: AreaConstants = AREA_SAED32):
        self.constants = constants

    # -- CPU and L2 ---------------------------------------------------------

    def rocket_breakdown(self) -> Dict[str, float]:
        c = self.constants
        return {
            "L1 DCache": c.rocket_l1d_mm2,
            "Frontend": c.rocket_frontend_mm2,
            "Other": c.rocket_other_mm2,
        }

    def rocket_total(self) -> float:
        return sum(self.rocket_breakdown().values())

    def l2_total(self, l2_kb: int = 256) -> float:
        return l2_kb * self.constants.l2_sram_mm2_per_kb

    # -- GC unit --------------------------------------------------------------

    def unit_breakdown(
        self, config: Optional[GCUnitConfig] = None
    ) -> Dict[str, float]:
        config = config if config is not None else GCUnitConfig()
        c = self.constants
        # Queues and TLBs are flop arrays; the PTW's backing cache is SRAM.
        mark_queue_kb = config.mark_queue_bytes / 1024
        tracer_queue_kb = config.tracer_queue_entries * 16 / 1024  # addr+count
        mbc_kb = config.mark_bit_cache_entries * 8 / 1024
        if config.cache_mode == "shared":
            ptw_sram_kb = config.shared_cache.size_bytes / 1024
        else:
            ptw_sram_kb = config.ptw_cache.size_bytes / 1024
        tlb_kb = (2 * config.tlb.entries + config.l2_tlb_entries) * 8 / 1024
        return {
            "Mark Q.": mark_queue_kb * c.fifo_mm2_per_kb + 0.004,
            "Tracer": tracer_queue_kb * c.fifo_mm2_per_kb + c.tracer_logic_mm2,
            "Marker": (config.marker_slots * 16 / 1024) * c.fifo_mm2_per_kb
            + c.marker_logic_mm2
            + mbc_kb * c.fifo_mm2_per_kb,
            "PTW": ptw_sram_kb * c.sram_mm2_per_kb + c.ptw_logic_mm2
            + tlb_kb * c.fifo_mm2_per_kb,
            "Sweeper": config.n_sweepers * c.sweeper_logic_mm2,
            "Other": c.unit_other_mm2,
        }

    def unit_total(self, config: Optional[GCUnitConfig] = None) -> float:
        return sum(self.unit_breakdown(config).values())

    def unit_to_rocket_ratio(
        self, config: Optional[GCUnitConfig] = None
    ) -> float:
        """The paper's headline 18.5% figure for the baseline config."""
        return self.unit_total(config) / self.rocket_total()

    def totals(self, config: Optional[GCUnitConfig] = None) -> Dict[str, float]:
        """Fig. 22a's three bars."""
        return {
            "Rocket": self.rocket_total(),
            "HWGC": self.unit_total(config),
            "L2 Cache": self.l2_total(),
        }

    def sram_equivalent_kb(
        self, config: Optional[GCUnitConfig] = None
    ) -> float:
        """The unit's area expressed as KB of SRAM ("equivalent to 64KB")."""
        return self.unit_total(config) / self.constants.sram_mm2_per_kb
