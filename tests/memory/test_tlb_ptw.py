"""TLBs and the blocking page-table walker."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.memory.cache import Cache
from repro.memory.config import CacheConfig, MemorySystemConfig, TLBConfig
from repro.memory.interconnect import build_memory_system
from repro.memory.paging import PAGE_SIZE, VIRT_OFFSET
from repro.memory.ptw import PageTableWalker
from repro.memory.tlb import TLB, SharedL2TLB


@pytest.fixture
def system():
    sim = Simulator()
    ms = build_memory_system(sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
    ptw = PageTableWalker(sim, ms.page_table, ms.port("ptw", validate=False),
                          stats=ms.stats)
    return sim, ms, ptw


class TestPTW:
    def test_walk_translates(self, system):
        sim, ms, ptw = system
        got = []
        ptw.walk(VIRT_OFFSET + 0x1234).add_callback(got.append)
        sim.run()
        assert got == [0x1234]
        assert ms.stats.get("ptw.pte_reads") == 3

    def test_walks_serialize(self, system):
        sim, ms, ptw = system
        done_times = []
        for i in range(3):
            ptw.walk(VIRT_OFFSET + i * PAGE_SIZE).add_callback(
                lambda _p: done_times.append(sim.now))
        assert ptw.queue_depth >= 2  # queued behind the busy walker
        sim.run()
        assert len(done_times) == 3
        assert done_times[0] < done_times[1] < done_times[2]

    def test_ptw_cache_accelerates_upper_levels(self):
        sim = Simulator()
        ms = build_memory_system(sim, MemorySystemConfig(total_bytes=16 * 1024 * 1024))
        cache = Cache(sim, CacheConfig(size_bytes=8 * 1024, ways=4,
                                       hit_latency=1, mshrs=1),
                      ms.model, name="ptwc", stats=ms.stats)
        ptw = PageTableWalker(sim, ms.page_table, cache, stats=ms.stats)
        ptw.walk(VIRT_OFFSET)
        sim.run()
        t0 = sim.now
        ptw.walk(VIRT_OFFSET + PAGE_SIZE)  # upper levels now cached
        sim.run()
        assert sim.now - t0 < t0


class TestTLB:
    def test_hit_is_instant(self, system):
        sim, ms, ptw = system
        tlb = TLB(sim, TLBConfig(entries=4), ptw, stats=ms.stats)
        tlb.translate(VIRT_OFFSET)
        sim.run()
        event = tlb.translate(VIRT_OFFSET + 8)
        assert event.triggered and event.value == 8  # same-cycle hit
        assert ms.stats.get("tlb.tlb.hits") == 1

    def test_lru_eviction(self, system):
        sim, ms, ptw = system
        tlb = TLB(sim, TLBConfig(entries=2), ptw, stats=ms.stats)
        for page in (0, 1, 2):  # page 0 evicted by page 2
            tlb.translate(VIRT_OFFSET + page * PAGE_SIZE)
            sim.run()
        tlb.translate(VIRT_OFFSET)
        sim.run()
        assert ms.stats.get("tlb.tlb.misses") == 4

    def test_l2_tlb_catches_l1_evictions(self, system):
        sim, ms, ptw = system
        l2 = SharedL2TLB(entries=64)
        tlb = TLB(sim, TLBConfig(entries=2), ptw, l2=l2, stats=ms.stats)
        for page in range(4):
            tlb.translate(VIRT_OFFSET + page * PAGE_SIZE)
            sim.run()
        walks_before = ms.stats.get("ptw.walks")
        tlb.translate(VIRT_OFFSET)  # evicted from L1 but in L2
        sim.run()
        assert ms.stats.get("ptw.walks") == walks_before
        assert ms.stats.get("tlb.tlb.l2_hits") == 1

    def test_flush(self, system):
        sim, ms, ptw = system
        tlb = TLB(sim, TLBConfig(entries=4), ptw, stats=ms.stats)
        tlb.translate(VIRT_OFFSET)
        sim.run()
        tlb.flush()
        assert tlb.occupancy == 0
        tlb.translate(VIRT_OFFSET)
        sim.run()
        assert ms.stats.get("tlb.tlb.misses") == 2

    def test_two_tlbs_share_one_walker(self, system):
        sim, ms, ptw = system
        l2 = SharedL2TLB()
        marker = TLB(sim, TLBConfig(entries=4), ptw, name="marker", l2=l2,
                     stats=ms.stats)
        tracer = TLB(sim, TLBConfig(entries=4), ptw, name="tracer", l2=l2,
                     stats=ms.stats)
        got = []
        marker.translate(VIRT_OFFSET).add_callback(got.append)
        tracer.translate(VIRT_OFFSET + PAGE_SIZE).add_callback(got.append)
        sim.run()
        assert sorted(got) == [0, PAGE_SIZE]
        # The second unit benefits from the shared L2 TLB for shared pages.
        tracer.translate(VIRT_OFFSET + 8)
        sim.run()
        assert ms.stats.get("tlb.tracer.l2_hits") == 1
