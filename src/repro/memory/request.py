"""Memory request descriptors shared by all timing models.

Requests carry a ``source`` string so the harness can attribute traffic to
the unit that generated it — the breakdown that drives Fig. 18 ("Traversal
Unit Memory Requests": mark queue / tracer / PTW / marker) and the bandwidth
plots (Figs. 16, 17b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

# TileLink in the prototype supports naturally aligned transfers of 8..64B
# (§V-C: "Our interconnect supports transfer sizes from 8 to 64B, but they
# have to be aligned").
MIN_TRANSFER = 8
MAX_TRANSFER = 64


class AccessKind(enum.Enum):
    """What kind of memory operation a request performs."""

    READ = "read"
    WRITE = "write"
    AMO = "amo"  # atomic read-modify-write (fetch-or / fetch-and)

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE

    @property
    def needs_response_data(self) -> bool:
        """AMOs and reads return data to the requester; writes are posted."""
        return self is not AccessKind.WRITE


@dataclass(slots=True)
class MemRequest:
    """A single memory-system transaction.

    ``addr`` is a *physical* byte address (translation happens in the TLBs
    before requests reach the memory system). ``size`` is in bytes.

    Slotted: requests are allocated on every cache/DRAM/pipe access (about
    a hundred thousand per small GC comparison), so skipping the per-instance
    ``__dict__`` is a measurable win.
    """

    addr: int
    size: int
    kind: AccessKind
    source: str = "unknown"
    issue_time: Optional[int] = None
    tag: Optional[int] = None  # marker request-slot tag (Fig. 13)

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative address: {self.addr:#x}")
        if self.size <= 0:
            raise ValueError(f"non-positive size: {self.size}")

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


class RequestSlots:
    """The marker's tag table (Fig. 13) as parallel columns indexed by tag.

    "Instead of full memory requests, we only hold a tag and a 64-bit
    address for each request" — so the model holds exactly that: one
    ``ref`` and one ``paddr`` column, preallocated to the slot count.
    In-flight state is a pair of list stores at issue and a pair of list
    loads at response; the response callback carries only the integer tag.
    """

    __slots__ = ("ref", "paddr")

    def __init__(self, n_slots: int):
        self.ref: list = [0] * n_slots
        self.paddr: list = [0] * n_slots

    def store(self, tag: int, ref: int, paddr: int) -> None:
        self.ref[tag] = ref
        self.paddr[tag] = paddr


def validate_tilelink(req: MemRequest) -> None:
    """Enforce the interconnect's transfer rules (power-of-two 8..64B, aligned).

    The tracer's request generator must only emit requests that pass this
    check; it is property-tested in ``tests/core/test_tracer.py``.
    """
    size = req.size
    if size < MIN_TRANSFER or size > MAX_TRANSFER:
        raise ValueError(f"transfer size {size} outside [8, 64]")
    if size & (size - 1) != 0:
        raise ValueError(f"transfer size {size} not a power of two")
    if req.addr % size != 0:
        raise ValueError(f"transfer {req.addr:#x} not aligned to size {size}")


def split_into_aligned_transfers(addr: int, nbytes: int) -> "list[tuple[int, int]]":
    """Split ``[addr, addr+nbytes)`` into maximal aligned 8..64B transfers.

    Implements the tracer's request-generation rule (§V-C): "If we need to
    copy 15 references (15x8 bytes) at 0x1a18, we therefore issue requests of
    transfer sizes 8, 32, 64, 16 (in this order)."

    ``addr`` and ``nbytes`` must be multiples of 8.
    """
    if addr % MIN_TRANSFER or nbytes % MIN_TRANSFER:
        raise ValueError("tracer transfers must be word-aligned")
    out = []
    cur = addr
    remaining = nbytes
    while remaining > 0:
        # The largest power-of-two size that divides the current alignment
        # and does not exceed what remains (capped at MAX_TRANSFER).
        align = cur & -cur if cur else MAX_TRANSFER
        size = min(align, MAX_TRANSFER)
        while size > remaining:
            size //= 2
        out.append((cur, size))
        cur += size
        remaining -= size
    return out
