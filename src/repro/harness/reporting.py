"""Plain-text rendering of experiment results (tables and series).

The harness prints the same rows/series the paper's figures plot; these
helpers format them for terminals, test logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """A GitHub-markdown-compatible table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_failure(run) -> str:
    """The report section for a suite entry whose retries were exhausted.

    Replaces the figure's table in EXPERIMENTS.md so a degraded run still
    renders end-to-end: exit status, attempt count, and the per-attempt
    trail (status, wall time, error) the runner recorded.
    """
    args = ", ".join(f"{k}={v}" for k, v in run.kwargs.items())
    out = [
        f"## {run.exp_id}: FAILED — {run.error or 'unknown error'}",
        f"",
        f"*({args or 'static model'}; gave up after "
        f"{run.attempts} attempt(s))*",
    ]
    if run.attempt_history:
        out.append("")
        out.append(render_table(
            ("attempt", "status", "wall (s)", "detail"),
            [(rec.get("attempt", i + 1), rec.get("status", "?"),
              float(rec.get("elapsed", 0.0)), rec.get("error") or "")
             for i, rec in enumerate(run.attempt_history)],
        ))
    return "\n".join(out)


def render_series(points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 24, width: int = 40,
                  title: str = "") -> str:
    """A terminal sparkline table for time series (Fig. 16-style plots)."""
    if not points:
        return f"{title} (no data)"
    step = max(1, len(points) // max_points)
    sampled = points[::step]
    peak = max(y for _x, y in sampled) or 1.0
    out = [title] if title else []
    out.append(f"{x_label:>14} | {y_label}")
    for x, y in sampled:
        bar = "#" * int(round(width * y / peak))
        out.append(f"{x:>14.0f} | {bar} {y:.2f}")
    return "\n".join(out)
