"""``python -m repro fleet`` CLI: policy validation UX and output."""

import pytest

from repro.__main__ import main


class TestPolicyValidation:
    def test_bogus_policy_exits_nonzero_listing_valid(self, capsys):
        assert main(["fleet", "--policy", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in ("dedicated", "shared", "software"):
            assert name in err

    def test_one_bad_policy_in_a_list_still_fails(self, capsys):
        assert main(["fleet", "--policy", "dedicated,bogus"]) == 2
        assert "valid policies" in capsys.readouterr().err

    def test_empty_policy_selection_fails(self, capsys):
        assert main(["fleet", "--policy", ","]) == 2
        assert "valid policies" in capsys.readouterr().err


class TestCountValidation:
    @pytest.mark.parametrize("flag,bad,minimum", [
        ("--units", "0", 1),
        ("--units", "-2", 1),
        ("--tenants", "0", 1),
        ("--tenants", "-1", 1),
        ("--queries", "0", 1),
        ("--warmup", "-1", 0),
        ("--gcs", "0", 1),
    ])
    def test_non_positive_counts_exit_2_naming_the_constraint(
            self, capsys, flag, bad, minimum):
        assert main(["fleet", flag, bad]) == 2
        err = capsys.readouterr().err
        assert f"{flag} must be at least {minimum} (got {bad})" in err

    def test_valid_counts_are_not_rejected_by_the_validator(self, capsys):
        # --warmup 0 is legal (minimum is 0, not 1): the validator must
        # not reject the boundary value.  Smallest possible run.
        rc = main(["fleet", "--scale", "0.008", "--tenants", "1",
                   "--queries", "1", "--warmup", "0", "--gcs", "1",
                   "--policy", "dedicated"])
        assert rc == 0
        assert "## fleet_slo" in capsys.readouterr().out


class TestFaultsFlag:
    @pytest.mark.parametrize("spec", [
        "explode:u0",            # unknown kind
        "crash:x1",              # unknown target class
        "crash:u0+5",            # crash forbids a duration
        "brownout:u0",           # brownout requires one
        "slow:u0x1.0",           # factor must exceed 1.0
        "crash:",                # missing target
    ])
    def test_bad_grammar_exits_2(self, capsys, spec):
        assert main(["fleet", "--faults", spec]) == 2
        assert capsys.readouterr().err.strip()

    def test_out_of_range_target_exits_2(self, capsys):
        assert main(["fleet", "--units", "2", "--tenants", "2",
                     "--faults", "crash:u5"]) == 2
        assert "u5" in capsys.readouterr().err

    def test_faults_run_prints_the_resilience_table(self, capsys):
        rc = main(["fleet", "--scale", "0.008", "--tenants", "2",
                   "--queries", "200", "--warmup", "20", "--gcs", "1",
                   "--units", "2", "--faults", "slow:u0x2", "--digest"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "## fleet_resilience" in out
        assert "avail %" in out and "failovers" in out
        assert "slow:u0x2" in out
        digest = out.strip().splitlines()[-1]
        assert len(digest) == 64 and int(digest, 16) >= 0


class TestFleetCommand:
    def test_prints_table_and_digest(self, capsys):
        rc = main(["fleet", "--scale", "0.008", "--tenants", "2",
                   "--queries", "300", "--warmup", "30", "--gcs", "1",
                   "--policy", "dedicated", "--digest"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "## fleet_slo" in out
        assert "goodput q/s" in out
        digest = out.strip().splitlines()[-1]
        assert len(digest) == 64 and int(digest, 16) >= 0

    @pytest.mark.slow
    def test_lbo_flag_appends_the_lbo_table(self, capsys):
        rc = main(["fleet", "--scale", "0.008", "--tenants", "2",
                   "--queries", "200", "--warmup", "20", "--gcs", "1",
                   "--policy", "dedicated", "--lbo"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "## fleet_lbo" in out
        assert "LBO %" in out
