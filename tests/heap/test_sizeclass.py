"""Size-class table."""

import pytest

from repro.heap.sizeclass import SIZE_CLASSES_WORDS, SizeClassTable


class TestTable:
    def test_defaults_strictly_increasing(self):
        assert list(SIZE_CLASSES_WORDS) == sorted(set(SIZE_CLASSES_WORDS))

    def test_class_for_exact_and_between(self):
        table = SizeClassTable()
        assert table.cell_words(table.class_for(4)) == 4
        assert table.cell_words(table.class_for(5)) == 8
        assert table.cell_words(table.class_for(256)) == 256

    def test_too_big_raises(self):
        table = SizeClassTable()
        with pytest.raises(ValueError):
            table.class_for(257)
        assert not table.fits(257)
        assert table.fits(256)

    def test_cell_bytes(self):
        table = SizeClassTable()
        assert table.cell_bytes(0) == SIZE_CLASSES_WORDS[0] * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeClassTable([])
        with pytest.raises(ValueError):
            SizeClassTable([8, 4])
        with pytest.raises(ValueError):
            SizeClassTable([2, 4])  # cells must hold metadata + a field

    def test_custom_classes(self):
        table = SizeClassTable([4, 16, 64])
        assert len(table) == 3
        assert table.max_words == 64
