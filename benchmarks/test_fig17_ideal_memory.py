"""Figure 17: potential performance with a 1-cycle / 8 GB/s pipe."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig17_pipe_speedups_and_cadence(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig17, scale=bench_scale)
    geomean = result.rows[-1][1]
    # Paper: 9.0x average mark speedup in this regime.
    assert 6.5 < geomean < 12.0, f"pipe mark speedup {geomean} out of band"
    for row in result.rows[:-1]:
        _name, _mark_x, _sweep_x, interval, busy_pct, gbps = row
        # Paper: a request every ~8.66 cycles, port busy ~88% of cycles,
        # data consumption below the 8 GB/s peak. Our scaled heaps are
        # denser (TLB-friendlier), so the cadence band is wider.
        assert 1.0 < interval < 20.0
        assert busy_pct > 25.0
        assert gbps < 8.0
