"""Differential determinism: the fleet figures are byte-identical across
kernels, worker layouts, and cache states — pinned the way
``test_fastpath.py`` pins the 3×2 matrix.

The pinned digests are the determinism contract for the small-scale
scenario; a change here means fleet behavior changed and must be
deliberate (update the constants in the same commit that explains why).
"""

import pytest

from repro.fleet.timeline import reset_base_cache
from repro.harness import heapcache
from repro.harness.sharding import axis_values, can_shard, run_entry_sharded
from repro.harness.suite import run_entry

SLO_KWARGS = dict(scale=0.008, n_tenants=3, n_queries=600, warmup=60,
                  n_gcs=2)
SLO_DIGEST = "7e2c15c29cd6c2a86bfca3c687a3b2bb06455afab6be2fa439f6c2de648b8e4d"
LBO_KWARGS = dict(scale=0.008, n_gcs=2)
LBO_DIGEST = "0d294e883a9a8ce21282be06f7dd8da74fb57f2dd53f5abc4bdec20631975463"

KERNELS = ("bucket", "heapq", "vector")


class TestPinnedDigests:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fleet_slo_digest_per_kernel(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", kernel)
        heapcache.reset_cache()
        reset_base_cache()
        assert run_entry(0, "fleet_slo", SLO_KWARGS).digest == SLO_DIGEST

    def test_fleet_lbo_digest(self):
        assert run_entry(0, "fleet_lbo", LBO_KWARGS).digest == LBO_DIGEST


class TestShardedIdentity:
    def test_fleet_slo_sharded_matches_inline(self):
        inline = run_entry(0, "fleet_slo", SLO_KWARGS)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_slo", SLO_KWARGS, jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest == SLO_DIGEST
        assert len(sharded.shard_digests) == 2

    @pytest.mark.slow
    def test_fleet_lbo_sharded_matches_inline(self):
        inline = run_entry(0, "fleet_lbo", LBO_KWARGS)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_lbo", LBO_KWARGS, jobs=2)
        assert sharded.rendered == inline.rendered
        assert sharded.digest == inline.digest == LBO_DIGEST

    def test_tenant_axis_tracks_n_tenants(self):
        assert axis_values("fleet_slo", SLO_KWARGS) == [0, 1, 2]
        assert axis_values("fleet_slo", {}) == [0, 1, 2, 3]
        assert axis_values("fleet_slo", {"tenants": (1,)}) == [1]
        assert axis_values("fleet_lbo", {}) == [2, 4]
        assert can_shard("fleet_slo", SLO_KWARGS, 3)
        assert not can_shard("fleet_slo", SLO_KWARGS, 4)


class TestSimCacheIdentity:
    def test_cold_and_warm_render_identical_bytes(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path))
        cold = run_entry(0, "fleet_slo", SLO_KWARGS)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        heapcache.reset_cache()
        reset_base_cache()
        warm = run_entry(0, "fleet_slo", SLO_KWARGS)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert warm.rendered == cold.rendered
        assert warm.digest == cold.digest == SLO_DIGEST


@pytest.mark.slow
class TestFullScale:
    """The suite-scale entries themselves (the figures CI regenerates)."""

    def test_suite_entry_sharded_identity(self):
        from repro.harness.suite import SUITE

        kwargs = dict(SUITE)["fleet_slo"]
        inline = run_entry(0, "fleet_slo", kwargs)
        heapcache.reset_cache()
        reset_base_cache()
        sharded = run_entry_sharded(0, "fleet_slo", kwargs, jobs=2)
        assert sharded.rendered == inline.rendered
