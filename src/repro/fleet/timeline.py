"""Per-tenant GC pause timelines, derived from shared base runs.

Simulating a full :class:`~repro.workloads.mutator.MutatorModel` run per
tenant would multiply the fleet's cost by its size for no modeling gain:
two tenants running the same DaCapo profile at the same scale/seed have
statistically identical pause behavior. The fleet therefore keeps a
memoized *base-run library* — one simulated run per distinct
``(benchmark, collector, scale, seed, n_gcs)`` — and differentiates
tenants by a deterministic phase offset (staggered process start), which
is what actually matters to the admission queue: whether GC requests
collide in time.

Base runs are cached per process and never mutated; tenant timelines are
built from :func:`dataclasses.replace` copies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.harness.runners import build_heap
from repro.workloads.mutator import MutatorModel, MutatorRunResult
from repro.workloads.profiles import DACAPO_PROFILES

_BASE_CACHE: Dict[Tuple[str, str, float, int, int], MutatorRunResult] = {}
_DIGEST_CACHE: Dict[Tuple[str, str, float, int, int], str] = {}


def reset_base_cache() -> None:
    """Drop memoized base runs and heap digests (test isolation)."""
    _BASE_CACHE.clear()
    _DIGEST_CACHE.clear()


def base_run(benchmark: str, collector: str, scale: float, seed: int,
             n_gcs: int) -> MutatorRunResult:
    """The shared (memoized) mutator run for one profile × collector."""
    key = (benchmark, collector, scale, seed, n_gcs)
    cached = _BASE_CACHE.get(key)
    if cached is None:
        built, _checkpoint = build_heap(DACAPO_PROFILES[benchmark],
                                        scale=scale, seed=seed)
        cached = MutatorModel(built, collector=collector,
                              seed=seed).run(n_gcs=n_gcs)
        _BASE_CACHE[key] = cached
    return cached


def tenant_heap_digest(benchmark: str, collector: str, scale: float,
                       seed: int, n_gcs: int) -> str:
    """Heap digest after ``n_gcs`` collections of one profile × collector.

    The fleet's heap-convergence oracle: heap evolution depends only on
    the mutator run (which collections happened, in order), never on
    *when* the admission queue scheduled them or whether a unit or the
    software fallback served them. A faulted fleet run therefore
    converges to the fault-free digest exactly when every surviving
    tenant's collections all actually ran — pass the count of served
    collections as ``n_gcs`` and a scheduler that dropped or duplicated
    one diverges here. Memoized like :func:`base_run`.
    """
    from repro.heap.verify import heap_digest

    key = (benchmark, collector, scale, seed, n_gcs)
    cached = _DIGEST_CACHE.get(key)
    if cached is None:
        built, _checkpoint = build_heap(DACAPO_PROFILES[benchmark],
                                        scale=scale, seed=seed)
        model = MutatorModel(built, collector=collector, seed=seed)
        model.run(n_gcs=n_gcs)
        cached = heap_digest(model.heap)
        _DIGEST_CACHE[key] = cached
    return cached


def tenant_timeline(base: MutatorRunResult,
                    phase_frac: float) -> MutatorRunResult:
    """A tenant's view of a base run: pauses shifted by a phase offset.

    The offset models a staggered process start — the tenant did
    ``offset`` extra cycles of mutator work before its first collection —
    so it is added to both every pause's ``start_cycle`` and the mutator
    total, keeping the timeline well-formed (monotone, non-overlapping,
    last pause inside ``total_cycles``). The offset spans up to a quarter
    of the mean inter-GC gap: enough to desynchronize same-profile
    tenants' admission requests, small enough to keep pause cadence.
    """
    if not 0.0 <= phase_frac < 1.0:
        raise ValueError(f"phase_frac must be in [0, 1): {phase_frac}")
    if not base.pauses:
        return replace(base)
    gap = base.total_cycles // (4 * len(base.pauses))
    offset = int(phase_frac * gap)
    return MutatorRunResult(
        collector=base.collector,
        pauses=[replace(p, start_cycle=p.start_cycle + offset)
                for p in base.pauses],
        mutator_cycles=base.mutator_cycles + offset,
    )
