"""Software Mark & Sweep collector, timed on the in-order CPU model.

This is the baseline of Figs. 15–17 and 20: "we rewrote Jikes's GC in C,
compiling it with -O3 and linking it into the JVM" (§VI-A). The algorithm
is identical to the accelerator's — same bidirectional header encoding, same
parity marking, same per-block cell sweep writing free lists — executed as
the dependent load/store/branch stream a compiled loop produces.

The software mark queue lives in real memory (we reuse the spill region,
which the software collector owns when the unit is idle), so queue pushes
and pops are genuine stores/loads that mostly hit in the L1 — matching the
paper's observation that the only locality a CPU can exploit during marking
is incidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import GeneratorType
from typing import Dict, Optional

from repro.engine.simulator import Simulator
from repro.heap.header import (
    decode_refcount,
    header_is_marked,
    header_with_mark,
    scan_word_is_object,
)
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import WORD_BYTES
from repro.swgc.cpu import CPUConfig, InOrderCPU

# Fixed instruction costs (cycles of non-memory work) for the compiled GC
# loops. These model the -O3 C implementation: loop control, address
# arithmetic, and field decoding around each memory operation.
_MARK_LOOP_OVERHEAD = 3  # pop bookkeeping + dispatch
_MARK_DECODE_OVERHEAD = 3  # extract mark bit / refcount from the header
_PUSH_OVERHEAD = 2  # per-reference null check + enqueue arithmetic
_SWEEP_CELL_OVERHEAD = 2  # cell-address arithmetic + loop control
_SWEEP_BLOCK_OVERHEAD = 4  # per-block setup


@dataclass
class SoftwareGCResult:
    """Timing and work counters for one software collection."""

    mark_cycles: int
    sweep_cycles: int
    objects_marked: int
    cells_freed: int
    cells_live: int
    queue_peak: int

    @property
    def total_cycles(self) -> int:
        return self.mark_cycles + self.sweep_cycles

    @property
    def mark_ms(self) -> float:
        return self.mark_cycles / 1e6  # 1 GHz: cycles are ns

    @property
    def sweep_ms(self) -> float:
        return self.sweep_cycles / 1e6


class _MajorityPredictor:
    """A tiny branch predictor: predicts the running-majority outcome."""

    def __init__(self) -> None:
        self._bias = 0

    def mispredicted(self, taken: bool) -> bool:
        predicted_taken = self._bias >= 0
        self._bias = min(8, self._bias + 1) if taken else max(-8, self._bias - 1)
        return predicted_taken != taken


class SoftwareCollector:
    """Runs stop-the-world Mark & Sweep on the CPU model."""

    def __init__(
        self,
        heap: ManagedHeap,
        cpu: Optional[InOrderCPU] = None,
        cpu_config: Optional[CPUConfig] = None,
        layout: str = "bidirectional",
    ):
        if layout not in ("bidirectional", "conventional"):
            raise ValueError(f"unknown layout {layout!r}")
        self.heap = heap
        self.sim: Simulator = heap.sim
        #: "conventional" charges the TIB-indirection costs of Fig. 6a (two
        #: extra accesses per object to find the reference offsets) — the
        #: layout ablation of §IV-A idea I. The heap image itself stays
        #: bidirectional; only the timing differs.
        self.layout = layout
        self.cpu = cpu if cpu is not None else InOrderCPU(
            heap.sim, heap.memsys, config=cpu_config
        )
        # The software mark queue occupies the spill region.
        self._queue_base = heap.memsys.address_map.spill[0]
        self._queue_capacity = (
            heap.memsys.address_map.spill[1] - self._queue_base
        ) // WORD_BYTES
        self.last_result: Optional[SoftwareGCResult] = None

    # -- queue helpers (functional part of the timed queue ops) -------------

    def _queue_slot_vaddr(self, index: int) -> int:
        paddr = self._queue_base + (index % self._queue_capacity) * WORD_BYTES
        return self.heap.to_virtual(paddr)

    # -- phases ---------------------------------------------------------------

    def mark_process(self, counters: Dict[str, int]):
        """The compiled mark loop: BFS with header read-modify-writes.

        This is the hottest generator in the software collector, so the
        fixed-cost sub-routines (``exec_ops``, ``branch``) are inlined and
        accumulated into a ``lag`` of pending delay cycles — memory ops use
        the flattened ``load_op``/``store_op`` handles (one yield in the
        common case, generator fallback on TLB misses and stalls), and the
        per-iteration attribute chains (``mem.read_word``, address
        translation) are hoisted to locals. Instruction accounting is
        batched into ``cpu.instructions`` at exit.

        The ``lag`` protocol: between two memory operations this process is
        the only actor observing its own intermediate wakeups, so every run
        of pure-delay yields (loop overhead, decode, branch outcome) is
        coalesced into a single ``yield lag`` flushed immediately before
        the next side-effectful call. Store issue slots are still yielded
        directly: the fast-path-off store generator yields its own slot, so
        folding the fast path's slot into ``lag`` would make the two modes
        insert their wakeups at different event-queue positions (an
        intra-cycle trace-order divergence). Each memory op is
        therefore invoked at exactly the legacy cycle — issue times, cycle
        counts, and trace records are bit-identical — while the kernel
        processes one wakeup where it used to process several.
        """
        heap = self.heap
        mem = heap.mem
        cpu = self.cpu
        parity = heap.mark_parity
        predictor = _MajorityPredictor()
        mispredicted = predictor.mispredicted
        head = 0
        tail = 0

        load_op = cpu.load_op
        store_op = cpu.store_op
        gen = GeneratorType
        read_word = mem.read_word
        write_word = mem.write_word
        to_physical = heap.to_physical
        queue_slot_vaddr = self._queue_slot_vaddr
        queue_capacity = self._queue_capacity
        c_mispredicts = cpu._c_mispredicts
        penalty = cpu.config.branch_mispredict_penalty
        conventional = self.layout == "conventional"
        word_bytes = WORD_BYTES
        insns = 0  # inlined exec/branch instruction count, flushed at exit
        lag = 0  # pending pure-delay cycles, flushed before the next op

        try:
            # Enqueue the roots (reads from hwgc-space, writes to the queue).
            h = load_op(heap.to_virtual(heap.roots.base))
            if h.__class__ is gen:
                yield from h
            else:
                yield h
            n_roots = heap.roots.count
            for i in range(n_roots):
                root_paddr = heap.roots.base + word_bytes * (1 + i)
                if lag:
                    yield lag
                    lag = 0
                h = load_op(heap.to_virtual(root_paddr))
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                ref = read_word(root_paddr)
                if ref == 0:
                    continue
                slot = queue_slot_vaddr(tail)
                write_word(to_physical(slot), ref)
                h = store_op(slot)
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                tail += 1

            peak = tail - head
            while head < tail:
                insns += _MARK_LOOP_OVERHEAD
                slot = queue_slot_vaddr(head)
                yield lag + _MARK_LOOP_OVERHEAD
                lag = 0
                h = load_op(slot)
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                ref = read_word(to_physical(slot))
                head += 1

                # Dependent header load, then the branch the paper calls
                # out: "the outcome of the mark operation determines whether
                # or not references need to be copied" (§IV-A).
                h = load_op(ref)
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                status_paddr = to_physical(ref)
                status = read_word(status_paddr)
                already = header_is_marked(status, parity)
                insns += _MARK_DECODE_OVERHEAD + 1
                lag += _MARK_DECODE_OVERHEAD
                if mispredicted(not already):
                    c_mispredicts.value += 1
                    lag += penalty
                else:
                    lag += 1
                if already:
                    continue

                # Mark: store the updated header word.
                yield lag
                lag = 0
                write_word(status_paddr, header_with_mark(status, parity))
                h = store_op(ref)
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                counters["objects_marked"] += 1

                n_refs, _is_array = decode_refcount(status)
                if conventional and n_refs > 0:
                    # Fig. 6a: load the TIB pointer, then the TIB's offset
                    # list. Few distinct TIBs exist, so these mostly hit in
                    # the cache ("most TIBs are in the cache", §IV-A).
                    tib_base = heap.to_virtual(heap.plan.immortal.pstart)
                    tib_vaddr = tib_base + (n_refs % 32) * 64
                    if lag:
                        yield lag
                        lag = 0
                    h = load_op(tib_vaddr)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                    h = load_op(tib_vaddr + word_bytes)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                # Walk the reference section (unit-stride, below the header).
                for i in range(n_refs):
                    field_vaddr = ref - word_bytes * (n_refs - i)
                    if lag:
                        yield lag
                        lag = 0
                    h = load_op(field_vaddr)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                    target = read_word(to_physical(field_vaddr))
                    insns += _PUSH_OVERHEAD
                    lag += _PUSH_OVERHEAD
                    if target == 0:
                        continue
                    if tail - head >= queue_capacity:
                        raise MemoryError("software mark queue overflow")
                    slot = queue_slot_vaddr(tail)
                    write_word(to_physical(slot), target)
                    yield lag
                    lag = 0
                    h = store_op(slot)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                    tail += 1
                    if tail - head > peak:
                        peak = tail - head
            if lag:
                yield lag
                lag = 0
            yield from cpu.drain_stores()
            counters["queue_peak"] = peak
        finally:
            cpu.instructions += insns

    def sweep_process(self, counters: Dict[str, int]):
        """The compiled sweep loop over the global block list (§V-D).

        Hot-loop shape mirrors :meth:`mark_process`: fixed-cost sub-routines
        accumulate into the pending-delay ``lag`` (flushed right before the
        next memory op), per-cell attribute chains are hoisted. The
        liveness branch is always correctly predicted (one cycle of lag).
        """
        heap = self.heap
        mem = heap.mem
        cpu = self.cpu
        parity = heap.mark_parity
        n_blocks = heap.block_list.count

        load_op = cpu.load_op
        store_op = cpu.store_op
        gen = GeneratorType
        read_word = mem.read_word
        write_word = mem.write_word
        to_physical = heap.to_physical
        word_bytes = WORD_BYTES
        insns = 0
        lag = 0  # pending pure-delay cycles, flushed before the next op

        try:
            for block_index in range(n_blocks):
                insns += _SWEEP_BLOCK_OVERHEAD
                desc_paddr = heap.block_list.descriptor_addr(block_index)
                yield lag + _SWEEP_BLOCK_OVERHEAD
                lag = 0
                h = load_op(heap.to_virtual(desc_paddr), size=32)
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
                desc = heap.block_list.read(block_index)
                free_head = 0
                cell_vaddr = desc.base_vaddr
                cell_bytes = desc.cell_bytes
                for cell_i in range(desc.n_cells):
                    cell_paddr = to_physical(cell_vaddr)
                    insns += _SWEEP_CELL_OVERHEAD
                    yield lag + _SWEEP_CELL_OVERHEAD
                    lag = 0
                    h = load_op(cell_vaddr)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                    first_word = read_word(cell_paddr)
                    if scan_word_is_object(first_word):
                        n_refs, _ = decode_refcount(first_word)
                        status_vaddr = cell_vaddr + word_bytes * (1 + n_refs)
                        h = load_op(status_vaddr)
                        if h.__class__ is gen:
                            yield from h
                        else:
                            yield h
                        status = read_word(to_physical(status_vaddr))
                        live = header_is_marked(status, parity)
                        insns += 1
                        lag += 1  # correctly-predicted liveness branch
                        if live:
                            counters["cells_live"] += 1
                            cell_vaddr += cell_bytes
                            continue
                        counters["cells_freed"] += 1
                    # Dead object or already-free cell: (re)link onto the
                    # list.
                    if lag:
                        yield lag
                        lag = 0
                    write_word(cell_paddr, free_head)
                    h = store_op(cell_vaddr)
                    if h.__class__ is gen:
                        yield from h
                    else:
                        yield h
                    free_head = cell_vaddr
                    cell_vaddr += cell_bytes
                head_paddr = desc_paddr + 3 * word_bytes
                if lag:
                    yield lag
                    lag = 0
                write_word(head_paddr, free_head)
                h = store_op(heap.to_virtual(head_paddr))
                if h.__class__ is gen:
                    yield from h
                else:
                    yield h
            if lag:
                yield lag
                lag = 0
            yield from cpu.drain_stores()
        finally:
            cpu.instructions += insns

    # -- driver -----------------------------------------------------------------

    def collect(self) -> SoftwareGCResult:
        """Run a full stop-the-world mark + sweep; returns timing/work stats.

        The caller is responsible for ``heap.complete_gc_cycle()`` afterwards
        (mirrors the runtime system finishing the pause).
        """
        counters = {
            "objects_marked": 0, "cells_freed": 0, "cells_live": 0,
            "queue_peak": 0,
        }
        trace = self.heap.memsys.stats.trace
        start = self.sim.now
        if trace is not None:
            trace.emit(start, "phase", "sw.mark", "B")
        done = self.sim.process(self.mark_process(counters), name="sw-mark")
        self.sim.run_until(done)
        if trace is not None:
            trace.emit(self.sim.now, "phase", "sw.mark", "E")
        mark_cycles = self.sim.now - start

        start = self.sim.now
        if trace is not None:
            trace.emit(start, "phase", "sw.sweep", "B")
        done = self.sim.process(self.sweep_process(counters), name="sw-sweep")
        self.sim.run_until(done)
        if trace is not None:
            trace.emit(self.sim.now, "phase", "sw.sweep", "E")
        sweep_cycles = self.sim.now - start

        self.last_result = SoftwareGCResult(
            mark_cycles=mark_cycles,
            sweep_cycles=sweep_cycles,
            objects_marked=counters["objects_marked"],
            cells_freed=counters["cells_freed"],
            cells_live=counters["cells_live"],
            queue_peak=counters["queue_peak"],
        )
        return self.last_result
