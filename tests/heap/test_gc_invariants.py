"""Cross-cutting GC invariants, property-tested over generated heaps.

These are the DESIGN.md §6 invariants, checked against randomly generated
object graphs under both collectors.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GCUnit, GCUnitConfig
from repro.heap.header import TAG_BIT
from repro.heap.heapimage import ManagedHeap
from repro.memory.config import MemorySystemConfig
from repro.swgc import SoftwareCollector

from tests.conftest import SMALL_MEM


def build_heap_from_recipe(recipe):
    """Build a heap from a hypothesis-generated recipe.

    recipe: list of (n_refs, payload, wiring) tuples; wiring indexes into
    previously created objects.
    """
    heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
    views = []
    for n_refs, payload, _wire in recipe:
        views.append(heap.new_object(n_refs, payload))
    for i, (n_refs, _payload, wire) in enumerate(recipe):
        for j in range(n_refs):
            target = wire % (i + 1) if i else 0
            if (wire + j) % 3 == 0:
                views[i].set_ref(j, views[(wire + j) % len(views)].addr)
    n_roots = max(1, len(views) // 10)
    heap.set_roots([views[k].addr for k in range(n_roots)])
    return heap, views


recipe_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 8), st.integers(0, 10**6)),
    min_size=5, max_size=60,
)


@given(recipe=recipe_strategy)
@settings(max_examples=25, deadline=None)
@pytest.mark.slow
def test_both_collectors_mark_exactly_reachable(recipe):
    heap, views = build_heap_from_recipe(recipe)
    truth = heap.reachable()
    cp = heap.checkpoint()
    sw = SoftwareCollector(heap).collect()
    assert sw.objects_marked == len(truth)
    heap.restore(cp)
    hw = GCUnit(heap, GCUnitConfig(mark_queue_entries=16)).collect()
    assert hw.objects_marked == len(truth)
    parity = heap.mark_parity
    for view in views:
        assert view.is_marked(parity) == (view.addr in truth)


@given(recipe=recipe_strategy)
@settings(max_examples=15, deadline=None)
def test_sweep_partition_is_exact(recipe):
    """Every MarkSweep cell ends up exactly one of: live object, freed."""
    heap, views = build_heap_from_recipe(recipe)
    ms_objects = [v for v in views
                  if heap.plan.marksweep.contains(v.status_paddr)]
    live = heap.live_marksweep_objects()
    hw = GCUnit(heap).collect()
    assert hw.cells_live == len(live)
    assert hw.cells_freed == len(ms_objects) - len(live)
    # Freed cells are on free lists (tag cleared via next-pointer write);
    # live cells still carry their tag.
    for view in ms_objects:
        cell_word = heap.mem.read_word(
            view.status_paddr - 8 * (1 + view.n_refs))
        if view.addr in live:
            assert cell_word & TAG_BIT
        else:
            assert not (cell_word & TAG_BIT)
    heap.check_free_lists()


@given(
    recipe=recipe_strategy,
    n_cycles=st.integers(2, 4),
)
@settings(max_examples=8, deadline=None)
def test_repeated_collections_converge(recipe, n_cycles):
    """Collecting an unchanged heap repeatedly is idempotent: same mark
    count every cycle, alternating parity, free lists stable."""
    heap, _views = build_heap_from_recipe(recipe)
    truth = len(heap.reachable())
    free_counts = []
    for _ in range(n_cycles):
        result = GCUnit(heap).collect()
        assert result.objects_marked == truth
        free_counts.append(heap.check_free_lists())
        heap.complete_gc_cycle()
    assert len(set(free_counts)) == 1


def test_allocation_between_collections_is_collected():
    rng = random.Random(5)
    heap = ManagedHeap(config=MemorySystemConfig(total_bytes=SMALL_MEM))
    keep = heap.new_object(4)
    heap.set_roots([keep.addr])
    GCUnit(heap).collect()
    heap.complete_gc_cycle()
    # Allocate garbage + one survivor after the first GC.
    survivor = heap.new_object(0)
    keep.set_ref(0, survivor.addr)
    for _ in range(50):
        heap.new_object(rng.randint(0, 3), rng.randint(0, 4))
    result = GCUnit(heap).collect()
    assert result.objects_marked == 2
    assert result.cells_freed >= 50
