"""Per-pause energy accounting (Fig. 23).

Combines three terms over a GC pause:

* compute power — the Rocket core running the software GC, or the GC unit
  (Design Compiler estimates in the paper; constants here);
* DRAM power from :class:`~repro.power.dram_power.DDR3PowerCalculator`;
* duration — the pause's cycle count (1 cycle = 1 ns).

"Due to its higher bandwidth, the GC Unit's DRAM power is much higher, but
the overall energy is still lower (by 14.5% in our results)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.power.dram_power import DDR3PowerCalculator, DRAMPowerBreakdown

#: Design-Compiler-style average active power (mW) at 1 GHz, SAED 32/28:
#: a small in-order core (Fig. 23 groups "Rocket / GC Unit Core" power in
#: the low hundreds of mW).
ROCKET_CORE_MW = 110.0
#: The unit is a fraction of the core's area and mostly SRAM.
GC_UNIT_MW = 45.0
#: The rest of the SoC (uncore, L2) that stays powered during a pause is
#: common to both configurations and excluded, as in the paper's figure.


@dataclass
class EnergyReport:
    """Energy of one GC pause (or one phase of it)."""

    label: str
    duration_cycles: int
    compute_mw: float
    dram: DRAMPowerBreakdown

    @property
    def duration_ms(self) -> float:
        return self.duration_cycles / 1e6

    @property
    def total_power_mw(self) -> float:
        return self.compute_mw + self.dram.total_mw

    @property
    def compute_mj(self) -> float:
        # mW x ns = 1e-12 J; report millijoules.
        return self.compute_mw * self.duration_cycles * 1e-9

    @property
    def dram_mj(self) -> float:
        return self.dram.total_mw * self.duration_cycles * 1e-9

    @property
    def dram_dynamic_mj(self) -> float:
        """Activate + read + write energy — the work-proportional part."""
        return self.dram.dynamic_mw * self.duration_cycles * 1e-9

    @property
    def total_mj(self) -> float:
        return self.compute_mj + self.dram_mj

    @property
    def attributable_mj(self) -> float:
        """Energy attributable to the GC itself: compute + dynamic DRAM.
        Background/refresh power flows regardless of who is collecting and
        is reported separately."""
        return self.compute_mj + self.dram_dynamic_mj

    def as_dict(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "duration_ms": self.duration_ms,
            "compute_mw": self.compute_mw,
            "dram_mw": self.dram.total_mw,
            "total_mj": self.total_mj,
        }


class EnergyModel:
    """Builds Fig. 23's per-benchmark power/energy comparison."""

    def __init__(
        self,
        calculator: Optional[DDR3PowerCalculator] = None,
        rocket_core_mw: float = ROCKET_CORE_MW,
        gc_unit_mw: float = GC_UNIT_MW,
    ):
        self.calculator = calculator or DDR3PowerCalculator()
        self.rocket_core_mw = rocket_core_mw
        self.gc_unit_mw = gc_unit_mw

    def pause_energy(
        self,
        label: str,
        collector: str,  # "sw" or "hw"
        duration_cycles: int,
        stats_delta: Dict[str, int],
    ) -> EnergyReport:
        if collector not in ("sw", "hw"):
            raise ValueError(f"unknown collector {collector!r}")
        dram = self.calculator.power_from_stats(stats_delta, duration_cycles)
        compute = self.rocket_core_mw if collector == "sw" else self.gc_unit_mw
        return EnergyReport(
            label=label,
            duration_cycles=duration_cycles,
            compute_mw=compute,
            dram=dram,
        )

    @staticmethod
    def savings(sw: EnergyReport, hw: EnergyReport,
                attributable: bool = True) -> float:
        """Fractional energy saving of the unit vs the CPU (positive =
        the unit consumes less). By default compares GC-attributable
        energy (compute + dynamic DRAM); pass ``attributable=False`` to
        include background/refresh over the pause duration."""
        sw_e = sw.attributable_mj if attributable else sw.total_mj
        hw_e = hw.attributable_mj if attributable else hw.total_mj
        if sw_e <= 0:
            raise ValueError("software energy must be positive")
        return 1.0 - hw_e / sw_e
