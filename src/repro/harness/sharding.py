"""Intra-figure sharding: split one figure across worker processes.

``run_suite(jobs=N)`` parallelizes *across* figures, which strands N-1
workers once only the slowest figure remains. The figures that dominate the
suite's critical path are embarrassingly parallel *inside*: they iterate
independent units of work along one axis — a benchmark list (fig01a, fig15,
fig16, fig17, fig20), a mark-queue-size sweep (fig19), a mark-bit-cache
sweep (fig21), or the shared-vs-partitioned cache modes (fig18). This
module splits such a figure's axis into contiguous chunks, fans the chunks
out over ``fork`` worker processes, and merges the per-chunk
:class:`~repro.harness.experiments.ExperimentResult` rows back into a
single figure whose rendered table — and therefore its determinism digest
— is byte-identical to the unsharded run.

Identity argument: every axis cell runs on a **freshly built heap** (the
figure bodies rebuild through the memoized heap cache per axis value, so a
cell never observes simulator or DRAM-state carry-over from its
predecessors — the restructure that PR 8 applied to fig16/18/19/21), which
makes per-chunk rows equal the unsharded rows exactly; chunks are
contiguous and merged in order, so row order is preserved; and summary
rows (fig15/fig17 geomeans) are recomputed from the merged rows' float
values in the same left-to-right order the unsharded code folds them, so
even the floating-point summation order matches. The per-shard digests are
recorded on the :class:`~repro.harness.suite.FigureRun` (and in its
checkpoint) for forensics, but excluded from the figure digest itself.

The same :class:`ShardSpec` machinery backs the content-addressed
simulation result cache (:mod:`repro.harness.simcache`): a cache-enabled
run decomposes a shardable figure into single-value cells — the finest
chunking — and refolds them with the identical merge, so cache-cold,
cache-warm, sharded, and inline runs all render the same bytes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.suite import FigureRun, run_entry
from repro.workloads.profiles import BENCHMARK_ORDER


def _concat_merge(results: List[Any]) -> Any:
    """Merge chunk results whose rows simply concatenate (no summary row)."""
    merged = replace(results[0])
    merged.rows = [row for result in results for row in result.rows]
    merged.extras = {}
    return merged


def _geomean_tail_merge(*speedup_cols: int) -> Callable[[List[Any]], Any]:
    """Merge for figures ending in a geomean row over ``speedup_cols``.

    Each chunk computed its own trailing geomean over its slice; drop
    those, concatenate the per-benchmark rows, and refold the geomean from
    the merged rows — same float values, same left-to-right order as the
    unsharded loop, hence a bit-identical summary row.
    """
    from repro.engine.stats import geomean

    def merge(results: List[Any]) -> Any:
        merged = replace(results[0])
        merged.rows = [row for result in results for row in result.rows[:-1]]
        summary: List[Any] = ["geomean"] + [""] * (len(merged.headers) - 1)
        for col in speedup_cols:
            summary[col] = geomean([row[col] for row in merged.rows])
        merged.rows = merged.rows + [summary]
        merged.extras = {}
        return merged

    return merge


def _column_refold_merge(results: List[Any]) -> Any:
    """Merge for figures whose axis values occupy column *groups* (fig18).

    A chunk that ran only a subset of the axis leaves the other values'
    columns blank (``""``); rows line up one-to-one across chunks, so the
    merge overlays each blank cell with the first chunk that filled it.
    Cells that are blank in every chunk (e.g. the ``%`` columns of the
    ``mark cycles`` row) stay blank — exactly as the unsharded table
    renders them.
    """
    merged = replace(results[0])
    rows = [list(row) for row in results[0].rows]
    for result in results[1:]:
        if len(result.rows) != len(rows):
            raise ValueError(
                f"column-refold shards disagree on row count: "
                f"{len(result.rows)} != {len(rows)}")
        for row, other in zip(rows, result.rows):
            for col, value in enumerate(other):
                if row[col] == "" and value != "":
                    row[col] = value
    merged.rows = rows
    merged.extras = {}
    return merged


def _fleet_slo_merge(results: List[Any]) -> Any:
    """Merge for ``fleet_slo``: concat tenant rows, refold policy summaries.

    Each chunk replayed a contiguous slice of the tenant axis and appended
    its own per-policy summary rows (marked ``"fleet"`` in the tenant
    column); drop those, concatenate the tenant rows in axis order, and
    refold the summaries from the merged rows through the *same* helper
    the unsharded figure uses — same floats, same left-to-right fold, so
    the summary rows are bit-identical.
    """
    from repro.fleet.report import SUMMARY_MARKER, fleet_summary_rows

    merged = replace(results[0])
    tenant_rows = [row for result in results for row in result.rows
                   if row[0] != SUMMARY_MARKER]
    merged.rows = tenant_rows + fleet_summary_rows(tenant_rows)
    merged.extras = {}
    return merged


@dataclass(frozen=True)
class ShardSpec:
    """How one experiment splits: the kwarg axis, its defaults, the merge.

    ``axis`` names the keyword argument whose values are independent units
    of work; ``default`` mirrors the experiment function's default for that
    axis (consulted when the suite entry does not pass it explicitly);
    ``merge`` refolds per-chunk results into the unsharded table.
    """

    axis: str
    merge: Callable[[List[Any]], Any]
    default: Optional[Tuple[Any, ...]] = None
    #: Optional kwargs-aware default for axes whose value set depends on
    #: *other* kwargs (fleet_slo's tenant axis tracks ``n_tenants``).
    #: Takes precedence over ``default`` when the axis is implicit.
    default_fn: Optional[Callable[[Dict[str, Any]], Tuple[Any, ...]]] = None


#: Experiments with an axis of independent units of work, and how their
#: rows refold. Benchmark-axis figures default to the full DaCapo order;
#: config-axis figures mirror their function defaults. fig15's table ends
#: in a geomean row (speedups in columns 3 and 6), fig17's in one over
#: column 1; fig18 splits by cache mode into column groups; the rest
#: concatenate rows directly.
SHARDABLE: Dict[str, ShardSpec] = {
    "fig01a": ShardSpec(axis="benchmarks", merge=_concat_merge,
                        default=tuple(BENCHMARK_ORDER)),
    "fig15": ShardSpec(axis="benchmarks", merge=_geomean_tail_merge(3, 6),
                       default=tuple(BENCHMARK_ORDER)),
    "fig16": ShardSpec(axis="benchmarks", merge=_concat_merge,
                       default=("avrora",)),
    "fig17": ShardSpec(axis="benchmarks", merge=_geomean_tail_merge(1),
                       default=tuple(BENCHMARK_ORDER)),
    "fig18": ShardSpec(axis="cache_modes", merge=_column_refold_merge,
                       default=("shared", "partitioned")),
    "fig19": ShardSpec(axis="queue_entries", merge=_concat_merge,
                       default=(128, 512, 2048, 16384)),
    "fig20": ShardSpec(axis="benchmarks", merge=_concat_merge,
                       default=tuple(BENCHMARK_ORDER)),
    "fig21": ShardSpec(axis="cache_sizes", merge=_concat_merge,
                       default=(0, 16, 64, 105, 128, 256)),
    # The fleet figures: per-tenant / per-fleet-size cells. fleet_slo's
    # default mirrors the function's n_tenants=4 roster.
    "fleet_slo": ShardSpec(
        axis="tenants", merge=_fleet_slo_merge, default=(0, 1, 2, 3),
        default_fn=lambda kw: tuple(range(kw.get("n_tenants", 4)))),
    "fleet_lbo": ShardSpec(axis="fleet_sizes", merge=_concat_merge,
                           default=(2, 4)),
    # One cell per fault roster; each cell rebuilds its whole fleet
    # schedule from the spec, so rows concatenate in axis order.
    "fleet_resilience": ShardSpec(
        axis="rosters", merge=_concat_merge,
        default_fn=lambda kw: _resilience_rosters()),
}


def _resilience_rosters() -> Tuple[Any, ...]:
    """Late import: sharding must stay importable without the fleet pkg."""
    from repro.fleet.faults import DEFAULT_RESILIENCE_ROSTERS

    return DEFAULT_RESILIENCE_ROSTERS


def axis_values(exp_id: str, kwargs: Dict[str, Any]) -> Optional[List[Any]]:
    """The axis values a sharded run would split, or ``None``.

    Falls back to the spec's declared default (mirroring the experiment
    function's own default) when the kwargs leave the axis implicit.
    """
    spec = SHARDABLE.get(exp_id)
    if spec is None:
        return None
    values = kwargs.get(spec.axis)
    if values is None and spec.default_fn is not None:
        values = spec.default_fn(kwargs)
    if values is None:
        values = spec.default if spec.default is not None else BENCHMARK_ORDER
    return list(values)


def split_axis(values: Sequence[Any], n_shards: int) -> List[List[Any]]:
    """Deterministic contiguous chunks, earlier chunks one longer.

    Contiguity is what makes the merge a plain ordered concatenation.
    ``n_shards`` is clamped to ``len(values)`` so no chunk is ever empty —
    an empty chunk would fan out a worker with nothing to do and hand the
    merge a result with no rows.
    """
    n_shards = max(1, min(n_shards, len(values)))
    base, extra = divmod(len(values), n_shards)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        chunks.append(list(values[start:start + size]))
        start += size
    return chunks


def can_shard(exp_id: str, kwargs: Dict[str, Any], jobs: int) -> bool:
    """Whether splitting this entry over ``jobs`` workers buys anything.

    Declines the degenerate oversubscribed case ``jobs > len(values)``:
    the split would leave trailing workers with empty chunks (avoided only
    by :func:`split_axis`'s clamp), every shard would carry a single axis
    value — all fixed per-shard startup cost — and the surplus workers
    would idle anyway. The figure-level pool spends those workers better.
    """
    if jobs < 2:
        return False
    values = axis_values(exp_id, kwargs)
    return values is not None and 2 <= len(values) and jobs <= len(values)


def _shard_child(conn, exp_id: str, kwargs: Dict[str, Any]) -> None:
    """Worker: run one chunk's experiment, ship the result over a pipe.

    Runs through :func:`repro.harness.simcache.run_experiment` so an
    enabled ``REPRO_SIM_CACHE`` serves unchanged cells from disk and
    persists fresh ones — sharded and inline runs share the same cells.
    ``extras`` can hold unpicklable/heavy simulation objects and feeds
    neither the rendered table nor the digest, so it is stripped before
    the send.
    """
    try:
        from repro.harness.simcache import run_experiment

        result, accounting = run_experiment(exp_id, kwargs)
        result.extras = {}
        conn.send(("ok", result, accounting.as_tuple()))
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", None))
        except Exception:
            pass
    finally:
        conn.close()


def run_entry_sharded(index: int, exp_id: str, kwargs: Dict[str, Any],
                      jobs: int) -> FigureRun:
    """Run one suite entry split across ``jobs`` worker processes.

    Falls back to the inline :func:`~repro.harness.suite.run_entry` when
    the entry is not shardable (unknown axis, one axis value, jobs < 2,
    or more workers than axis values — see :func:`can_shard`). A shard
    failure raises — the caller's retry accounting treats it like any
    other failed attempt.
    """
    from repro.harness.parallel import _pool_context

    spec = SHARDABLE.get(exp_id)
    values = axis_values(exp_id, kwargs)
    if spec is None or not can_shard(exp_id, kwargs, jobs):
        return run_entry(index, exp_id, kwargs)

    chunks = split_axis(values, jobs)
    ctx = _pool_context()
    t0 = time.time()
    workers = []
    for chunk in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        shard_kwargs = dict(kwargs)
        shard_kwargs[spec.axis] = chunk
        proc = ctx.Process(target=_shard_child,
                           args=(child_conn, exp_id, shard_kwargs))
        proc.start()
        child_conn.close()
        workers.append((parent_conn, proc, chunk))

    results, errors, shard_digests = [], [], []
    cache_hits = cache_misses = 0
    for parent_conn, proc, chunk in workers:
        try:
            msg = parent_conn.recv()
        except (EOFError, OSError):
            msg = ("error", "shard worker died before reporting", None)
        parent_conn.close()
        proc.join(5.0)
        if msg[0] == "ok":
            results.append(msg[1])
            shard_digests.append(hashlib.sha256(
                msg[1].render().encode()).hexdigest())
            if msg[2] is not None:
                hits, misses = msg[2]
                cache_hits += hits
                cache_misses += misses
        else:
            errors.append(f"shard {chunk}: {msg[1]}")
    if errors:
        raise RuntimeError(
            f"{exp_id} sharded over {len(chunks)} workers failed: "
            + "; ".join(errors))

    merged = spec.merge(results)
    return FigureRun(
        index=index,
        exp_id=exp_id,
        kwargs=dict(kwargs),
        rendered=merged.render(),
        elapsed=time.time() - t0,
        shard_digests=shard_digests,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
