"""Experiment runners, exercised at tiny scales.

Each test regenerates a figure at a scale small enough for CI and checks
the *shape* of the result (direction of speedups, dominance relations),
not exact magnitudes — magnitudes belong to the benchmark suite.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.reporting import render_series, render_table

TINY = dict(scale=0.008, seed=5)


class TestMotivation:
    @pytest.mark.slow
    def test_fig01a_rows(self):
        result = E.fig01a(scale=0.008, seed=5, n_gcs=2,
                          benchmarks=["avrora", "xalan"])
        assert len(result.rows) == 2
        fractions = {row[0]: row[1] for row in result.rows}
        # xalan is the GC-heaviest workload, avrora among the lightest.
        assert fractions["xalan"] > fractions["avrora"]
        assert result.render().startswith("## fig01a")

    def test_fig01b_tail(self):
        result = E.fig01b(scale=0.008, seed=5, n_gcs=2, n_queries=2000,
                          warmup=200)
        stats = {row[0]: row[1] for row in result.rows}
        assert stats["p99.9"] > 10 * stats["p50"]
        assert stats["max"] >= stats["p99.9"] >= stats["p99"] >= stats["p50"]


class TestHeadline:
    def test_fig15_speedups(self):
        result = E.fig15(scale=0.008, seed=5, benchmarks=["avrora"])
        row = result.rows[0]
        assert row[0] == "avrora"
        mark_x, sweep_x = row[3], row[6]
        assert mark_x > 1.5
        assert sweep_x > 1.0

    @pytest.mark.slow
    def test_fig17_pipe_is_faster_than_ddr3(self):
        ddr3 = E.fig15(scale=0.008, seed=5, benchmarks=["avrora"])
        pipe = E.fig17(scale=0.008, seed=5, benchmarks=["avrora"])
        assert pipe.rows[0][1] > ddr3.rows[0][3]  # mark speedup grows
        interval = pipe.rows[0][3]
        assert 1 <= interval < 40  # cycles per request, sane range


class TestDesignSpace:
    @pytest.mark.slow
    def test_fig18_partitioning_shifts_traffic(self):
        result = E.fig18(scale=0.01, seed=5)
        shares = {row[0]: (row[2], row[4]) for row in result.rows[:-1]}
        # Shared cache: the PTW dominates requests (the paper's 2/3).
        assert shares["ptw"][0] > 40.0
        # Partitioned: marker+tracer dominate what reaches memory.
        assert shares["marker"][1] + shares["tracer"][1] > 50.0

    @pytest.mark.slow
    def test_fig19_spilling_small(self):
        result = E.fig19(scale=0.01, seed=5, queue_entries=(64, 2048))
        by_config = {}
        for row in result.rows:
            by_config.setdefault(row[1], []).append(row)
        # Compression reduces spill traffic at equal queue size.
        tq128 = by_config["TQ=128"][0]
        comp = by_config["Comp."][0]
        assert comp[2] < tq128[2]
        # A large queue spills (much) less than a tiny one.
        assert by_config["TQ=128"][-1][2] <= by_config["TQ=128"][0][2]

    def test_fig20_scaling_shape(self):
        result = E.fig20(scale=0.008, seed=5, sweeper_counts=(1, 2, 4),
                         benchmarks=["avrora"])
        _name, s1, s2, s4 = result.rows[0]
        assert s2 > s1  # near-linear at first
        assert (s4 / s2) < (s2 / s1)  # diminishing beyond

    @pytest.mark.slow
    def test_fig21_hot_objects(self):
        result = E.fig21(scale=0.01, seed=5, n_warm_gcs=1,
                         cache_sizes=(0, 256), benchmark="luindex")
        assert result.extras["top56_share_pct"] > 2.0
        no_cache, big_cache = result.rows[0], result.rows[-1]
        assert no_cache[1] == 0
        assert big_cache[1] > 0  # the cache filtered something


class TestStaticModels:
    def test_fig22(self):
        result = E.fig22()
        values = {row[0]: row[1] for row in result.rows}
        assert values["unit/Rocket ratio %"] == pytest.approx(18.5, abs=2)

    @pytest.mark.slow
    def test_fig23_energy_direction(self):
        # Needs a heap comfortably larger than the CPU caches (like the
        # paper's 200 MB heaps); tiny scales flip the comparison.
        result = E.fig23(scale=0.03, seed=5, benchmarks=["avrora"])
        row = result.rows[0]
        _b, cpu_mw, unit_mw, cpu_mj, unit_mj, saving = row
        assert unit_mw > cpu_mw  # higher DRAM power
        assert unit_mj < cpu_mj  # lower energy
        assert saving > 0

    def test_abl_barriers_ordering(self):
        result = E.abl_barriers()
        rows = {row[0]: row for row in result.rows}
        # Trap storms: VM traps are cheapest quiet, worst under churn.
        assert rows["vm_trap"][1] < rows["refload"][1]
        assert rows["vm_trap"][2] > rows["software"][2]
        assert rows["refload"][1] < rows["software"][1]


class TestAblations:
    def test_abl_layout(self):
        result = E.abl_layout(scale=0.008, seed=5, benchmarks=("avrora",))
        assert result.rows[0][3] > 1.0  # conventional is slower

    @pytest.mark.slow
    def test_abl_scheduler(self):
        result = E.abl_scheduler(scale=0.008, seed=5)
        by_label = {row[0]: row[3] for row in result.rows}
        # The unit benefits from FR-FCFS/16 over FIFO/8 (§VI-A).
        assert by_label["FR-FCFS/16"] > by_label["FIFO/8"]

    def test_registry_complete(self):
        assert set(E.ALL_EXPERIMENTS) >= {
            "fig01a", "fig01b", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22", "fig23",
        }


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert "| a" in text and "2.50" in text

    def test_render_series(self):
        text = render_series([(0, 1.0), (10, 2.0)], title="bw")
        assert "bw" in text and "#" in text
        assert render_series([], title="empty").startswith("empty")
