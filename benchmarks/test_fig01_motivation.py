"""Figure 1: GC time fractions and lusearch tail latencies."""

from benchmarks.conftest import run_and_render
from repro.harness import experiments as E


def test_fig01a_gc_cpu_time(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig01a, scale=bench_scale / 2,
                            n_gcs=2)
    fractions = {row[0]: row[1] for row in result.rows}
    # The paper's headline: up to ~35% of CPU time in GC; xalan/lusearch
    # are the heavy hitters, luindex the lightest.
    assert max(fractions.values()) > 15.0
    assert fractions["xalan"] > fractions["luindex"]
    assert fractions["lusearch"] > fractions["luindex"]


def test_fig01b_query_latency_cdf(benchmark, bench_scale):
    result = run_and_render(benchmark, E.fig01b, scale=bench_scale / 2,
                            n_gcs=3, n_queries=10_000, warmup=1_000)
    stats = {row[0]: row[1] for row in result.rows}
    # GC-induced stragglers: a long tail far above the median.
    assert stats["tail ratio p99.9/p50"] > 20.0
    assert stats["queries near GC (%)"] > 1.0
