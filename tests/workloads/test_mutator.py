"""Mutator model: churn phases, collections, timelines."""

import pytest

from repro.workloads.graphgen import HeapGraphBuilder
from repro.workloads.mutator import MutatorModel
from repro.workloads.profiles import DACAPO_PROFILES


@pytest.fixture(scope="module")
def built():
    return HeapGraphBuilder(DACAPO_PROFILES["avrora"], scale=0.008,
                            seed=21).build()


class TestPhases:
    def test_mutate_phase_allocates_and_creates_garbage(self, built):
        built.heap.restore(built.heap.checkpoint())
        model = MutatorModel(built, collector="sw")
        model.collect_once()
        live_before = len(built.heap.reachable())
        allocated = model.mutate_phase()
        assert allocated > 0
        live_after = len(built.heap.reachable())
        total = len(built.heap.objects)
        assert total > live_after  # some of the new allocation died young
        assert live_after != live_before

    def test_collect_once_advances_epoch(self, built):
        model = MutatorModel(built, collector="sw")
        gc_before = built.heap.gc_count
        pause = model.collect_once()
        assert built.heap.gc_count == gc_before + 1
        assert pause.pause_cycles > 0


class TestRun:
    @pytest.mark.parametrize("collector", ["sw", "hw"])
    def test_run_produces_timeline(self, built, collector):
        model = MutatorModel(built, collector=collector)
        run = model.run(n_gcs=2)
        assert len(run.pauses) == 2
        assert 0 < run.gc_time_fraction < 1
        segments = run.timeline()
        kinds = [k for k, _s, _e in segments]
        assert kinds == ["mutator", "gc", "mutator", "gc"]
        for _k, start, end in segments:
            assert end > start
        # Segments tile without overlap.
        for (_k1, _s1, e1), (_k2, s2, _e2) in zip(segments, segments[1:]):
            assert e1 == s2

    @pytest.mark.slow
    def test_hw_collector_spends_less_time(self, built):
        sw = MutatorModel(built, collector="sw").run(n_gcs=2)
        hw = MutatorModel(built, collector="hw").run(n_gcs=2)
        assert hw.gc_cycles < sw.gc_cycles

    @pytest.mark.slow
    def test_successive_gcs_remain_correct(self, built):
        model = MutatorModel(built, collector="hw")
        for _ in range(3):
            model.mutate_phase()
            truth = len(built.heap.reachable())
            pause = model.collect_once()
            assert pause.objects_marked == truth

    def test_invalid_collector(self, built):
        with pytest.raises(ValueError):
            MutatorModel(built, collector="quantum")
