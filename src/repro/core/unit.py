"""Top-level GC unit: traversal + reclamation behind an MMIO interface.

:class:`TraversalUnit` wires reader -> mark queue -> marker -> tracer
(Figs. 5, 7) with either the **partitioned** memory organization the paper
settled on (marker and tracer talk to the interconnect directly, the PTW
gets a private 8 KB cache, the mark-queue spill path streams straight to
memory) or the rejected **shared-cache** organization of Fig. 18a, where
every requester goes through one small L1 behind a crossbar.

:class:`GCUnit` sequences a full stop-the-world collection: traversal (mark
phase), then reclamation (sweep phase), returning per-phase cycle counts
and work counters — the quantities plotted in Figs. 15-21.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.engine.queues import HWQueue
from repro.engine.simulator import Event, Simulator
from repro.engine.stats import StatsRegistry
from repro.core.config import GCUnitConfig, HardwareGCResult
from repro.core.markbitcache import MarkBitCache
from repro.core.marker import Marker
from repro.core.markqueue import AddressCodec, MarkQueue
from repro.core.reader import RootReader
from repro.core.sweeper import ReclamationUnit
from repro.core.tracer import Tracer
from repro.heap.heapimage import ManagedHeap
from repro.memory.cache import Cache
from repro.memory.interconnect import TileLinkPort
from repro.memory.paging import VIRT_OFFSET
from repro.memory.ptw import PageTableWalker
from repro.memory.request import MemRequest
from repro.memory.tlb import TLB, SharedL2TLB


class _Crossbar:
    """Serializes requesters onto one port, at most one per ``interval``.

    Two uses:

    * ``interval=1``: the shared-cache design's crossbar — "This creates a
      lot of contention on the cache's crossbar, effectively drowning out
      requests by other units" (§VI-B);
    * ``interval>1``: bandwidth throttling (§VII: "This interference could
      be reduced by communicating with the memory controller to only use
      residual bandwidth") — caps the unit's request rate so a concurrent
      application keeps its share of the memory system.
    """

    def __init__(self, sim: Simulator, target, stats: StatsRegistry,
                 interval: int = 1, name: str = "xbar"):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.sim = sim
        self.target = target
        self.stats = stats
        self.interval = interval
        self.name = name
        self._next_free = 0

    def submit(self, req: MemRequest) -> Event:
        done = self.sim.event(name=self.name)
        delay = max(0, self._next_free - self.sim.now)
        if delay:
            self.stats.inc(f"{self.name}.contention_cycles", delay)
        self._next_free = self.sim.now + delay + self.interval
        self.sim.schedule(
            delay, lambda: self.target.submit(req).add_callback(done.trigger)
        )
        return done


class TraversalUnit:
    """The mark-phase engine (Fig. 5, left)."""

    def __init__(
        self,
        heap: ManagedHeap,
        config: Optional[GCUnitConfig] = None,
        concurrent: bool = False,
        forwarding=None,
    ):
        self.heap = heap
        self.sim: Simulator = heap.sim
        self.config = config if config is not None else GCUnitConfig()
        #: Concurrent mode (§IV-D): the reader keeps polling hwgc-space for
        #: write-barrier appends until :meth:`request_stop`.
        self.concurrent = concurrent
        self.stop_requested = False
        #: Forwarding table of an in-progress relocation (§IV-D): every
        #: reference entering the pipeline — root, barrier publication, or
        #: traced field — is resolved through it, the unit-side half of the
        #: read-barrier protocol (the mutator side heals its own fields).
        self.forwarding = forwarding
        self.refs_forwarded = 0
        memsys = heap.memsys
        self.stats: StatsRegistry = memsys.stats
        self.mark_parity = heap.mark_parity
        cfg = self.config

        # -- memory organization (partitioned vs shared, Fig. 18) ---------
        # Optional bandwidth throttle between the whole unit and memory.
        if cfg.bandwidth_throttle is not None:
            model_target = _Crossbar(self.sim, memsys.model, self.stats,
                                     interval=cfg.bandwidth_throttle,
                                     name="throttle")
        else:
            model_target = memsys.model
        if cfg.cache_mode == "shared":
            shared = Cache(self.sim, cfg.shared_cache, model_target,
                           name="gcu_l1", stats=self.stats)
            xbar = _Crossbar(self.sim, shared, self.stats)
            self.shared_cache = shared

            def port(source: str) -> TileLinkPort:
                return TileLinkPort(xbar, source=source, validate=True)

            ptw_port = TileLinkPort(xbar, source="ptw", validate=True)
        else:
            self.shared_cache = None
            ptw_cache = Cache(self.sim, cfg.ptw_cache, model_target,
                              name="ptw_cache", stats=self.stats)

            def port(source: str) -> TileLinkPort:
                return TileLinkPort(model_target, source=source,
                                    validate=True)

            ptw_port = ptw_cache
        self._port_factory = port

        # -- translation ---------------------------------------------------
        self.ptw = PageTableWalker(self.sim, memsys.page_table, ptw_port,
                                   source="ptw", stats=self.stats,
                                   max_concurrent=cfg.ptw_concurrent_walks)
        self.l2_tlb = SharedL2TLB(entries=cfg.l2_tlb_entries)
        self.marker_tlb = TLB(self.sim, cfg.tlb, self.ptw, name="marker",
                              l2=self.l2_tlb, stats=self.stats)
        self.tracer_tlb = TLB(self.sim, cfg.tlb, self.ptw, name="tracer",
                              l2=self.l2_tlb, stats=self.stats)

        # -- queues and pipeline stages -------------------------------------
        codec = AddressCodec(cfg.address_compression)
        self.mark_queue = MarkQueue(
            self.sim, memsys.phys, port("queue"),
            memsys.address_map.spill,
            entries=cfg.mark_queue_entries,
            out_entries=cfg.spill_out_entries,
            in_entries=cfg.spill_in_entries,
            throttle_level=cfg.spill_throttle_level,
            codec=codec,
            stats=self.stats,
        )
        self.tracer_queue = HWQueue(self.sim, cfg.tracer_queue_entries,
                                    name="tracerq")
        self.mark_bit_cache = MarkBitCache(cfg.mark_bit_cache_entries)
        self.marker = Marker(
            self.sim, memsys.phys, self.mark_queue, self.tracer_queue,
            port("marker"), self.marker_tlb, unit=self,
            slots=cfg.marker_slots, mark_bit_cache=self.mark_bit_cache,
            stats=self.stats,
            nonblocking_tlb=cfg.ptw_concurrent_walks > 1,
        )
        self.tracer = Tracer(
            self.sim, memsys.phys, self.mark_queue, self.tracer_queue,
            port("tracer"), self.tracer_tlb, unit=self, stats=self.stats,
        )
        self.reader = RootReader(
            self.sim, memsys.phys, heap.roots, port("queue"), unit=self,
            stats=self.stats,
        )
        # Work accounting for termination detection.
        self._inflight = 0
        self._reader_done = False
        self._done_event: Optional[Event] = None

    # -- work accounting (references in flight anywhere in the pipeline) ---

    def enqueue_ref(self, ref: int) -> None:
        fwd = self.forwarding
        if fwd is not None:
            resolved = fwd.resolve(ref)
            if resolved != ref:
                self.refs_forwarded += 1
                trace = self.stats.trace
                if trace is not None:
                    trace.events.append(
                        (self.sim.now, "forward", "resolve", ref, resolved))
                ref = resolved
        self._inflight += 1
        self.mark_queue.enqueue(ref)

    def retire_ref(self) -> None:
        self._inflight -= 1
        if self._inflight < 0:
            raise RuntimeError("traversal-unit work accounting underflow")
        self._check_done()

    def _check_done(self) -> None:
        if (
            self._reader_done
            and self._inflight == 0
            and self._done_event is not None
            and not self._done_event.triggered
        ):
            self._done_event.trigger()

    # -- run ------------------------------------------------------------------

    def run(self) -> Event:
        """Start the traversal; returns the completion event."""
        self._done_event = self.sim.event(name="traversal.done")
        self.sim.process(self.marker.process(), name="marker")
        self.sim.process(self.tracer.process(), name="tracer")
        reader_proc = self.sim.process(self.reader.process(), name="reader")

        def _reader_finished(_v) -> None:
            self._reader_done = True
            self._check_done()

        reader_proc.add_callback(_reader_finished)
        return self._done_event

    def request_stop(self) -> None:
        """End concurrent marking: the reader drains any remaining barrier
        appends and the traversal completes (the termination handshake)."""
        self.stop_requested = True

    def port_factory(self) -> Callable[[str], TileLinkPort]:
        return self._port_factory


class GCUnit:
    """The full accelerator: one traversal unit + one reclamation unit.

    A fresh :class:`GCUnit` is instantiated per collection (hardware state
    is reset between GCs by the driver anyway, §V-E)."""

    def __init__(self, heap: ManagedHeap,
                 config: Optional[GCUnitConfig] = None):
        self.heap = heap
        self.sim = heap.sim
        self.config = config if config is not None else GCUnitConfig()
        self.traversal: Optional[TraversalUnit] = None
        self.reclamation: Optional[ReclamationUnit] = None
        self.last_result: Optional[HardwareGCResult] = None
        #: Per-phase memory-system stat deltas (filled by mark()/sweep()).
        self.mark_stats: Dict[str, int] = {}
        self.sweep_stats: Dict[str, int] = {}
        self.mark_window: Optional[tuple] = None  # (start, end) cycles
        self.sweep_window: Optional[tuple] = None

    @staticmethod
    def _stats_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        return {k: v - before.get(k, 0) for k, v in after.items()
                if v != before.get(k, 0)}

    def _run_until(self, done: Event) -> int:
        """Run the simulation to ``done``; returns the cycle at which it
        triggered. Supervised when a watchdog is attached
        (``stats.watchdog``), bare otherwise. The bare path is the figure
        pipeline's path and is byte-identical to before. The supervised
        clock can overshoot the trigger by up to one check interval, so
        phase accounting must use the returned cycle, not ``sim.now``."""
        wd = self.heap.memsys.stats.watchdog
        if wd is not None:
            wd.run_until(self.sim, done)
            assert wd.completed_at is not None
            return wd.completed_at
        self.sim.run_until(done)
        return self.sim.now

    @staticmethod
    def _export_queue_stalls(stats: StatsRegistry, *queues: HWQueue) -> None:
        """Publish each queue's producer-stall count as a stats counter
        (``queue.<name>.put_stalls``) so TraceMetrics and the run report
        can surface back-pressure that was previously collected but never
        reported."""
        for q in queues:
            if q.put_stall_count:
                stats.inc(f"queue.{q.name}.put_stalls", q.put_stall_count)

    def mark(self) -> int:
        """Run the mark phase; returns its cycle count."""
        self.traversal = TraversalUnit(self.heap, self.config)
        stats = self.heap.memsys.stats
        wd = stats.watchdog
        if wd is not None:
            trav = self.traversal
            # Registration order is the watchdog's culprit tie-break:
            # upstream (marker) before downstream queues.
            wd.register_probe("marker.slots_in_flight", "marker",
                              lambda: trav.marker.slots_in_flight)
            wd.register_probe("markq.entries", "markqueue",
                              lambda: trav.mark_queue.total_entries)
            wd.register_probe("tracerq.entries", "tracer",
                              lambda: trav.tracer_queue.occupancy)
        before = stats.as_dict()
        start = self.sim.now
        trace = stats.trace
        if trace is not None:
            trace.emit(start, "phase", "hw.mark", "B")
        done = self.traversal.run()
        try:
            end = self._run_until(done)
        finally:
            self._export_queue_stalls(stats, self.traversal.tracer_queue,
                                      self.traversal.mark_queue.main)
        if trace is not None:
            trace.emit(end, "phase", "hw.mark", "E")
        self.mark_stats = self._stats_delta(before, stats.as_dict())
        self.mark_window = (start, end)
        return end - start

    def mark_concurrent(self, mutator, barriers, forwarding=None):
        """Run the mark phase with a live mutator (§IV-D).

        ``mutator`` provides ``process(barriers)``, a simulation-process
        generator that keeps allocating and mutating while the traversal
        marks; ``barriers`` is its :class:`MutatorBarriers` instance. The
        phase has two parts: the racing span (mutator + traversal, no
        pause) and the termination handshake (mutation quiesced, traversal
        drains the final write-barrier publications) — only the handshake
        is a pause the application observes.

        Returns ``(mark_cycles, handshake_cycles)``.
        """
        self.traversal = TraversalUnit(self.heap, self.config,
                                       concurrent=True, forwarding=forwarding)
        stats = self.heap.memsys.stats
        wd = stats.watchdog
        if wd is not None:
            trav = self.traversal
            wd.register_probe("marker.slots_in_flight", "marker",
                              lambda: trav.marker.slots_in_flight)
            wd.register_probe("markq.entries", "markqueue",
                              lambda: trav.mark_queue.total_entries)
            wd.register_probe("tracerq.entries", "tracer",
                              lambda: trav.tracer_queue.occupancy)
        before = stats.as_dict()
        start = self.sim.now
        trace = stats.trace
        if trace is not None:
            trace.emit(start, "phase", "hw.conc_mark", "B")
        done = self.traversal.run()
        barriers.marking_active = True
        mutator_proc = self.sim.process(mutator.process(barriers),
                                        name="mutator")
        try:
            # Racing span: the traversal can only finish after the stop
            # request, so this wait always ends with the mutator quiescing.
            quiesced = self._run_until(mutator_proc)
            barriers.marking_active = False
            if trace is not None:
                trace.emit(quiesced, "phase", "hw.handshake", "B")
            self.traversal.request_stop()
            end = self._run_until(done)
        finally:
            self._export_queue_stalls(stats, self.traversal.tracer_queue,
                                      self.traversal.mark_queue.main)
        if trace is not None:
            trace.emit(end, "phase", "hw.handshake", "E")
            trace.emit(end, "phase", "hw.conc_mark", "E")
        self.mark_stats = self._stats_delta(before, stats.as_dict())
        self.mark_window = (start, end)
        return end - start, end - quiesced

    def sweep(self) -> int:
        """Run the sweep phase; returns its cycle count."""
        if self.traversal is None:
            raise RuntimeError("sweep requires a completed mark phase")
        trav = self.traversal
        recl_tlb = TLB(self.sim, self.config.tlb, trav.ptw, name="recl",
                       l2=trav.l2_tlb, stats=self.heap.memsys.stats)
        self.reclamation = ReclamationUnit(
            self.sim, self.heap.memsys.phys, self.heap.block_list,
            trav.port_factory(), recl_tlb,
            mark_parity=self.heap.mark_parity,
            virt_offset=VIRT_OFFSET,
            n_sweepers=self.config.n_sweepers,
            sweeper_slots=self.config.sweeper_slots,
            stats=self.heap.memsys.stats,
        )
        stats = self.heap.memsys.stats
        wd = stats.watchdog
        if wd is not None:
            recl = self.reclamation
            wd.register_probe("recl.blocks", "sweeper",
                              lambda: recl.pending_blocks)
        before = stats.as_dict()
        start = self.sim.now
        trace = stats.trace
        if trace is not None:
            trace.emit(start, "phase", "hw.sweep", "B")
        done = self.reclamation.sweep()
        try:
            end = self._run_until(done)
        finally:
            self._export_queue_stalls(stats, self.reclamation.block_queue)
        if trace is not None:
            trace.emit(end, "phase", "hw.sweep", "E")
        self.sweep_stats = self._stats_delta(before, stats.as_dict())
        self.sweep_window = (start, end)
        return end - start

    def collect(self) -> HardwareGCResult:
        """Full stop-the-world collection: mark, then sweep."""
        mark_cycles = self.mark()
        sweep_cycles = self.sweep()
        return self.collect_result(mark_cycles, sweep_cycles)

    def collect_result(self, mark_cycles: int,
                       sweep_cycles: int) -> HardwareGCResult:
        """Assemble the result record after mark/sweep have run."""
        trav = self.traversal
        recl = self.reclamation
        assert trav is not None and recl is not None
        self.last_result = HardwareGCResult(
            mark_cycles=mark_cycles,
            sweep_cycles=sweep_cycles,
            objects_marked=trav.marker.objects_marked,
            objects_requeued=trav.marker.already_marked,
            refs_traced=trav.tracer.refs_copied,
            cells_freed=recl.cells_freed,
            cells_live=recl.cells_live,
            spill_writes=trav.mark_queue.spill_writes,
            spill_reads=trav.mark_queue.spill_reads,
            spilled_entries=trav.mark_queue.spilled_entries,
            markbit_cache_hits=trav.mark_bit_cache.hits,
            counters={
                "tracer_requests": trav.tracer.requests_issued,
                "tracer_null_refs": trav.tracer.null_refs_skipped,
                "marker_filtered": trav.marker.filtered,
                "queue_peak_entries": trav.mark_queue.peak_entries,
                "page_boundary_splits": trav.tracer.page_boundary_splits,
            },
        )
        return self.last_result
